examples/adex_realestate.ml: Format List Sdtd Secview Sxpath Unix Workload
