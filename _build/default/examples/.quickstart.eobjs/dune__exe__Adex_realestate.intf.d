examples/adex_realestate.mli:
