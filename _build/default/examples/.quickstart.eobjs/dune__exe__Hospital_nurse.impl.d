examples/hospital_nurse.ml: Format List Sdtd Secview String Sxml Sxpath Workload
