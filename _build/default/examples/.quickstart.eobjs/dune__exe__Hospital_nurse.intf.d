examples/hospital_nurse.mli:
