examples/multi_group.ml: Format List Option Sdtd Secview String Sxml Sxpath Workload
