examples/multi_group.mli:
