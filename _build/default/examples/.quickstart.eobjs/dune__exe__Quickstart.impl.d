examples/quickstart.ml: Format List Sdtd Secview Sxml Sxpath
