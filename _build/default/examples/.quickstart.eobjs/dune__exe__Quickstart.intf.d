examples/quickstart.mli:
