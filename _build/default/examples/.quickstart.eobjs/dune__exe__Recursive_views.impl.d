examples/recursive_views.ml: Format List Sdtd Secview String Sxml Sxpath Workload
