examples/recursive_views.mli:
