lib/core/access.ml: Int Lazy List Sdtd Set Spec Sxml Sxpath
