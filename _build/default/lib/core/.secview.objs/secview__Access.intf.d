lib/core/access.mli: Set Spec Sxml
