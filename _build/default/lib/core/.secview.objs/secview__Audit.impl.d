lib/core/audit.ml: Format Hashtbl List Option Queue Sdtd Set Spec String
