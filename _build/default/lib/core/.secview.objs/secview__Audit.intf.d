lib/core/audit.mli: Format Spec
