lib/core/containment.ml: Format List Sdtd Simulate Sxml Sxpath
