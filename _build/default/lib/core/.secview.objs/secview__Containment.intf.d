lib/core/containment.mli: Format Sdtd Sxml Sxpath
