lib/core/derive.ml: Hashtbl List Option Printf Sdtd Spec Sxpath View
