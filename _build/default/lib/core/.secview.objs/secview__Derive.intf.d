lib/core/derive.mli: Spec View
