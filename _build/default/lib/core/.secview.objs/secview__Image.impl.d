lib/core/image.ml: Format Fun Hashtbl List Option Queue Sdtd String Sxpath
