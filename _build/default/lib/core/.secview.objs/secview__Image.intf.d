lib/core/image.mli: Format Sdtd Sxpath
