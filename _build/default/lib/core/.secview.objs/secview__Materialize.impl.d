lib/core/materialize.ml: Access Hashtbl Int List Printf Sdtd String Sxml Sxpath View
