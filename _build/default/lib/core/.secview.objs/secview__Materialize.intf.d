lib/core/materialize.mli: Spec Sxml View
