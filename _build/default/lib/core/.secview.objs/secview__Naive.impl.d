lib/core/naive.ml: Access Sxpath View
