lib/core/naive.mli: Spec Sxml Sxpath View
