lib/core/optimize.ml: Hashtbl Image List Option Rewrite Sdtd Simulate String Sxpath View
