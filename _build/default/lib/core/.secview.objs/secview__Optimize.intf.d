lib/core/optimize.mli: Sdtd Sxpath
