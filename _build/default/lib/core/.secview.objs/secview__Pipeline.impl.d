lib/core/pipeline.ml: Derive Hashtbl List Optimize Printf Rewrite Sdtd Spec Sxml Sxpath View
