lib/core/pipeline.mli: Sdtd Spec Sxml Sxpath View
