lib/core/rewrite.ml: Hashtbl List Option Sdtd String Sxpath View
