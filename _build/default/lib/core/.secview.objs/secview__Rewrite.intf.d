lib/core/rewrite.mli: Sxpath View
