lib/core/simulate.ml: Hashtbl Image List String
