lib/core/simulate.mli: Image Sdtd Sxpath
