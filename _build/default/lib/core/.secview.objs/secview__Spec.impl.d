lib/core/spec.ml: Buffer Format Fun Hashtbl List Map Printf Sdtd String Sxpath
