lib/core/spec.mli: Format Sdtd Sxpath
