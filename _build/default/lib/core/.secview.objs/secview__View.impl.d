lib/core/view.ml: Buffer Format Fun List Map Printf Sdtd Set String Sxpath
