lib/core/view.mli: Format Sdtd Sxpath
