(** Node accessibility (Section 3.2, Proposition 3.1).

    A node [v] with annotation [ann(v)] (looked up through its parent's
    element type, which is unique because DTDs are unambiguous) is
    accessible w.r.t. a specification iff either

    + [ann(v)] is [Y], or [ann(v)] is [\[q\]] and [q] holds at [v], and
      moreover every ancestor [v'] carrying a conditional annotation
      satisfies its qualifier; or
    + [ann(v)] is undefined and the parent of [v] is accessible.

    Note that an explicit [Y] {e overrides} an inaccessible parent
    (that is how [clinicalTrial]'s [patientInfo] child stays visible in
    the running example), but a false ancestor qualifier blocks the
    whole subtree. *)

module IntSet : Set.S with type elt = int

val accessible_set :
  ?env:(string -> string option) -> Spec.t -> Sxml.Tree.t -> IntSet.t
(** Identifiers of all accessible nodes (elements and text) of the
    document, computed in one top-down pass (qualifier evaluations
    aside). *)

val accessible : ?env:(string -> string option) -> Spec.t ->
  Sxml.Tree.t -> Sxml.Tree.t -> bool
(** [accessible spec doc v]: is [v] (a node of [doc]) accessible?
    Convenience wrapper over {!accessible_set}; for repeated queries
    compute the set once. *)

val accessible_elements :
  ?env:(string -> string option) -> Spec.t -> Sxml.Tree.t ->
  Sxml.Tree.t list
(** Accessible element nodes in document order. *)

val accessible_attributes :
  ?env:(string -> string option) ->
  ?accessible:IntSet.t ->
  Spec.t ->
  Sxml.Tree.t ->
  Sxml.Tree.t ->
  (string * string) list
(** The attributes of a node that the specification exposes: those with
    an explicit [("A", "@name")] annotation that grants access (with
    every ancestor qualifier true), plus — when the node itself is
    accessible — its unannotated attributes.  Only attributes the DTD
    declares for the element type are considered. *)

val annotate :
  ?env:(string -> string option) -> ?attribute:string -> Spec.t ->
  Sxml.Tree.t -> Sxml.Tree.t
(** The naive baseline's preprocessing (Section 6): return a copy of
    the document where every element carries
    [attribute="1"] ("0" otherwise).  Default attribute name
    ["accessibility"].  Node identifiers are preserved. *)
