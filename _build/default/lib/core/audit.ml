type status =
  | Accessible
  | Conditional
  | Hidden

type exposure = {
  element : string;
  statuses : status list;
}

(* Abstract path-state at a node: its own accessibility status plus
   whether any ancestor carries a qualifier (which demotes explicit Y
   to Conditional).  Finite lattice: fixpoint by worklist. *)
module StateSet = Set.Make (struct
  type t = status * bool (* (status, under_condition) *)

  let compare = compare
end)

let transfer spec ~parent ~child (status, under_cond) =
  let ann = Spec.annotation spec ~parent ~child in
  let child_under_cond =
    under_cond || match ann with Some (Spec.Cond _) -> true | _ -> false
  in
  let child_status =
    match ann with
    | Some Spec.Yes -> if under_cond then Conditional else Accessible
    | Some (Spec.Cond _) -> Conditional
    | Some Spec.No -> Hidden
    | None -> (
      (* inherited; an inherited Accessible under a condition is still
         Conditional *)
      match status with
      | Accessible -> if under_cond then Conditional else Accessible
      | s -> s)
  in
  (child_status, child_under_cond)

let analyse spec =
  let dtd = Spec.dtd spec in
  let states : (string, StateSet.t) Hashtbl.t = Hashtbl.create 32 in
  let get name =
    Option.value (Hashtbl.find_opt states name) ~default:StateSet.empty
  in
  let queue = Queue.create () in
  let add name st =
    let current = get name in
    if not (StateSet.mem st current) then begin
      Hashtbl.replace states name (StateSet.add st current);
      Queue.add (name, st) queue
    end
  in
  add (Sdtd.Dtd.root dtd) (Accessible, false);
  while not (Queue.is_empty queue) do
    let parent, st = Queue.pop queue in
    List.iter
      (fun child -> add child (transfer spec ~parent ~child st))
      (Sdtd.Dtd.children_of dtd parent)
  done;
  states

let statuses_of set =
  let has s =
    StateSet.exists (fun (status, _) -> status = s) set
  in
  List.filter has [ Accessible; Conditional; Hidden ]

let exposures spec =
  let states = analyse spec in
  List.map
    (fun element ->
      { element; statuses = statuses_of (Option.value
          (Hashtbl.find_opt states element) ~default:StateSet.empty) })
    (Sdtd.Dtd.reachable (Spec.dtd spec))

let hidden_types spec =
  List.filter_map
    (fun e ->
      match e.statuses with [ Hidden ] -> Some e.element | _ -> None)
    (exposures spec)

let dead_annotations spec =
  let states = analyse spec in
  let reachable = Sdtd.Dtd.reachable (Spec.dtd spec) in
  List.filter
    (fun ((parent, _child), annot) ->
      if not (List.mem parent reachable) then true
      else
        let parent_states =
          Option.value (Hashtbl.find_opt states parent)
            ~default:StateSet.empty
        in
        match annot with
        | Spec.Yes ->
          (* Y changes nothing if the parent is only ever accessible
             outside any condition *)
          StateSet.for_all (fun st -> st = (Accessible, false)) parent_states
          && not (StateSet.is_empty parent_states)
        | Spec.No ->
          (* N changes nothing if the parent is only ever hidden *)
          StateSet.for_all
            (fun (status, _) -> status = Hidden)
            parent_states
          && not (StateSet.is_empty parent_states)
        | Spec.Cond _ -> false)
    (Spec.annotations spec)

let diff spec1 spec2 =
  let table spec =
    List.map (fun e -> (e.element, e.statuses)) (exposures spec)
  in
  let t1 = table spec1 and t2 = table spec2 in
  let elements =
    List.sort_uniq compare (List.map fst t1 @ List.map fst t2)
  in
  List.filter_map
    (fun el ->
      let s1 = Option.value (List.assoc_opt el t1) ~default:[ Hidden ] in
      let s2 = Option.value (List.assoc_opt el t2) ~default:[ Hidden ] in
      let exposed s = List.mem Accessible s || List.mem Conditional s in
      if s1 = s2 then None
      else if (not (exposed s1)) && exposed s2 then Some (el, `Gained)
      else if exposed s1 && not (exposed s2) then Some (el, `Lost)
      else Some (el, `Changed (s1, s2)))
    elements

let status_to_string = function
  | Accessible -> "accessible"
  | Conditional -> "conditional"
  | Hidden -> "hidden"

let report ppf spec =
  Format.fprintf ppf "exposure (per element type, across root-paths):@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-20s %s@." e.element
        (String.concat " / " (List.map status_to_string e.statuses)))
    (exposures spec);
  match dead_annotations spec with
  | [] -> Format.fprintf ppf "no dead annotations.@."
  | dead ->
    Format.fprintf ppf "dead annotations (no effect on any node):@.";
    List.iter
      (fun ((a, b), annot) ->
        Format.fprintf ppf "  ann(%s, %s) = %a@." a b Spec.pp_annot annot)
      dead
