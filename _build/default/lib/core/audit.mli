(** Schema-level policy auditing.

    Accessibility in this model is context-sensitive — the same element
    type can be exposed along one DTD path and hidden along another
    (Section 3.2) — which makes policies easy to get subtly wrong.
    This module computes, purely at the schema level, what a
    specification actually exposes, for the administrator who wrote it:

    - the {e exposure} of every element type: along which kinds of
      root-paths its elements are accessible (unconditionally,
      conditionally, or not at all);
    - {e dead annotations} that can never change any node's
      accessibility (typically left behind by policy edits);
    - a diff of two policies, for reviewing a change before rollout.

    The analysis abstracts qualifiers to "conditional" (their truth is
    data-dependent); it is exact for specifications without conditions
    and an over-approximation of exposure otherwise. *)

type status =
  | Accessible  (** some root-path exposes it unconditionally *)
  | Conditional  (** exposed only under qualifier-guarded paths *)
  | Hidden  (** no root-path exposes it *)

type exposure = {
  element : string;
  statuses : status list;
      (** all statuses realizable across root-paths, most permissive
          first; context-sensitive types have several *)
}

val exposures : Spec.t -> exposure list
(** One entry per reachable element type, in BFS order from the
    root. *)

val hidden_types : Spec.t -> string list
(** Types with no exposing root-path — exactly what the derived view
    DTD drops or dummy-renames. *)

val dead_annotations : Spec.t -> ((string * string) * Spec.annot) list
(** Annotations that cannot influence any node's accessibility: [Y] on
    an edge whose parent is only ever unconditionally accessible, [N]
    on an edge whose parent is only ever hidden, or any annotation on
    an edge unreachable from the root. *)

val diff :
  Spec.t ->
  Spec.t ->
  (string * [ `Gained | `Lost | `Changed of status list * status list ]) list
(** Exposure changes from the first policy to the second, per element
    type: newly exposed ([`Gained]), newly hidden ([`Lost]), or with a
    different status set. *)

val report : Format.formatter -> Spec.t -> unit
(** Human-readable audit: exposure table plus dead-annotation
    warnings. *)
