(** Instance-level containment testing, used to quantify how much the
    approximate simulation test (Proposition 5.1) gives up.

    Exact XPath containment under a DTD is coNP-hard to undecidable
    (Section 5's motivation), so there is no cheap oracle; but random
    instances give one-sided evidence: a witness instance {e refutes}
    containment, while surviving many instances suggests (does not
    prove) it.  Comparing against {!Simulate.contained}:

    - simulation claims containment and an instance refutes it —
      a soundness bug (must never happen; the randomized test suite
      checks it);
    - simulation stays silent on pairs no instance refutes — the
      price of approximation, measured by {!stats} and reported by
      the benchmark harness (`--approx`). *)

val refute :
  ?samples:int ->
  ?seed:int ->
  Sdtd.Dtd.t ->
  Sxpath.Ast.path ->
  Sxpath.Ast.path ->
  at:string ->
  Sxml.Tree.t option
(** [refute dtd p1 p2 ~at] searches [samples] (default 20) random
    instances for one containing an [at]-element where [v⟦p1⟧ ⊄
    v⟦p2⟧]; returns the witness document. *)

type stats = {
  pairs : int;  (** query pairs examined *)
  refuted : int;  (** instance-refuted (definitely not contained) *)
  claimed : int;  (** simulation claims containment *)
  claimed_and_refuted : int;  (** soundness violations — must be 0 *)
  silent_unrefuted : int;
      (** pairs that survived every instance but simulation could not
          confirm: the approximation gap (some of these are genuinely
          not contained — instances just missed the witness) *)
}

val measure :
  ?pairs:int ->
  ?samples:int ->
  ?seed:int ->
  Sdtd.Dtd.t ->
  queries:Sxpath.Ast.path list ->
  stats
(** Examine all ordered pairs of the given queries (truncated to
    [pairs], default unlimited), classifying each. *)

val pp_stats : Format.formatter -> stats -> unit
