(** Algorithm [derive] (Fig. 5): compute a security-view definition
    from an access specification.

    Inaccessible element types are handled three ways, mirroring the
    paper:
    - {e pruned} when they have no accessible descendants;
    - {e short-cut} when the regular expression [reg(B)] describing
      their closest accessible descendants fits the surrounding
      production context (a concatenation inside a concatenation, a
      disjunction inside a disjunction, a single/starred label inside a
      star) — the descendants are then inlined as children of the
      accessible ancestor with composed σ paths;
    - {e dummy-renamed} otherwise, preserving the DTD structure while
      hiding the label; inaccessible types hit recursively inside their
      own [reg] computation are always dummy-renamed, which keeps
      recursive structure intact (the paper's prose treatment of
      recursive inaccessible nodes).

    Deviations from the figure, documented in DESIGN.md:
    - pruning replaces the occurrence by ε rather than deleting it, so
      a fully-pruned disjunction branch leaves the disjunction nullable
      instead of making materialization abort on documents that chose
      that branch;
    - when short-cutting makes the same child label occur several times
      in one production, the occurrences are merged into one starred
      occurrence whose σ is the union of the individual paths — the
      compaction Example 3.4 applies to [dept → patientInfo¹,
      patientInfo², staffInfo];
    - accessible PCDATA under an inaccessible element is never inlined
      upward (text extraction needs the source element), so such types
      are dummy-renamed. *)

val derive : Spec.t -> View.t
(** Runs in O(|D|²) like the paper's algorithm: each element type is
    processed at most once as accessible and once as inaccessible. *)
