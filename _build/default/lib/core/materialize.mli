(** Materialization semantics of security views (Section 3.3).

    Security views are never materialized in the query pipeline; this
    module implements the top-down construction the paper uses to
    {e define} view semantics, and the test suite uses it as the ground
    truth for soundness/completeness of {!Derive} and for equivalence
    of {!Rewrite}.

    Each view element remembers the document node it was extracted
    from, so tests can check "all and only accessible nodes appear"
    directly. *)

type vtree = {
  vlabel : string;  (** view element type (possibly a dummy) *)
  source : Sxml.Tree.t;  (** the document node this element stands for *)
  vattrs : (string * string) list;
      (** the source's attributes the specification exposes *)
  vchildren : vchild list;
}

and vchild =
  | Velem of vtree
  | Vtext of string

exception Abort of string
(** Raised when the construction aborts: an extracted child sequence
    does not conform to the view production (the paper's cases 2–4
    failure conditions, generalized to arbitrary view productions via
    regular-language membership). *)

val materialize :
  ?env:(string -> string option) ->
  spec:Spec.t ->
  view:View.t ->
  Sxml.Tree.t ->
  vtree
(** Children of a view element bound to document node [v] are: for
    each element label [B] of its view production, the {e accessible}
    nodes of [σ(A,B)] evaluated at [v] (for dummy labels, accessibility
    of the node itself is not required — dummies stand for hidden
    nodes), plus the accessible text children of [v] when the
    production mentions PCDATA; all ordered by document order.
    @raise Abort when the resulting label word violates the
    production. *)

val to_tree : vtree -> Sxml.Tree.t
(** Forget sources; fresh preorder identifiers. *)

val to_tree_with_sources : vtree -> Sxml.Tree.t * (int -> int option)
(** Like {!to_tree}, but also return the mapping from the new tree's
    element identifiers back to the source document node identifiers —
    what equivalence tests use to compare query answers over the view
    with answers over the document. *)

val element_sources : vtree -> (string * int) list
(** [(label, source id)] for every element of the view, preorder. *)

val size : vtree -> int
(** Number of elements and text nodes. *)
