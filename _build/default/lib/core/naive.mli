(** The naive element-level baseline of Section 6.

    Instead of rewriting through the view DTD, the document is
    preprocessed once: every element gets an [@accessibility]
    attribute ("1" accessible, "0" not — see {!Access.annotate}).  An
    input query over the view is then rewritten with two rules:

    + append the qualifier [\[@accessibility = "1"\]] to the last step,
      so only authorized elements are returned;
    + replace every child axis by a descendant axis, because one edge
      of the view DTD may stand for a longer path in the document
      (sound as long as element names are unique, which the paper
      assumes for this baseline).

    Dummy labels never occur in the document, so the descendant steps
    that mention them would return nothing; they are replaced by [*]
    descents (the label was hiding an unknown document element). *)

val attribute : string
(** ["accessibility"]. *)

val rewrite_query : ?view:View.t -> Sxpath.Ast.path -> Sxpath.Ast.path
(** Apply the two rewriting rules.  When the view is supplied, its
    dummy labels are generalized to wildcards. *)

val prepare : ?env:(string -> string option) -> Spec.t -> Sxml.Tree.t ->
  Sxml.Tree.t
(** Annotate a document (the offline step, not part of query time). *)

val eval :
  ?env:(string -> string option) ->
  ?view:View.t ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** Evaluate a view query on a {e prepared} document: rewrite with the
    two rules, then run the ordinary evaluator at the root element. *)
