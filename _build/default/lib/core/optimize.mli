(** Algorithm [optimize] (Fig. 10): DTD-aware XPath optimization.

    Given a (document) DTD and a query, produce an equivalent query
    that is cheaper to evaluate, by
    - pruning steps the DTD makes impossible (non-existence),
    - deciding qualifiers from structural constraints
      (co-existence / exclusive / non-existence, Example 5.1),
    - dropping union branches subsumed under the approximate
      containment test ({!Simulate}), and
    - expanding [//] into the precise label paths of the DTD when the
      DTD is non-recursive (on recursive DTDs descendant steps are
      kept as-is; unfold first if expansion is wanted).

    Qualifier simplification is applied only when it is uniform over
    every element type the qualified sub-query can reach — per-type
    splitting would reintroduce the imprecision discussed in
    {!Rewrite}.  All transformations preserve equivalence over every
    instance of the DTD. *)

val optimize : ?at:string -> Sdtd.Dtd.t -> Sxpath.Ast.path -> Sxpath.Ast.path
(** [optimize dtd p]: optimized [p] for evaluation at [at]-elements
    (default: the DTD root).  Returns ∅ when the DTD rules every
    result out. *)

val optimize_with_reach :
  ?at:string ->
  Sdtd.Dtd.t ->
  Sxpath.Ast.path ->
  Sxpath.Ast.path * string list
(** Also expose the element types the query can reach, for tests and
    for composing optimizations. *)

val simplify_qual :
  Sdtd.Dtd.t -> string -> Sxpath.Ast.qual -> Sxpath.Ast.qual
(** Qualifier simplification at one element type: decided qualifiers
    become [true()]/[false()], conjuncts subsumed by containment are
    dropped, and embedded paths are optimized. *)
