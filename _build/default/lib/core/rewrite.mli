(** Algorithm [rewrite] (Fig. 6): transform a query over a security
    view into an equivalent query over the original document, by
    dynamic programming over (sub-query, view-DTD node) pairs, without
    materializing the view.

    [//] is handled by the precomputation [recProc]: for every view
    node [A], the nodes reachable from [A] and, for each such [B], a
    document query [recrw(A,B)] capturing {e all} label paths from [A]
    to [B] with σ spliced in along every edge.  Shared prefixes are
    kept factored (the paper's symbolic-variable technique), so
    [recrw] stays polynomial on DAG view DTDs.

    Two modes:
    - [`Paper] is the algorithm exactly as published: after a step
      [p1/p2], the translations of [p2] at {e all} types reachable via
      [p1] are unioned and applied to every node [rw(p1)] returns.
    - [`Precise] (the default) keeps one translation {e per reached
      view type} and concatenates per type.  The two coincide on the
      paper's examples, but [`Paper] can return inaccessible nodes
      when the same child label hangs under two view types with
      different accessibility and the query reaches both (see
      DESIGN.md, "rewrite soundness corner"); [`Precise] is immune and
      has the same O(|p|·|D_v|²) table size.

    Queries in fragment [C] only: attribute steps are rejected.
    Recursive view DTDs must be unfolded first ({!rewrite_with_height}
    does it, per Section 4.2). *)

type mode = [ `Precise | `Paper ]

exception Unsupported of string

val rewrite : ?mode:mode -> View.t -> Sxpath.Ast.path -> Sxpath.Ast.path
(** [rewrite view p] is [p_t], to be evaluated at the document root
    element.  The result is ∅ when [p] can match nothing in the view.
    @raise Unsupported on attribute steps or a recursive view DTD. *)

val rewrite_with_height :
  ?mode:mode -> View.t -> height:int -> Sxpath.Ast.path -> Sxpath.Ast.path
(** Rewriting over a possibly recursive view: the view DTD is unfolded
    to the given document element-nesting height first (a no-op on
    non-recursive views). *)

val targets :
  ?mode:mode -> View.t -> Sxpath.Ast.path ->
  (string * Sxpath.Ast.path) list
(** Per-view-type breakdown of the translation at the root: which view
    element types the query can reach, and the document query reaching
    each (in [`Paper] mode every entry carries the same coarse
    query). *)

val recrw :
  View.t -> string -> (string * Sxpath.Ast.path) list
(** The [recProc] precomputation at one node, exposed for tests and
    the optimizer: reachable view types with their all-paths document
    queries ([(A, ε)] first). *)
