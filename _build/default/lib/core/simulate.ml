(* Coinductive simulation: pairs currently being decided are assumed
   to hold (greatest fixpoint), which is the standard treatment and
   terminates on cyclic image graphs. *)

type status = In_progress | Decided of bool

let simulated (g1 : Image.t) (g2 : Image.t) =
  let memo : (int * int, status) Hashtbl.t = Hashtbl.create 64 in
  (* Result (frontier) nodes of g1 may only be simulated by result
     nodes of g2: the mapping must send answers to answers, a condition
     Proposition 5.1 needs even though the paper's simulation
     definition leaves it implicit (without it, [a/*] would be
     "contained" in any query whose image passes through a's
     children). *)
  let frontier g =
    let t = Hashtbl.create 8 in
    List.iter (fun (n : Image.node) -> Hashtbl.replace t n.Image.id ()) g;
    t
  in
  let f1 = frontier g1.frontier and f2 = frontier g2.frontier in
  let rec simu (v1 : Image.node) (v2 : Image.node) =
    match Hashtbl.find_opt memo (v1.id, v2.id) with
    | Some (Decided b) -> b
    | Some In_progress -> true
    | None ->
      Hashtbl.replace memo (v1.id, v2.id) In_progress;
      let answer =
        String.equal v1.label v2.label
        && (not (Hashtbl.mem f1 v1.id) || Hashtbl.mem f2 v2.id)
        && List.for_all
             (fun x -> List.exists (fun y -> simu x y) v2.kids)
             v1.kids
        && quals_ok v1 v2
      in
      Hashtbl.replace memo (v1.id, v2.id) (Decided answer);
      answer
  and quals_ok v1 v2 =
    (* Every qualifier of v2 must be implied by (simulated by a
       subgraph of) some qualifier of v1.  Ambiguous qualifier sets
       hold only on one union branch: unusable as implications (v1
       side), never implied (v2 side). *)
    match v2.quals with
    | [] -> true
    | _ when v2.ambiguous -> false
    | v2_quals ->
      let usable = if v1.ambiguous then [] else v1.quals in
      List.for_all
        (fun y -> List.exists (fun x -> simu y x) usable)
        v2_quals
  in
  simu g1.root g2.root

let contained dtd p1 p2 a =
  match (Image.image dtd p1 a, Image.image dtd p2 a) with
  | None, _ -> true (* p1 can return nothing at a *)
  | Some _, None -> false
  | Some g1, Some g2 -> simulated g1 g2
  | exception Image.Too_large -> false (* cannot decide: claim nothing *)
