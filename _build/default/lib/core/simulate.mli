(** The qualifier-flipping simulation on image graphs (Section 5.1).

    [v1] is simulated by [v2] iff they carry the same label, every
    non-qualifier child of [v1] is simulated by some child of [v2],
    and every qualifier child of [v2] is simulated by some qualifier
    child of [v1] — the direction flips on qualifiers because a
    qualifier on the {e containing} query must be implied by one on
    the contained query.

    The relation is computed coinductively (greatest fixpoint), so
    cyclic image graphs from recursive DTDs are handled.  Ambiguous
    qualifier sets (see {!Image}) are unusable on the simulated side
    and unsatisfiable on the simulating side.

    Proposition 5.1: if [image p1 a] is simulated by [image p2 a] then
    [p1] is contained in [p2] at [a]-elements; the converse can fail
    (the test is approximate). *)

val simulated : Image.t -> Image.t -> bool
(** [simulated g1 g2]: is [g1]'s root simulated by [g2]'s root? *)

val contained :
  Sdtd.Dtd.t -> Sxpath.Ast.path -> Sxpath.Ast.path -> string -> bool
(** [contained dtd p1 p2 a]: approximate containment test — [true]
    implies [v⟦p1⟧ ⊆ v⟦p2⟧] at every [a]-element of every instance.
    An empty image for [p1] means [p1] returns nothing at [a], so it
    is contained in anything; an empty image for [p2] (with [p1]
    non-empty) refutes. *)
