(** Access specifications S = (D, ann) (Section 3.2).

    [ann] is a partial map over the parent/child edges of the document
    DTD: for a production [A → α] and element type [B] in [α],
    [ann (A, B)] — when defined — is [Y], [\[q\]] (a qualifier of the
    fragment), or [N].  An undefined annotation means [B] children of
    [A] elements inherit the accessibility of their parent; an explicit
    annotation overrides it.  The root is [Y] by default and cannot be
    annotated otherwise.

    Annotations on text content use the pseudo-child {!Sdtd.Regex.pcdata}
    and are restricted to [Y]/[N] (a conditional annotation on raw
    PCDATA has no counterpart in the view-DTD machinery).

    Annotations on attributes — the extension the paper defers with
    "they can be easily incorporated" — use the pseudo-child ["@name"]
    for an attribute the element type declares; an attribute without an
    annotation inherits its owning element's accessibility.  Like
    PCDATA, attributes take [Y]/[N] only: a conditional attribute has
    no query-rewriting enforcement (the view DTD carries no per-
    attribute σ), so [Cond] on either is rejected. *)

type annot =
  | Yes
  | Cond of Sxpath.Ast.qual
      (** qualifier over the {e document} DTD, evaluated at the child *)
  | No

type t

val make : Sdtd.Dtd.t -> ((string * string) * annot) list -> t
(** [make dtd anns] validates and freezes a specification.
    @raise Invalid_argument if an annotated pair [(a, b)] is not an
    edge of the DTD graph (with [b] possibly {!Sdtd.Regex.pcdata} when
    [a]'s production mentions PCDATA), if a pair is annotated twice, if
    the root would be annotated [N]/[Cond] from every parent — the root
    has no parent, so any [(­_, root)] edge is an ordinary edge — or if
    a [Cond] is placed on PCDATA. *)

val dtd : t -> Sdtd.Dtd.t
val annotation : t -> parent:string -> child:string -> annot option
val annotations : t -> ((string * string) * annot) list
(** In the order given to {!make}. *)

val variables : t -> string list
(** The [$parameters] appearing in conditional annotations, each
    once. *)

val pp_annot : Format.formatter -> annot -> unit
val pp : Format.formatter -> t -> unit
(** The paper's notation: productions interleaved with
    [ann(A, B) = …] lines (only annotated pairs are shown). *)

(** {2 The sidecar exchange format}

    One annotation per line — [parent child Y], [parent child N], or
    [parent child \[qualifier\]] — with [#]-comments and blank lines;
    PCDATA annotations use the literal child name [#PCDATA].  This is
    what the [secview] command-line tool reads. *)

val of_sidecar : Sdtd.Dtd.t -> string -> t
(** Parse sidecar text.
    @raise Failure with a [line: message] on malformed lines;
    @raise Invalid_argument for non-edges (as {!make}). *)

val of_sidecar_file : Sdtd.Dtd.t -> string -> t

val to_sidecar : t -> string
(** Inverse of {!of_sidecar} (modulo comments/blank lines). *)
