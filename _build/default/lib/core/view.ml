module PairMap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

module SSet = Set.Make (String)

type t = {
  dtd : Sdtd.Dtd.t;
  sigma : Sxpath.Ast.path PairMap.t;
  dummies : SSet.t;
  dummy_order : string list;
}

let make ?(dummies = []) ~dtd ~sigma () =
  let table =
    List.fold_left
      (fun m ((a, b), p) ->
        if PairMap.mem (a, b) m then
          invalid_arg
            (Printf.sprintf "View.make: σ(%s, %s) defined twice" a b);
        (match Sdtd.Dtd.production_opt dtd a with
        | Some rg when List.mem b (Sdtd.Regex.labels rg) -> ()
        | Some _ | None ->
          invalid_arg
            (Printf.sprintf "View.make: σ(%s, %s) is not a view-DTD edge" a b));
        PairMap.add (a, b) p m)
      PairMap.empty sigma
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (PairMap.mem (a, b) table) then
            invalid_arg
              (Printf.sprintf "View.make: missing σ(%s, %s)" a b))
        (Sdtd.Dtd.children_of dtd a))
    (Sdtd.Dtd.reachable dtd);
  { dtd; sigma = table; dummies = SSet.of_list dummies; dummy_order = dummies }

let dtd v = v.dtd
let root v = Sdtd.Dtd.root v.dtd

let sigma v ~parent ~child =
  match PairMap.find_opt (parent, child) v.sigma with
  | Some p -> Some p
  | None ->
    let parent = Sdtd.Unfold.label_of parent
    and child = Sdtd.Unfold.label_of child in
    PairMap.find_opt (parent, child) v.sigma

let sigma_exn v ~parent ~child =
  match sigma v ~parent ~child with
  | Some p -> p
  | None ->
    invalid_arg (Printf.sprintf "View.sigma: no σ(%s, %s)" parent child)

let is_dummy v name = SSet.mem (Sdtd.Unfold.label_of name) v.dummies
let dummies v = v.dummy_order

let identity_of dtd =
  let sigma =
    List.concat_map
      (fun a ->
        List.map
          (fun b -> ((a, b), Sxpath.Ast.Label b))
          (Sdtd.Dtd.children_of dtd a))
      (Sdtd.Dtd.reachable dtd)
  in
  make ~dtd ~sigma ()

let unfolded v ~height =
  if Sdtd.Dtd.is_recursive v.dtd then
    { v with dtd = Sdtd.Unfold.unfold v.dtd ~height }
  else v

let to_definition v =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "@root %s\n" (root v));
  List.iter
    (fun d -> Buffer.add_string buf (Printf.sprintf "@dummy %s\n" d))
    v.dummy_order;
  Buffer.add_string buf (Sdtd.Dtd.to_string v.dtd);
  PairMap.iter
    (fun (a, b) q ->
      Buffer.add_string buf
        (Printf.sprintf "@sigma %s %s := %s\n" a b (Sxpath.Print.to_string q)))
    v.sigma;
  Buffer.contents buf

let of_definition text =
  let lines = String.split_on_char '\n' text in
  let root = ref None in
  let dummies = ref [] in
  let decls = Buffer.create 512 in
  let sigma = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let fail fmt =
        Printf.ksprintf (fun m -> failwith (Printf.sprintf "line %d: %s" lineno m)) fmt
      in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if String.length line >= 6 && String.sub line 0 6 = "@root " then
        root := Some (String.trim (String.sub line 6 (String.length line - 6)))
      else if String.length line >= 7 && String.sub line 0 7 = "@dummy " then
        dummies :=
          String.trim (String.sub line 7 (String.length line - 7)) :: !dummies
      else if String.length line >= 7 && String.sub line 0 7 = "@sigma " then begin
        let body = String.sub line 7 (String.length line - 7) in
        match String.index_opt body ':' with
        | Some i
          when i + 1 < String.length body
               && body.[i + 1] = '='
               && i >= 1 -> (
          let lhs = String.trim (String.sub body 0 i) in
          let rhs = String.sub body (i + 2) (String.length body - i - 2) in
          match String.split_on_char ' ' lhs |> List.filter (( <> ) "") with
          | [ a; b ] -> (
            match Sxpath.Parse.of_string (String.trim rhs) with
            | q -> sigma := ((a, b), q) :: !sigma
            | exception Sxpath.Parse.Error e ->
              fail "bad sigma query: %s" (Sxpath.Parse.error_to_string e))
          | _ -> fail "expected '@sigma PARENT CHILD := QUERY'")
        | _ -> fail "expected ':=' in @sigma line"
      end
      else if String.length line >= 2 && String.sub line 0 2 = "<!" then begin
        Buffer.add_string decls line;
        Buffer.add_char decls '\n'
      end
      else fail "unrecognized line: %s" line)
    lines;
  let dtd =
    match Sdtd.Parse.of_string ?root:!root (Buffer.contents decls) with
    | d -> d
    | exception Sdtd.Parse.Error e ->
      failwith ("bad view DTD: " ^ Sdtd.Parse.error_to_string e)
  in
  make ~dummies:(List.rev !dummies) ~dtd ~sigma:(List.rev !sigma) ()

let of_definition_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_definition text

let save_definition v path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_definition v))

let pp ppf v =
  List.iter
    (fun a ->
      Format.fprintf ppf "%s -> %s@." a
        (Sdtd.Regex.to_string (Sdtd.Dtd.production v.dtd a));
      List.iter
        (fun b ->
          Format.fprintf ppf "  sigma(%s, %s) = %a@." a b Sxpath.Print.pp
            (sigma_exn v ~parent:a ~child:b))
        (Sdtd.Dtd.children_of v.dtd a))
    (Sdtd.Dtd.element_types v.dtd);
  match v.dummy_order with
  | [] -> ()
  | ds -> Format.fprintf ppf "dummies: %s@." (String.concat ", " ds)
