(** Security-view definitions V = (D_v, σ) (Section 3.3).

    [D_v] is the view DTD exposed to authorized users; [σ] maps each
    parent/child pair of [D_v] to an XPath query over the {e document}
    that extracts the child's source nodes when evaluated at the
    parent's source node.  The root of the view is mapped to the root
    of the document ([σ(r_v) = r]).

    Some view element types are {e dummies}: fresh labels standing for
    inaccessible document nodes that had to be kept to preserve the
    document DTD's structure (Fig. 2's [dummy1]/[dummy2]).  Their
    source nodes are intentionally {e not} accessible; everything else
    a view exposes is. *)

type t

val make :
  ?dummies:string list ->
  dtd:Sdtd.Dtd.t ->
  sigma:((string * string) * Sxpath.Ast.path) list ->
  unit ->
  t
(** @raise Invalid_argument if a σ key is not an edge of the view DTD,
    or if an edge between element types of the view DTD lacks a σ
    entry. *)

val dtd : t -> Sdtd.Dtd.t
val root : t -> string

val sigma : t -> parent:string -> child:string -> Sxpath.Ast.path option
(** σ(parent, child).  Lookups strip {!Sdtd.Unfold} level suffixes, so
    the same view works before and after unfolding. *)

val sigma_exn : t -> parent:string -> child:string -> Sxpath.Ast.path

val is_dummy : t -> string -> bool
val dummies : t -> string list

val identity_of : Sdtd.Dtd.t -> t
(** The identity view of a document DTD: same DTD, σ(A, B) = B.  The
    view a fully-[Y] specification derives. *)

val unfolded : t -> height:int -> t
(** The view with its DTD unfolded to the given document height
    (Section 4.2); σ entries are shared via suffix-stripping lookups.
    The identity on non-recursive views. *)

val pp : Format.formatter -> t -> unit
(** View DTD plus σ annotations, in the style of Example 3.2. *)

(** {2 Stored view definitions}

    A derived view can be serialized and reloaded, so the
    (administrator-side) derivation runs once and query frontends only
    load the definition.  The format is the view DTD in declaration
    syntax interleaved with [@root], [@dummy NAME] and
    [@sigma PARENT CHILD := QUERY] directives; [#]-lines are
    comments. *)

val to_definition : t -> string

val of_definition : string -> t
(** @raise Failure on malformed input (with a line number);
    @raise Invalid_argument if the σ table does not cover the DTD's
    edges (as {!make}). *)

val of_definition_file : string -> t
val save_definition : t -> string -> unit
