lib/dtd/dtd.ml: Format Hashtbl List Map Option Printf Queue Regex Set String
