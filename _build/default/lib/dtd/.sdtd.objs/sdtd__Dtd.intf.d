lib/dtd/dtd.mli: Format Regex
