lib/dtd/gen.ml: Array Dtd Hashtbl List Printf Random Regex Sxml
