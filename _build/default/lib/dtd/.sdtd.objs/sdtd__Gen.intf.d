lib/dtd/gen.mli: Dtd Random Sxml
