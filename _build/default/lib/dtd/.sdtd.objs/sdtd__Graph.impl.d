lib/dtd/graph.ml: Buffer Dtd Hashtbl List Printf Regex String
