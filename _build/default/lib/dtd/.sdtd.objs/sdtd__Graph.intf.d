lib/dtd/graph.mli: Dtd
