lib/dtd/parse.ml: Dtd Fun List Option Printf Regex String
