lib/dtd/parse.mli: Dtd Regex
