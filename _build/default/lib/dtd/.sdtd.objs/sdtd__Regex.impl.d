lib/dtd/regex.ml: Format Hashtbl List String
