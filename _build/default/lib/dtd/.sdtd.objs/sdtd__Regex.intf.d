lib/dtd/regex.mli: Format
