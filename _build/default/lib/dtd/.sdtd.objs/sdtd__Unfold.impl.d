lib/dtd/unfold.ml: Dtd Hashtbl List Option Printf Queue Regex String
