lib/dtd/unfold.mli: Dtd
