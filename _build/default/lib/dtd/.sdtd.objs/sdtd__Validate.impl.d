lib/dtd/validate.ml: Dtd Format List Printf Regex String Sxml
