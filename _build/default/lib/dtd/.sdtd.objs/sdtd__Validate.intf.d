lib/dtd/validate.mli: Dtd Format Sxml
