module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  stamp : int;
  root : string;
  prods : Regex.t SMap.t;
  attrs : string list SMap.t;  (* declared attributes per element type *)
  order : string list;  (* declaration order, for stable printing *)
}

let next_stamp =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let create ?(attlist = []) ~root decls =
  let prods, order =
    List.fold_left
      (fun (m, order) (name, rg) ->
        if SMap.mem name m then
          invalid_arg (Printf.sprintf "Dtd.create: duplicate type %S" name)
        else (SMap.add name (Regex.normalize rg) m, name :: order))
      (SMap.empty, []) decls
  in
  let order = List.rev order in
  (* Implicitly declare referenced-but-undeclared types as EMPTY. *)
  let referenced =
    SMap.fold
      (fun _ rg acc -> SSet.union acc (SSet.of_list (Regex.labels rg)))
      prods SSet.empty
  in
  let missing =
    SSet.elements (SSet.diff referenced (SSet.of_list (SMap.bindings prods |> List.map fst)))
  in
  let prods =
    List.fold_left (fun m name -> SMap.add name Regex.Epsilon m) prods missing
  in
  let order = order @ missing in
  if not (SMap.mem root prods) then
    invalid_arg (Printf.sprintf "Dtd.create: root %S undeclared" root);
  let attrs =
    List.fold_left
      (fun m (name, attr_names) ->
        if not (SMap.mem name prods) then
          invalid_arg
            (Printf.sprintf "Dtd.create: attlist for undeclared type %S" name);
        let previous = Option.value (SMap.find_opt name m) ~default:[] in
        SMap.add name
          (List.sort_uniq String.compare (previous @ attr_names))
          m)
      SMap.empty attlist
  in
  { stamp = next_stamp (); root; prods; attrs; order }

let root d = d.root

let stamp d = d.stamp

let attributes d name =
  Option.value (SMap.find_opt name d.attrs) ~default:[]

let with_attributes d name attr_names =
  if not (SMap.mem name d.prods) then
    invalid_arg
      (Printf.sprintf "Dtd.with_attributes: undeclared type %S" name);
  {
    d with
    stamp = next_stamp ();
    attrs = SMap.add name (List.sort_uniq String.compare attr_names) d.attrs;
  }

let element_types d =
  d.root :: List.filter (fun name -> name <> d.root) d.order

let mem d name = SMap.mem name d.prods

let production d name =
  match SMap.find_opt name d.prods with
  | Some rg -> rg
  | None -> raise Not_found

let production_opt d name = SMap.find_opt name d.prods

let children_of d name =
  match production_opt d name with None -> [] | Some rg -> Regex.labels rg

let size d =
  let rec regex_size = function
    | Regex.Empty | Regex.Epsilon | Regex.Str | Regex.Elt _ -> 1
    | Regex.Seq rs | Regex.Choice rs ->
      1 + List.fold_left (fun acc r -> acc + regex_size r) 0 rs
    | Regex.Star r -> 1 + regex_size r
  in
  SMap.fold (fun _ rg acc -> acc + 1 + regex_size rg) d.prods 0

let in_normal_form d =
  SMap.for_all (fun _ rg -> Regex.shape rg <> None) d.prods

let equal a b =
  String.equal a.root b.root
  && SMap.equal Regex.equal a.prods b.prods
  && SMap.equal
       (fun x y -> List.sort compare x = List.sort compare y)
       (SMap.filter (fun _ l -> l <> []) a.attrs)
       (SMap.filter (fun _ l -> l <> []) b.attrs)

let with_production d name rg =
  let order = if SMap.mem name d.prods then d.order else d.order @ [ name ] in
  { d with stamp = next_stamp (); prods = SMap.add name rg d.prods; order }

let reachable d =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let queue = Queue.create () in
  Queue.add d.root queue;
  Hashtbl.add seen d.root ();
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    out := name :: !out;
    List.iter
      (fun child ->
        if not (Hashtbl.mem seen child) then begin
          Hashtbl.add seen child ();
          Queue.add child queue
        end)
      (children_of d name)
  done;
  List.rev !out

let restrict_reachable d =
  let keep = SSet.of_list (reachable d) in
  {
    d with
    stamp = next_stamp ();
    prods = SMap.filter (fun name _ -> SSet.mem name keep) d.prods;
    attrs = SMap.filter (fun name _ -> SSet.mem name keep) d.attrs;
    order = List.filter (fun name -> SSet.mem name keep) d.order;
  }

(* Tarjan-free cycle detection: a type is recursive iff it occurs in an
   SCC of size > 1 or has a self-loop.  DFS with colors suffices for
   [recursive_types] via reachability: A is on a cycle iff A is
   reachable from some child-successor of A.  We compute it directly
   with a DFS from each type over the (small) DTD graph. *)
let reaches d ~source ~target =
  let seen = Hashtbl.create 16 in
  let rec go name =
    String.equal name target
    || (not (Hashtbl.mem seen name))
       && begin
            Hashtbl.add seen name ();
            List.exists go (children_of d name)
          end
  in
  List.exists go (children_of d source)

let recursive_types d =
  List.filter (fun name -> reaches d ~source:name ~target:name) (reachable d)

let is_recursive d = recursive_types d <> []

let topological_order d =
  if is_recursive d then None
  else begin
    (* DFS postorder reversed = parents-first topological order. *)
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let rec go name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        List.iter go (children_of d name);
        out := name :: !out
      end
    in
    go d.root;
    Some !out
  end

let min_height d name =
  (* Fixpoint: heights start at max_int and decrease monotonically. *)
  let heights = Hashtbl.create 16 in
  let get n = Option.value (Hashtbl.find_opt heights n) ~default:max_int in
  let rec regex_height rg =
    (* Minimum over words of (max over symbols of child height);
       [Some 0] when the empty word suffices. *)
    match rg with
    | Regex.Empty -> None
    | Regex.Epsilon | Regex.Str -> Some 0
    | Regex.Elt l -> if get l = max_int then None else Some (get l)
    | Regex.Star _ -> Some 0
    | Regex.Seq rs ->
      List.fold_left
        (fun acc r ->
          match (acc, regex_height r) with
          | Some a, Some b -> Some (max a b)
          | _, None | None, _ -> None)
        (Some 0) rs
    | Regex.Choice rs ->
      List.fold_left
        (fun acc r ->
          match (acc, regex_height r) with
          | Some a, Some b -> Some (min a b)
          | Some a, None -> Some a
          | None, h -> h)
        None rs
  in
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun n rg ->
        match regex_height rg with
        | None -> ()
        | Some h ->
          let candidate = if h = max_int then max_int else 1 + h in
          if candidate < get n then begin
            Hashtbl.replace heights n candidate;
            changed := true
          end)
      d.prods
  done;
  get name

(* Star contents may still require children once iterated: Star counts
   as height 0 because zero iterations are allowed, which is what
   min_height needs. *)

let is_consistent d =
  List.for_all (fun name -> min_height d name < max_int) (reachable d)

let pp ppf d =
  List.iter
    (fun name ->
      let rg = production d name in
      let body =
        match rg with
        | Regex.Epsilon -> "EMPTY"
        | Regex.Str -> "(#PCDATA)"
        | Regex.Seq _ | Regex.Choice _ -> Regex.to_string rg
        | _ -> "(" ^ Regex.to_string rg ^ ")"
      in
      Format.fprintf ppf "<!ELEMENT %s %s>@." name body;
      match attributes d name with
      | [] -> ()
      | attr_names ->
        List.iter
          (fun a ->
            Format.fprintf ppf "<!ATTLIST %s %s CDATA #IMPLIED>@." name a)
          attr_names)
    (element_types d)

let to_string d = Format.asprintf "%a" pp d
