(** Document Type Definitions.

    A DTD is [(Ele, Rg, r)] in the paper's notation: a finite set of
    element types with one production each, and a distinguished root
    type.  Productions are {!Regex.t}; the paper's normal form is
    checked by {!in_normal_form}. *)

type t

val create :
  ?attlist:(string * string list) list ->
  root:string ->
  (string * Regex.t) list ->
  t
(** [create ~root prods] builds a DTD.  Element types referenced by a
    production but not declared get an implicit [EMPTY] (ε) production,
    mirroring how hand-written DTD fragments are usually read.
    [attlist] declares attribute names per element type (the paper's
    model is element-only, but its extension to attributes — which the
    paper calls easy — is supported throughout this implementation).
    @raise Invalid_argument on duplicate declarations, if [root] is
    undeclared and unreferenced, or if an attlist entry names an
    undeclared element type. *)

val attributes : t -> string -> string list
(** Declared attributes of an element type (empty if none). *)

val with_attributes : t -> string -> string list -> t
(** Replace one element type's attribute list. *)

val root : t -> string

val stamp : t -> int
(** A process-unique identifier assigned at creation, usable as a
    cache key by analyses that memoize per-DTD results. *)

val element_types : t -> string list
(** All element types, root first, then the rest in declaration order. *)

val mem : t -> string -> bool
val production : t -> string -> Regex.t
(** @raise Not_found if the type is undeclared. *)

val production_opt : t -> string -> Regex.t option

val children_of : t -> string -> string list
(** Element types occurring in the production of the given type (the
    outgoing edges in the DTD graph), without duplicates. *)

val size : t -> int
(** |D|: number of element types plus total production size, the
    measure used in the paper's complexity claims. *)

val in_normal_form : t -> bool
(** All productions classify under {!Regex.shape}. *)

val equal : t -> t -> bool
(** Same root, same element types and pointwise-equal productions. *)

val with_production : t -> string -> Regex.t -> t
(** Functional update/addition of one production (keeps the root). *)

val restrict_reachable : t -> t
(** Drop element types not reachable from the root. *)

val reachable : t -> string list
(** Element types reachable from the root (root included), in BFS
    order. *)

val is_recursive : t -> bool
(** Does some element type reach itself through productions? *)

val recursive_types : t -> string list
(** Element types lying on a cycle of the DTD graph. *)

val topological_order : t -> string list option
(** Reachable element types in topological (parents-first) order, or
    [None] when the DTD is recursive. *)

val min_height : t -> string -> int
(** Minimum element-nesting height of any finite instance rooted at the
    given type: 1 for a type with ε/str content, [1 + min over words of
    max over children] otherwise.  [max_int] for types with no finite
    instance (inconsistent types). *)

val is_consistent : t -> bool
(** Every reachable type admits a finite instance. *)

val pp : Format.formatter -> t -> unit
(** DTD-declaration syntax, one [<!ELEMENT ...>] per line, root first. *)

val to_string : t -> string
