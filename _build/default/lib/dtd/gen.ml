type config = {
  seed : int;
  star_min : int;
  star_max : int;
  star_for : string -> (int * int) option;
  depth_budget : int;
  text_for : string -> Random.State.t -> string;
  attr_for : string -> string -> Random.State.t -> string option;
}

let vocabulary =
  [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf";
     "hotel"; "india"; "juliet"; "kilo"; "lima"; "1"; "2"; "3"; "6"; "42" |]

let default_text _element rng =
  vocabulary.(Random.State.int rng (Array.length vocabulary))

let default_config =
  {
    seed = 0;
    star_min = 0;
    star_max = 3;
    star_for = (fun _ -> None);
    depth_budget = 12;
    text_for = default_text;
    attr_for = (fun _ _ _ -> None);
  }

let generate_spec ?(config = default_config) dtd =
  if not (Dtd.is_consistent dtd) then
    invalid_arg "Gen.generate: inconsistent DTD (no finite instances)";
  let rng = Random.State.make [| config.seed |] in
  let minh = Hashtbl.create 16 in
  let min_of name =
    match Hashtbl.find_opt minh name with
    | Some h -> h
    | None ->
      let h = Dtd.min_height dtd name in
      Hashtbl.replace minh name h;
      h
  in
  (* Minimum extra height a regex forces on its parent's subtree. *)
  let rec regex_min rg =
    match rg with
    | Regex.Empty -> max_int
    | Regex.Epsilon | Regex.Str | Regex.Star _ -> 0
    | Regex.Elt b -> min_of b
    | Regex.Seq rs ->
      List.fold_left (fun acc r -> max acc (regex_min r)) 0 rs
    | Regex.Choice rs ->
      List.fold_left (fun acc r -> min acc (regex_min r)) max_int rs
  in
  let rec gen_element name budget : Sxml.Tree.spec =
    let rg = Dtd.production dtd name in
    let attrs =
      List.filter_map
        (fun a ->
          match config.attr_for name a rng with
          | Some v -> Some (a, v)
          | None -> None)
        (Dtd.attributes dtd name)
    in
    let children = gen_word name rg budget in
    Sxml.Tree.elem name ~attrs:attrs children
  and gen_word parent rg budget : Sxml.Tree.spec list =
    match rg with
    | Regex.Empty ->
      invalid_arg
        (Printf.sprintf "Gen.generate: type %S has an empty-language model"
           parent)
    | Regex.Epsilon -> []
    | Regex.Str -> [ Sxml.Tree.text (config.text_for parent rng) ]
    | Regex.Elt b -> [ gen_element b (budget - 1) ]
    | Regex.Seq rs -> List.concat_map (fun r -> gen_word parent r budget) rs
    | Regex.Choice rs ->
      let viable =
        if budget <= 1 then
          (* Out of budget: stick to branches finishing fastest. *)
          let best = regex_min rg in
          List.filter (fun r -> regex_min r = best) rs
        else List.filter (fun r -> regex_min r < max_int) rs
      in
      let pick = List.nth viable (Random.State.int rng (List.length viable)) in
      gen_word parent pick budget
    | Regex.Star r ->
      if budget <= 1 && regex_min r > 0 then []
      else begin
        let lo, hi =
          match config.star_for parent with
          | Some range -> range
          | None -> (config.star_min, config.star_max)
        in
        let n = lo + Random.State.int rng (max 1 (hi - lo + 1)) in
        List.concat (List.init n (fun _ -> gen_word parent r budget))
      end
  in
  gen_element (Dtd.root dtd) config.depth_budget

let generate ?config dtd = Sxml.Tree.of_spec (generate_spec ?config dtd)
