(** Seeded random generation of DTD instances.

    Substitute for IBM's XML Generator used in the paper's experiments
    (Section 6): given a DTD, produce a conforming document, with a
    maximum-branching-factor knob controlling how many repetitions each
    Kleene star expands to — the same parameter the paper varied to
    obtain its D1–D4 document series.

    Generation is deterministic for a given configuration (seed
    included) and always terminates on consistent DTDs: once the depth
    budget is spent, disjunctions choose a minimum-height branch and
    stars stop iterating, so subtrees finish in the fewest levels the
    DTD permits. *)

type config = {
  seed : int;
  star_min : int;  (** minimum repetitions for a Kleene star *)
  star_max : int;  (** the "maximum branching factor" *)
  star_for : string -> (int * int) option;
      (** per-element override of the repetition range: called with the
          parent element type of the starred content; [None] falls back
          to [star_min]/[star_max].  This is how the dataset series
          scales selected collections (e.g. ad listings) independently
          of the rest of the document. *)
  depth_budget : int;
      (** soft bound on element nesting; forces minimal completions
          below it *)
  text_for : string -> Random.State.t -> string;
      (** PCDATA for a text child of the given element type *)
  attr_for : string -> string -> Random.State.t -> string option;
      (** value for a declared attribute (element, attribute name);
          [None] omits the attribute (the default for all) *)
}

val default_config : config
(** seed 0, stars 0–3, depth budget 12, and pool-based text. *)

val default_text : string -> Random.State.t -> string
(** Uniform pick from a small fixed vocabulary, so content-based
    predicates have matches. *)

val generate : ?config:config -> Dtd.t -> Sxml.Tree.t
(** @raise Invalid_argument if the DTD is inconsistent (some reachable
    type has no finite instance). *)

val generate_spec : ?config:config -> Dtd.t -> Sxml.Tree.spec
