type edge_kind =
  | Child
  | Choice_branch

type edge = {
  parent : string;
  child : string;
  kind : edge_kind;
  starred : bool;
}

let edges dtd =
  let out = ref [] in
  let seen = Hashtbl.create 32 in
  let add edge =
    if not (Hashtbl.mem seen edge) then begin
      Hashtbl.add seen edge ();
      out := edge :: !out
    end
  in
  let rec walk parent ~kind ~starred (rg : Regex.t) =
    match rg with
    | Regex.Empty | Regex.Epsilon | Regex.Str -> ()
    | Regex.Elt child -> add { parent; child; kind; starred }
    | Regex.Seq rs -> List.iter (walk parent ~kind ~starred) rs
    | Regex.Choice rs ->
      List.iter (walk parent ~kind:Choice_branch ~starred) rs
    | Regex.Star r -> walk parent ~kind ~starred:true r
  in
  List.iter
    (fun name -> walk name ~kind:Child ~starred:false (Dtd.production dtd name))
    (Dtd.reachable dtd);
  List.rev !out

(* Tarjan's strongly-connected components. *)
let sccs dtd =
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Dtd.children_of dtd v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (Dtd.reachable dtd);
  List.rev !components

let escape_dot s =
  String.concat ""
    (List.map
       (fun c ->
         match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(highlight = fun _ -> `Normal) dtd =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dtd {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  List.iter
    (fun name ->
      let shape =
        if Regex.mentions_str (Dtd.production dtd name) then
          ", style=\"rounded\""
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\"%s];\n" (escape_dot name)
           (escape_dot name) shape))
    (Dtd.reachable dtd);
  List.iter
    (fun { parent; child; kind; starred } ->
      let style_parts =
        (match kind with Child -> [] | Choice_branch -> [ "dashed" ])
        @
        match highlight (parent, child) with
        | `Bold -> [ "bold" ]
        | `Faded -> [ "dotted" ]
        | `Normal -> []
      in
      let attrs =
        (if style_parts = [] then []
         else [ "style=\"" ^ String.concat "," style_parts ^ "\"" ])
        @ (if starred then [ "label=\"*\"" ] else [])
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" (escape_dot parent)
           (escape_dot child)
           (match attrs with
           | [] -> ""
           | attrs -> " [" ^ String.concat ", " attrs ^ "]")))
    (edges dtd);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let spec_style ~annotation (parent, child) =
  match annotation ~parent ~child with
  | Some (`Yes | `Cond) -> `Bold
  | Some `No -> `Faded
  | None -> `Normal
