(** DTD graphs as data, plus Graphviz rendering in the visual style of
    the paper's figures: solid edges for concatenation children, dashed
    edges for disjunction branches, a ['*'] label on starred edges
    (Fig. 1's conventions). *)

type edge_kind =
  | Child  (** plain concatenation member *)
  | Choice_branch  (** member of a disjunction (dashed in figures) *)

type edge = {
  parent : string;
  child : string;
  kind : edge_kind;
  starred : bool;  (** under a Kleene star *)
}

val edges : Dtd.t -> edge list
(** All parent/child edges of the reachable part, parents in BFS
    order.  An element type pair appears once per syntactic occurrence
    context; duplicates (same parent, child, kind, star) are merged. *)

val sccs : Dtd.t -> string list list
(** Strongly connected components of the reachable DTD graph, in
    reverse topological order (Tarjan).  Components of size > 1 — or
    self-loops — are the recursive cores. *)

val to_dot :
  ?highlight:(string * string -> [ `Bold | `Normal | `Faded ]) ->
  Dtd.t ->
  string
(** Graphviz source.  [highlight] styles edges, e.g. rendering a
    security specification in Fig. 4's style (bold = accessible edges);
    default: everything [`Normal]. *)

val spec_style :
  annotation:(parent:string -> child:string -> [ `Yes | `Cond | `No ] option) ->
  string * string ->
  [ `Bold | `Normal | `Faded ]
(** The Fig. 4 convention: explicitly accessible / conditional edges
    bold, explicitly denied edges faded, inherited edges normal. *)
