type error = { position : int; message : string }

exception Error of error

let error_to_string { position; message } =
  Printf.sprintf "DTD parse error at offset %d: %s" position message

type state = { input : string; mutable pos : int }

let fail st message = raise (Error { position = st.pos; message })

let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let skip st n =
  for _ = 1 to n do
    advance st
  done

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  let rec loop () =
    if (not (eof st)) && is_space (peek st) then begin
      advance st;
      loop ()
    end
    else if looking_at st "<!--" then begin
      skip st 4;
      while (not (eof st)) && not (looking_at st "-->") do
        advance st
      done;
      if eof st then fail st "unterminated comment";
      skip st 3;
      loop ()
    end
  in
  loop ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = ':'

let parse_name st =
  if not (is_name_char (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Content-model grammar:
     choice := seq ('|' seq)*
     seq    := postfix (',' postfix)*
     postfix:= atom ('*' | '+' | '?')?
     atom   := '#PCDATA' | name | '(' choice ')' *)
let rec parse_choice st =
  let first = parse_seq st in
  let rec loop acc =
    skip_space st;
    if peek st = '|' then begin
      advance st;
      loop (parse_seq st :: acc)
    end
    else List.rev acc
  in
  match loop [ first ] with [ r ] -> r | rs -> Regex.choice rs

and parse_seq st =
  let first = parse_postfix st in
  let rec loop acc =
    skip_space st;
    if peek st = ',' then begin
      advance st;
      loop (parse_postfix st :: acc)
    end
    else List.rev acc
  in
  match loop [ first ] with [ r ] -> r | rs -> Regex.seq rs

and parse_postfix st =
  let atom = parse_atom st in
  match peek st with
  | '*' ->
    advance st;
    Regex.star atom
  | '+' ->
    advance st;
    Regex.plus atom
  | '?' ->
    advance st;
    Regex.opt atom
  | _ -> atom

and parse_atom st =
  skip_space st;
  if peek st = '(' then begin
    advance st;
    let inner = parse_choice st in
    skip_space st;
    if peek st <> ')' then fail st "expected ')'";
    advance st;
    inner
  end
  else if peek st = '#' then begin
    advance st;
    let name = parse_name st in
    if String.equal name "PCDATA" then Regex.Str
    else fail st ("unknown #-token: #" ^ name)
  end
  else
    (* EMPTY/NONE inside a group are extensions matching Regex.pp's
       output for ε and ∅ (plain DTD syntax has no inline spelling for
       them); elements cannot take these reserved names. *)
    match parse_name st with
    | "EMPTY" -> Regex.Epsilon
    | "NONE" -> Regex.Empty
    | name -> Regex.Elt name

let parse_content st =
  skip_space st;
  if looking_at st "EMPTY" then begin
    skip st 5;
    Regex.Epsilon
  end
  else if looking_at st "ANY" then begin
    skip st 3;
    Regex.Epsilon
  end
  else parse_choice st

let regex_of_string input =
  let st = { input; pos = 0 } in
  let rg = parse_content st in
  skip_space st;
  if not (eof st) then fail st "trailing input after content model";
  rg

(* <!ATTLIST elem (name type default)*>: we keep attribute names and
   skip types/defaults (the model only tracks which attributes
   exist). *)
let parse_attlist st =
  skip_space st;
  let element = parse_name st in
  let names = ref [] in
  let skip_token () =
    skip_space st;
    if peek st = '(' then begin
      (* enumerated type *)
      while (not (eof st)) && peek st <> ')' do
        advance st
      done;
      if eof st then fail st "unterminated enumerated attribute type";
      advance st
    end
    else if peek st = '"' || peek st = '\'' then begin
      let quote = peek st in
      advance st;
      while (not (eof st)) && peek st <> quote do
        advance st
      done;
      if eof st then fail st "unterminated attribute default";
      advance st
    end
    else if peek st = '#' then begin
      advance st;
      ignore (parse_name st);
      (* #FIXED carries a value *)
      skip_space st;
      if peek st = '"' || peek st = '\'' then begin
        let quote = peek st in
        advance st;
        while (not (eof st)) && peek st <> quote do
          advance st
        done;
        if eof st then fail st "unterminated attribute default";
        advance st
      end
    end
    else ignore (parse_name st)
  in
  let rec attrs () =
    skip_space st;
    if peek st = '>' then advance st
    else begin
      let name = parse_name st in
      names := name :: !names;
      skip_token () (* type *);
      skip_token () (* default *);
      attrs ()
    end
  in
  attrs ();
  (element, List.rev !names)

let parse_declarations st =
  let decls = ref [] in
  let attlists = ref [] in
  let rec loop () =
    skip_space st;
    if eof st then ()
    else if looking_at st "<!ELEMENT" then begin
      skip st 9;
      skip_space st;
      let name = parse_name st in
      let content = parse_content st in
      skip_space st;
      if peek st <> '>' then fail st "expected '>' closing <!ELEMENT";
      advance st;
      decls := (name, content) :: !decls;
      loop ()
    end
    else if looking_at st "<!ATTLIST" then begin
      skip st 9;
      attlists := parse_attlist st :: !attlists;
      loop ()
    end
    else if looking_at st "<!ENTITY" then begin
      while (not (eof st)) && peek st <> '>' do
        advance st
      done;
      if eof st then fail st "unterminated declaration";
      advance st;
      loop ()
    end
    else if looking_at st "<?" then begin
      while (not (eof st)) && not (looking_at st "?>") do
        advance st
      done;
      if eof st then fail st "unterminated processing instruction";
      skip st 2;
      loop ()
    end
    else fail st "expected a DTD declaration"
  in
  loop ();
  (List.rev !decls, List.rev !attlists)

let of_string ?root input =
  let st = { input; pos = 0 } in
  let decls, attlist = parse_declarations st in
  match decls with
  | [] -> fail st "no element declarations"
  | (first, _) :: _ ->
    let root = Option.value root ~default:first in
    Dtd.create ~attlist ~root decls

let of_file ?root path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ?root contents
