(** Parser for DTD declaration syntax.

    Accepts a sequence of [<!ELEMENT name content>] declarations where
    [content] is [EMPTY], [ANY] (treated as ε — the substrate does not
    model mixed wildcard content), [(#PCDATA)], or a parenthesized
    regex over element names with [,], [|], [*], [+], [?].  [<!ATTLIST
    ...>] declarations and comments are skipped.  The root is the first
    declared element unless overridden. *)

type error = { position : int; message : string }

exception Error of error

val error_to_string : error -> string

val of_string : ?root:string -> string -> Dtd.t
(** @raise Error on malformed input.
    @raise Invalid_argument on duplicate declarations. *)

val of_file : ?root:string -> string -> Dtd.t

val regex_of_string : string -> Regex.t
(** Parse a bare content model, e.g. ["(a, (b | c)*, #PCDATA?)"]. *)
