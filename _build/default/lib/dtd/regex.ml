type t =
  | Empty
  | Epsilon
  | Str
  | Elt of string
  | Seq of t list
  | Choice of t list
  | Star of t

let rec equal a b =
  match (a, b) with
  | Empty, Empty | Epsilon, Epsilon | Str, Str -> true
  | Elt x, Elt y -> String.equal x y
  | Seq xs, Seq ys | Choice xs, Choice ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Star x, Star y -> equal x y
  | (Empty | Epsilon | Str | Elt _ | Seq _ | Choice _ | Star _), _ -> false

let seq parts =
  let flat =
    List.concat_map (function Seq xs -> xs | Epsilon -> [] | r -> [ r ]) parts
  in
  if List.exists (fun r -> r = Empty) flat then Empty
  else
    match flat with
    | [] -> Epsilon
    | [ r ] -> r
    | rs -> Seq rs

let choice parts =
  let flat =
    List.concat_map (function Choice xs -> xs | Empty -> [] | r -> [ r ]) parts
  in
  let deduped =
    List.fold_left
      (fun acc r -> if List.exists (equal r) acc then acc else r :: acc)
      [] flat
    |> List.rev
  in
  match deduped with [] -> Empty | [ r ] -> r | rs -> Choice rs

let star = function
  | Empty | Epsilon -> Epsilon
  | Star r -> Star r
  | r -> Star r

let opt r = if r = Epsilon then Epsilon else choice [ r; Epsilon ]

let plus r = seq [ r; star r ]

let rec normalize = function
  | (Empty | Epsilon | Str | Elt _) as r -> r
  | Seq rs -> seq (List.map normalize rs)
  | Choice rs -> choice (List.map normalize rs)
  | Star r -> star (normalize r)

let labels r =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Empty | Epsilon | Str -> ()
    | Elt l ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        out := l :: !out
      end
    | Seq rs | Choice rs -> List.iter go rs
    | Star r -> go r
  in
  go r;
  List.rev !out

let rec mentions_str = function
  | Str -> true
  | Empty | Epsilon | Elt _ -> false
  | Seq rs | Choice rs -> List.exists mentions_str rs
  | Star r -> mentions_str r

let rec nullable = function
  | Empty | Str | Elt _ -> false
  | Epsilon | Star _ -> true
  | Seq rs -> List.for_all nullable rs
  | Choice rs -> List.exists nullable rs

let rec is_empty_language = function
  | Empty -> true
  | Epsilon | Str | Elt _ | Star _ -> false
  | Seq rs -> List.exists is_empty_language rs
  | Choice rs -> List.for_all is_empty_language rs

let rec rename f = function
  | (Empty | Epsilon | Str) as r -> r
  | Elt l -> Elt (f l)
  | Seq rs -> Seq (List.map (rename f) rs)
  | Choice rs -> Choice (List.map (rename f) rs)
  | Star r -> Star (rename f r)

let pcdata = "#PCDATA"

let rec deriv sym = function
  | Empty | Epsilon -> Empty
  | Str -> if String.equal sym pcdata then Epsilon else Empty
  | Elt l -> if String.equal sym l then Epsilon else Empty
  | Seq [] -> Empty
  | Seq (r :: rest) ->
    let with_head = seq (deriv sym r :: rest) in
    if nullable r then choice [ with_head; deriv sym (seq rest) ]
    else with_head
  | Choice rs -> choice (List.map (deriv sym) rs)
  | Star r as whole -> seq [ deriv sym r; whole ]

let matches r word =
  let rec go r = function
    | [] -> nullable r
    | sym :: rest ->
      let r' = deriv sym r in
      if r' = Empty then false else go r' rest
  in
  go r word

type shape =
  | Shape_str
  | Shape_epsilon
  | Shape_seq of string list
  | Shape_choice of string list
  | Shape_star of string

let shape = function
  | Str -> Some Shape_str
  | Epsilon -> Some Shape_epsilon
  | Elt l -> Some (Shape_seq [ l ])
  | Star (Elt l) -> Some (Shape_star l)
  | Seq rs ->
    let as_label = function Elt l -> Some l | _ -> None in
    let ls = List.filter_map as_label rs in
    if List.length ls = List.length rs then Some (Shape_seq ls) else None
  | Choice rs ->
    let as_label = function Elt l -> Some l | _ -> None in
    let ls = List.filter_map as_label rs in
    if List.length ls = List.length rs then Some (Shape_choice ls) else None
  | Empty | Star _ -> None

let of_shape = function
  | Shape_str -> Str
  | Shape_epsilon -> Epsilon
  | Shape_seq ls -> seq (List.map (fun l -> Elt l) ls)
  | Shape_choice ls -> choice (List.map (fun l -> Elt l) ls)
  | Shape_star l -> Star (Elt l)

let rec pp ppf r =
  let pp_sep sep ppf () = Format.pp_print_string ppf sep in
  match r with
  | Empty -> Format.pp_print_string ppf "NONE"
  | Epsilon -> Format.pp_print_string ppf "EMPTY"
  | Str -> Format.pp_print_string ppf "#PCDATA"
  | Elt l -> Format.pp_print_string ppf l
  | Seq rs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_atom)
      rs
  | Choice rs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(pp_sep " | ") pp_atom)
      rs
  | Star r -> Format.fprintf ppf "%a*" pp_atom r

and pp_atom ppf r =
  match r with
  | Seq _ | Choice _ -> pp ppf r
  | Star inner -> Format.fprintf ppf "%a*" pp_atom inner
  | Empty | Epsilon | Str | Elt _ -> pp ppf r

let to_string r = Format.asprintf "%a" pp r
