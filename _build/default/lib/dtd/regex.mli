(** Content-model regular expressions.

    The paper (Section 2) restricts document DTDs to the normal form
    [str | eps | B1,...,Bn | B1+...+Bn | B*] and notes that any DTD can
    be brought to it by introducing auxiliary element types.  View DTDs
    produced by the derivation algorithm, however, mix these shapes
    (e.g. [patientInfo*, staffInfo] in Fig. 2), so the substrate uses
    general regexes and exposes the normal form as a classification
    ({!shape}). *)

type t =
  | Empty  (** the empty language, ∅ — matches no word at all *)
  | Epsilon  (** the empty word *)
  | Str  (** PCDATA *)
  | Elt of string  (** an element type *)
  | Seq of t list  (** concatenation *)
  | Choice of t list  (** disjunction *)
  | Star of t  (** Kleene star *)

val equal : t -> t -> bool

(** {2 Smart constructors}

    These apply the obvious simplifications (unit and zero laws,
    flattening of nested [Seq]/[Choice], deduplication of identical
    [Choice] branches) so regexes built programmatically stay small. *)

val seq : t list -> t
val choice : t list -> t
val star : t -> t
val opt : t -> t
(** [opt r] is [r + ε] (DTD's [r?]). *)

val plus : t -> t
(** [plus r] is [r, r*] (DTD's [r+]). *)

val normalize : t -> t
(** Rebuild a regex through the smart constructors at every depth, so
    structurally different spellings of the same simplifications
    compare equal ([Seq [Elt a]] vs [Elt a], …). *)

(** {2 Queries} *)

val labels : t -> string list
(** Element types occurring in the regex, each once, in first-occurrence
    order. *)

val mentions_str : t -> bool

val nullable : t -> bool
(** Does the language contain the empty word? *)

val is_empty_language : t -> bool
(** Is the language empty (≠ nullable: [Empty] vs [Epsilon])? *)

val rename : (string -> string) -> t -> t
(** Rename every element-type occurrence. *)

(** {2 Word membership}

    Words are sequences of symbols: an element type name, or {!pcdata}
    for a text node.  Membership is decided with Brzozowski
    derivatives, which is linear in practice for the deterministic
    content models DTDs require. *)

val pcdata : string
(** The reserved symbol ["#PCDATA"] standing for a text node. *)

val deriv : string -> t -> t
(** Brzozowski derivative w.r.t. one symbol. *)

val matches : t -> string list -> bool

(** {2 Normal-form classification (the paper's five production shapes)} *)

type shape =
  | Shape_str
  | Shape_epsilon
  | Shape_seq of string list  (** B1,...,Bn with n >= 1 *)
  | Shape_choice of string list  (** B1+...+Bn with n >= 2 *)
  | Shape_star of string

val shape : t -> shape option
(** [shape r] classifies [r] if it is in the paper's normal form. *)

val of_shape : shape -> t

val pp : Format.formatter -> t -> unit
(** DTD-style syntax: [(a, b*, (c | d))], [#PCDATA], [EMPTY]. *)

val to_string : t -> string
