let separator = '~'

let mangle name level = Printf.sprintf "%s%c%d" name separator level

let split name =
  match String.rindex_opt name separator with
  | None -> None
  | Some i -> (
    let suffix = String.sub name (i + 1) (String.length name - i - 1) in
    match int_of_string_opt suffix with
    | Some level when level >= 1 -> Some (String.sub name 0 i, level)
    | Some _ | None -> None)

let label_of name =
  match split name with Some (label, _) -> label | None -> name

let level_of name =
  match split name with Some (_, level) -> Some level | None -> None

let unfold d ~height =
  let minh = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace minh name (Dtd.min_height d name))
    (Dtd.reachable d);
  List.iter
    (fun name ->
      if String.contains name separator then
        invalid_arg
          (Printf.sprintf "Unfold.unfold: type %S contains %C" name separator))
    (Dtd.reachable d);
  let min_of name = Option.value (Hashtbl.find_opt minh name) ~default:max_int in
  let root_min = min_of (Dtd.root d) in
  if height < root_min then
    invalid_arg
      (Printf.sprintf
         "Unfold.unfold: height %d below the minimum instance height %d"
         height root_min);
  (* A child of type B at level k+1 fits iff its minimal subtree still
     fits under the height bound. *)
  let fits name level = level - 1 + min_of name <= height in
  let cut level rg =
    let rec go = function
      | (Regex.Empty | Regex.Epsilon | Regex.Str) as r -> r
      | Regex.Elt b ->
        if fits b (level + 1) then Regex.Elt (mangle b (level + 1))
        else Regex.Empty
      | Regex.Seq rs -> Regex.seq (List.map go rs)
      | Regex.Choice rs -> Regex.choice (List.map go rs)
      | Regex.Star r -> (
        match go r with
        | Regex.Empty -> Regex.Epsilon
        | r' -> Regex.star r')
    in
    go rg
  in
  (* BFS over reachable (type, level) pairs. *)
  let decls = ref [] in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue name level =
    let key = (name, level) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.add key queue
    end
  in
  enqueue (Dtd.root d) 1;
  let attlist = ref [] in
  while not (Queue.is_empty queue) do
    let name, level = Queue.pop queue in
    let rg = cut level (Dtd.production d name) in
    decls := (mangle name level, rg) :: !decls;
    (match Dtd.attributes d name with
    | [] -> ()
    | attrs -> attlist := (mangle name level, attrs) :: !attlist);
    List.iter
      (fun child ->
        match split child with
        | Some (base, lvl) -> enqueue base lvl
        | None -> ())
      (Regex.labels rg)
  done;
  Dtd.create ~attlist:!attlist ~root:(mangle (Dtd.root d) 1) (List.rev !decls)
