(** Unfolding of recursive DTDs (Section 4.2).

    Query rewriting over a recursive view DTD cannot translate [//] to
    a finite XPath union, so the paper bounds the view by the height of
    the concrete document: every element type [A] occurring at nesting
    level [k] becomes a fresh type [A~k], recursion is broken by
    applying each type's non-recursive rule at the deepest level, and
    the result is a DAG DTD the rewriting algorithm can process.

    The unfolded type names are internal: [label_of] recovers the
    user-visible element label, which is what query steps match and
    what σ-annotation lookups use. *)

val separator : char
(** ['~'] — assumed not to occur in element-type names being unfolded. *)

val mangle : string -> int -> string
val label_of : string -> string
(** [label_of "A~3"] is ["A"]; names without a level suffix are
    returned unchanged. *)

val level_of : string -> int option

val unfold : Dtd.t -> height:int -> Dtd.t
(** [unfold d ~height] is the non-recursive DTD whose instances are
    exactly the instances of [d] with element-nesting height at most
    [height] (modulo the level suffixes on type names).  The root is
    [mangle (root d) 1].

    @raise Invalid_argument if [height < min_height d (root d)] (no
    instance fits) or if some reachable type name already contains
    {!separator}. *)
