type violation = { node_id : int; element : string; message : string }

let pp_violation ppf { node_id; element; message } =
  Format.fprintf ppf "node %d <%s>: %s" node_id element message

let symbol_of (node : Sxml.Tree.t) =
  match node.desc with
  | Sxml.Tree.Text _ -> Regex.pcdata
  | Sxml.Tree.Element e -> e.tag

let check dtd doc =
  let violations = ref [] in
  let report node_id element message =
    violations := { node_id; element; message } :: !violations
  in
  let rec visit (node : Sxml.Tree.t) =
    match node.desc with
    | Sxml.Tree.Text _ -> ()
    | Sxml.Tree.Element e ->
      (match Dtd.production_opt dtd e.tag with
      | None -> report node.id e.tag "element type undeclared in DTD"
      | Some rg ->
        let word = List.map symbol_of e.children in
        if not (Regex.matches rg word) then
          report node.id e.tag
            (Printf.sprintf "children [%s] do not match content model %s"
               (String.concat "; " word) (Regex.to_string rg));
        let declared = Dtd.attributes dtd e.tag in
        List.iter
          (fun (name, _) ->
            if not (List.mem name declared) then
              report node.id e.tag
                (Printf.sprintf "attribute %S is not declared" name))
          e.attrs);
      List.iter visit e.children
  in
  (match Sxml.Tree.tag doc with
  | Some tag when String.equal tag (Dtd.root dtd) -> ()
  | Some tag ->
    report doc.id tag
      (Printf.sprintf "root is <%s> but the DTD root type is <%s>" tag
         (Dtd.root dtd))
  | None -> report doc.id "#text" "document root is a text node");
  visit doc;
  List.rev !violations

let conforms dtd doc = check dtd doc = []
