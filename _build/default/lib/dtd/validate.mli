(** Conformance of documents to DTDs (Section 2's instance relation):
    the root is labeled with the root type, every element's child
    labels form a word in its production's language, and text nodes are
    leaves (guaranteed by construction in {!Sxml.Tree}). *)

type violation = {
  node_id : int;  (** offending node (document preorder id) *)
  element : string;  (** element type at the node, or root mismatch *)
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : Dtd.t -> Sxml.Tree.t -> violation list
(** All conformance violations, in document order.  Elements whose type
    is undeclared in the DTD are violations; their subtrees are still
    visited. *)

val conforms : Dtd.t -> Sxml.Tree.t -> bool
(** [check] is empty. *)
