lib/workload/adex.ml: Sdtd Secview Sxpath
