lib/workload/adex.mli: Sdtd Secview Sxml Sxpath
