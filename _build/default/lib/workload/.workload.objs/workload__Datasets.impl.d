lib/workload/datasets.ml: Adex Printf Sxml
