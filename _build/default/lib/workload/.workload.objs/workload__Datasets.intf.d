lib/workload/datasets.mli: Sxml
