lib/workload/fig7.ml: Printf Sdtd Secview Sxml
