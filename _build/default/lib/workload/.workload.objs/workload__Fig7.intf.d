lib/workload/fig7.mli: Sdtd Secview Sxml
