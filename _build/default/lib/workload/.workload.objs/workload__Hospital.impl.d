lib/workload/hospital.ml: Printf Random Sdtd Secview String Sxml Sxpath
