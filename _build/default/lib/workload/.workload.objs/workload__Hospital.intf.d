lib/workload/hospital.mli: Sdtd Secview Sxml Sxpath
