lib/workload/xmark.ml: Array List Random Sdtd Secview Sxml Sxpath
