lib/workload/xmark.mli: Sdtd Secview Sxml Sxpath
