module R = Sdtd.Regex

let dtd =
  let e l = R.Elt l in
  Sdtd.Dtd.create ~root:"adex"
    [
      ("adex", R.Seq [ e "head"; e "body" ]);
      ( "head",
        R.Seq
          [
            e "transaction-info";
            R.Star (e "buyer-info");
            R.Star (e "seller-info");
          ] );
      ("transaction-info", R.Seq [ e "transaction-id"; e "date" ]);
      ( "buyer-info",
        R.Seq [ e "company-id"; e "contact-info"; e "account-status" ] );
      ( "contact-info",
        R.Seq [ e "name"; e "address"; e "phone"; e "email" ] );
      ("seller-info", R.Seq [ e "company-id"; e "contact-info" ]);
      ("body", R.Star (e "ad-instance"));
      ( "ad-instance",
        R.Seq
          [
            e "ad-id";
            e "start-date";
            e "end-date";
            e "payment";
            R.Choice [ e "real-estate"; e "employment"; e "automotive" ];
          ] );
      ("real-estate", R.Choice [ e "house"; e "apartment" ]);
      ( "house",
        R.Seq
          [
            e "location";
            e "bedrooms";
            e "r-e.asking-price";
            e "r-e.warranty";
          ] );
      ( "apartment",
        R.Seq
          [ e "location"; e "bedrooms"; e "r-e.rental-price"; e "r-e.unit-type" ]
      );
      ("location", R.Seq [ e "city"; e "state"; e "zip" ]);
      ("employment", R.Seq [ e "job-title"; e "salary"; e "employer" ]);
      ("automotive", R.Seq [ e "make"; e "model"; e "year"; e "price" ]);
      ("payment", R.Seq [ e "method"; e "amount" ]);
      ("transaction-id", R.Str);
      ("date", R.Str);
      ("company-id", R.Str);
      ("account-status", R.Str);
      ("name", R.Str);
      ("address", R.Str);
      ("phone", R.Str);
      ("email", R.Str);
      ("ad-id", R.Str);
      ("start-date", R.Str);
      ("end-date", R.Str);
      ("bedrooms", R.Str);
      ("r-e.asking-price", R.Str);
      ("r-e.warranty", R.Str);
      ("r-e.rental-price", R.Str);
      ("r-e.unit-type", R.Str);
      ("city", R.Str);
      ("state", R.Str);
      ("zip", R.Str);
      ("job-title", R.Str);
      ("salary", R.Str);
      ("employer", R.Str);
      ("make", R.Str);
      ("model", R.Str);
      ("year", R.Str);
      ("price", R.Str);
      ("method", R.Str);
      ("amount", R.Str);
    ]

let spec =
  Secview.Spec.make dtd
    [
      (("adex", "head"), Secview.Spec.No);
      (("adex", "body"), Secview.Spec.No);
      (("head", "buyer-info"), Secview.Spec.Yes);
      (("ad-instance", "real-estate"), Secview.Spec.Yes);
    ]

let view =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some v -> v
    | None ->
      let v = Secview.Derive.derive spec in
      memo := Some v;
      v

let q1 = Sxpath.Parse.of_string "//buyer-info/contact-info"
let q2 =
  Sxpath.Parse.of_string "//house/r-e.warranty | //apartment/r-e.warranty"
let q3 = Sxpath.Parse.of_string "//buyer-info[//company-id and //contact-info]"
let q4 =
  Sxpath.Parse.of_string "//house[//r-e.asking-price and //r-e.unit-type]"

let queries = [ ("Q1", q1); ("Q2", q2); ("Q3", q3); ("Q4", q4) ]

let document ?(seed = 7) ~ads ~buyers () =
  let config =
    {
      Sdtd.Gen.default_config with
      seed;
      star_for =
        (fun parent ->
          match parent with
          | "body" -> Some (ads, ads)
          | "head" -> Some ((buyers + 1) / 2, buyers)
          (* head has two starred collections (buyers and sellers);
             both get the same range, halving is applied above so the
             total head size tracks [buyers]. *)
          | _ -> None);
    }
  in
  Sdtd.Gen.generate ~config dtd
