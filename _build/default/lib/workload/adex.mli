(** The Adex workload of Section 6.

    The NAA Adex DTD (a proprietary classified-advertisement standard)
    is not redistributable, so this is a faithful substitute built
    around every element the paper names, with the structural
    properties its experiment discussion depends on:

    - [real-estate → house + apartment] is a disjunction (exclusive
      constraint for Q4);
    - [buyer-info → company-id, contact-info, account-status] is a
      concatenation (co-existence constraint for Q3);
    - [r-e.warranty] and [r-e.asking-price] occur only under [house],
      [r-e.unit-type] only under [apartment] (non-existence constraint
      for Q2 and Q4). *)

val dtd : Sdtd.Dtd.t

val spec : Secview.Spec.t
(** The Section 6 policy: the children of the root are [N]; the
    [buyer-info] and [real-estate] subtrees are [Y].  The user sees
    only buyer data and real-estate ads. *)

val view : unit -> Secview.View.t
(** The derived security view (memoized). *)

val q1 : Sxpath.Ast.path
(** [//buyer-info/contact-info]. *)

val q2 : Sxpath.Ast.path
(** [//house/r-e.warranty | //apartment/r-e.warranty]. *)

val q3 : Sxpath.Ast.path
(** [//buyer-info[//company-id and //contact-info]]. *)

val q4 : Sxpath.Ast.path
(** [//house[//r-e.asking-price and //r-e.unit-type]]. *)

val queries : (string * Sxpath.Ast.path) list
(** [("Q1", q1); …]. *)

val document : ?seed:int -> ads:int -> buyers:int -> unit -> Sxml.Tree.t
(** A generated instance with roughly [ads] ad instances and [buyers]
    buyer records (the knobs behind the D1–D4 series). *)
