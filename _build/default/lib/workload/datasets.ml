type t = {
  name : string;
  ads : int;
  buyers : int;
}

(* Paper sizes: 3.2, 16.7, 51.6, 77.0 MB — ratios ≈ 1 : 5.2 : 16 : 24. *)
let series ?(scale = 60) () =
  [
    { name = "D1"; ads = scale; buyers = scale / 2 };
    { name = "D2"; ads = scale * 5; buyers = scale * 5 / 2 };
    { name = "D3"; ads = scale * 16; buyers = scale * 8 };
    { name = "D4"; ads = scale * 24; buyers = scale * 12 };
  ]

let load ?(seed = 7) { ads; buyers; name = _ } =
  Adex.document ~seed ~ads ~buyers ()

let describe doc =
  Printf.sprintf "%d elements, depth %d"
    (Sxml.Tree.count_elements doc)
    (Sxml.Tree.depth doc)
