(** The D1–D4 document series of Table 1.

    The paper generated 3.2 / 16.7 / 51.6 / 77.0 MB Adex documents by
    varying the generator's maximum branching factor.  We preserve the
    ≈ 1 : 5 : 16 : 24 size progression at laptop/CI scale; absolute
    sizes are configurable through [scale] (ads per document for D1). *)

type t = {
  name : string;
  ads : int;
  buyers : int;
}

val series : ?scale:int -> unit -> t list
(** Default scale 60: D1 ≈ 60 ads, D4 ≈ 1440 ads. *)

val load : ?seed:int -> t -> Sxml.Tree.t
(** Generate the document (deterministic per seed). *)

val describe : Sxml.Tree.t -> string
(** "N elements, depth d" summary used in benchmark headers. *)
