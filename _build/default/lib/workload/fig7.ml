module R = Sdtd.Regex

let dtd =
  let e l = R.Elt l in
  Sdtd.Dtd.create ~root:"r"
    [
      ("r", R.Seq [ e "a"; e "b" ]);
      ("a", R.Seq [ e "b"; e "c" ]);
      ("c", R.Star (e "a"));
      ("b", R.Str);
    ]

let spec = Secview.Spec.make dtd [ (("r", "b"), Secview.Spec.No) ]

let view =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some v -> v
    | None ->
      let v = Secview.Derive.derive spec in
      memo := Some v;
      v

let document ~depth:max_level =
  let open Sxml.Tree in
  let depth = max_level in
  let rec a_node level =
    elem "a"
      [
        elem "b" [ text (Printf.sprintf "visible-%d" level) ];
        elem "c" (if level >= depth then [] else [ a_node (level + 1) ]);
      ]
  in
  of_spec (elem "r" [ a_node 1; elem "b" [ text "hidden" ] ])
