(** The recursive example of Fig. 7 (b)/(c): a document DTD whose
    security view is recursive, used to exercise DTD unfolding and
    recursive-view query rewriting (Section 4.2).

    Document DTD (Fig. 7 (c)): [r → a; a → b, c; c → a*; b → str],
    where [b] under [r]'s {e other} branch is hidden — concretely we
    use the specification: [r → a, b] with [ann(r, b) = N] and
    everything else accessible, so the view DTD is
    [r → a; a → b, c; c → a*] (a graph with the a→c→a cycle), and the
    view query [//b] must not return the hidden [b] child of [r]. *)

val dtd : Sdtd.Dtd.t
val spec : Secview.Spec.t
val view : unit -> Secview.View.t

val document : depth:int -> Sxml.Tree.t
(** A handwritten instance whose a→c→a chain nests [depth] times, each
    [a] carrying one visible [b] leaf, and the root carrying one hidden
    [b] leaf. *)
