module R = Sdtd.Regex

let dtd =
  let e l = R.Elt l in
  Sdtd.Dtd.create ~root:"site"
    [
      ( "site",
        R.Seq
          [ e "regions"; e "people"; e "open-auctions"; e "closed-auctions" ]
      );
      ("regions", R.Star (e "region"));
      ("region", R.Seq [ e "name"; R.Star (e "item") ]);
      ( "item",
        R.Seq
          [ e "name"; e "location"; e "quantity"; e "payment"; e "description" ]
      );
      ("description", R.Choice [ e "text"; e "parlist" ]);
      ("parlist", R.Star (e "listitem"));
      ("listitem", R.Choice [ e "text"; e "parlist" ]);
      ("people", R.Star (e "person"));
      ( "person",
        R.Seq
          [
            e "name";
            e "emailaddress";
            R.choice [ e "address"; R.Epsilon ];
            R.choice [ e "creditcard"; R.Epsilon ];
            R.choice [ e "profile"; R.Epsilon ];
          ] );
      ("address", R.Seq [ e "street"; e "city"; e "country" ]);
      ("profile", R.Seq [ e "education"; e "income" ]);
      ("open-auctions", R.Star (e "open-auction"));
      ( "open-auction",
        R.Seq
          [
            e "initial"; e "current"; R.Star (e "bidder"); e "itemref";
            e "seller";
          ] );
      ("bidder", R.Seq [ e "date"; e "personref"; e "increase" ]);
      ("closed-auctions", R.Star (e "closed-auction"));
      ( "closed-auction",
        R.Seq [ e "seller"; e "buyer"; e "itemref"; e "price"; e "date" ] );
      ("name", R.Str);
      ("location", R.Str);
      ("quantity", R.Str);
      ("payment", R.Str);
      ("text", R.Str);
      ("emailaddress", R.Str);
      ("creditcard", R.Str);
      ("street", R.Str);
      ("city", R.Str);
      ("country", R.Str);
      ("education", R.Str);
      ("income", R.Str);
      ("initial", R.Str);
      ("current", R.Str);
      ("itemref", R.Str);
      ("seller", R.Str);
      ("buyer", R.Str);
      ("price", R.Str);
      ("date", R.Str);
      ("personref", R.Str);
      ("increase", R.Str);
    ]

let spec =
  Secview.Spec.make dtd
    [
      (("person", "creditcard"), Secview.Spec.No);
      (("person", "profile"), Secview.Spec.No);
      (("item", "payment"), Secview.Spec.No);
      (("site", "closed-auctions"), Secview.Spec.No);
      (("closed-auction", "price"), Secview.Spec.Yes);
      ( ("person", "address"),
        Secview.Spec.Cond
          (Sxpath.Parse.qual_of_string "country = \"US\"") );
    ]

let view =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some v -> v
    | None ->
      let v = Secview.Derive.derive spec in
      memo := Some v;
      v

let queries =
  List.map
    (fun (name, q) -> (name, Sxpath.Parse.of_string q))
    [
      ("X1", "//person/name");
      ("X2", "//open-auction[bidder]/current");
      ("X3", "//item//listitem//text");
      ("X4", "//price");
      ("X5", "//person[address/country = \"US\"]/emailaddress");
    ]

let document ?(seed = 11) ~scale () =
  let config =
    {
      Sdtd.Gen.default_config with
      seed;
      depth_budget = 10;
      star_for =
        (fun parent ->
          match parent with
          | "regions" -> Some (2, 4)
          | "region" -> Some (max 1 (scale / 4), max 1 (scale / 2))
          | "people" -> Some (scale / 2, scale)
          | "open-auctions" -> Some (scale / 2, scale)
          | "closed-auctions" -> Some (scale / 2, scale)
          | "open-auction" -> Some (0, 3) (* bidders *)
          | "parlist" -> Some (1, 3)
          | _ -> None);
      text_for =
        (fun parent rng ->
          match parent with
          | "country" ->
            [| "US"; "DE"; "SG"; "BR" |].(Random.State.int rng 4)
          | "quantity" -> string_of_int (1 + Random.State.int rng 5)
          | _ -> Sdtd.Gen.default_text parent rng);
    }
  in
  Sdtd.Gen.generate ~config dtd

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc
