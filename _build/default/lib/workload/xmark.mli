(** An XMark-flavoured auction-site workload.

    The paper's experiments use only the (non-recursive) Adex DTD; its
    Section 4.2 machinery for recursive DTDs is exercised by the tiny
    Fig. 7 example.  This workload adds a realistic recursive schema in
    the style of the XMark benchmark (auction site with nested
    [parlist]/[listitem] item descriptions), a policy with hidden
    payment data and a conditional address rule, and five
    XMark-flavoured queries — giving the recursive-view pipeline a
    production-shaped workout (bench section A6).

    Recursion: [description → (text | parlist)], [parlist → listitem*],
    [listitem → (text | parlist)].  The document DTD is deliberately
    {e not} in the paper's normal form (optional children, nested
    groups): the implementation handles general content models, and
    this workload keeps it honest. *)

val dtd : Sdtd.Dtd.t

val spec : Secview.Spec.t
(** The "buyer" group policy: credit cards and profiles are hidden
    ([N]); closed auctions are hidden except their prices (exercising
    short-cuts through two hidden levels); addresses are visible only
    for US sellers (a conditional rule, no parameters). *)

val view : unit -> Secview.View.t
(** Derived security view — recursive, like the document DTD. *)

val queries : (string * Sxpath.Ast.path) list
(** X1–X5: person names, contested auctions, recursive descent into
    item descriptions, prices reached through dummies, and a
    content-predicate join. *)

val document : ?seed:int -> scale:int -> unit -> Sxml.Tree.t
(** A generated site; [scale] ≈ number of items/people/auctions. *)

val element_height : Sxml.Tree.t -> int
(** Element-nesting height, the unfolding bound rewriting needs. *)
