lib/xml/index.ml: Array Hashtbl List Option String Tree
