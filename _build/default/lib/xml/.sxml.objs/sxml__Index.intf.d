lib/xml/index.mli: Tree
