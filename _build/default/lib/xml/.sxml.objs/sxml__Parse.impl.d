lib/xml/parse.ml: Buffer Char Fun List Printf String Tree
