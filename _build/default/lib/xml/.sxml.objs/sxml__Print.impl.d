lib/xml/print.ml: Buffer Fun List String Tree
