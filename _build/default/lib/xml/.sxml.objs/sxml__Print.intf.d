lib/xml/print.mli: Buffer Tree
