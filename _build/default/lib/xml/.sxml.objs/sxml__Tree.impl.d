lib/xml/tree.ml: Buffer Format Int List String
