(** A small, strict XML parser for the subset the substrate emits:
    elements, attributes, PCDATA, comments, processing instructions and
    an optional XML declaration / DOCTYPE line (both skipped).  The five
    predefined entities and decimal/hex character references are
    decoded.  Namespaces, CDATA sections and external entities are out
    of scope.

    Whitespace-only text between elements is dropped when
    [~keep_whitespace:false] (the default), so pretty-printed output
    round-trips. *)

type error = { line : int; column : int; message : string }

exception Error of error

val error_to_string : error -> string

val of_string : ?keep_whitespace:bool -> string -> Tree.t
(** Parse a complete document.  @raise Error on malformed input. *)

val of_file : ?keep_whitespace:bool -> string -> Tree.t

val of_string_result :
  ?keep_whitespace:bool -> string -> (Tree.t, error) result
