let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | '\'' when attr -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s

let escape_via ~attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~attr s;
  Buffer.contents buf

let escape_text s = escape_via ~attr:false s
let escape_attr s = escape_via ~attr:true s

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      escape buf ~attr:true v;
      Buffer.add_char buf '"')
    attrs

let element_only children = List.for_all Tree.is_element children

let to_buffer ?(indent = false) buf doc =
  let pad level =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * level do
        Buffer.add_char buf ' '
      done
    end
  in
  let rec emit level (node : Tree.t) =
    match node.desc with
    | Text s -> escape buf ~attr:false s
    | Element e -> (
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      match e.children with
      | [] -> Buffer.add_string buf "/>"
      | children ->
        Buffer.add_char buf '>';
        (* Indent only element-only content: indenting mixed content
           would inject whitespace into PCDATA. *)
        let pretty = indent && element_only children in
        List.iter
          (fun child ->
            if pretty then pad (level + 1);
            emit (level + 1) child)
          children;
        if pretty then pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>')
  in
  emit 0 doc

let to_string ?indent doc =
  let buf = Buffer.create 1024 in
  to_buffer ?indent buf doc;
  Buffer.contents buf

let to_channel ?indent oc doc =
  let buf = Buffer.create 4096 in
  to_buffer ?indent buf doc;
  Buffer.output_buffer oc buf

let to_file ?indent path doc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?indent oc doc)
