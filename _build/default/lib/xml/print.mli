(** XML serialization.

    Produces well-formed XML 1.0 text that {!Parse} reads back to a
    structurally equal tree.  Only the five predefined entities are
    escaped; no namespace or doctype machinery, matching the substrate's
    scope. *)

val escape_text : string -> string
(** Escape PCDATA ([&], [<], [>]). *)

val escape_attr : string -> string
(** Escape an attribute value for double-quoted output. *)

val to_buffer : ?indent:bool -> Buffer.t -> Tree.t -> unit

val to_string : ?indent:bool -> Tree.t -> string
(** [to_string doc] serializes the document.  With [~indent:true],
    element-only content is pretty-printed; mixed content is kept
    verbatim so round-tripping preserves PCDATA exactly. *)

val to_channel : ?indent:bool -> out_channel -> Tree.t -> unit

val to_file : ?indent:bool -> string -> Tree.t -> unit
