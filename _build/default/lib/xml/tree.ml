type t = { id : int; desc : desc }

and desc =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

type spec =
  | E of string * (string * string) list * spec list
  | T of string

let elem tag ?(attrs = []) children =
  E (tag, List.sort (fun (a, _) (b, _) -> String.compare a b) attrs, children)

let text s = T s

let of_spec spec =
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  (* Preorder numbering: a node gets its id before its children. *)
  let rec freeze = function
    | T s -> { id = fresh (); desc = Text s }
    | E (tag, attrs, children) ->
      let id = fresh () in
      let children = List.map freeze children in
      { id; desc = Element { tag; attrs; children } }
  in
  freeze spec

let rec to_spec node =
  match node.desc with
  | Text s -> T s
  | Element e -> E (e.tag, e.attrs, List.map to_spec e.children)

let tag node =
  match node.desc with Element e -> Some e.tag | Text _ -> None

let is_element node =
  match node.desc with Element _ -> true | Text _ -> false

let is_text node = not (is_element node)

let text_value node =
  match node.desc with Text s -> Some s | Element _ -> None

let children node =
  match node.desc with Element e -> e.children | Text _ -> []

let element_children node = List.filter is_element (children node)

let attr node name =
  match node.desc with
  | Text _ -> None
  | Element e -> List.assoc_opt name e.attrs

let fold f init node =
  let rec go acc node = List.fold_left go (f acc node) (children node) in
  go init node

let iter f node = fold (fun () n -> f n) () node

let descendants_or_self node =
  List.rev (fold (fun acc n -> n :: acc) [] node)

let find_all pred node =
  List.rev (fold (fun acc n -> if pred n then n :: acc else acc) [] node)

let size node = fold (fun acc _ -> acc + 1) 0 node

let count_elements node =
  fold (fun acc n -> if is_element n then acc + 1 else acc) 0 node

let rec depth node =
  match children node with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let string_value node =
  let buf = Buffer.create 64 in
  iter
    (fun n ->
      match n.desc with Text s -> Buffer.add_string buf s | Element _ -> ())
    node;
  Buffer.contents buf

let rec equal_structure a b =
  match (a.desc, b.desc) with
  | Text s, Text s' -> String.equal s s'
  | Element e, Element e' ->
    String.equal e.tag e'.tag
    && e.attrs = e'.attrs
    && List.length e.children = List.length e'.children
    && List.for_all2 equal_structure e.children e'.children
  | Text _, Element _ | Element _, Text _ -> false

let compare_doc_order a b = Int.compare a.id b.id

let sort_dedup nodes =
  let sorted = List.sort compare_doc_order nodes in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.id = b.id -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let with_attr node name value =
  match node.desc with
  | Text _ -> node
  | Element e ->
    let attrs =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        ((name, value) :: List.remove_assoc name e.attrs)
    in
    { node with desc = Element { e with attrs } }

let rec map_attrs f node =
  match node.desc with
  | Text _ -> node
  | Element e ->
    let attrs =
      List.sort (fun (a, _) (b, _) -> String.compare a b) (f node)
    in
    let children = List.map (map_attrs f) e.children in
    { node with desc = Element { e with attrs; children } }

let rec pp ppf node =
  let pp_items pp_item ppf items = List.iter (pp_item ppf) items in
  let pp_attr ppf (k, v) = Format.fprintf ppf " %s=%S" k v in
  match node.desc with
  | Text s -> Format.pp_print_string ppf s
  | Element e -> (
    match e.children with
    | [] -> Format.fprintf ppf "<%s%a/>" e.tag (pp_items pp_attr) e.attrs
    | cs ->
      Format.fprintf ppf "<%s%a>%a</%s>" e.tag (pp_items pp_attr) e.attrs
        (pp_items pp) cs e.tag)
