(** XML document trees.

    Nodes carry a unique integer identifier assigned in document
    (preorder) order, so comparing identifiers compares document order
    and node sets can be deduplicated cheaply.  Trees are immutable;
    they are built either through {!Builder}, the {!Parse} module, or
    {!of_spec} below.

    Following the paper (Section 2), a tree is either an element node
    with a tag and an ordered list of children, or a text node carrying
    PCDATA.  Elements additionally carry attributes: the paper's model
    is element-only, but its naive baseline (Section 6) stores an
    [@accessibility] attribute on every element, so the substrate
    supports them. *)

type t = private {
  id : int;  (** preorder position; unique within a document *)
  desc : desc;
}

and desc = private
  | Element of element
  | Text of string

and element = private {
  tag : string;
  attrs : (string * string) list;  (** sorted by attribute name *)
  children : t list;
}

(** Convenient construction language, independent of node identifiers:
    identifiers are assigned when a [spec] is frozen into a document
    with {!of_spec}. *)
type spec =
  | E of string * (string * string) list * spec list  (** element *)
  | T of string  (** text *)

val of_spec : spec -> t
(** [of_spec s] freezes [s] into a document whose root has id 0 and
    whose nodes are numbered in preorder. *)

val to_spec : t -> spec
(** Inverse of {!of_spec} (identifiers are dropped). *)

val elem : string -> ?attrs:(string * string) list -> spec list -> spec
(** [elem tag children] builds an element spec; attributes default to
    none and are sorted by name. *)

val text : string -> spec

val tag : t -> string option
(** Tag of an element node; [None] on text nodes. *)

val is_element : t -> bool
val is_text : t -> bool

val text_value : t -> string option
(** PCDATA of a text node; [None] on elements. *)

val children : t -> t list
(** Children of an element; [[]] on text nodes. *)

val element_children : t -> t list
(** Children that are elements. *)

val attr : t -> string -> string option
(** Attribute lookup on element nodes. *)

val string_value : t -> string
(** Concatenation of all PCDATA in the subtree, in document order. *)

val descendants_or_self : t -> t list
(** Subtree in document (preorder) order, including text nodes. *)

val size : t -> int
(** Number of nodes (elements and text) in the subtree. *)

val depth : t -> int
(** Height of the subtree: a leaf has depth 1. *)

val count_elements : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over the subtree. *)

val iter : (t -> unit) -> t -> unit

val find_all : (t -> bool) -> t -> t list
(** All subtree nodes satisfying the predicate, in document order. *)

val equal_structure : t -> t -> bool
(** Structural equality ignoring node identifiers. *)

val compare_doc_order : t -> t -> int
(** Compare by document order (only meaningful within one document). *)

val sort_dedup : t list -> t list
(** Sort a node list into document order and remove duplicates
    (identifier-based). *)

val with_attr : t -> string -> string -> t
(** [with_attr n k v] returns a copy of the whole node (same ids) with
    attribute [k]=[v] added to this element.  Used by the naive
    baseline's annotation pass; it rebuilds only the spine above
    nothing — the node itself — so the result shares children. *)

val map_attrs : (t -> (string * string) list) -> t -> t
(** [map_attrs f doc] rebuilds [doc], replacing each element's
    attribute list by [f node] (sorted by name).  Node identifiers are
    preserved.  Used to annotate documents with accessibility
    attributes. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: compact one-line XML. *)
