lib/xpath/ast.ml: Hashtbl List
