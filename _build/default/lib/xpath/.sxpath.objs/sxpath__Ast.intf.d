lib/xpath/ast.mli:
