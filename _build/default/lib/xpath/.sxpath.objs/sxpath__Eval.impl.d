lib/xpath/eval.ml: Array Ast Int List String Sxml
