lib/xpath/eval.mli: Ast Sxml
