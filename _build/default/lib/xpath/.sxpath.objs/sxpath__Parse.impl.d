lib/xpath/parse.ml: Ast Buffer Printf String
