lib/xpath/parse.mli: Ast
