lib/xpath/print.ml: Ast Format
