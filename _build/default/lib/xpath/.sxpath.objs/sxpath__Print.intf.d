lib/xpath/print.mli: Ast Format
