lib/xpath/simplify.ml: Ast List Stdlib
