lib/xpath/simplify.mli: Ast
