type path =
  | Empty
  | Eps
  | Label of string
  | Wildcard
  | Attribute of string
  | Slash of path * path
  | Dslash of path
  | Union of path * path
  | Qualify of path * qual

and qual =
  | True
  | False
  | Exists of path
  | Eq of path * value
  | And of qual * qual
  | Or of qual * qual
  | Not of qual

and value =
  | Const of string
  | Var of string

let equal_path (a : path) (b : path) = a = b
let equal_qual (a : qual) (b : qual) = a = b

let rec union_branches = function
  | Empty -> []
  | Union (a, b) -> union_branches a @ union_branches b
  | p -> [ p ]

let is_empty p = p = Empty

let slash a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, p | p, Eps -> p
  | a, b -> Slash (a, b)

let dslash p = match p with Empty -> Empty | p -> Dslash p

let union a b =
  match (a, b) with
  | Empty, p | p, Empty -> p
  | a, b ->
    let keep_new seen p = not (List.exists (equal_path p) seen) in
    let branches =
      List.fold_left
        (fun acc p -> if keep_new acc p then p :: acc else acc)
        [] (union_branches a @ union_branches b)
      |> List.rev
    in
    (match branches with
    | [] -> Empty
    | first :: rest -> List.fold_left (fun acc p -> Union (acc, p)) first rest)

let union_all ps = List.fold_left union Empty ps

let qualify p q =
  match (p, q) with
  | Empty, _ -> Empty
  | p, True -> p
  | _, False -> Empty
  | p, q -> Qualify (p, q)

let exists = function
  | Empty -> False
  | Eps -> True
  | p -> Exists p

let qand a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, q | q, True -> q
  | a, b -> if equal_qual a b then a else And (a, b)

let qor a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, q | q, False -> q
  | a, b -> if equal_qual a b then a else Or (a, b)

let qnot = function
  | True -> False
  | False -> True
  | Not q -> q
  | q -> Not q

let seq_of ps = List.fold_left slash Eps ps

let rec size = function
  | Empty | Eps | Label _ | Wildcard | Attribute _ -> 1
  | Slash (a, b) -> 1 + size a + size b
  | Dslash p -> 1 + size p
  | Union (a, b) -> 1 + size a + size b
  | Qualify (p, q) -> 1 + size p + qual_size q

and qual_size = function
  | True | False -> 1
  | Exists p -> 1 + size p
  | Eq (p, _) -> 1 + size p
  | And (a, b) | Or (a, b) -> 1 + qual_size a + qual_size b
  | Not q -> 1 + qual_size q

let subpaths p =
  (* Children-first postorder, structurally deduplicated: the ascending
     list Q of Fig. 6. *)
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      out := p :: !out
    end
  in
  let rec go_path p =
    (match p with
    | Empty | Eps | Label _ | Wildcard | Attribute _ -> ()
    | Slash (a, b) | Union (a, b) ->
      go_path a;
      go_path b
    | Dslash a -> go_path a
    | Qualify (a, q) ->
      go_path a;
      go_qual q);
    add p
  and go_qual = function
    | True | False -> ()
    | Exists p | Eq (p, _) -> go_path p
    | And (a, b) | Or (a, b) ->
      go_qual a;
      go_qual b
    | Not q -> go_qual q
  in
  go_path p;
  List.rev !out

let rec mem_attribute = function
  | Attribute _ -> true
  | Empty | Eps | Label _ | Wildcard -> false
  | Slash (a, b) | Union (a, b) -> mem_attribute a || mem_attribute b
  | Dslash p -> mem_attribute p
  | Qualify (p, q) -> mem_attribute p || qual_mem_attribute q

and qual_mem_attribute = function
  | True | False -> false
  | Exists p | Eq (p, _) -> mem_attribute p
  | And (a, b) | Or (a, b) -> qual_mem_attribute a || qual_mem_attribute b
  | Not q -> qual_mem_attribute q

let variables p =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  let rec go_path = function
    | Empty | Eps | Label _ | Wildcard | Attribute _ -> ()
    | Slash (a, b) | Union (a, b) ->
      go_path a;
      go_path b
    | Dslash p -> go_path p
    | Qualify (p, q) ->
      go_path p;
      go_qual q
  and go_qual = function
    | True | False -> ()
    | Exists p -> go_path p
    | Eq (p, v) -> (
      go_path p;
      match v with
      | Var name ->
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          out := name :: !out
        end
      | Const _ -> ())
    | And (a, b) | Or (a, b) ->
      go_qual a;
      go_qual b
    | Not q -> go_qual q
  in
  go_path p;
  List.rev !out

let rec substitute env = function
  | (Empty | Eps | Label _ | Wildcard | Attribute _) as p -> p
  | Slash (a, b) -> Slash (substitute env a, substitute env b)
  | Dslash p -> Dslash (substitute env p)
  | Union (a, b) -> Union (substitute env a, substitute env b)
  | Qualify (p, q) -> Qualify (substitute env p, substitute_qual env q)

and substitute_qual env = function
  | (True | False) as q -> q
  | Exists p -> Exists (substitute env p)
  | Eq (p, v) ->
    let v =
      match v with
      | Var name -> (
        match env name with Some c -> Const c | None -> Var name)
      | Const _ -> v
    in
    Eq (substitute env p, v)
  | And (a, b) -> And (substitute_qual env a, substitute_qual env b)
  | Or (a, b) -> Or (substitute_qual env a, substitute_qual env b)
  | Not q -> Not (substitute_qual env q)

let rec map_labels f = function
  | (Empty | Eps | Wildcard | Attribute _) as p -> p
  | Label l -> Label (f l)
  | Slash (a, b) -> Slash (map_labels f a, map_labels f b)
  | Dslash p -> Dslash (map_labels f p)
  | Union (a, b) -> Union (map_labels f a, map_labels f b)
  | Qualify (p, q) -> Qualify (map_labels f p, map_labels_qual f q)

and map_labels_qual f = function
  | (True | False) as q -> q
  | Exists p -> Exists (map_labels f p)
  | Eq (p, v) -> Eq (map_labels f p, v)
  | And (a, b) -> And (map_labels_qual f a, map_labels_qual f b)
  | Or (a, b) -> Or (map_labels_qual f a, map_labels_qual f b)
  | Not q -> Not (map_labels_qual f q)
