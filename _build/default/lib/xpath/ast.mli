(** The paper's XPath fragment [C] (Section 2):

    {v p ::= ε | l | * | p/p | //p | p ∪ p | p[q]
      q ::= p | p = c | q ∧ q | q ∨ q | ¬q v}

    plus the special query ∅ and, beyond the paper, attribute steps
    [@a] (used only by the naive baseline of Section 6) and the literal
    qualifiers [true]/[false] (used internally by the optimizer when a
    qualifier is decided by DTD constraints).  Constants in equality
    qualifiers may be [$variables], bound at evaluation time — the
    paper treats [$wardNo] as a constant parameter. *)

type path =
  | Empty  (** ∅: returns the empty set over every tree *)
  | Eps  (** ε: the context node *)
  | Label of string
  | Wildcard
  | Attribute of string  (** [@a]; meaningful only inside qualifiers *)
  | Slash of path * path  (** p1/p2 *)
  | Dslash of path  (** //p (descendant-or-self, then p) *)
  | Union of path * path
  | Qualify of path * qual  (** p[q] *)

and qual =
  | True
  | False
  | Exists of path  (** [p] *)
  | Eq of path * value  (** [p = c] *)
  | And of qual * qual
  | Or of qual * qual
  | Not of qual

and value =
  | Const of string
  | Var of string  (** [$name], resolved via an environment *)

val equal_path : path -> path -> bool
val equal_qual : qual -> qual -> bool

(** {2 Smart constructors}

    They apply the ∅ and ε laws from Section 2 ([∅ ∪ p ≡ p],
    [p/∅ ≡ ∅], [ε/p ≡ p], [p[true] ≡ p], [p[false] ≡ ∅], …) and keep
    unions duplicate-free, so queries assembled by the rewriting and
    optimization algorithms stay compact. *)

val slash : path -> path -> path
val dslash : path -> path
val union : path -> path -> path
val union_all : path list -> path
val qualify : path -> qual -> path
val exists : path -> qual
val qand : qual -> qual -> qual
val qor : qual -> qual -> qual
val qnot : qual -> qual

val seq_of : path list -> path
(** [seq_of [p1; …; pn]] is [p1/…/pn] (ε when empty). *)

val union_branches : path -> path list
(** Flatten top-level unions into a list (∅ ↦ []). *)

val is_empty : path -> bool
(** Syntactically ∅ (the smart constructors propagate ∅ upward, so
    this is how rewriting detects unsatisfiable queries). *)

val size : path -> int
(** Number of AST nodes, the |p| of the paper's complexity bounds. *)

val qual_size : qual -> int

val subpaths : path -> path list
(** All sub-queries (paths appearing in [p], including inside
    qualifiers), each once, children before parents — the "ascending
    list Q" of Algorithm rewrite (Fig. 6). *)

val mem_attribute : path -> bool
(** Does the path contain an attribute step anywhere? *)

val qual_mem_attribute : qual -> bool

val variables : path -> string list
(** All [$variables], each once. *)

val substitute : (string -> string option) -> path -> path
(** Replace [$variables] by constants where the environment binds
    them. *)

val map_labels : (string -> string) -> path -> path
(** Rename every label step (not attributes). *)
