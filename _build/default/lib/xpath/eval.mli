(** Set-at-a-time evaluation of the fragment over {!Sxml.Tree}
    documents.

    Following Section 2, [v⟦p⟧] is the set of nodes reachable from the
    context node [v] via [p]; a qualifier [\[p\]] holds at [v] iff
    [v⟦p⟧] is non-empty, and [\[p = c\]] holds iff [v⟦p⟧] contains a
    node whose string value is [c] (we use the standard XPath
    string-value, which subsumes the paper's text-node formulation for
    element results).

    Evaluation proceeds one query operator at a time over whole context
    sets with deduplication at every step, so it is polynomial in
    |query| × |document| like the evaluator of Gottlob et al. the paper
    builds on [15] — no exponential blow-up on nested [//].

    The descendant-or-self axis ranges over {e elements}: in the
    paper's model PCDATA is "str data" attached to an element, not an
    addressable node, and the DTD-level rewriting/optimization
    algorithms reason about element types only.  Text is observed
    through string values ([p = c] compares the string value of each
    node in [v⟦p⟧]).

    Two context conventions are offered:
    - {!eval} evaluates at an (element) context node — the convention
      of the rewriting algorithm, whose output is relative to the
      document root element;
    - {!eval_doc} evaluates at a virtual document node whose only child
      is the root element, matching how absolute queries like
      [/adex/head/…] are written. *)

exception Unbound_variable of string

(** All entry points take an optional {!Sxml.Index.t} built from the
    queried document: with it, [//l/rest]-shaped descendant steps are
    answered from the tag index by binary search over subtree extents
    instead of scanning the subtree (the "indexed" ablation of the
    benchmark harness).  Results are identical with and without. *)

val eval :
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** [eval p v]: nodes reachable from context node [v], in document
    order, duplicate-free.  @raise Unbound_variable if the query
    contains a [$var] the environment does not bind. *)

val eval_doc :
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** Same, with the context being the virtual document node above the
    given root element. *)

val eval_nodes :
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  Ast.path ->
  Sxml.Tree.t list ->
  Sxml.Tree.t list
(** Set-at-a-time entry point: evaluate at every context node and
    union the results. *)

val holds :
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  Ast.qual ->
  Sxml.Tree.t ->
  bool
(** Truth of a qualifier at a context node. *)

val visited : int ref
(** Instrumentation counter bumped once per context-node × step
    combination the evaluator touches; the benchmark harness reads it
    as a machine-independent work measure alongside wall-clock time.
    Reset it yourself between measurements. *)
