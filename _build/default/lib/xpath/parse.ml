type error = { position : int; message : string }

exception Error of error

let error_to_string { position; message } =
  Printf.sprintf "XPath parse error at offset %d: %s" position message

type state = { input : string; mutable pos : int }

let fail st message = raise (Error { position = st.pos; message })

let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.input then '\000'
  else st.input.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let skip_space st =
  while
    (not (eof st))
    && match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = ':'

let is_name_start c = is_name_char c && c <> '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let looking_at_word st word =
  let n = String.length word in
  st.pos + n <= String.length st.input
  && String.sub st.input st.pos n = word
  && (st.pos + n >= String.length st.input
     || not (is_name_char st.input.[st.pos + n]))

let eat_word st word =
  if looking_at_word st word then begin
    st.pos <- st.pos + String.length word;
    true
  end
  else false

let parse_string_literal st =
  let quote = peek st in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated string literal"
    else if peek st = quote then advance st
    else if peek st = '\\' && peek2 st = quote then begin
      advance st;
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let rec parse_path st =
  let first = parse_seq st in
  let rec loop acc =
    skip_space st;
    if peek st = '|' then begin
      advance st;
      skip_space st;
      loop (Ast.Union (acc, parse_seq st))
    end
    else acc
  in
  loop first

and parse_seq st =
  skip_space st;
  let first =
    if peek st = '/' && peek2 st = '/' then begin
      advance st;
      advance st;
      Ast.Dslash (parse_step st)
    end
    else begin
      (* A single leading '/' is cosmetic (see the interface). *)
      if peek st = '/' then advance st;
      parse_step st
    end
  in
  let rec loop acc =
    skip_space st;
    if peek st = '/' && peek2 st = '/' then begin
      advance st;
      advance st;
      loop (Ast.Slash (acc, Ast.Dslash (parse_step st)))
    end
    else if peek st = '/' then begin
      advance st;
      loop (Ast.Slash (acc, parse_step st))
    end
    else acc
  in
  loop first

and parse_step st =
  let base = parse_primary st in
  let rec quals acc =
    skip_space st;
    if peek st = '[' then begin
      advance st;
      let q = parse_qual st in
      skip_space st;
      if peek st <> ']' then fail st "expected ']'";
      advance st;
      quals (Ast.Qualify (acc, q))
    end
    else acc
  in
  quals base

and parse_primary st =
  skip_space st;
  match peek st with
  | '*' ->
    advance st;
    Ast.Wildcard
  | '.' ->
    advance st;
    Ast.Eps
  | '@' ->
    advance st;
    Ast.Attribute (parse_name st)
  | '#' ->
    advance st;
    if eat_word st "empty" then Ast.Empty
    else fail st "expected #empty"
  | '(' ->
    advance st;
    let p = parse_path st in
    skip_space st;
    if peek st <> ')' then fail st "expected ')'";
    advance st;
    p
  | c when is_name_start c -> Ast.Label (parse_name st)
  | c -> fail st (Printf.sprintf "unexpected character %C in path" c)

and parse_qual st =
  let first = parse_conj st in
  let rec loop acc =
    skip_space st;
    if eat_word st "or" then loop (Ast.Or (acc, parse_conj st)) else acc
  in
  loop first

and parse_conj st =
  let first = parse_qual_atom st in
  let rec loop acc =
    skip_space st;
    if eat_word st "and" then loop (Ast.And (acc, parse_qual_atom st))
    else acc
  in
  loop first

and parse_qual_atom st =
  skip_space st;
  if eat_word st "not" then begin
    skip_space st;
    if peek st <> '(' then fail st "expected '(' after not";
    advance st;
    let q = parse_qual st in
    skip_space st;
    if peek st <> ')' then fail st "expected ')'";
    advance st;
    Ast.Not q
  end
  else if eat_word st "true" then begin
    parse_unit_args st;
    Ast.True
  end
  else if eat_word st "false" then begin
    parse_unit_args st;
    Ast.False
  end
  else if peek st = '(' then begin
    (* Could be a parenthesized qualifier or a parenthesized path used
       as an existence test; try the qualifier reading first and fall
       back to a path atom (e.g. "(b | c)" or "(b | c)/d = 1"). *)
    let saved = st.pos in
    let attempt () =
      advance st;
      let q = parse_qual st in
      skip_space st;
      if peek st <> ')' then fail st "expected ')'";
      advance st;
      q
    in
    match attempt () with
    | q -> parse_qual_suffix st saved q
    | exception Error _ ->
      st.pos <- saved;
      parse_path_atom st
  end
  else parse_path_atom st

and parse_qual_suffix st saved q =
  (* A parenthesized path may continue: "(a | b)/c = 1".  If what
     follows extends a path, re-parse the whole atom as a path. *)
  skip_space st;
  match peek st with
  | '/' | '[' | '=' ->
    st.pos <- saved;
    parse_path_atom st
  | _ -> q

and parse_path_atom st =
  let p = parse_seq_or_union_atom st in
  skip_space st;
  if peek st = '=' then begin
    advance st;
    skip_space st;
    let v = parse_value st in
    Ast.Eq (p, v)
  end
  else Ast.Exists p

and parse_seq_or_union_atom st =
  (* Inside a qualifier, a path atom may itself be a union only when
     parenthesized; bare unions would be ambiguous with ']'. *)
  parse_seq st

and parse_value st =
  match peek st with
  | '"' | '\'' -> Ast.Const (parse_string_literal st)
  | '$' ->
    advance st;
    Ast.Var (parse_name st)
  | c when (c >= '0' && c <= '9') || c = '-' ->
    let start = st.pos in
    if peek st = '-' then advance st;
    while
      (not (eof st))
      && ((peek st >= '0' && peek st <= '9') || peek st = '.')
    do
      advance st
    done;
    Ast.Const (String.sub st.input start (st.pos - start))
  | _ -> fail st "expected a constant or $variable"

and parse_unit_args st =
  skip_space st;
  if peek st = '(' then begin
    advance st;
    skip_space st;
    if peek st <> ')' then fail st "expected ')'";
    advance st
  end

let of_string input =
  let st = { input; pos = 0 } in
  let p = parse_path st in
  skip_space st;
  if not (eof st) then fail st "trailing input after query";
  p

let of_string_result input =
  match of_string input with
  | p -> Ok p
  | exception Error e -> Error e

let qual_of_string input =
  let st = { input; pos = 0 } in
  let q = parse_qual st in
  skip_space st;
  if not (eof st) then fail st "trailing input after qualifier";
  q
