(** Parser for the fragment's concrete syntax (see {!Print}).

    Grammar (union binds loosest, then slashes, then qualifiers):

    {v
    path   := seq ('|' seq)*
    seq    := '/'? step (('/' | '//') step)*  |  '//' step (…)*
    step   := primary '[' qual ']'*
    primary:= name | '*' | '.' | '@' name | '#empty' | '(' path ')'
    qual   := conj ('or' conj)*
    conj   := atom ('and' atom)*
    atom   := 'not' '(' qual ')' | 'true' '(' ')' | 'false' '(' ')'
            | '(' qual ')' | path ('=' value)?
    value  := '"'…'"' | '\''…'\'' | '$' name | number
    v}

    A single leading ['/'] is cosmetic: queries are relative to
    whatever context node they are evaluated at (see {!Eval}).
    Within qualifiers, [and], [or], [not], [true] and [false] are
    reserved words. *)

type error = { position : int; message : string }

exception Error of error

val error_to_string : error -> string

val of_string : string -> Ast.path
(** @raise Error on malformed input. *)

val of_string_result : string -> (Ast.path, error) result

val qual_of_string : string -> Ast.qual
