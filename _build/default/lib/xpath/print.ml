open Ast

(* Does the printed form of this path begin with a descendant axis? *)
let rec starts_with_dslash = function
  | Dslash _ -> true
  | Slash (a, _) -> starts_with_dslash a
  | Qualify (a, _) -> starts_with_dslash a
  | Empty | Eps | Label _ | Wildcard | Attribute _ | Union _ -> false

(* Precedence levels: 0 = union context (no parens needed at top),
   1 = slash operand, 2 = qualified-step base. *)

let rec pp_prec prec ppf p =
  match p with
  | Empty -> Format.pp_print_string ppf "#empty"
  | Eps -> Format.pp_print_string ppf "."
  | Label l -> Format.pp_print_string ppf l
  | Wildcard -> Format.pp_print_string ppf "*"
  | Attribute a -> Format.fprintf ppf "@%s" a
  (* After '//' the grammar expects a single step, so the operand of a
     descendant axis prints at step precedence (level 2). *)
  | Slash (a, Dslash b) -> wrap prec 1 ppf (fun ppf ->
      Format.fprintf ppf "%a//%a" (pp_prec 1) a (pp_prec 2) b)
  | Slash (a, b) -> wrap prec 1 ppf (fun ppf ->
      (* a following component whose output would begin with '//'
         (a leading descendant axis buried in a left-nested chain)
         must be parenthesized, or 'a/' + '//b' reads as 'a///b' *)
      let rprec = if starts_with_dslash b then 2 else 1 in
      Format.fprintf ppf "%a/%a" (pp_prec 1) a (pp_prec rprec) b)
  | Dslash p -> wrap prec 1 ppf (fun ppf ->
      Format.fprintf ppf "//%a" (pp_prec 2) p)
  | Union (a, b) -> wrap prec 0 ppf (fun ppf ->
      Format.fprintf ppf "%a | %a" (pp_prec 0) a (pp_prec 0) b)
  | Qualify (p, q) -> wrap prec 2 ppf (fun ppf ->
      Format.fprintf ppf "%a[%a]" (pp_prec 2) p pp_qual q)

and wrap prec level ppf body =
  (* Parenthesize when the construct binds looser than the context
     requires. *)
  if level < prec then begin
    Format.pp_print_char ppf '(';
    body ppf;
    Format.pp_print_char ppf ')'
  end
  else body ppf

(* Qualifier precedence: 0 = or, 1 = and, 2 = atom. *)
and pp_qual ppf q = pp_qual_prec 0 ppf q

and pp_qual_prec prec ppf q =
  match q with
  | True -> Format.pp_print_string ppf "true()"
  | False -> Format.pp_print_string ppf "false()"
  (* Inside a qualifier, a bare path atom cannot be a top-level union
     ('|' would end the atom), so unions print parenthesized. *)
  | Exists p -> pp_prec 1 ppf p
  | Eq (p, v) -> Format.fprintf ppf "%a = %a" (pp_prec 1) p pp_value v
  | And (a, b) ->
    wrap_qual prec 1 ppf (fun ppf ->
        Format.fprintf ppf "%a and %a" (pp_qual_prec 1) a (pp_qual_prec 1) b)
  | Or (a, b) ->
    wrap_qual prec 0 ppf (fun ppf ->
        Format.fprintf ppf "%a or %a" (pp_qual_prec 0) a (pp_qual_prec 0) b)
  | Not q -> Format.fprintf ppf "not(%a)" (pp_qual_prec 0) q

and wrap_qual prec level ppf body =
  if level < prec then begin
    Format.pp_print_char ppf '(';
    body ppf;
    Format.pp_print_char ppf ')'
  end
  else body ppf

and pp_value ppf = function
  | Const c -> Format.fprintf ppf "%S" c
  | Var v -> Format.fprintf ppf "$%s" v

let pp ppf p = pp_prec 0 ppf p
let to_string p = Format.asprintf "%a" pp p
let qual_to_string q = Format.asprintf "%a" pp_qual q
