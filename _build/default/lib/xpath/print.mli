(** Concrete syntax for the fragment, readable back by {!Parse}.

    ∅ prints as [#empty], ε as [.], union as [|], qualifiers with
    [and]/[or]/[not(...)], and constants double-quoted.  [p1/(//p2)]
    prints in the usual contracted form [p1//p2]. *)

val pp : Format.formatter -> Ast.path -> unit
val pp_qual : Format.formatter -> Ast.qual -> unit
val to_string : Ast.path -> string
val qual_to_string : Ast.qual -> string
