let rec path (p : Ast.path) : Ast.path =
  match p with
  | Ast.Empty | Ast.Eps | Ast.Label _ | Ast.Wildcard | Ast.Attribute _ -> p
  | Ast.Slash (a, b) -> Ast.slash (path a) (path b)
  | Ast.Dslash a -> Ast.dslash (path a)
  | Ast.Union (a, b) -> Ast.union (path a) (path b)
  | Ast.Qualify (a, q) -> Ast.qualify (path a) (qual q)

and qual (q : Ast.qual) : Ast.qual =
  match q with
  | Ast.True | Ast.False -> q
  | Ast.Exists p -> Ast.exists (path p)
  | Ast.Eq (p, v) -> (
    match path p with Ast.Empty -> Ast.False | p' -> Ast.Eq (p', v))
  | Ast.And (a, b) -> Ast.qand (qual a) (qual b)
  | Ast.Or (a, b) -> Ast.qor (qual a) (qual b)
  | Ast.Not a -> Ast.qnot (qual a)

let rec factor_rec (p : Ast.path) : Ast.path =
  match p with
  | Ast.Empty | Ast.Eps | Ast.Label _ | Ast.Wildcard | Ast.Attribute _ -> p
  | Ast.Slash (a, b) -> Ast.slash (factor_rec a) (factor_rec b)
  | Ast.Dslash a -> Ast.dslash (factor_rec a)
  | Ast.Qualify (a, q) -> Ast.qualify (factor_rec a) (factor_qual q)
  | Ast.Union _ ->
    factor_branches (List.map factor_rec (Ast.union_branches p))

and factor_qual = function
  | (Ast.True | Ast.False) as q -> q
  | Ast.Exists p -> Ast.exists (factor_rec p)
  | Ast.Eq (p, v) -> Ast.Eq (factor_rec p, v)
  | Ast.And (a, b) -> Ast.qand (factor_qual a) (factor_qual b)
  | Ast.Or (a, b) -> Ast.qor (factor_qual a) (factor_qual b)
  | Ast.Not q -> Ast.qnot (factor_qual q)

(* Merge union branches sharing their leading step; recurse on the
   grouped tails.  Decomposition re-associates slash chains to the
   left, so structural deduplication catches branches that differ only
   in associativity — without it, two spellings of the same branch
   would regenerate each other's ε-tails forever. *)
and factor_branches branches =
  let branches =
    List.fold_left
      (fun acc b -> if List.exists (Ast.equal_path b) acc then acc else b :: acc)
      [] branches
    |> List.rev
  in
  let decompose p =
    let rec steps = function
      | Ast.Slash (a, b) -> steps a @ steps b
      | q -> [ q ]
    in
    match steps p with
    | [] -> (Ast.Eps, None)
    | [ single ] -> (single, None)
    | head :: tail -> (head, Some (Ast.seq_of tail))
  in
  let groups =
    List.fold_left
      (fun groups branch ->
        let head, tail = decompose branch in
        let rec insert = function
          | [] -> [ (head, [ tail ]) ]
          | (h, tails) :: rest when Ast.equal_path h head ->
            (h, tail :: tails) :: rest
          | g :: rest -> g :: insert rest
        in
        insert groups)
      [] branches
  in
  Ast.union_all
    (List.map
       (fun (head, tails) ->
         match List.rev tails with
         | [ None ] -> head
         | [ Some tail ] -> Ast.slash head tail
         | tails ->
           let tail_paths =
             List.map (function None -> Ast.Eps | Some t -> t) tails
           in
           Ast.slash head (factor_branches tail_paths))
       groups)

let factor p = factor_rec (path p)

let rec reassoc (p : Ast.path) : Ast.path =
  let rec slashes = function
    | Ast.Slash (a, b) -> slashes a @ slashes b
    | p -> [ reassoc p ]
  in
  match p with
  | Ast.Empty | Ast.Eps | Ast.Label _ | Ast.Wildcard | Ast.Attribute _ -> p
  | Ast.Slash _ -> (
    match slashes p with
    | [] -> Ast.Eps
    | first :: rest ->
      List.fold_left (fun acc q -> Ast.Slash (acc, q)) first rest)
  | Ast.Dslash a -> Ast.Dslash (reassoc a)
  | Ast.Union _ -> (
    (* sort branches: union is commutative, so canonical forms order
       them deterministically *)
    match
      List.sort Stdlib.compare (List.map reassoc (Ast.union_branches p))
    with
    | [] -> Ast.Empty
    | first :: rest ->
      List.fold_left (fun acc q -> Ast.Union (acc, q)) first rest)
  | Ast.Qualify (a, q) -> Ast.Qualify (reassoc a, reassoc_qual q)

and reassoc_qual = function
  | (Ast.True | Ast.False) as q -> q
  | Ast.Exists p -> Ast.Exists (reassoc p)
  | Ast.Eq (p, v) -> Ast.Eq (reassoc p, v)
  | Ast.And (a, b) -> Ast.And (reassoc_qual a, reassoc_qual b)
  | Ast.Or (a, b) -> Ast.Or (reassoc_qual a, reassoc_qual b)
  | Ast.Not q -> Ast.Not (reassoc_qual q)

let canonical p = reassoc (factor p)

let equivalent_syntax p1 p2 = Ast.equal_path (canonical p1) (canonical p2)
