(** Bottom-up algebraic normalization: rebuilds a query through the
    smart constructors of {!Ast}, so every ∅/ε/true/false law and
    union-deduplication is applied at every depth.  This is the
    DTD-independent part of the paper's optimization story; it keeps
    the output of the rewriting algorithm compact before the DTD-aware
    optimizer runs.

    Normalization preserves semantics exactly: it only uses the
    equivalences listed in Section 2 plus boolean laws. *)

val path : Ast.path -> Ast.path
val qual : Ast.qual -> Ast.qual

val factor : Ast.path -> Ast.path
(** {!path} followed by left-factoring of unions: branches sharing a
    leading step are merged ([P/a ∪ P/b ↦ P/(a ∪ b)], recursively), so
    shared prefixes are evaluated once.  This recovers the factored
    query forms the paper prints (e.g. [treatment/(trial ∪ regular)])
    from the per-target unions the rewriting table produces. *)

val canonical : Ast.path -> Ast.path
(** {!factor} followed by left re-association of [/] and [∪] chains
    and a deterministic ordering of union branches, so that
    structurally different spellings of the same composition compare
    equal — the parser and the rewriting algorithm associate
    differently. *)

val equivalent_syntax : Ast.path -> Ast.path -> bool
(** [canonical p1 = canonical p2]. *)
