  $ secview derive --dtd hospital.dtd --spec nurse.spec
  $ secview validate --dtd hospital.dtd --doc ward.xml
  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//patient//bill"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//patient/name"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=7 "//patient/name"
  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//clinicalTrial"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//test"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//treatment/dummy2/medication"
  $ secview derive --dtd hospital.dtd --spec nurse.spec --save nurse.view > /dev/null
  $ secview rewrite --dtd hospital.dtd --view nurse.view "//patient//bill"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --approach naive "//patient/name"
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --index "//patient/name"
  $ secview audit --dtd hospital.dtd --spec nurse.spec | head -5
  $ secview materialize --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 | grep -c clinicalTrial
  $ secview graph --dtd hospital.dtd | head -3
