test/test_access.ml: Alcotest List Sdtd Secview Sxml Sxpath
