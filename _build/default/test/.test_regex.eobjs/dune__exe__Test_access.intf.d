test/test_access.mli:
