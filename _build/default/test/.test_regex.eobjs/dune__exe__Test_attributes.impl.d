test/test_attributes.ml: Alcotest List Option Sdtd Secview String Sxml Sxpath
