test/test_attributes.mli:
