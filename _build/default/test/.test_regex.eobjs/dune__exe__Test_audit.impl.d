test/test_audit.ml: Alcotest Format List Sdtd Secview String Sxpath Workload
