test/test_audit.mli:
