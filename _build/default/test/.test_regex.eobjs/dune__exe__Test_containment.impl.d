test/test_containment.ml: Alcotest List Sdtd Secview Sxpath Workload
