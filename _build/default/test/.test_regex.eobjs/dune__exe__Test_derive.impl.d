test/test_derive.ml: Alcotest List Sdtd Secview String Sxpath Workload
