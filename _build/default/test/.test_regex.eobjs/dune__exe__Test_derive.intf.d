test/test_derive.mli:
