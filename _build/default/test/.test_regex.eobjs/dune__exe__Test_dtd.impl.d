test/test_dtd.ml: Alcotest Dtd Gen List Parse Printf Regex Sdtd String Sxml Unfold Validate Workload
