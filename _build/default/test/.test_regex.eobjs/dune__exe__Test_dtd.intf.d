test/test_dtd.mli:
