test/test_graph.ml: Alcotest List Sdtd Secview String Workload
