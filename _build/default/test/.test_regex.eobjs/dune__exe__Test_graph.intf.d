test/test_graph.mli:
