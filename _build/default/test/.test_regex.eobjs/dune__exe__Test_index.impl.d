test/test_index.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Sdtd Secview Sxml Sxpath Workload
