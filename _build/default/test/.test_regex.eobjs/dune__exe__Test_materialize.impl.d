test/test_materialize.ml: Alcotest List Printf Sdtd Secview Sxml Sxpath Workload
