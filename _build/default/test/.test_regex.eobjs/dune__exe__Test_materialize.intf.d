test/test_materialize.mli:
