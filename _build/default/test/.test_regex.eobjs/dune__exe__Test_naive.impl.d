test/test_naive.ml: Alcotest List Printf Secview String Sxml Sxpath Workload
