test/test_naive.mli:
