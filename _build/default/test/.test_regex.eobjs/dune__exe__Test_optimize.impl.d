test/test_optimize.ml: Alcotest Format Hashtbl List Printf Sdtd Secview String Sxml Sxpath Workload
