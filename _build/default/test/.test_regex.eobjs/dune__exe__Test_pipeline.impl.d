test/test_pipeline.ml: Alcotest List Sdtd Secview Sxml Sxpath Workload
