test/test_props.ml: Alcotest Format Fun List Printf QCheck2 QCheck_alcotest Sdtd Secview Sxml Sxpath
