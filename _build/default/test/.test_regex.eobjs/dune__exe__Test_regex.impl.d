test/test_regex.ml: Alcotest Format List Parse QCheck2 QCheck_alcotest Regex Sdtd String
