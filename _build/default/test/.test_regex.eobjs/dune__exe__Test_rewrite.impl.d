test/test_rewrite.ml: Alcotest List Printf Sdtd Secview String Sxml Sxpath Workload
