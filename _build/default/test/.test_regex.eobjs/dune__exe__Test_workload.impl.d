test/test_workload.ml: Alcotest List Printf Sdtd Secview String Sxml Sxpath Workload
