test/test_xmark.ml: Alcotest List Printf Sdtd Secview Sxml Sxpath Workload
