test/test_xmark.mli:
