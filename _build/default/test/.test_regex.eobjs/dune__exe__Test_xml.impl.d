test/test_xml.ml: Alcotest Fun List Parse Print QCheck2 QCheck_alcotest String Sxml Tree
