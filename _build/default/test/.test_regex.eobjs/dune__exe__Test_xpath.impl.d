test/test_xpath.ml: Alcotest List Printf QCheck2 QCheck_alcotest Sxml Sxpath
