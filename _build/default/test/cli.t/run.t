The secview command line, end to end over the paper's running example.

Derive the nurse view: hidden types are gone, dummies appear:

  $ secview derive --dtd hospital.dtd --spec nurse.spec
  <!ELEMENT hospital (dept*)>
  <!ELEMENT bill (#PCDATA)>
  <!ELEMENT dept (patientInfo*, staffInfo)>
  <!ELEMENT doctor (name, specialty)>
  <!ELEMENT dummy1 (bill)>
  <!ELEMENT dummy2 (bill, medication)>
  <!ELEMENT medication (#PCDATA)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT nurse (name, wardNo)>
  <!ELEMENT patient (name, wardNo, treatment)>
  <!ELEMENT patientInfo (patient*)>
  <!ELEMENT specialty (#PCDATA)>
  <!ELEMENT staff (doctor | nurse)>
  <!ELEMENT staffInfo (staff*)>
  <!ELEMENT treatment (dummy1 | dummy2)>
  <!ELEMENT wardNo (#PCDATA)>

The document validates against the document DTD:

  $ secview validate --dtd hospital.dtd --doc ward.xml
  valid

Rewriting Example 4.1's query:

  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//patient//bill"
  dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/treatment/(regular/bill | trial/bill)

Queries through the view return only authorized data; the ward binding
selects the department:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//patient/name"
  <name>Alice</name>
  <name>Bob</name>

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=7 "//patient/name"

Hidden element types rewrite to the empty query:

  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//clinicalTrial"
  #empty

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//test"

Dummy labels are queryable (their hidden sources are not revealed):

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//treatment/dummy2/medication"
  <medication>abc</medication>

A stored view definition replays without the specification:

  $ secview derive --dtd hospital.dtd --spec nurse.spec --save nurse.view > /dev/null
  view definition written to nurse.view
  $ secview rewrite --dtd hospital.dtd --view nurse.view "//patient//bill"
  dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/treatment/(regular/bill | trial/bill)

The naive baseline agrees on answers (modulo strategy):

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --approach naive "//patient/name"
  <name accessibility="1">Alice</name>
  <name accessibility="1">Bob</name>

The tag-index fast path returns the same answers:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --index "//patient/name"
  <name>Alice</name>
  <name>Bob</name>

Policy audit over the specification:

  $ secview audit --dtd hospital.dtd --spec nurse.spec | head -5
  exposure (per element type, across root-paths):
    hospital             accessible
    dept                 conditional
    clinicalTrial        hidden
    patientInfo          conditional

The materialized view (inspection only) hides trial membership:

  $ secview materialize --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 | grep -c clinicalTrial
  0
  [1]

Graphviz rendering of the DTD graph:

  $ secview graph --dtd hospital.dtd | head -3
  digraph dtd {
    rankdir=TB;
    node [shape=box, fontsize=10];
