(* Access specifications and node accessibility: inheritance,
   overriding, conditional annotations, ancestor-qualifier blocking,
   and the naive baseline's annotation pass. *)

module R = Sdtd.Regex
module Spec = Secview.Spec
module Access = Secview.Access

let e l = R.Elt l

let dtd =
  Sdtd.Dtd.create ~root:"r"
    [
      ("r", R.Seq [ e "a"; e "b" ]);
      ("a", R.Seq [ e "x"; e "y" ]);
      ("b", R.Seq [ e "x"; e "y" ]);
      ("x", R.Str);
      ("y", R.Str);
    ]

let doc () =
  Sxml.Tree.(
    of_spec
      (elem "r"
         [
           elem "a" [ elem "x" [ text "ax" ]; elem "y" [ text "ay" ] ];
           elem "b" [ elem "x" [ text "bx" ]; elem "y" [ text "by" ] ];
         ]))

let tags_of_accessible spec doc =
  let set = Access.accessible_set spec doc in
  List.filter_map
    (fun n ->
      if Access.IntSet.mem n.Sxml.Tree.id set then Sxml.Tree.tag n else None)
    (Sxml.Tree.descendants_or_self doc)

let test_all_inherit_root_yes () =
  let spec = Spec.make dtd [] in
  Alcotest.(check int)
    "everything accessible" (Sxml.Tree.size (doc ()))
    (Access.IntSet.cardinal (Access.accessible_set spec (doc ())))

let test_no_blocks_subtree_by_inheritance () =
  let spec = Spec.make dtd [ (("r", "b"), Spec.No) ] in
  Alcotest.(check (list string)) "b subtree gone"
    [ "r"; "a"; "x"; "y" ]
    (tags_of_accessible spec (doc ()))

let test_yes_overrides_inaccessible_parent () =
  let spec =
    Spec.make dtd [ (("r", "b"), Spec.No); (("b", "y"), Spec.Yes) ]
  in
  Alcotest.(check (list string)) "y under b re-exposed"
    [ "r"; "a"; "x"; "y"; "y" ]
    (tags_of_accessible spec (doc ()))

let test_conditional_annotation () =
  let q = Sxpath.Parse.qual_of_string "x = \"ax\"" in
  let spec =
    Spec.make dtd [ (("r", "a"), Spec.Cond q); (("r", "b"), Spec.Cond q) ]
  in
  (* a satisfies [x = "ax"], b does not. *)
  Alcotest.(check (list string)) "only a kept"
    [ "r"; "a"; "x"; "y" ]
    (tags_of_accessible spec (doc ()))

let test_false_ancestor_qualifier_blocks_explicit_yes () =
  let q = Sxpath.Parse.qual_of_string "x = \"nope\"" in
  let spec =
    Spec.make dtd [ (("r", "b"), Spec.Cond q); (("b", "y"), Spec.Yes) ]
  in
  (* y under b is explicitly Y, but the ancestor qualifier on b is
     false, which blocks the whole subtree (Section 3.2). *)
  Alcotest.(check (list string)) "b and its explicit-Y child blocked"
    [ "r"; "a"; "x"; "y" ]
    (tags_of_accessible spec (doc ()))

let test_pcdata_annotation () =
  let spec = Spec.make dtd [ (("x", R.pcdata), Spec.No) ] in
  let set = Access.accessible_set spec (doc ()) in
  let accessible_texts =
    List.filter
      (fun n -> Sxml.Tree.is_text n && Access.IntSet.mem n.Sxml.Tree.id set)
      (Sxml.Tree.descendants_or_self (doc ()))
  in
  Alcotest.(check int) "only y texts remain" 2 (List.length accessible_texts)

let test_env_variable_condition () =
  let q = Sxpath.Parse.qual_of_string "x = $which" in
  let spec = Spec.make dtd [ (("r", "a"), Spec.Cond q) ] in
  let env v = if v = "which" then Some "ax" else None in
  let set = Access.accessible_set ~env spec (doc ()) in
  Alcotest.(check bool) "a accessible under binding" true
    (List.exists
       (fun n ->
         Sxml.Tree.tag n = Some "a" && Access.IntSet.mem n.Sxml.Tree.id set)
       (Sxml.Tree.descendants_or_self (doc ())))

let test_make_rejects_non_edges () =
  Alcotest.(check bool) "not an edge" true
    (match Spec.make dtd [ (("r", "x"), Spec.No) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown type" true
    (match Spec.make dtd [ (("zz", "x"), Spec.No) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "duplicate annotation" true
    (match Spec.make dtd [ (("r", "a"), Spec.No); (("r", "a"), Spec.Yes) ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "conditional PCDATA rejected" true
    (match
       Spec.make dtd
         [ (("x", R.pcdata), Spec.Cond (Sxpath.Parse.qual_of_string "y")) ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_spec_variables () =
  let q = Sxpath.Parse.qual_of_string "x = $w and y = $v" in
  let spec = Spec.make dtd [ (("r", "a"), Spec.Cond q) ] in
  Alcotest.(check (list string)) "variables collected" [ "w"; "v" ]
    (Spec.variables spec)

let test_annotate () =
  let spec = Spec.make dtd [ (("r", "b"), Spec.No) ] in
  let annotated = Access.annotate spec (doc ()) in
  let flag tag =
    let n =
      List.hd
        (Sxml.Tree.find_all (fun n -> Sxml.Tree.tag n = Some tag) annotated)
    in
    Sxml.Tree.attr n "accessibility"
  in
  Alcotest.(check (option string)) "a flagged 1" (Some "1") (flag "a");
  Alcotest.(check (option string)) "b flagged 0" (Some "0") (flag "b");
  Alcotest.(check int) "ids preserved"
    (Sxml.Tree.size (doc ()))
    (Sxml.Tree.size annotated)

let test_accessible_elements_ordered () =
  let spec = Spec.make dtd [ (("r", "a"), Spec.No) ] in
  let elems = Access.accessible_elements spec (doc ()) in
  let ids = List.map (fun n -> n.Sxml.Tree.id) elems in
  Alcotest.(check (list int)) "document order" (List.sort compare ids) ids

let () =
  Alcotest.run "access"
    [
      ( "semantics",
        [
          Alcotest.test_case "root-yes inheritance" `Quick
            test_all_inherit_root_yes;
          Alcotest.test_case "N blocks by inheritance" `Quick
            test_no_blocks_subtree_by_inheritance;
          Alcotest.test_case "Y overrides inaccessible parent" `Quick
            test_yes_overrides_inaccessible_parent;
          Alcotest.test_case "conditional annotations" `Quick
            test_conditional_annotation;
          Alcotest.test_case "false ancestor qualifier blocks" `Quick
            test_false_ancestor_qualifier_blocks_explicit_yes;
          Alcotest.test_case "PCDATA annotations" `Quick test_pcdata_annotation;
          Alcotest.test_case "environment variables" `Quick
            test_env_variable_condition;
          Alcotest.test_case "ordered output" `Quick
            test_accessible_elements_ordered;
        ] );
      ( "specification",
        [
          Alcotest.test_case "validation" `Quick test_make_rejects_non_edges;
          Alcotest.test_case "variables" `Quick test_spec_variables;
        ] );
      ( "naive-annotation",
        [ Alcotest.test_case "annotate" `Quick test_annotate ] );
    ]
