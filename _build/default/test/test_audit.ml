(* Policy auditing and stored view definitions. *)

module Audit = Secview.Audit
module Spec = Secview.Spec
module View = Secview.View
module R = Sdtd.Regex

let e l = R.Elt l

let statuses spec element =
  let exp =
    List.find (fun x -> x.Audit.element = element) (Audit.exposures spec)
  in
  exp.Audit.statuses

let test_hospital_exposures () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  Alcotest.(check bool) "root accessible" true
    (statuses spec "hospital" = [ Audit.Accessible ]);
  Alcotest.(check bool) "dept conditional" true
    (statuses spec "dept" = [ Audit.Conditional ]);
  Alcotest.(check bool) "clinicalTrial hidden" true
    (statuses spec "clinicalTrial" = [ Audit.Hidden ]);
  (* patientInfo is conditionally exposed (under dept, and re-exposed
     under the hidden clinicalTrial) — never hidden *)
  Alcotest.(check bool) "patientInfo conditional" true
    (statuses spec "patientInfo" = [ Audit.Conditional ])

let test_context_sensitive_exposure () =
  (* c is accessible under a, hidden under b: both statuses appear. *)
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", R.Seq [ e "a"; e "b" ]); ("a", e "c"); ("b", e "c");
        ("c", R.Str) ]
  in
  let spec = Spec.make dtd [ (("b", "c"), Spec.No) ] in
  Alcotest.(check bool) "c is both accessible and hidden" true
    (statuses spec "c" = [ Audit.Accessible; Audit.Hidden ])

let test_hidden_types_match_derive () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  let hidden = Audit.hidden_types spec in
  Alcotest.(check (list string)) "the four hidden types"
    [ "clinicalTrial"; "regular"; "test"; "trial" ]
    (List.sort compare hidden);
  (* audit-hidden types never appear in the derived view DTD *)
  let view_dtd = View.dtd (Secview.Derive.derive spec) in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " not in view") false (Sdtd.Dtd.mem view_dtd t))
    hidden

let test_dead_annotations () =
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", R.Seq [ e "a"; e "b" ]); ("a", e "c"); ("b", R.Str);
        ("c", R.Str) ]
  in
  (* Y on (a, c): a is only ever accessible -> dead.
     N on (r, b): genuinely hides -> live. *)
  let spec =
    Spec.make dtd [ (("a", "c"), Spec.Yes); (("r", "b"), Spec.No) ]
  in
  let dead = Audit.dead_annotations spec in
  Alcotest.(check int) "one dead annotation" 1 (List.length dead);
  Alcotest.(check bool) "it is the redundant Y" true
    (match dead with
    | [ ((a, c), Spec.Yes) ] -> a = "a" && c = "c"
    | _ -> false)

let test_live_y_under_hidden_parent () =
  let dtd =
    Sdtd.Dtd.create ~root:"r" [ ("r", e "a"); ("a", e "c"); ("c", R.Str) ]
  in
  let spec =
    Spec.make dtd [ (("r", "a"), Spec.No); (("a", "c"), Spec.Yes) ]
  in
  Alcotest.(check int) "re-exposing Y is not dead" 0
    (List.length (Audit.dead_annotations spec))

let test_diff () =
  let dtd = Workload.Hospital.dtd in
  let before = Workload.Hospital.nurse_spec dtd in
  let after =
    (* a loosened policy: clinical trials become visible *)
    Spec.make dtd
      [
        (("treatment", "trial"), Spec.No);
        (("treatment", "regular"), Spec.No);
        (("trial", "bill"), Spec.Yes);
        (("regular", "bill"), Spec.Yes);
        (("regular", "medication"), Spec.Yes);
      ]
  in
  let changes = Audit.diff before after in
  Alcotest.(check bool) "clinicalTrial gained" true
    (List.mem_assoc "clinicalTrial" changes
    && List.assoc "clinicalTrial" changes = `Gained);
  Alcotest.(check bool) "test gained" true
    (List.mem_assoc "test" changes && List.assoc "test" changes = `Gained);
  Alcotest.(check bool) "trial unchanged-hidden, not reported" true
    (not (List.mem_assoc "trial" changes));
  Alcotest.(check bool) "dept status changed (conditional -> accessible)"
    true
    (match List.assoc_opt "dept" changes with
    | Some (`Changed _) -> true
    | _ -> false)

let test_diff_reflexive () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  Alcotest.(check int) "no changes against itself" 0
    (List.length (Audit.diff spec spec))

let test_report_renders () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  let s = Format.asprintf "%a" Audit.report spec in
  Alcotest.(check bool) "non-empty report" true (String.length s > 100)

(* --- stored view definitions ---------------------------------------- *)

let roundtrip view =
  View.of_definition (View.to_definition view)

let views_equal v1 v2 =
  Sdtd.Dtd.equal (View.dtd v1) (View.dtd v2)
  && List.sort compare (View.dummies v1)
     = List.sort compare (View.dummies v2)
  && List.for_all
       (fun a ->
         List.for_all
           (fun b ->
             Sxpath.Simplify.equivalent_syntax
               (View.sigma_exn v1 ~parent:a ~child:b)
               (View.sigma_exn v2 ~parent:a ~child:b))
           (Sdtd.Dtd.children_of (View.dtd v1) a))
       (Sdtd.Dtd.reachable (View.dtd v1))

let test_view_roundtrip_hospital () =
  let view =
    Secview.Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd)
  in
  Alcotest.(check bool) "hospital view roundtrips" true
    (views_equal view (roundtrip view))

let test_view_roundtrip_adex_xmark () =
  Alcotest.(check bool) "adex view roundtrips" true
    (views_equal (Workload.Adex.view ()) (roundtrip (Workload.Adex.view ())));
  Alcotest.(check bool) "xmark view roundtrips" true
    (views_equal (Workload.Xmark.view ())
       (roundtrip (Workload.Xmark.view ())))

let test_view_definition_errors () =
  Alcotest.(check bool) "garbage line" true
    (match View.of_definition "@root r\nnot a line\n" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad sigma" true
    (match
       View.of_definition
         "@root r\n<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n@sigma r a := [[[\n"
     with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing sigma rejected by View.make" true
    (match
       View.of_definition "@root r\n<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n"
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rewrite_through_reloaded_view () =
  let view =
    Secview.Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd)
  in
  let reloaded = roundtrip view in
  let q = Sxpath.Parse.of_string "//patient//bill" in
  Alcotest.(check string) "same rewriting"
    (Sxpath.Print.to_string (Secview.Rewrite.rewrite view q))
    (Sxpath.Print.to_string (Secview.Rewrite.rewrite reloaded q))

let () =
  Alcotest.run "audit"
    [
      ( "exposure",
        [
          Alcotest.test_case "hospital" `Quick test_hospital_exposures;
          Alcotest.test_case "context-sensitive" `Quick
            test_context_sensitive_exposure;
          Alcotest.test_case "hidden types match derive" `Quick
            test_hidden_types_match_derive;
        ] );
      ( "dead-annotations",
        [
          Alcotest.test_case "redundant Y" `Quick test_dead_annotations;
          Alcotest.test_case "re-exposing Y is live" `Quick
            test_live_y_under_hidden_parent;
        ] );
      ( "diff",
        [
          Alcotest.test_case "loosened policy" `Quick test_diff;
          Alcotest.test_case "reflexive" `Quick test_diff_reflexive;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
      ( "stored-views",
        [
          Alcotest.test_case "hospital roundtrip" `Quick
            test_view_roundtrip_hospital;
          Alcotest.test_case "adex/xmark roundtrip" `Quick
            test_view_roundtrip_adex_xmark;
          Alcotest.test_case "malformed definitions" `Quick
            test_view_definition_errors;
          Alcotest.test_case "rewriting through reload" `Quick
            test_rewrite_through_reloaded_view;
        ] );
    ]
