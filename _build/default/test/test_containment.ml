(* Instance-level containment testing and the sidecar specification
   format. *)

module C = Secview.Containment
module Spec = Secview.Spec

let parse = Sxpath.Parse.of_string

let test_refute_finds_witness () =
  let dtd = Workload.Hospital.dtd in
  (* //patient is not contained in //patient[treatment/trial]: any
     instance with a regular patient refutes. *)
  match
    C.refute dtd (parse "//patient")
      (parse "//patient[treatment/trial]")
      ~at:"hospital"
  with
  | Some doc ->
    Alcotest.(check bool) "witness conforms" true
      (Sdtd.Validate.conforms dtd doc)
  | None -> Alcotest.fail "expected a witness"

let test_refute_respects_containment () =
  let dtd = Workload.Hospital.dtd in
  Alcotest.(check bool) "no witness against a true containment" true
    (C.refute dtd
       (parse "//patient[treatment/trial]")
       (parse "//patient") ~at:"hospital"
    = None)

let test_measure_soundness () =
  let dtd = Workload.Hospital.dtd in
  let stats =
    C.measure ~samples:8 dtd
      ~queries:
        (List.map parse
           [ "//patient"; "//patient/name"; "//name"; "//bill"; "//*[bill]" ])
  in
  Alcotest.(check int) "pairs" 25 stats.C.pairs;
  Alcotest.(check int) "no unsound claims" 0 stats.C.claimed_and_refuted;
  Alcotest.(check bool) "self-containments detected" true (stats.C.claimed >= 5)

let test_sidecar_roundtrip () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let text = Spec.to_sidecar spec in
  let spec' = Spec.of_sidecar dtd text in
  Alcotest.(check int) "same number of annotations"
    (List.length (Spec.annotations spec))
    (List.length (Spec.annotations spec'));
  List.iter2
    (fun ((a, b), an) ((a', b'), an') ->
      Alcotest.(check string) "parent" a a';
      Alcotest.(check string) "child" b b';
      Alcotest.(check bool) "annotation equal" true (an = an'))
    (Spec.annotations spec)
    (Spec.annotations spec')

let test_sidecar_comments_and_pcdata () =
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", Sdtd.Regex.Elt "x"); ("x", Sdtd.Regex.Str) ]
  in
  let spec =
    Spec.of_sidecar dtd
      "# full-line comment\n\
       \n\
       r x Y # trailing comment\n\
       x #PCDATA N\n"
  in
  Alcotest.(check int) "two annotations" 2
    (List.length (Spec.annotations spec));
  Alcotest.(check bool) "PCDATA annotation recorded" true
    (Spec.annotation spec ~parent:"x" ~child:Sdtd.Regex.pcdata = Some Spec.No)

let test_sidecar_errors () =
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", Sdtd.Regex.Elt "x"); ("x", Sdtd.Regex.Str) ]
  in
  Alcotest.(check bool) "bad annotation value" true
    (match Spec.of_sidecar dtd "r x MAYBE\n" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad qualifier" true
    (match Spec.of_sidecar dtd "r x [///]\n" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing fields" true
    (match Spec.of_sidecar dtd "r\n" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-edge rejected" true
    (match Spec.of_sidecar dtd "x r N\n" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "containment"
    [
      ( "instance-refutation",
        [
          Alcotest.test_case "finds witnesses" `Quick test_refute_finds_witness;
          Alcotest.test_case "respects containment" `Quick
            test_refute_respects_containment;
          Alcotest.test_case "measure soundness" `Quick test_measure_soundness;
        ] );
      ( "sidecar",
        [
          Alcotest.test_case "roundtrip" `Quick test_sidecar_roundtrip;
          Alcotest.test_case "comments and PCDATA" `Quick
            test_sidecar_comments_and_pcdata;
          Alcotest.test_case "errors" `Quick test_sidecar_errors;
        ] );
    ]
