(* Algorithm derive: the hospital example of the paper (Fig. 2 /
   Examples 3.2, 3.4), the Adex view of Section 6, and targeted cases
   for pruning, short-cutting, dummy-renaming and recursion. *)

module R = Sdtd.Regex
module Spec = Secview.Spec
module View = Secview.View
module Derive = Secview.Derive

let e l = R.Elt l
(* compare modulo associativity of '/' and '|' *)
let path_t = Alcotest.testable Sxpath.Print.pp Sxpath.Simplify.equivalent_syntax
let regex_t = Alcotest.testable R.pp R.equal

let parse = Sxpath.Parse.of_string

let prod view name = Sdtd.Dtd.production (View.dtd view) name
let sigma view a b = View.sigma_exn view ~parent:a ~child:b

(* ---- the hospital / nurse view (Fig. 2) --------------------------- *)

let nurse_view () =
  Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd)

let test_hospital_root_production () =
  let v = nurse_view () in
  Alcotest.check regex_t "hospital -> dept*" (R.Star (e "dept"))
    (prod v "hospital");
  Alcotest.check path_t "sigma(hospital, dept) keeps the qualifier"
    (parse "dept[*/patient/wardNo = $wardNo]")
    (sigma v "hospital" "dept")

let test_hospital_dept_shortcut () =
  let v = nurse_view () in
  (* clinicalTrial is short-cut; duplicate patientInfo occurrences are
     compacted into a star (Example 3.4). *)
  Alcotest.check regex_t "dept -> patientInfo*, staffInfo"
    (R.Seq [ R.Star (e "patientInfo"); e "staffInfo" ])
    (prod v "dept");
  Alcotest.check path_t "sigma(dept, patientInfo) is the union of paths"
    (parse "clinicalTrial/patientInfo | patientInfo")
    (sigma v "dept" "patientInfo");
  Alcotest.check path_t "sigma(dept, staffInfo) is trivial"
    (parse "staffInfo")
    (sigma v "dept" "staffInfo")

let test_hospital_dummies () =
  let v = nurse_view () in
  Alcotest.(check (list string)) "two dummies" [ "dummy1"; "dummy2" ]
    (List.sort compare (View.dummies v));
  Alcotest.(check bool) "dummy1 is flagged" true (View.is_dummy v "dummy1");
  Alcotest.(check bool) "dept is not" false (View.is_dummy v "dept");
  (* treatment -> dummy1 + dummy2 with hidden labels trial/regular. *)
  Alcotest.check regex_t "treatment -> dummy1 | dummy2"
    (R.Choice [ e "dummy1"; e "dummy2" ])
    (prod v "treatment");
  let d1 = sigma v "treatment" "dummy1" in
  let d2 = sigma v "treatment" "dummy2" in
  Alcotest.(check bool) "dummies map to trial and regular" true
    (List.sort compare
       [ Sxpath.Print.to_string d1; Sxpath.Print.to_string d2 ]
    = [ "regular"; "trial" ]);
  (* and the dummy productions expose only bill / bill,medication *)
  let trial_dummy =
    if Sxpath.Print.to_string d1 = "trial" then "dummy1" else "dummy2"
  in
  let regular_dummy = if trial_dummy = "dummy1" then "dummy2" else "dummy1" in
  Alcotest.check regex_t "trial dummy -> bill" (e "bill")
    (prod v trial_dummy);
  Alcotest.check regex_t "regular dummy -> bill, medication"
    (R.Seq [ e "bill"; e "medication" ])
    (prod v regular_dummy)

let test_hospital_hides_secret_types () =
  let v = nurse_view () in
  List.iter
    (fun hidden ->
      Alcotest.(check bool)
        (hidden ^ " absent from the view DTD")
        false
        (Sdtd.Dtd.mem (View.dtd v) hidden))
    [ "clinicalTrial"; "trial"; "regular"; "test" ]

let test_hospital_untouched_region () =
  let v = nurse_view () in
  Alcotest.check regex_t "staff unchanged"
    (R.Choice [ e "doctor"; e "nurse" ])
    (prod v "staff");
  Alcotest.check path_t "identity sigma" (parse "doctor")
    (sigma v "staff" "doctor")

(* ---- the Adex view (Section 6) ------------------------------------ *)

let test_adex_view_structure () =
  let v = Workload.Adex.view () in
  let dtd = View.dtd v in
  List.iter
    (fun hidden ->
      Alcotest.(check bool) (hidden ^ " hidden") false (Sdtd.Dtd.mem dtd hidden))
    [ "head"; "body"; "ad-instance"; "employment"; "automotive";
      "seller-info"; "transaction-info" ];
  List.iter
    (fun visible ->
      Alcotest.(check bool) (visible ^ " visible") true
        (Sdtd.Dtd.mem dtd visible))
    [ "adex"; "buyer-info"; "contact-info"; "real-estate"; "house";
      "apartment" ];
  (* buyer-info and real-estate are reached through dummies whose σ
     paths go through the hidden head/body structure. *)
  let buyer_parent =
    List.find
      (fun a -> List.mem "buyer-info" (Sdtd.Dtd.children_of dtd a))
      (Sdtd.Dtd.reachable dtd)
  in
  Alcotest.(check bool) "buyer-info hangs under a dummy" true
    (View.is_dummy v buyer_parent)

(* ---- targeted behaviours ------------------------------------------ *)

let mk_dtd prods = Sdtd.Dtd.create ~root:"r" prods

let test_prune_whole_subtree () =
  (* b has no accessible descendants: it disappears; the sequence
     keeps the surviving parts. *)
  let dtd =
    mk_dtd
      [ ("r", R.Seq [ e "a"; e "b" ]); ("a", R.Str); ("b", R.Seq [ e "c" ]);
        ("c", R.Str) ]
  in
  let spec = Spec.make dtd [ (("r", "b"), Spec.No) ] in
  let v = Derive.derive spec in
  Alcotest.check regex_t "r -> a" (e "a") (prod v "r");
  Alcotest.(check bool) "b gone" false (Sdtd.Dtd.mem (View.dtd v) "b");
  Alcotest.(check bool) "c gone" false (Sdtd.Dtd.mem (View.dtd v) "c")

let test_prune_choice_branch_leaves_option () =
  (* r -> a + b with b pruned: the choice becomes nullable rather than
     forcing an abort on documents that chose b. *)
  let dtd =
    mk_dtd
      [ ("r", R.Choice [ e "a"; e "b" ]); ("a", R.Str); ("b", R.Str) ]
  in
  let spec =
    Spec.make dtd
      [ (("r", "b"), Spec.No); (("b", R.pcdata), Spec.No) ]
  in
  let v = Derive.derive spec in
  Alcotest.check regex_t "r -> a | eps"
    (R.Choice [ e "a"; R.Epsilon ])
    (prod v "r")

let test_shortcut_chain () =
  (* r -> a; a -> b; b -> c: hiding a and b shortcuts both levels. *)
  let dtd =
    mk_dtd [ ("r", e "a"); ("a", e "b"); ("b", e "c"); ("c", R.Str) ]
  in
  let spec =
    Spec.make dtd
      [ (("r", "a"), Spec.No); (("b", "c"), Spec.Yes) ]
  in
  let v = Derive.derive spec in
  Alcotest.check regex_t "r -> c" (e "c") (prod v "r");
  Alcotest.check path_t "sigma composes the hidden path" (parse "a/b/c")
    (sigma v "r" "c")

let test_shortcut_preserves_conditions () =
  (* conditionally accessible child below a hidden node keeps its
     qualifier in σ. *)
  let dtd = mk_dtd [ ("r", e "a"); ("a", e "b"); ("b", R.Str) ] in
  let q = Sxpath.Parse.qual_of_string "b = \"ok\"" in
  let spec =
    Spec.make dtd [ (("r", "a"), Spec.No); (("a", "b"), Spec.Cond q) ]
  in
  let v = Derive.derive spec in
  Alcotest.check path_t "qualifier kept" (parse "a/b[b = \"ok\"]")
    (sigma v "r" "b")

let test_dummy_for_str_content () =
  (* accessible PCDATA under a hidden element cannot be inlined: the
     hidden element is dummy-renamed instead. *)
  let dtd = mk_dtd [ ("r", e "a"); ("a", R.Str) ] in
  let spec =
    Spec.make dtd
      [ (("r", "a"), Spec.No); (("a", R.pcdata), Spec.Yes) ]
  in
  let v = Derive.derive spec in
  match Sdtd.Dtd.children_of (View.dtd v) "r" with
  | [ d ] ->
    Alcotest.(check bool) "child is a dummy" true (View.is_dummy v d);
    Alcotest.check regex_t "dummy exposes the text" R.Str (prod v d);
    Alcotest.check path_t "dummy maps to a" (parse "a") (sigma v "r" d)
  | other ->
    Alcotest.failf "expected one dummy child, got [%s]"
      (String.concat "; " other)

let test_recursive_inaccessible_dummy () =
  (* a hidden recursive type keeps its recursive structure behind a
     dummy (Section 3.4's prose case). *)
  let dtd =
    mk_dtd
      [
        ("r", e "a");
        ("a", R.Seq [ e "v"; R.Choice [ e "a"; R.Epsilon ] ]);
        ("v", R.Str);
      ]
  in
  let spec = Spec.make dtd [ (("r", "a"), Spec.No); (("a", "v"), Spec.Yes) ] in
  let v = Derive.derive spec in
  let view_dtd = View.dtd v in
  Alcotest.(check bool) "view is recursive" true
    (Sdtd.Dtd.is_recursive view_dtd);
  (* the hidden recursive type becomes a self-referential dummy whose
     production exposes v and the recursion *)
  (match Sdtd.Dtd.children_of view_dtd "r" with
  | [ dummy ] ->
    Alcotest.(check bool) "child of r is a dummy" true (View.is_dummy v dummy);
    let kids = Sdtd.Dtd.children_of view_dtd dummy in
    Alcotest.(check bool) "v exposed under the dummy" true
      (List.mem "v" kids);
    Alcotest.(check bool) "dummy refers to itself" true (List.mem dummy kids);
    Alcotest.check path_t "sigma into the dummy" (parse "a")
      (sigma v "r" dummy);
    Alcotest.check path_t "recursive sigma" (parse "a")
      (sigma v dummy dummy)
  | other ->
    Alcotest.failf "expected a single dummy child of r, got [%s]"
      (String.concat "; " other))

let test_recursive_accessible_passthrough () =
  let dtd =
    mk_dtd
      [ ("r", e "a"); ("a", R.Choice [ e "a"; e "v" ]); ("v", R.Str) ]
  in
  let spec = Spec.make dtd [] in
  let v = Derive.derive spec in
  Alcotest.(check bool) "fully accessible recursive view" true
    (Sdtd.Dtd.is_recursive (View.dtd v));
  Alcotest.check regex_t "a unchanged"
    (R.Choice [ e "a"; e "v" ])
    (prod v "a")

let test_identity_when_all_accessible () =
  let dtd = Workload.Hospital.dtd in
  let v = Derive.derive (Spec.make dtd []) in
  Alcotest.(check bool) "view DTD equals the document DTD" true
    (Sdtd.Dtd.equal (View.dtd v) (Sdtd.Dtd.restrict_reachable dtd));
  Alcotest.check path_t "identity sigma" (parse "dept")
    (sigma v "hospital" "dept")

let test_view_make_validation () =
  let dtd = mk_dtd [ ("r", e "a"); ("a", R.Str) ] in
  Alcotest.(check bool) "missing sigma rejected" true
    (match View.make ~dtd ~sigma:[] () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-edge sigma rejected" true
    (match
       View.make ~dtd
         ~sigma:
           [ (("r", "a"), parse "a"); (("a", "zz"), parse "zz") ]
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "derive"
    [
      ( "hospital",
        [
          Alcotest.test_case "root production" `Quick
            test_hospital_root_production;
          Alcotest.test_case "dept short-cut + compaction" `Quick
            test_hospital_dept_shortcut;
          Alcotest.test_case "treatment dummies" `Quick test_hospital_dummies;
          Alcotest.test_case "secret types hidden" `Quick
            test_hospital_hides_secret_types;
          Alcotest.test_case "untouched region" `Quick
            test_hospital_untouched_region;
        ] );
      ( "adex",
        [ Alcotest.test_case "view structure" `Quick test_adex_view_structure ]
      );
      ( "cases",
        [
          Alcotest.test_case "prune whole subtree" `Quick
            test_prune_whole_subtree;
          Alcotest.test_case "pruned choice branch leaves an option" `Quick
            test_prune_choice_branch_leaves_option;
          Alcotest.test_case "short-cut chain" `Quick test_shortcut_chain;
          Alcotest.test_case "short-cut keeps qualifiers" `Quick
            test_shortcut_preserves_conditions;
          Alcotest.test_case "dummy for PCDATA content" `Quick
            test_dummy_for_str_content;
          Alcotest.test_case "recursive inaccessible dummy" `Quick
            test_recursive_inaccessible_dummy;
          Alcotest.test_case "recursive accessible passthrough" `Quick
            test_recursive_accessible_passthrough;
          Alcotest.test_case "identity on all-accessible" `Quick
            test_identity_when_all_accessible;
        ] );
      ( "view-construction",
        [ Alcotest.test_case "validation" `Quick test_view_make_validation ] );
    ]
