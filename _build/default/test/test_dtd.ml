(* DTD model: construction, graph queries, recursion, min-height,
   declaration-syntax parsing, validation, unfolding. *)

open Sdtd

let e l = Regex.Elt l

let simple =
  Dtd.create ~root:"r"
    [
      ("r", Regex.Seq [ e "a"; e "b" ]);
      ("a", Regex.Star (e "c"));
      ("b", Regex.Choice [ e "c"; e "d" ]);
      ("c", Regex.Str);
      ("d", Regex.Epsilon);
    ]

let recursive =
  Dtd.create ~root:"r"
    [
      ("r", e "a");
      ("a", Regex.Choice [ e "b"; Regex.Seq [ e "b"; e "a" ] ]);
      ("b", Regex.Str);
    ]

let test_create_implicit_decl () =
  let d = Dtd.create ~root:"r" [ ("r", e "ghost") ] in
  Alcotest.(check bool) "ghost implicitly declared" true (Dtd.mem d "ghost");
  Alcotest.(check bool) "ghost has epsilon production" true
    (Regex.equal (Dtd.production d "ghost") Regex.Epsilon)

let test_create_duplicate_rejected () =
  Alcotest.check_raises "duplicate declaration"
    (Invalid_argument "Dtd.create: duplicate type \"r\"") (fun () ->
      ignore (Dtd.create ~root:"r" [ ("r", e "a"); ("r", e "b") ]))

let test_create_unknown_root () =
  Alcotest.check_raises "unknown root"
    (Invalid_argument "Dtd.create: root \"z\" undeclared") (fun () ->
      ignore (Dtd.create ~root:"z" [ ("r", e "a") ]))

let test_children_of () =
  Alcotest.(check (list string)) "children of r" [ "a"; "b" ]
    (Dtd.children_of simple "r");
  Alcotest.(check (list string)) "children of c (leaf)" []
    (Dtd.children_of simple "c")

let test_reachable () =
  let d =
    Dtd.create ~root:"r" [ ("r", e "a"); ("a", Regex.Str); ("orphan", e "a") ]
  in
  Alcotest.(check (list string)) "orphan excluded" [ "r"; "a" ]
    (Dtd.reachable d);
  let d' = Dtd.restrict_reachable d in
  Alcotest.(check bool) "orphan dropped" false (Dtd.mem d' "orphan")

let test_recursion_detection () =
  Alcotest.(check bool) "simple not recursive" false (Dtd.is_recursive simple);
  Alcotest.(check bool) "recursive detected" true (Dtd.is_recursive recursive);
  Alcotest.(check (list string)) "only a on a cycle" [ "a" ]
    (Dtd.recursive_types recursive)

let test_topological_order () =
  (match Dtd.topological_order simple with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
    let pos x =
      let rec go i = function
        | [] -> Alcotest.failf "%s missing from order" x
        | y :: _ when String.equal x y -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 order
    in
    List.iter
      (fun (parent, child) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s before %s" parent child)
          true
          (pos parent < pos child))
      [ ("r", "a"); ("r", "b"); ("a", "c"); ("b", "c"); ("b", "d") ]);
  Alcotest.(check bool) "recursive DTD has no topo order" true
    (Dtd.topological_order recursive = None)

let test_min_height () =
  Alcotest.(check int) "leaf" 1 (Dtd.min_height simple "c");
  Alcotest.(check int) "a: star can be empty" 1 (Dtd.min_height simple "a");
  Alcotest.(check int) "b: choice of leaves" 2 (Dtd.min_height simple "b");
  Alcotest.(check int) "r" 3 (Dtd.min_height simple "r");
  (* recursive: a -> b | (b, a): min via the b branch *)
  Alcotest.(check int) "recursive a" 2 (Dtd.min_height recursive "a");
  Alcotest.(check int) "recursive r" 3 (Dtd.min_height recursive "r")

let test_consistency () =
  Alcotest.(check bool) "simple consistent" true (Dtd.is_consistent simple);
  let bad =
    Dtd.create ~root:"r" [ ("r", e "a"); ("a", e "a") ]
    (* a needs an infinite tree *)
  in
  Alcotest.(check bool) "a -> a inconsistent" false (Dtd.is_consistent bad)

let test_size_counts () =
  Alcotest.(check bool) "size grows with productions" true
    (Dtd.size simple > 5)

let test_parse_declarations () =
  let d =
    Parse.of_string
      {|<!ELEMENT r (a, b*)>
        <!-- a comment -->
        <!ELEMENT a (#PCDATA)>
        <!ATTLIST a id CDATA #REQUIRED>
        <!ELEMENT b (c | d)+>
        <!ELEMENT c EMPTY>
        <!ELEMENT d ANY>|}
  in
  Alcotest.(check string) "root" "r" (Dtd.root d);
  Alcotest.(check bool) "r production" true
    (Regex.equal (Dtd.production d "r")
       (Regex.Seq [ e "a"; Regex.Star (e "b") ]));
  Alcotest.(check bool) "b production is plus of choice" true
    (Regex.equal (Dtd.production d "b")
       (Regex.Seq
          [
            Regex.Choice [ e "c"; e "d" ];
            Regex.Star (Regex.Choice [ e "c"; e "d" ]);
          ]));
  Alcotest.(check bool) "a is PCDATA" true
    (Regex.equal (Dtd.production d "a") Regex.Str)

let test_parse_optional () =
  let d = Parse.of_string "<!ELEMENT r (a?, b)>" in
  Alcotest.(check bool) "a? becomes a|eps" true
    (Regex.equal (Dtd.production d "r")
       (Regex.Seq [ Regex.Choice [ e "a"; Regex.Epsilon ]; e "b" ]))

let test_parse_error () =
  (match Parse.of_string "<!ELEMENT r (a" with
  | exception Parse.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error");
  match Parse.of_string "" with
  | exception Parse.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error on empty input"

let test_print_parse_roundtrip () =
  let printed = Dtd.to_string simple in
  let reparsed = Parse.of_string printed in
  Alcotest.(check bool) "roundtrip equal" true (Dtd.equal simple reparsed)

let test_hospital_roundtrip () =
  let printed = Dtd.to_string Workload.Hospital.dtd in
  let reparsed = Parse.of_string ~root:"hospital" printed in
  Alcotest.(check bool) "hospital DTD roundtrips" true
    (Dtd.equal Workload.Hospital.dtd reparsed)

let test_validate_accepts () =
  let doc =
    Sxml.Tree.(
      of_spec
        (elem "r"
           [ elem "a" []; elem "b" [ elem "c" [ text "hi" ] ] ]))
  in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Validate.message) (Validate.check simple doc))

let test_validate_rejects_bad_children () =
  let doc =
    Sxml.Tree.(of_spec (elem "r" [ elem "b" [ elem "c" [] ]; elem "a" [] ]))
  in
  (* b before a violates r -> a, b; also c under b must have text. *)
  Alcotest.(check bool) "violations found" true
    (Validate.check simple doc <> [])

let test_validate_rejects_wrong_root () =
  let doc = Sxml.Tree.(of_spec (elem "a" [])) in
  Alcotest.(check bool) "root mismatch" true (Validate.check simple doc <> [])

let test_validate_rejects_undeclared () =
  let doc = Sxml.Tree.(of_spec (elem "r" [ elem "a" []; elem "zz" [] ])) in
  Alcotest.(check bool) "undeclared element" true
    (List.exists
       (fun v -> v.Validate.element = "zz")
       (Validate.check simple doc))

let test_unfold_names () =
  Alcotest.(check string) "mangle" "a~3" (Unfold.mangle "a" 3);
  Alcotest.(check string) "label_of" "a" (Unfold.label_of "a~3");
  Alcotest.(check string) "label_of plain" "a" (Unfold.label_of "a");
  Alcotest.(check (option int)) "level_of" (Some 3) (Unfold.level_of "a~3");
  Alcotest.(check (option int)) "level_of plain" None (Unfold.level_of "a")

let test_unfold_basic () =
  let u = Unfold.unfold recursive ~height:4 in
  Alcotest.(check bool) "unfolded is a DAG" false (Dtd.is_recursive u);
  Alcotest.(check string) "root is r~1" "r~1" (Dtd.root u);
  (* r~1 -> a~2; a~2 -> b~3 | (b~3, a~3); a~3 at the height limit
     loses its recursive branch: a~4 would need height 5. *)
  Alcotest.(check bool) "a~3 exists" true (Dtd.mem u "a~3");
  Alcotest.(check bool) "a~4 cut off" false (Dtd.mem u "a~4");
  Alcotest.(check bool) "a~3 production is just b~4" true
    (Regex.equal (Dtd.production u "a~3") (e "b~4"))

let test_unfold_accepts_bounded_instances () =
  (* An instance of height h conforms to the unfolding at height h
     after relabeling with levels. *)
  let doc =
    Sxml.Tree.(
      of_spec
        (elem "r"
           [
             elem "a"
               [ elem "b" [ text "x" ]; elem "a" [ elem "b" [ text "y" ] ] ];
           ]))
  in
  Alcotest.(check bool) "instance conforms to original" true
    (Validate.conforms recursive doc);
  let u = Unfold.unfold recursive ~height:4 in
  (* relabel by depth *)
  let rec relabel level (spec : Sxml.Tree.spec) =
    match spec with
    | Sxml.Tree.E (tag, attrs, children) ->
      Sxml.Tree.E
        (Unfold.mangle tag level, attrs, List.map (relabel (level + 1)) children)
    | Sxml.Tree.T _ -> spec
  in
  let relabeled = Sxml.Tree.of_spec (relabel 1 (Sxml.Tree.to_spec doc)) in
  Alcotest.(check (list string)) "relabelled instance conforms to unfolding"
    []
    (List.map (fun v -> v.Validate.message) (Validate.check u relabeled))

let test_unfold_too_small () =
  Alcotest.(check bool) "height below min raises" true
    (match Unfold.unfold recursive ~height:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_unfold_gen_instances_conform () =
  (* Generated instances of the unfolding, stripped of level suffixes,
     conform to the original recursive DTD. *)
  let u = Unfold.unfold recursive ~height:6 in
  let doc = Gen.generate ~config:{ Gen.default_config with seed = 3 } u in
  let strip (spec : Sxml.Tree.spec) =
    let rec go = function
      | Sxml.Tree.E (tag, attrs, children) ->
        Sxml.Tree.E (Unfold.label_of tag, attrs, List.map go children)
      | Sxml.Tree.T _ as t -> t
    in
    go spec
  in
  let stripped = Sxml.Tree.of_spec (strip (Sxml.Tree.to_spec doc)) in
  Alcotest.(check bool) "stripped instance conforms" true
    (Validate.conforms recursive stripped)

let test_gen_conforms () =
  List.iter
    (fun seed ->
      let doc = Gen.generate ~config:{ Gen.default_config with seed } simple in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d conforms" seed)
        true
        (Validate.conforms simple doc))
    [ 0; 1; 2; 3; 4 ]

let test_gen_deterministic () =
  let d1 = Gen.generate simple and d2 = Gen.generate simple in
  Alcotest.(check bool) "same seed, same document" true
    (Sxml.Tree.equal_structure d1 d2)

let test_gen_recursive_terminates () =
  let doc =
    Gen.generate
      ~config:{ Gen.default_config with seed = 9; depth_budget = 5 }
      recursive
  in
  Alcotest.(check bool) "conforms" true (Validate.conforms recursive doc);
  Alcotest.(check bool) "bounded depth" true (Sxml.Tree.depth doc < 64)

let test_gen_star_for () =
  let config =
    {
      Gen.default_config with
      star_for = (fun p -> if String.equal p "a" then Some (5, 5) else None);
    }
  in
  let doc = Gen.generate ~config simple in
  let cs = Sxml.Tree.find_all (fun n -> Sxml.Tree.tag n = Some "c") doc in
  (* a -> c*: exactly 5 c's under a, plus possibly one under b. *)
  Alcotest.(check bool) "a has 5 c children" true (List.length cs >= 5)

let test_gen_inconsistent_rejected () =
  let bad = Dtd.create ~root:"r" [ ("r", e "a"); ("a", e "a") ] in
  Alcotest.(check bool) "raises" true
    (match Gen.generate bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "dtd"
    [
      ( "construction",
        [
          Alcotest.test_case "implicit declarations" `Quick
            test_create_implicit_decl;
          Alcotest.test_case "duplicates rejected" `Quick
            test_create_duplicate_rejected;
          Alcotest.test_case "unknown root rejected" `Quick
            test_create_unknown_root;
          Alcotest.test_case "children_of" `Quick test_children_of;
          Alcotest.test_case "reachable/restrict" `Quick test_reachable;
          Alcotest.test_case "size" `Quick test_size_counts;
        ] );
      ( "graph",
        [
          Alcotest.test_case "recursion detection" `Quick
            test_recursion_detection;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "min_height" `Quick test_min_height;
          Alcotest.test_case "consistency" `Quick test_consistency;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse declarations" `Quick
            test_parse_declarations;
          Alcotest.test_case "optional content" `Quick test_parse_optional;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_print_parse_roundtrip;
          Alcotest.test_case "hospital roundtrip" `Quick
            test_hospital_roundtrip;
        ] );
      ( "validation",
        [
          Alcotest.test_case "accepts conforming" `Quick test_validate_accepts;
          Alcotest.test_case "rejects bad children" `Quick
            test_validate_rejects_bad_children;
          Alcotest.test_case "rejects wrong root" `Quick
            test_validate_rejects_wrong_root;
          Alcotest.test_case "rejects undeclared" `Quick
            test_validate_rejects_undeclared;
        ] );
      ( "unfolding",
        [
          Alcotest.test_case "name mangling" `Quick test_unfold_names;
          Alcotest.test_case "basic unfolding" `Quick test_unfold_basic;
          Alcotest.test_case "bounded instances conform" `Quick
            test_unfold_accepts_bounded_instances;
          Alcotest.test_case "height too small" `Quick test_unfold_too_small;
          Alcotest.test_case "generated instances strip back" `Quick
            test_unfold_gen_instances_conform;
        ] );
      ( "generator",
        [
          Alcotest.test_case "conforms across seeds" `Quick test_gen_conforms;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "recursive terminates" `Quick
            test_gen_recursive_terminates;
          Alcotest.test_case "star_for override" `Quick test_gen_star_for;
          Alcotest.test_case "inconsistent rejected" `Quick
            test_gen_inconsistent_rejected;
        ] );
    ]
