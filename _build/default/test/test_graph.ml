(* DTD graph utilities: edge extraction, SCCs, DOT rendering. *)

module G = Sdtd.Graph
module R = Sdtd.Regex

let e l = R.Elt l

let test_edges_hospital () =
  let edges = G.edges Workload.Hospital.dtd in
  let find p c = List.find (fun x -> x.G.parent = p && x.G.child = c) edges in
  Alcotest.(check bool) "hospital->dept is starred" true
    (find "hospital" "dept").G.starred;
  Alcotest.(check bool) "dept->patientInfo is a plain child" true
    ((find "dept" "patientInfo").G.kind = G.Child);
  Alcotest.(check bool) "treatment->trial is a choice branch" true
    ((find "treatment" "trial").G.kind = G.Choice_branch);
  Alcotest.(check bool) "staff->doctor is a choice branch" true
    ((find "staff" "doctor").G.kind = G.Choice_branch);
  (* count: one edge per occurrence context *)
  Alcotest.(check bool) "all parents reachable" true
    (List.for_all
       (fun x -> Sdtd.Dtd.mem Workload.Hospital.dtd x.G.parent)
       edges)

let test_edges_dedup () =
  let dtd =
    Sdtd.Dtd.create ~root:"r" [ ("r", R.Seq [ e "a"; e "a" ]); ("a", R.Str) ]
  in
  Alcotest.(check int) "duplicate occurrences merge" 1
    (List.length (G.edges dtd))

let test_sccs_dag () =
  let comps = G.sccs Workload.Hospital.dtd in
  Alcotest.(check bool) "all singletons on a DAG" true
    (List.for_all (fun c -> List.length c = 1) comps);
  Alcotest.(check int) "one component per reachable type"
    (List.length (Sdtd.Dtd.reachable Workload.Hospital.dtd))
    (List.length comps)

let test_sccs_recursive () =
  let comps = G.sccs Workload.Xmark.dtd in
  let big = List.filter (fun c -> List.length c > 1) comps in
  Alcotest.(check int) "one non-trivial component" 1 (List.length big);
  Alcotest.(check (list string)) "the parlist cycle"
    [ "listitem"; "parlist" ]
    (List.sort compare (List.hd big))

let test_sccs_self_loop () =
  let dtd =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", e "a"); ("a", R.Choice [ e "a"; R.Epsilon ]) ]
  in
  let comps = G.sccs dtd in
  Alcotest.(check bool) "self-loop is its own component" true
    (List.mem [ "a" ] comps)

let test_dot_output () =
  let dot = G.to_dot Workload.Hospital.dtd in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "digraph wrapper" true (contains dot "digraph dtd {");
  Alcotest.(check bool) "star label" true (contains dot "label=\"*\"");
  Alcotest.(check bool) "dashed choice edges" true
    (contains dot "style=\"dashed\"");
  Alcotest.(check bool) "edge present" true
    (contains dot "\"hospital\" -> \"dept\"")

let test_dot_highlight () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  let annotation ~parent ~child =
    match Secview.Spec.annotation spec ~parent ~child with
    | Some Secview.Spec.Yes -> Some `Yes
    | Some (Secview.Spec.Cond _) -> Some `Cond
    | Some Secview.Spec.No -> Some `No
    | None -> None
  in
  let dot =
    G.to_dot ~highlight:(G.spec_style ~annotation) Workload.Hospital.dtd
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  (* the conditional hospital->dept edge is bold; denied edges dotted *)
  Alcotest.(check bool) "bold conditional edge" true
    (contains dot "\"hospital\" -> \"dept\" [style=\"bold\", label=\"*\"]");
  Alcotest.(check bool) "denied edge dotted" true
    (contains dot "\"dept\" -> \"clinicalTrial\" [style=\"dotted\"]")

let () =
  Alcotest.run "graph"
    [
      ( "edges",
        [
          Alcotest.test_case "hospital edges" `Quick test_edges_hospital;
          Alcotest.test_case "dedup" `Quick test_edges_dedup;
        ] );
      ( "sccs",
        [
          Alcotest.test_case "DAG" `Quick test_sccs_dag;
          Alcotest.test_case "recursive core" `Quick test_sccs_recursive;
          Alcotest.test_case "self loop" `Quick test_sccs_self_loop;
        ] );
      ( "dot",
        [
          Alcotest.test_case "plain" `Quick test_dot_output;
          Alcotest.test_case "policy highlight" `Quick test_dot_highlight;
        ] );
    ]
