(* Workload sanity: the hospital and Adex fixtures themselves, the
   dataset series, and the Fig. 7 recursive fixture. *)

let test_hospital_dtd_wellformed () =
  let dtd = Workload.Hospital.dtd in
  Alcotest.(check bool) "in normal form" true (Sdtd.Dtd.in_normal_form dtd);
  Alcotest.(check bool) "consistent" true (Sdtd.Dtd.is_consistent dtd);
  Alcotest.(check bool) "not recursive" false (Sdtd.Dtd.is_recursive dtd)

let test_hospital_sample_conforms () =
  Alcotest.(check (list string)) "sample conforms" []
    (List.map
       (fun v -> v.Sdtd.Validate.message)
       (Sdtd.Validate.check Workload.Hospital.dtd
          (Workload.Hospital.sample_document ())))

let test_hospital_generated_conforms () =
  List.iter
    (fun seed ->
      let doc = Workload.Hospital.generated_document ~seed ~scale:5 () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d conforms" seed)
        true
        (Sdtd.Validate.conforms Workload.Hospital.dtd doc))
    [ 0; 7; 42 ]

let test_hospital_spec_variables () =
  let spec = Workload.Hospital.nurse_spec Workload.Hospital.dtd in
  Alcotest.(check (list string)) "parameterized by wardNo" [ "wardNo" ]
    (Secview.Spec.variables spec)

let test_adex_dtd_wellformed () =
  let dtd = Workload.Adex.dtd in
  Alcotest.(check bool) "consistent" true (Sdtd.Dtd.is_consistent dtd);
  Alcotest.(check bool) "not recursive" false (Sdtd.Dtd.is_recursive dtd);
  (* the three structural properties Table 1's discussion needs *)
  Alcotest.(check (list string)) "real-estate is exclusive"
    [ "house"; "apartment" ]
    (Sdtd.Dtd.children_of dtd "real-estate");
  Alcotest.(check bool) "warranty only under house" true
    (List.mem "r-e.warranty" (Sdtd.Dtd.children_of dtd "house")
    && not (List.mem "r-e.warranty" (Sdtd.Dtd.children_of dtd "apartment")));
  Alcotest.(check bool) "unit-type only under apartment" true
    (List.mem "r-e.unit-type" (Sdtd.Dtd.children_of dtd "apartment")
    && not (List.mem "r-e.unit-type" (Sdtd.Dtd.children_of dtd "house")))

let test_adex_document_scales () =
  let d1 = Workload.Adex.document ~ads:5 ~buyers:3 () in
  let d2 = Workload.Adex.document ~ads:25 ~buyers:15 () in
  Alcotest.(check bool) "conforms" true
    (Sdtd.Validate.conforms Workload.Adex.dtd d1);
  Alcotest.(check bool) "bigger knobs, bigger document" true
    (Sxml.Tree.count_elements d2 > 2 * Sxml.Tree.count_elements d1)

let test_dataset_series () =
  let series = Workload.Datasets.series ~scale:4 () in
  Alcotest.(check (list string)) "names"
    [ "D1"; "D2"; "D3"; "D4" ]
    (List.map (fun d -> d.Workload.Datasets.name) series);
  let sizes =
    List.map
      (fun d -> Sxml.Tree.count_elements (Workload.Datasets.load d))
      series
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "sizes increase: %s"
       (String.concat ", " (List.map string_of_int sizes)))
    true (increasing sizes);
  (* the paper's 1 : 5 : 16 : 24 progression, loosely *)
  (match sizes with
  | [ s1; _; _; s4 ] ->
    Alcotest.(check bool) "D4 is an order of magnitude larger than D1" true
      (s4 > 10 * s1)
  | _ -> Alcotest.fail "expected four datasets");
  Alcotest.(check bool) "deterministic" true
    (Sxml.Tree.equal_structure
       (Workload.Datasets.load (List.hd series))
       (Workload.Datasets.load (List.hd series)))

let test_fig7_fixture () =
  Alcotest.(check bool) "document DTD not recursive... but the view is" true
    (Sdtd.Dtd.is_recursive (Secview.View.dtd (Workload.Fig7.view ())));
  let doc = Workload.Fig7.document ~depth:4 in
  Alcotest.(check bool) "document conforms" true
    (Sdtd.Validate.conforms Workload.Fig7.dtd doc)

let test_queries_parse_to_expected_strings () =
  List.iter
    (fun (q, expected) ->
      Alcotest.(check string) expected expected (Sxpath.Print.to_string q))
    [
      (Workload.Adex.q1, "//buyer-info/contact-info");
      (Workload.Adex.q2, "//house/r-e.warranty | //apartment/r-e.warranty");
      (Workload.Adex.q3, "//buyer-info[//company-id and //contact-info]");
      (Workload.Adex.q4, "//house[//r-e.asking-price and //r-e.unit-type]");
    ]

let () =
  Alcotest.run "workload"
    [
      ( "hospital",
        [
          Alcotest.test_case "DTD wellformed" `Quick
            test_hospital_dtd_wellformed;
          Alcotest.test_case "sample conforms" `Quick
            test_hospital_sample_conforms;
          Alcotest.test_case "generated conforms" `Quick
            test_hospital_generated_conforms;
          Alcotest.test_case "spec variables" `Quick
            test_hospital_spec_variables;
        ] );
      ( "adex",
        [
          Alcotest.test_case "DTD wellformed" `Quick test_adex_dtd_wellformed;
          Alcotest.test_case "documents scale" `Quick
            test_adex_document_scales;
          Alcotest.test_case "dataset series" `Quick test_dataset_series;
          Alcotest.test_case "query strings" `Quick
            test_queries_parse_to_expected_strings;
        ] );
      ( "fig7",
        [ Alcotest.test_case "fixture" `Quick test_fig7_fixture ] );
    ]
