(* Benchmark harness.

   Regenerates the paper's experimental artefacts:

   - Table 1 (Section 6): evaluation time of Q1-Q4 over the D1-D4
     Adex document series under the naive / rewrite / optimize
     strategies.  Absolute numbers differ from the paper's 2004
     testbed; the shape — rewrite beats naive by 1-2 orders of
     magnitude, optimization helps Q3 and eliminates Q4 — is the
     reproduction target (see EXPERIMENTS.md).
   - The rewritten/optimized query forms the Section 6 prose prints.
   - Ablations A1-A4 (DESIGN.md): algorithm costs behind the paper's
     complexity claims, measured with Bechamel.

   Usage: dune exec bench/main.exe [-- --table1|--forms|--ablations]
                                   [-- --scale N] [-- --quick]
                                   [-- --json [--out FILE]] [-- --label L]
                                   [-- --serve [--clients N]] [-- --engines]
                                   [-- --analyze]

   --json writes the Table 1 measurements (per-stage min/median/p95
   breakdowns for Q1-Q4 x D1-D4) to BENCH_PR2.json (or --out FILE),
   the machine-readable perf trajectory consumed by later PRs.

   --serve is the server benchmark: a closed loop of --clients
   concurrent clients replaying Q1-Q4 against D1-D4 over a Unix
   socket, split across two user groups, every reply byte-compared
   to the single-threaded Pipeline.answer baseline.  Writes
   throughput and per-group p50/p95/p99 to BENCH_PR3.json (or --out
   FILE).  --label stamps the results file with a run label (a
   machine nickname without leaking hostnames into the repo).

   --engines is the PR 4 ablation: the compiled-plan executor vs the
   set-at-a-time interpreter on Q1-Q4 x D1-D4, answers byte-compared,
   written to BENCH_PR4.json (or --out FILE).

   --mixed is the PR 8 study: mixed read/write serving at two groups
   (90/10 and 50/50 splits) plus a read-only pass at the PR 7 paths,
   written to BENCH_PR8.json (or --out FILE) so bench_diff can hold
   the read path to its PR 7 percentiles.

   --analyze is the PR 6 study: pairwise fleet-analysis cost over
   2/8/32 generated groups, plus an A/B of the server's admission
   fast path on a denied-heavy query mix, written to BENCH_PR6.json
   (or --out FILE). *)

module A = Sxpath.Ast
module R = Sdtd.Regex

(* all interpreter runs below go through the Ctx API *)
let eval ?env ?index p doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) p

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* Wall-time distribution of [reps] runs (after one warmup): a bare
   median hides scheduler noise; min is the contention-free floor and
   p95 the tail the server story cares about. *)
type stats = {
  t_min : float;
  t_median : float;
  t_p95 : float;
  t_samples : float array;  (** sorted, seconds — kept for the JSON dump *)
}

let measure_stats ?(reps = 5) f =
  ignore (f ());
  let times =
    Array.init reps (fun _ ->
        let _, dt = time_once f in
        dt)
  in
  Array.sort compare times;
  {
    t_min = times.(0);
    t_median = Sobs.Metrics.percentile times 50.;
    t_p95 = Sobs.Metrics.percentile times 95.;
    t_samples = times;
  }

let measure ?reps f = (measure_stats ?reps f).t_median

(* Point estimates plus the explicit-bucket histogram ([le] in ms,
   cumulative counts — the OpenMetrics shape): cross-PR tooling can
   difference whole distributions, not just three quantiles. *)
let stats_ms_json s =
  let reg = Sobs.Metrics.create () in
  Array.iter
    (fun dt -> Sobs.Metrics.observe reg "t" (1000. *. dt))
    s.t_samples;
  let buckets =
    List.map
      (fun (le, n) ->
        Sobs.Json.Obj [ ("le", Sobs.Json.Float le); ("n", Sobs.Json.Int n) ])
      (Sobs.Metrics.buckets reg "t")
    @ [
        Sobs.Json.Obj
          [
            ("le", Sobs.Json.String "+Inf");
            ("n", Sobs.Json.Int (Array.length s.t_samples));
          ];
      ]
  in
  Sobs.Json.Obj
    [
      ("min", Sobs.Json.Float (1000. *. s.t_min));
      ("median", Sobs.Json.Float (1000. *. s.t_median));
      ("p95", Sobs.Json.Float (1000. *. s.t_p95));
      ("buckets", Sobs.Json.List buckets);
    ]

(* machine-independent work measure: evaluator context×step visits *)
let visited_during f =
  let v0 = !Sxpath.Eval.visited in
  ignore (f ());
  !Sxpath.Eval.visited - v0

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

(* run metadata stamped into every BENCH_*.json so the perf
   trajectory across PRs stays comparable *)
let meta_json ~label ~scale ~reps extra =
  Sobs.Json.Obj
    ([
       ("label", Sobs.Json.String label);
       ("scale", Sobs.Json.Int scale);
       ("reps", Sobs.Json.Int reps);
     ]
    @ extra)

let table1 ?(json_out = None) ~label ~scale ~reps () =
  let dtd = Workload.Adex.dtd in
  let spec = Workload.Adex.spec in
  let view = Workload.Adex.view () in
  Printf.printf "## Table 1: secure query evaluation (times in ms)\n\n";
  Printf.printf
    "Datasets are generated from the Adex-like DTD with the paper's\n\
     1 : 5 : 16 : 24 size progression (--scale %d).\n\n"
    scale;
  Printf.printf "%-6s %-4s %9s | %10s %10s %10s | %8s %8s\n" "Query" "Data"
    "elements" "Naive" "Rewrite" "Optimize" "N/R" "R/O";
  Printf.printf "%s\n" (String.make 78 '-');
  let rows = ref [] in
  let datasets = Workload.Datasets.series ~scale () in
  List.iter
    (fun ds ->
      let doc = Workload.Datasets.load ds in
      let elements = Sxml.Tree.count_elements doc in
      let prepared = Secview.Naive.prepare spec doc in
      List.iter
        (fun (qname, q) ->
          (* translation stages, measured separately so the results
             file carries the full per-stage breakdown *)
          let s_rewrite =
            measure_stats ~reps (fun () -> Secview.Rewrite.rewrite view q)
          in
          let naive_q = Secview.Naive.rewrite_query ~view q in
          let rewritten = Secview.Rewrite.rewrite view q in
          let s_optimize =
            measure_stats ~reps (fun () -> Secview.Optimize.optimize dtd rewritten)
          in
          let optimized = Secview.Optimize.optimize dtd rewritten in
          let count p d = List.length (eval p d) in
          let n_naive = count naive_q prepared in
          let n_rw = count rewritten doc in
          let n_opt = count optimized doc in
          if not (n_naive = n_rw && n_rw = n_opt) then
            Printf.printf
              "!! approaches disagree on %s/%s: naive %d rewrite %d \
               optimize %d\n"
              qname ds.Workload.Datasets.name n_naive n_rw n_opt;
          let s_naive =
            measure_stats ~reps (fun () -> eval naive_q prepared)
          in
          let s_rw =
            measure_stats ~reps (fun () -> eval rewritten doc)
          in
          let s_opt =
            measure_stats ~reps (fun () -> eval optimized doc)
          in
          let t_naive = s_naive.t_median
          and t_rw = s_rw.t_median
          and t_opt = s_opt.t_median in
          let ratio a b =
            if b > 1e-9 then Printf.sprintf "%7.1fx" (a /. b) else "      -"
          in
          Printf.printf
            "%-6s %-4s %9d | %10.3f %10.3f %10.3f | %s %s\n" qname
            ds.Workload.Datasets.name elements (1000. *. t_naive)
            (1000. *. t_rw) (1000. *. t_opt) (ratio t_naive t_rw)
            (ratio t_rw t_opt);
          if json_out <> None then
            rows :=
              Sobs.Json.Obj
                [
                  ("query", Sobs.Json.String qname);
                  ("dataset", Sobs.Json.String ds.Workload.Datasets.name);
                  ("elements", Sobs.Json.Int elements);
                  ("results", Sobs.Json.Int n_opt);
                  ( "stages_ms",
                    Sobs.Json.Obj
                      [
                        ("rewrite", stats_ms_json s_rewrite);
                        ("optimize", stats_ms_json s_optimize);
                      ] );
                  ( "eval_ms",
                    Sobs.Json.Obj
                      [
                        ("naive", stats_ms_json s_naive);
                        ("rewrite", stats_ms_json s_rw);
                        ("optimize", stats_ms_json s_opt);
                      ] );
                  ( "visited",
                    Sobs.Json.Obj
                      [
                        ( "naive",
                          Sobs.Json.Int
                            (visited_during (fun () ->
                                 eval naive_q prepared)) );
                        ( "rewrite",
                          Sobs.Json.Int
                            (visited_during (fun () ->
                                 eval rewritten doc)) );
                        ( "optimize",
                          Sobs.Json.Int
                            (visited_during (fun () ->
                                 eval optimized doc)) );
                      ] );
                ]
              :: !rows)
        Workload.Adex.queries;
      Printf.printf "%s\n" (String.make 78 '-'))
    datasets;
  Printf.printf
    "(N/R = naive/rewrite speedup; R/O = rewrite/optimize speedup.\n\
    \ '-' entries of the paper's table correspond to queries the\n\
    \ optimizer leaves unchanged: Q1 and Q2 here, where R/O stays ~1.)\n\n";
  match json_out with
  | None -> ()
  | Some path ->
    let doc =
      Sobs.Json.Obj
        [
          ("bench", Sobs.Json.String "table1");
          ("meta", meta_json ~label ~scale ~reps []);
          ("scale", Sobs.Json.Int scale);
          ("reps", Sobs.Json.Int reps);
          ("rows", Sobs.Json.List (List.rev !rows));
        ]
    in
    let oc = open_out path in
    Sobs.Json.to_channel oc doc;
    output_char oc '\n';
    close_out oc;
    Printf.printf "(machine-readable results written to %s)\n\n" path

(* ------------------------------------------------------------------ *)
(* Query forms (Section 6 prose)                                       *)

let forms () =
  let dtd = Workload.Adex.dtd in
  let view = Workload.Adex.view () in
  Printf.printf "## Query forms per strategy (Section 6 prose)\n\n";
  List.iter
    (fun (name, q) ->
      let naive_q = Secview.Naive.rewrite_query ~view q in
      let rewritten = Secview.Rewrite.rewrite view q in
      let optimized = Secview.Optimize.optimize dtd rewritten in
      Printf.printf "%s         %s\n" name (Sxpath.Print.to_string q);
      Printf.printf "  naive     %s\n" (Sxpath.Print.to_string naive_q);
      Printf.printf "  rewrite   %s\n" (Sxpath.Print.to_string rewritten);
      Printf.printf "  optimize  %s\n\n" (Sxpath.Print.to_string optimized))
    Workload.Adex.queries;
  let q4x =
    Sxpath.Parse.of_string
      "//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]"
  in
  Printf.printf
    "Q4-exclusive (the paper's rewritten Q4, killed by the exclusive\n\
     constraint at real-estate):\n";
  Printf.printf "  input     %s\n" (Sxpath.Print.to_string q4x);
  Printf.printf "  optimize  %s\n\n"
    (Sxpath.Print.to_string (Secview.Optimize.optimize dtd q4x))

(* ------------------------------------------------------------------ *)
(* Ablations (Bechamel)                                                *)

(* Synthetic DTD families for the derive-cost ablation. *)
let chain_dtd n =
  let name i = Printf.sprintf "c%d" i in
  Sdtd.Dtd.create ~root:(name 0)
    (List.init n (fun i ->
         if i = n - 1 then (name i, R.Str)
         else (name i, R.Elt (name (i + 1)))))

let fanout_dtd n =
  let name i = Printf.sprintf "f%d" i in
  Sdtd.Dtd.create ~root:"root"
    (("root", R.seq (List.init n (fun i -> R.Elt (name i))))
    :: List.init n (fun i -> (name i, R.Str)))

let choice_dtd n =
  let name i = Printf.sprintf "o%d" i in
  Sdtd.Dtd.create ~root:"root"
    (("root", R.choice (List.init n (fun i -> R.Elt (name i))))
    :: List.init n (fun i -> (name i, R.Str)))

let spec_hiding_every_other dtd =
  (* annotate every other edge N so derive exercises short-cuts and
     dummies, not just identity copying *)
  let edges =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) (Sdtd.Dtd.children_of dtd a))
      (Sdtd.Dtd.reachable dtd)
  in
  Secview.Spec.make dtd
    (List.filteri (fun i _ -> i mod 2 = 0) edges
    |> List.map (fun e -> (e, Secview.Spec.No)))

let bechamel_run tests =
  let open Bechamel in
  let open Toolkit in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> Printf.sprintf "%12.1f ns/run" ns
        | _ -> "n/a"
      in
      Printf.printf "  %-46s %s\n" name estimate)
    (List.sort compare rows)

let ablations ~quick () =
  let open Bechamel in
  let sizes = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128 ] in

  Printf.printf "## A1: view-derivation cost vs DTD size (quadratic claim)\n";
  bechamel_run
    (Test.make_grouped ~name:"derive"
       (List.concat_map
          (fun n ->
            List.map
              (fun (family, make) ->
                let dtd = make n in
                let spec = spec_hiding_every_other dtd in
                Test.make
                  ~name:(Printf.sprintf "%s/%03d" family n)
                  (Staged.stage (fun () -> Secview.Derive.derive spec)))
              [ ("chain", chain_dtd); ("fanout", fanout_dtd);
                ("choice", choice_dtd) ])
          sizes));
  Printf.printf "\n";

  Printf.printf
    "## A2: rewrite cost vs query size and view DTD (O(|p|*|Dv|^2) claim)\n";
  let hospital_view =
    Secview.Derive.derive (Workload.Hospital.nurse_spec Workload.Hospital.dtd)
  in
  let adex_view = Workload.Adex.view () in
  let queries =
    [
      ("q04", "//bill");
      ("q08", "//patient//bill");
      ("q16", "//dept//patientInfo//patient//bill");
      ("q24", "//dept//patientInfo//patient[name and wardNo]//treatment//bill");
    ]
  in
  bechamel_run
    (Test.make_grouped ~name:"rewrite"
       (List.map
          (fun (name, q) ->
            let p = Sxpath.Parse.of_string q in
            Test.make
              ~name:(Printf.sprintf "hospital/%s(|p|=%d)" name (A.size p))
              (Staged.stage (fun () -> Secview.Rewrite.rewrite hospital_view p)))
          queries
       @ List.map
           (fun (name, q) ->
             Test.make ~name:("adex/" ^ name)
               (Staged.stage (fun () ->
                    Secview.Rewrite.rewrite adex_view q)))
           Workload.Adex.queries));
  Printf.printf "\n";

  Printf.printf
    "## A3: optimizer machinery — constraint decisions and containment\n";
  let coexist =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", R.Star (R.Elt "a")); ("a", R.Seq [ R.Elt "b"; R.Elt "c" ]);
        ("b", R.Str); ("c", R.Str) ]
  in
  let exclusive =
    Sdtd.Dtd.create ~root:"r"
      [ ("r", R.Star (R.Elt "a")); ("a", R.Choice [ R.Elt "b"; R.Elt "c" ]);
        ("b", R.Str); ("c", R.Str) ]
  in
  let qand = Sxpath.Parse.qual_of_string "b and c" in
  let adex_dtd = Workload.Adex.dtd in
  let q3_rewritten = Secview.Rewrite.rewrite adex_view Workload.Adex.q3 in
  bechamel_run
    (Test.make_grouped ~name:"optimize"
       [
         Test.make ~name:"bool_of_qual/co-existence"
           (Staged.stage (fun () -> Secview.Image.bool_of_qual coexist qand "a"));
         Test.make ~name:"bool_of_qual/exclusive"
           (Staged.stage (fun () ->
                Secview.Image.bool_of_qual exclusive qand "a"));
         Test.make ~name:"containment/diamond"
           (Staged.stage (fun () ->
                Secview.Simulate.contained coexist
                  (Sxpath.Parse.of_string "a/b")
                  (Sxpath.Parse.of_string "a/*")
                  "r"));
         Test.make ~name:"optimize/adex-q3"
           (Staged.stage (fun () ->
                Secview.Optimize.optimize adex_dtd q3_rewritten));
         Test.make ~name:"optimize/adex-q4x"
           (Staged.stage (fun () ->
                Secview.Optimize.optimize adex_dtd
                  (Sxpath.Parse.of_string
                     "//real-estate[house/r-e.asking-price and \
                      apartment/r-e.unit-type]")));
       ]);
  Printf.printf "\n";

  Printf.printf "## A4: recursive views — unfolding depth vs rewrite cost\n";
  let fig7_view = Workload.Fig7.view () in
  let heights = if quick then [ 5; 9 ] else [ 3; 5; 9; 13; 17 ] in
  bechamel_run
    (Test.make_grouped ~name:"unfold-rewrite"
       (List.map
          (fun h ->
            Test.make
              ~name:(Printf.sprintf "height-%02d" h)
              (Staged.stage (fun () ->
                   Secview.Rewrite.rewrite_with_height fig7_view ~height:h
                     (Sxpath.Parse.of_string "//b"))))
          heights));
  List.iter
    (fun h ->
      let pt =
        Secview.Rewrite.rewrite_with_height fig7_view ~height:h
          (Sxpath.Parse.of_string "//b")
      in
      Printf.printf "  height %2d: |p_t| = %d\n" h (A.size pt))
    heights;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* A5: the evaluator's tag-index fast path                             *)

let index_ablation ~scale ~reps () =
  Printf.printf
    "## A5: evaluator tag-index ablation (beyond the paper: the same\n\
    \   rewritten queries over a scan-based vs. an indexed evaluator)\n\n";
  let view = Workload.Adex.view () in
  let doc =
    Workload.Datasets.load { Workload.Datasets.name = "D3"; ads = scale * 16;
                             buyers = scale * 8 }
  in
  let idx = Sxml.Index.build doc in
  Printf.printf "document: %s\n\n" (Workload.Datasets.describe doc);
  Printf.printf "%-6s | %10s %10s | %8s\n" "Query" "scan" "indexed" "speedup";
  Printf.printf "%s\n" (String.make 44 '-');
  List.iter
    (fun (name, q) ->
      let pt = Secview.Rewrite.rewrite view q in
      let t_scan = measure ~reps (fun () -> eval pt doc) in
      let t_idx =
        measure ~reps (fun () -> eval ~index:idx pt doc)
      in
      (* the naive loosened form benefits far more: it is all
         descendant steps *)
      let naive_q = Secview.Naive.rewrite_query ~view q in
      let prepared = Secview.Naive.prepare Workload.Adex.spec doc in
      let pidx = Sxml.Index.build prepared in
      let tn_scan = measure ~reps (fun () -> eval naive_q prepared) in
      let tn_idx =
        measure ~reps (fun () -> eval ~index:pidx naive_q prepared)
      in
      let spd a b = if b > 1e-9 then Printf.sprintf "%7.1fx" (a /. b) else "      -" in
      Printf.printf "%-6s | %10.3f %10.3f | %s   (naive: %.1f -> %.1f ms, %s)\n"
        name (1000. *. t_scan) (1000. *. t_idx) (spd t_scan t_idx)
        (1000. *. tn_scan) (1000. *. tn_idx) (spd tn_scan tn_idx))
    Workload.Adex.queries;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* A6: the recursive XMark-flavoured workload                          *)

let xmark_bench ~reps () =
  Printf.printf
    "## A6: recursive workload (XMark-flavoured auction site; recursive\n\
    \   document DTD and recursive security view, unfolded per document)\n\n";
  let dtd = Workload.Xmark.dtd in
  let spec = Workload.Xmark.spec in
  let view = Workload.Xmark.view () in
  let doc = Workload.Xmark.document ~scale:60 () in
  let height = Workload.Xmark.element_height doc in
  Printf.printf "document: %s (element height %d)\n\n"
    (Workload.Datasets.describe doc)
    height;
  let prepared = Secview.Naive.prepare spec doc in
  Printf.printf "%-6s %8s | %10s %10s %10s\n" "Query" "results" "Naive"
    "Rewrite" "Optimize";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun (name, q) ->
      let naive_q = Secview.Naive.rewrite_query ~view q in
      let rewritten = Secview.Rewrite.rewrite_with_height view ~height q in
      let optimized = Secview.Optimize.optimize dtd rewritten in
      let n = List.length (eval rewritten doc) in
      let t_naive = measure ~reps (fun () -> eval naive_q prepared) in
      let t_rw = measure ~reps (fun () -> eval rewritten doc) in
      let t_opt = measure ~reps (fun () -> eval optimized doc) in
      Printf.printf "%-6s %8d | %10.3f %10.3f %10.3f\n" name n
        (1000. *. t_naive) (1000. *. t_rw) (1000. *. t_opt))
    Workload.Xmark.queries;
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* Approximation quality of the containment test                       *)

let approx () =
  Printf.printf
    "## Approximation quality of the simulation containment test\n\
    \   (Prop. 5.1 is sound but incomplete; instance sampling gives a\n\
    \   one-sided reference: refuted pairs are definitely not contained)\n\n";
  let cases =
    [
      ( "adex",
        Workload.Adex.dtd,
        [
          "//buyer-info"; "//buyer-info/contact-info"; "//contact-info";
          "//house"; "//house/r-e.warranty"; "//real-estate/*";
          "//real-estate/house"; "head/buyer-info"; "//name"; "//*";
          "//location/city"; "//city";
        ] );
      ( "hospital",
        Workload.Hospital.dtd,
        [
          "//patient"; "//patient/name"; "//name";
          "dept/(clinicalTrial | .)/patientInfo/patient"; "//dept//patient";
          "//treatment/*"; "//treatment/trial"; "//bill"; "//*[bill]";
          "//patient[treatment/trial]";
        ] );
    ]
  in
  List.iter
    (fun (name, dtd, queries) ->
      let queries = List.map Sxpath.Parse.of_string queries in
      let stats = Secview.Containment.measure ~samples:15 dtd ~queries in
      Format.printf "%-10s %a@." name Secview.Containment.pp_stats stats;
      assert (stats.Secview.Containment.claimed_and_refuted = 0))
    cases;
  Printf.printf
    "\n\
     Silent-but-unrefuted pairs bound the completeness loss from above\n\
     (instance sampling can miss witnesses, so the true loss is lower).\n\n"

(* ------------------------------------------------------------------ *)
(* Server benchmark: closed-loop concurrent clients over a Unix       *)
(* socket, every reply byte-compared to the single-threaded baseline  *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let connect_retry path =
  let give_up = Unix.gettimeofday () +. 5. in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Unix.gettimeofday () < give_up ->
      Unix.close fd;
      Thread.delay 0.02;
      go ()
  in
  go ()

let serve_bench ~label ~scale ~reps ~clients ~out () =
  let dtd = Workload.Adex.dtd in
  (* two user groups: the paper's real-estate policy and an
     everything-accessible one, so per-group accounting has two
     distinct translation caches and latency series to show *)
  let groups =
    [ ("re", Workload.Adex.spec); ("all", Secview.Spec.make dtd []) ]
  in
  let docs =
    List.map
      (fun ds -> (ds.Workload.Datasets.name, Workload.Datasets.load ds))
      (Workload.Datasets.series ~scale ())
  in
  Printf.printf "## Server bench: %d clients x %d reps, Q1-Q4 x D1-D4, \
                 groups re+all\n\n" clients reps;
  (* the byte-exact expected reply for every (group, query, dataset)
     cell, computed single-threaded before the server exists *)
  let reference =
    Secview.Pipeline.Session.create (Secview.Pipeline.Service.create dtd ~groups)
  in
  let expected =
    List.concat_map
      (fun (g, _) ->
        List.concat_map
          (fun (qname, q) ->
            List.map
              (fun (dname, doc) ->
                let answers =
                  Secview.Pipeline.Session.answer_exn reference ~group:g q doc
                in
                ( (g, qname, dname),
                  String.concat "\n"
                    (List.map (fun n -> Sxml.Print.to_string n) answers) ))
              docs)
          Workload.Adex.queries)
      groups
  in
  let catalog = Secview.Catalog.create () in
  List.iter
    (fun (n, d) -> ignore (Secview.Catalog.add catalog ~name:n d))
    docs;
  let service = Secview.Pipeline.Service.create ~catalog dtd ~groups in
  let workers = 4 in
  let config = { Sserver.Server.default_config with domains = workers } in
  let server = Sserver.Server.create ~config service in
  let sock = Filename.temp_file "secview-bench" ".sock" in
  Sys.remove sock;
  let server_thread =
    Thread.create
      (fun () ->
        Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
      ()
  in
  let wrong = Atomic.make 0 in
  let merge_lock = Mutex.create () in
  let latencies : (string, float list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter (fun (g, _) -> Hashtbl.replace latencies g (ref [])) groups;
  let client i () =
    let g, _ = List.nth groups (i mod List.length groups) in
    let fd = connect_retry sock in
    let ic = Unix.in_channel_of_descr fd in
    let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
    send (Sserver.Protocol.hello ~peer:(Printf.sprintf "bench-%d" i) g);
    ignore (input_line ic);
    let mine = ref [] in
    for _ = 1 to reps do
      List.iter
        (fun (qname, q) ->
          List.iter
            (fun (dname, _) ->
              let t0 = Unix.gettimeofday () in
              send
                (Sserver.Protocol.query_json ~doc:dname
                   (Sxpath.Print.to_string q));
              let line = input_line ic in
              mine := (Unix.gettimeofday () -. t0) :: !mine;
              let got =
                match Sobs.Json.of_string line with
                | Ok j -> (
                  match Sobs.Json.member "results" j with
                  | Some (Sobs.Json.List rs) ->
                    Some
                      (String.concat "\n"
                         (List.filter_map Sobs.Json.to_string_opt rs))
                  | _ -> None)
                | Error _ -> None
              in
              match got with
              | Some s when String.equal s (List.assoc (g, qname, dname) expected)
                -> ()
              | _ -> Atomic.incr wrong)
            docs)
        Workload.Adex.queries
    done;
    Unix.close fd;
    Mutex.protect merge_lock (fun () ->
        let acc = Hashtbl.find latencies g in
        acc := !mine @ !acc)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (* drain: one more connection asks for shutdown, then join *)
  let fd = connect_retry sock in
  write_all fd (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
  ignore (input_line (Unix.in_channel_of_descr fd));
  Unix.close fd;
  Thread.join server_thread;
  let requests =
    clients * reps * List.length Workload.Adex.queries * List.length docs
  in
  let group_stats =
    List.map
      (fun (g, _) ->
        let times = Array.of_list !(Hashtbl.find latencies g) in
        Array.sort compare times;
        let pct p =
          if Array.length times = 0 then 0.
          else 1000. *. Sobs.Metrics.percentile times p
        in
        (g, Array.length times, pct 50., pct 95., pct 99.))
      groups
  in
  Printf.printf "requests   %d (wrong: %d)\n" requests (Atomic.get wrong);
  Printf.printf "wall       %.2f s\n" wall;
  Printf.printf "throughput %.0f req/s\n\n" (float_of_int requests /. wall);
  List.iter
    (fun (g, n, p50, p95, p99) ->
      Printf.printf
        "group %-4s  %6d req | p50 %8.3f ms  p95 %8.3f ms  p99 %8.3f ms\n" g
        n p50 p95 p99)
    group_stats;
  if Atomic.get wrong > 0 then
    Printf.printf "\n!! %d replies differed from the single-threaded baseline\n"
      (Atomic.get wrong);
  let doc =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "serve");
        ( "meta",
          meta_json ~label ~scale ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("workers", Sobs.Json.Int workers);
            ] );
        ("requests", Sobs.Json.Int requests);
        ("wrong", Sobs.Json.Int (Atomic.get wrong));
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ( "groups",
          Sobs.Json.Obj
            (List.map
               (fun (g, n, p50, p95, p99) ->
                 ( g,
                   Sobs.Json.Obj
                     [
                       ("count", Sobs.Json.Int n);
                       ("p50_ms", Sobs.Json.Float p50);
                       ("p95_ms", Sobs.Json.Float p95);
                       ("p99_ms", Sobs.Json.Float p99);
                     ] ))
               group_stats) );
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out;
  if Atomic.get wrong > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Engine ablation: the PR 4 physical-plan executor vs the            *)
(* interpreter, same translated queries, byte-compared answers        *)

let engines_bench ~label ~scale ~reps ~out () =
  let dtd = Workload.Adex.dtd in
  let groups = [ ("re", Workload.Adex.spec) ] in
  Printf.printf
    "## Engine ablation: interpreter vs compiled plans (times in ms)\n\n\
     Same pipeline, same translated queries; both engines get the\n\
     document's tag/extent index, so the delta is plan execution\n\
     (binary-searched interval joins) vs the set-at-a-time\n\
     interpreter.  Answers are byte-compared per cell.\n\n";
  Printf.printf "%-6s %-4s %9s %8s | %10s %10s | %8s\n" "Query" "Data"
    "elements" "results" "Interp" "Plan" "I/P";
  Printf.printf "%s\n" (String.make 66 '-');
  let catalog = Secview.Catalog.create () in
  let pipe =
    Secview.Pipeline.Session.create
      (Secview.Pipeline.Service.create ~catalog dtd ~groups)
  in
  let rows = ref [] in
  let mismatches = ref 0 in
  List.iter
    (fun ds ->
      let doc = Workload.Datasets.load ds in
      let elements = Sxml.Tree.count_elements doc in
      let index = Sxml.Index.build doc in
      List.iter
        (fun (qname, q) ->
          let run engine () =
            Secview.Pipeline.Session.answer_exn pipe ~group:"re" ~engine
              ~index q doc
          in
          let render ns =
            String.concat "\n" (List.map (fun n -> Sxml.Print.to_string n) ns)
          in
          let a_interp = render (run Secview.Pipeline.Interp ()) in
          let a_plan = render (run Secview.Pipeline.Plan ()) in
          let identical = String.equal a_interp a_plan in
          if not identical then begin
            incr mismatches;
            Printf.printf "!! engines disagree on %s/%s\n" qname
              ds.Workload.Datasets.name
          end;
          let s_interp =
            measure_stats ~reps (run Secview.Pipeline.Interp)
          in
          let s_plan = measure_stats ~reps (run Secview.Pipeline.Plan) in
          let ratio a b =
            if b > 1e-9 then Printf.sprintf "%7.1fx" (a /. b) else "      -"
          in
          let results =
            List.length (run Secview.Pipeline.Plan ())
          in
          Printf.printf "%-6s %-4s %9d %8d | %10.3f %10.3f | %s\n" qname
            ds.Workload.Datasets.name elements results
            (1000. *. s_interp.t_median) (1000. *. s_plan.t_median)
            (ratio s_interp.t_median s_plan.t_median);
          rows :=
            Sobs.Json.Obj
              [
                ("query", Sobs.Json.String qname);
                ("dataset", Sobs.Json.String ds.Workload.Datasets.name);
                ("elements", Sobs.Json.Int elements);
                ("results", Sobs.Json.Int results);
                ("identical", Sobs.Json.Bool identical);
                ( "eval_ms",
                  Sobs.Json.Obj
                    [
                      ("interp", stats_ms_json s_interp);
                      ("plan", stats_ms_json s_plan);
                    ] );
              ]
            :: !rows)
        Workload.Adex.queries;
      Printf.printf "%s\n" (String.make 66 '-'))
    (Workload.Datasets.series ~scale ());
  let stats : Secview.Pipeline.stats =
    Secview.Pipeline.Session.stats_of pipe ~group:"re"
  in
  Printf.printf
    "plan cache: %d hit(s) %d miss(es), %d compiled, %d fallback(s)\n\n"
    stats.Secview.Pipeline.plan_hits stats.Secview.Pipeline.plan_misses
    stats.Secview.Pipeline.plan_compiles stats.Secview.Pipeline.plan_fallbacks;
  let doc =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "engines");
        ("meta", meta_json ~label ~scale ~reps []);
        ("mismatches", Sobs.Json.Int !mismatches);
        ( "plan_cache",
          Sobs.Json.Obj
            [
              ("hits", Sobs.Json.Int stats.Secview.Pipeline.plan_hits);
              ("misses", Sobs.Json.Int stats.Secview.Pipeline.plan_misses);
              ("compiles", Sobs.Json.Int stats.Secview.Pipeline.plan_compiles);
              ( "fallbacks",
                Sobs.Json.Int stats.Secview.Pipeline.plan_fallbacks );
            ] );
        ("rows", Sobs.Json.List (List.rev !rows));
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "(machine-readable results written to %s)\n\n" out;
  if !mismatches > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* PR 6: the semantic analyzer's cost, and what the server's          *)
(* admission fast path buys on a denied-heavy query mix               *)

let analyze_bench ~label ~reps ~out () =
  let dtd = Workload.Hospital.dtd in
  (* a fleet of distinct groups: toggle 5 annotation slots of a
     variable-free nurse-like policy — every subset is a valid access
     specification over the hospital DTD, so 32 bit patterns give 32
     genuinely different accessible regions *)
  let trial_depts = Sxpath.Parse.qual_of_string "*/patient/treatment/trial" in
  let slots =
    [|
      (("hospital", "dept"), Secview.Spec.Cond trial_depts);
      (("dept", "clinicalTrial"), Secview.Spec.No);
      (("clinicalTrial", "patientInfo"), Secview.Spec.Yes);
      (("treatment", "trial"), Secview.Spec.No);
      (("treatment", "regular"), Secview.Spec.No);
    |]
  in
  let group i =
    let annots =
      List.filteri (fun b _ -> (i lsr b) land 1 = 1) (Array.to_list slots)
    in
    ( Printf.sprintf "g%02d" i,
      Secview.Derive.derive (Secview.Spec.make dtd annots) )
  in
  Printf.printf "## Analyzer bench: pairwise fleet analysis, %d reps\n\n" reps;
  let fleet_cells =
    List.map
      (fun n ->
        let views = List.init n group in
        (* the warmup inside measure_stats fills Image's
           process-global memo tables: the measured medians are the
           steady-state cost a long-lived server pays *)
        let s =
          measure_stats ~reps (fun () -> Sanalysis.Semantic.fleet dtd views)
        in
        let pairs = n * (n - 1) / 2 in
        Printf.printf
          "groups %2d  (%3d pairs): median %8.2f ms  (%.3f ms/pair)\n" n pairs
          (1000. *. s.t_median)
          (1000. *. s.t_median /. float_of_int pairs);
        (n, pairs, s))
      [ 2; 8; 32 ]
  in
  (* ---- serve A/B: admission fast path on a denied-heavy mix ------- *)
  (* 4 provably-empty queries to 1 real one — the mix of a client
     population probing for structure its view hides *)
  let mix =
    [
      ("denied", "//test");
      ("denied", "//clinicalTrial");
      ("denied", "//trial");
      ("denied", "//medication/name");
      ("eval", "//patient/name");
    ]
  in
  let kinds = [ "denied"; "eval" ] in
  let clients = 8 in
  let rounds = 25 * reps in
  let serve_mix ~admission =
    let catalog = Secview.Catalog.create () in
    let doc = Workload.Hospital.generated_document ~seed:7 ~scale:40 () in
    ignore (Secview.Catalog.add catalog ~name:"ward" doc);
    let service =
      Secview.Pipeline.Service.create ~catalog dtd
        ~groups:[ ("nurse", Workload.Hospital.nurse_spec dtd) ]
    in
    let config =
      { Sserver.Server.default_config with domains = 4; admission }
    in
    let server = Sserver.Server.create ~config service in
    let sock = Filename.temp_file "secview-bench" ".sock" in
    Sys.remove sock;
    let server_thread =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let lock = Mutex.create () in
    let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 2 in
    List.iter (fun k -> Hashtbl.replace samples k (ref [])) kinds;
    let client i () =
      let fd = connect_retry sock in
      let ic = Unix.in_channel_of_descr fd in
      let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
      send (Sserver.Protocol.hello ~peer:(Printf.sprintf "ab-%d" i) "nurse");
      ignore (input_line ic);
      let mine = Hashtbl.create 2 in
      List.iter (fun k -> Hashtbl.replace mine k (ref [])) kinds;
      for _ = 1 to rounds do
        List.iter
          (fun (kind, q) ->
            let t0 = Unix.gettimeofday () in
            send
              (Sserver.Protocol.query_json ~doc:"ward"
                 ~bind:[ ("wardNo", "6") ] q);
            ignore (input_line ic);
            let dt = Unix.gettimeofday () -. t0 in
            let acc = Hashtbl.find mine kind in
            acc := dt :: !acc)
          mix
      done;
      Unix.close fd;
      Mutex.protect lock (fun () ->
          List.iter
            (fun k ->
              let acc = Hashtbl.find samples k in
              acc := !(Hashtbl.find mine k) @ !acc)
            kinds)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let fd = connect_retry sock in
    write_all fd
      (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
    ignore (input_line (Unix.in_channel_of_descr fd));
    Unix.close fd;
    Thread.join server_thread;
    let requests = clients * rounds * List.length mix in
    let pct kind p =
      let times = Array.of_list !(Hashtbl.find samples kind) in
      Array.sort compare times;
      if Array.length times = 0 then 0.
      else 1000. *. Sobs.Metrics.percentile times p
    in
    (requests, wall, pct)
  in
  Printf.printf
    "\n## Admission fast path A/B: %d clients, 4 denied : 1 eval mix\n\n"
    clients;
  let ab =
    List.map
      (fun admission ->
        let requests, wall, pct = serve_mix ~admission in
        Printf.printf
          "admission %-3s  %6d req in %6.2f s (%7.0f req/s) | denied p50 \
           %7.3f ms p95 %7.3f ms | eval p50 %7.3f ms\n"
          (if admission then "on" else "off")
          requests wall
          (float_of_int requests /. wall)
          (pct "denied" 50.) (pct "denied" 95.) (pct "eval" 50.);
        (admission, requests, wall, pct))
      [ true; false ]
  in
  let doc =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "analyze");
        ( "meta",
          meta_json ~label ~scale:40 ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("rounds", Sobs.Json.Int rounds);
            ] );
        ( "fleet",
          Sobs.Json.List
            (List.map
               (fun (n, pairs, s) ->
                 Sobs.Json.Obj
                   [
                     ("groups", Sobs.Json.Int n);
                     ("pairs", Sobs.Json.Int pairs);
                     ("ms", stats_ms_json s);
                   ])
               fleet_cells) );
        ( "admission",
          Sobs.Json.Obj
            (List.map
               (fun (admission, requests, wall, pct) ->
                 ( (if admission then "on" else "off"),
                   Sobs.Json.Obj
                     [
                       ("requests", Sobs.Json.Int requests);
                       ("wall_s", Sobs.Json.Float wall);
                       ( "throughput_rps",
                         Sobs.Json.Float (float_of_int requests /. wall) );
                       ("denied_p50_ms", Sobs.Json.Float (pct "denied" 50.));
                       ("denied_p95_ms", Sobs.Json.Float (pct "denied" 95.));
                       ("eval_p50_ms", Sobs.Json.Float (pct "eval" 50.));
                       ("eval_p95_ms", Sobs.Json.Float (pct "eval" 95.));
                     ] ))
               ab) );
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out

(* ------------------------------------------------------------------ *)
(* PR 7: what attaching the observability spine (request spans, the
   flight recorder, a capture sink) costs on the serve hot path, and
   how a local replay of the captured workload compares to the live
   latencies it recorded *)

let pr7_bench ~label ~reps ~out () =
  let dtd = Workload.Hospital.dtd in
  let scale = 40 in
  let mix = [ "//patient/name"; "//patient/wardNo"; "//patient" ] in
  let clients = 8 in
  let rounds = 25 * reps in
  let fresh_pipeline () =
    let catalog = Secview.Catalog.create () in
    let doc = Workload.Hospital.generated_document ~seed:7 ~scale () in
    ignore (Secview.Catalog.add catalog ~name:"ward" doc);
    ( Secview.Pipeline.Service.create ~catalog dtd
        ~groups:[ ("nurse", Workload.Hospital.nurse_spec dtd) ],
      doc )
  in
  (* the same closed-loop mix against two servers: bare, and with the
     full observability spine attached — per-request span trees, a
     256-entry flight recorder, and a capture file recording every
     answered query *)
  let serve_mix ~observed =
    let service, _ = fresh_pipeline () in
    let config = { Sserver.Server.default_config with domains = 4 } in
    let capture_path =
      if observed then Some (Filename.temp_file "secview-pr7" ".jsonl")
      else None
    in
    let tracer =
      if observed then begin
        let tr = Sobs.Tracer.create ~retain:false () in
        Sobs.Tracer.install tr;
        Some tr
      end
      else None
    in
    let recorder =
      if observed then Some (Sobs.Recorder.create ~capacity:256) else None
    in
    let cap = Option.map Sobs.Capture.open_file capture_path in
    let server =
      Sserver.Server.create ~config ?tracer ?recorder ?capture:cap service
    in
    let sock = Filename.temp_file "secview-bench" ".sock" in
    Sys.remove sock;
    let server_thread =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let lock = Mutex.create () in
    let samples = ref [] in
    let client i () =
      let fd = connect_retry sock in
      let ic = Unix.in_channel_of_descr fd in
      let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
      send (Sserver.Protocol.hello ~peer:(Printf.sprintf "pr7-%d" i) "nurse");
      ignore (input_line ic);
      let mine = ref [] in
      for _ = 1 to rounds do
        List.iter
          (fun q ->
            let t0 = Unix.gettimeofday () in
            send
              (Sserver.Protocol.query_json ~doc:"ward"
                 ~bind:[ ("wardNo", "6") ] q);
            ignore (input_line ic);
            mine := (Unix.gettimeofday () -. t0) :: !mine)
          mix
      done;
      Unix.close fd;
      Mutex.protect lock (fun () -> samples := !mine @ !samples)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let fd = connect_retry sock in
    write_all fd
      (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
    ignore (input_line (Unix.in_channel_of_descr fd));
    Unix.close fd;
    Thread.join server_thread;
    (match tracer with Some _ -> Sobs.Tracer.uninstall () | None -> ());
    let requests = clients * rounds * List.length mix in
    let times = Array.of_list !samples in
    Array.sort compare times;
    let pct p = 1000. *. Sobs.Metrics.percentile times p in
    (requests, wall, pct, capture_path)
  in
  Printf.printf
    "## Flight recorder A/B: %d clients, %d rounds, %d-query mix (serve)\n\n"
    clients rounds (List.length mix);
  let side observed =
    let requests, wall, pct, capture_path = serve_mix ~observed in
    Printf.printf
      "recorder %-3s  %6d req in %6.2f s (%7.0f req/s) | p50 %7.3f ms  p95 \
       %7.3f ms  p99 %7.3f ms\n"
      (if observed then "on" else "off")
      requests wall
      (float_of_int requests /. wall)
      (pct 50.) (pct 95.) (pct 99.);
    (requests, wall, pct, capture_path)
  in
  let off = side false in
  let on = side true in
  let side_json (requests, wall, pct, _) =
    Sobs.Json.Obj
      [
        ("requests", Sobs.Json.Int requests);
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ("p50_ms", Sobs.Json.Float (pct 50.));
        ("p95_ms", Sobs.Json.Float (pct 95.));
        ("p99_ms", Sobs.Json.Float (pct 99.));
      ]
  in
  (* ---- replay-vs-live: re-execute the observed run's capture ------ *)
  let records =
    match on with
    | _, _, _, Some path -> (
      match Sobs.Capture.read_file path with
      | Ok rs ->
        Sys.remove path;
        rs
      | Error e -> failwith (Printf.sprintf "pr7: %s" e))
    | _ -> []
  in
  let svc, doc = fresh_pipeline () in
  let pipe = Secview.Pipeline.Session.create svc in
  let mismatches = ref 0 in
  let cap_ms = ref [] and rep_ms = ref [] in
  List.iter
    (fun (r : Sobs.Capture.record) ->
      let engine =
        match Secview.Pipeline.engine_of_string r.c_engine with
        | Some e -> e
        | None -> failwith ("pr7: unknown engine " ^ r.c_engine)
      in
      let q = Sxpath.Parse.of_string r.c_query in
      let env name = List.assoc_opt name r.c_bind in
      let t0 = Unix.gettimeofday () in
      let nodes =
        Secview.Pipeline.Session.answer_exn pipe ~group:r.c_group ~engine
          ~env q doc
      in
      let ms = 1000. *. (Unix.gettimeofday () -. t0) in
      let rendered = List.map (fun n -> Sxml.Print.to_string n) nodes in
      if Sobs.Capture.digest rendered <> r.c_digest then incr mismatches;
      cap_ms := r.c_latency_ms :: !cap_ms;
      rep_ms := ms :: !rep_ms)
    records;
  let pct l p =
    let a = Array.of_list !l in
    Array.sort compare a;
    if Array.length a = 0 then 0. else Sobs.Metrics.percentile a p
  in
  Printf.printf
    "\n\
     ## Replay vs live: %d captured record(s), %d digest mismatch(es)\n\n\
     live     p50 %7.3f ms  p95 %7.3f ms\n\
     replayed p50 %7.3f ms  p95 %7.3f ms  (local pipeline, no socket, \
     no queueing)\n"
    (List.length records) !mismatches (pct cap_ms 50.) (pct cap_ms 95.)
    (pct rep_ms 50.) (pct rep_ms 95.);
  let doc_json =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "pr7");
        ( "meta",
          meta_json ~label ~scale ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("rounds", Sobs.Json.Int rounds);
            ] );
        ( "recorder",
          Sobs.Json.Obj [ ("off", side_json off); ("on", side_json on) ] );
        ( "replay",
          Sobs.Json.Obj
            [
              ("records", Sobs.Json.Int (List.length records));
              ("mismatches", Sobs.Json.Int !mismatches);
              ( "captured",
                Sobs.Json.Obj
                  [
                    ("p50_ms", Sobs.Json.Float (pct cap_ms 50.));
                    ("p95_ms", Sobs.Json.Float (pct cap_ms 95.));
                  ] );
              ( "replayed",
                Sobs.Json.Obj
                  [
                    ("p50_ms", Sobs.Json.Float (pct rep_ms 50.));
                    ("p95_ms", Sobs.Json.Float (pct rep_ms 95.));
                  ] );
            ] );
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc_json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out;
  if !mismatches > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* PR 8: mixed read/write serving.  A read-only pass reproduces the
   PR 7 hot path at the same JSON paths (under recorder.off), so
   bench_diff can hold the read path to its PR 7 percentiles; then
   two mixed passes (90/10 and 50/50 read/write) at two groups
   measure what transactional updates — writer lock, copy-on-write
   rebuild, snapshot swap, targeted cache invalidation — cost
   writers while readers keep answering from pinned snapshots. *)

let pr8_bench ~label ~reps ~out () =
  let dtd = Workload.Hospital.dtd in
  let scale = 40 in
  let mix = [ "//patient/name"; "//patient/wardNo"; "//patient" ] in
  let update_text = "replace //patient//bill with <bill>7</bill>" in
  let clients = 8 in
  let rounds = 25 * reps in
  let bill_grants =
    [
      (("trial", "bill"), [ Secview.Spec.Replace ]);
      (("regular", "bill"), [ Secview.Spec.Replace ]);
    ]
  in
  let fresh_pipeline () =
    let catalog = Secview.Catalog.create () in
    let doc = Workload.Hospital.generated_document ~seed:7 ~scale () in
    ignore (Secview.Catalog.add catalog ~name:"ward" doc);
    Secview.Pipeline.Service.create ~catalog dtd
      ~groups:
        [
          ("nurse", Workload.Hospital.nurse_spec ~write:bill_grants dtd);
          ("admin", Secview.Spec.make ~write:bill_grants dtd []);
        ]
  in
  (* one closed-loop pass; every [write_every]-th request is an
     update (0 = read-only) *)
  let run_pass ~write_every =
    let service = fresh_pipeline () in
    let config = { Sserver.Server.default_config with domains = 4 } in
    let server = Sserver.Server.create ~config service in
    let sock = Filename.temp_file "secview-pr8" ".sock" in
    Sys.remove sock;
    let server_thread =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let lock = Mutex.create () in
    let reads = ref [] and writes = ref [] in
    let failures = ref 0 in
    let qmix = Array.of_list mix in
    let n = Array.length qmix in
    let client i () =
      (* the read-only pass keeps every client on the nurse group so
         its numbers stay comparable to the PR 7 read benchmark; the
         mixed passes split clients across both groups (the admin
         view is the whole document, so its reads return more) *)
      let group =
        if write_every > 0 && i land 1 = 1 then "admin" else "nurse"
      in
      let fd = connect_retry sock in
      let ic = Unix.in_channel_of_descr fd in
      let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
      send (Sserver.Protocol.hello ~peer:(Printf.sprintf "pr8-%d" i) group);
      ignore (input_line ic);
      let mine_r = ref [] and mine_w = ref [] and mine_f = ref 0 in
      for k = 0 to (rounds * n) - 1 do
        let is_write =
          write_every > 0 && k mod write_every = write_every - 1
        in
        let t0 = Unix.gettimeofday () in
        (if is_write then
           send
             (Sserver.Protocol.update_json ~doc:"ward"
                ~bind:[ ("wardNo", "6") ] update_text)
         else
           send
             (Sserver.Protocol.query_json ~doc:"ward"
                ~bind:[ ("wardNo", "6") ]
                qmix.(k mod n)));
        let line = input_line ic in
        let ms = 1000. *. (Unix.gettimeofday () -. t0) in
        (* replies put "ok" first; a prefix check keeps client-side
           work off this machine's CPU (a full JSON parse of every
           result list would compete with the server's workers) *)
        if not (String.length line >= 10 && String.sub line 0 10 = {|{"ok":true|})
        then incr mine_f;
        if is_write then mine_w := ms :: !mine_w
        else mine_r := ms :: !mine_r
      done;
      Unix.close fd;
      Mutex.protect lock (fun () ->
          reads := !mine_r @ !reads;
          writes := !mine_w @ !writes;
          failures := !failures + !mine_f)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let fd = connect_retry sock in
    write_all fd
      (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
    ignore (input_line (Unix.in_channel_of_descr fd));
    Unix.close fd;
    Thread.join server_thread;
    if !failures > 0 then
      failwith (Printf.sprintf "pr8: %d request(s) failed" !failures);
    let pct_of l =
      let a = Array.of_list l in
      Array.sort compare a;
      fun p ->
        if Array.length a = 0 then 0. else Sobs.Metrics.percentile a p
    in
    ( clients * rounds * n,
      List.length !writes,
      wall,
      pct_of !reads,
      pct_of !writes )
  in
  let show tag (requests, nwrites, wall, rpct, wpct) =
    Printf.printf
      "%-6s %6d req (%5d writes) in %6.2f s (%7.0f req/s) | read p50 %7.3f \
       ms  p95 %7.3f ms | write p50 %7.3f ms  p95 %7.3f ms\n"
      tag requests nwrites wall
      (float_of_int requests /. wall)
      (rpct 50.) (rpct 95.) (wpct 50.) (wpct 95.)
  in
  Printf.printf
    "## Mixed read/write: %d clients over 2 groups, %d requests each \
     (serve)\n\n"
    clients (rounds * List.length mix);
  let read_only = run_pass ~write_every:0 in
  show "reads" read_only;
  let m9010 = run_pass ~write_every:10 in
  show "90/10" m9010;
  let m5050 = run_pass ~write_every:2 in
  show "50/50" m5050;
  let lat_json pct =
    Sobs.Json.Obj
      [
        ("p50_ms", Sobs.Json.Float (pct 50.));
        ("p95_ms", Sobs.Json.Float (pct 95.));
        ("p99_ms", Sobs.Json.Float (pct 99.));
      ]
  in
  let side_json (requests, _, wall, rpct, _) =
    Sobs.Json.Obj
      [
        ("requests", Sobs.Json.Int requests);
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ("p50_ms", Sobs.Json.Float (rpct 50.));
        ("p95_ms", Sobs.Json.Float (rpct 95.));
        ("p99_ms", Sobs.Json.Float (rpct 99.));
      ]
  in
  let mixed_json lbl (requests, nwrites, wall, rpct, wpct) =
    Sobs.Json.Obj
      [
        ("label", Sobs.Json.String lbl);
        ("groups", Sobs.Json.Int 2);
        ("requests", Sobs.Json.Int requests);
        ("writes", Sobs.Json.Int nwrites);
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ("read", lat_json rpct);
        ("write", lat_json wpct);
      ]
  in
  let doc_json =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "pr8");
        ( "meta",
          meta_json ~label ~scale ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("rounds", Sobs.Json.Int rounds);
            ] );
        (* read-only pass at PR 7's paths, so bench_diff gates the
           read path against BENCH_PR7.json *)
        ("recorder", Sobs.Json.Obj [ ("off", side_json read_only) ]);
        ( "mixed",
          Sobs.Json.List
            [ mixed_json "90/10" m9010; mixed_json "50/50" m5050 ] );
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc_json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out

(* ------------------------------------------------------------------ *)
(* PR 9: domain-per-worker scaling sweep.  The PR 8 read workload     *)
(* (hospital, 8 clients, Q-mix over the nurse view) against servers   *)
(* with 1/2/4/8 worker domains, every reply byte-compared to a        *)
(* single-session oracle; the 1-domain pass is written at PR 8's      *)
(* recorder.off paths so bench_diff holds the single-domain read      *)
(* path to the threaded server's numbers.  A final 90/10 mixed pass   *)
(* exercises the update-coordinator domain.  Scaling beyond the       *)
(* machine's core count cannot show: the meta block stamps            *)
(* Domain.recommended_domain_count so readers can judge the sweep.    *)

let pr9_bench ~label ~reps ~out () =
  let dtd = Workload.Hospital.dtd in
  let scale = 40 in
  let mix = [ "//patient/name"; "//patient/wardNo"; "//patient" ] in
  let update_text = "replace //patient//bill with <bill>7</bill>" in
  let clients = 8 in
  let rounds = 25 * reps in
  let cores = Domain.recommended_domain_count () in
  let bill_grants =
    [
      (("trial", "bill"), [ Secview.Spec.Replace ]);
      (("regular", "bill"), [ Secview.Spec.Replace ]);
    ]
  in
  let fresh_service () =
    let catalog = Secview.Catalog.create () in
    let doc = Workload.Hospital.generated_document ~seed:7 ~scale () in
    ignore (Secview.Catalog.add catalog ~name:"ward" doc);
    ( Secview.Pipeline.Service.create ~catalog dtd
        ~groups:
          [
            ("nurse", Workload.Hospital.nurse_spec ~write:bill_grants dtd);
            ("admin", Secview.Spec.make ~write:bill_grants dtd []);
          ],
      doc )
  in
  (* byte-exact expected answers, computed on one session before any
     server exists — the sweep's correctness oracle *)
  let expected =
    let svc, doc = fresh_service () in
    let sess = Secview.Pipeline.Session.create svc in
    let env name = if name = "wardNo" then Some "6" else None in
    List.map
      (fun qtext ->
        let q = Sxpath.Parse.of_string qtext in
        let nodes =
          Secview.Pipeline.Session.answer_exn sess ~group:"nurse" ~env q doc
        in
        ( qtext,
          String.concat "\n"
            (List.map (fun n -> Sxml.Print.to_string n) nodes) ))
      mix
  in
  let qmix = Array.of_list mix in
  let n = Array.length qmix in
  (* Replies are deterministic once the rid is pinned client-side
     ({"ok","v","rid","results","count"} over an immutable document),
     so the timed loops can verify every reply byte-for-byte at the
     cost of one string compare: capture each query's reply line from
     a 1-domain reference server, full-parse it once here, check its
     results against the session oracle, and hand the raw lines to
     the sweep.  (A JSON parse per reply inside the timed loop would
     compete with the server for this machine's cores.) *)
  let expected_lines = ref [] in
  (* one closed-loop pass at [domains] workers; [write_every] as in
     the PR 8 bench (0 = read-only, every reply byte-compared to the
     reference line; mixed passes only prefix-check replies — the
     document mutates) *)
  let run_pass ~domains ~write_every =
    let service, _ = fresh_service () in
    let config = { Sserver.Server.default_config with domains } in
    let server = Sserver.Server.create ~config service in
    let sock = Filename.temp_file "secview-pr9" ".sock" in
    Sys.remove sock;
    let server_thread =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let lock = Mutex.create () in
    let reads = ref [] and writes = ref [] in
    let failures = ref 0 in
    let wrong = Atomic.make 0 in
    let client i () =
      let group =
        if write_every > 0 && i land 1 = 1 then "admin" else "nurse"
      in
      let fd = connect_retry sock in
      let ic = Unix.in_channel_of_descr fd in
      let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
      send (Sserver.Protocol.hello ~peer:(Printf.sprintf "pr9-%d" i) group);
      ignore (input_line ic);
      let mine_r = ref [] and mine_w = ref [] and mine_f = ref 0 in
      for k = 0 to (rounds * n) - 1 do
        let is_write =
          write_every > 0 && k mod write_every = write_every - 1
        in
        let qtext = qmix.(k mod n) in
        let t0 = Unix.gettimeofday () in
        (if is_write then
           send
             (Sserver.Protocol.update_json ~doc:"ward"
                ~bind:[ ("wardNo", "6") ] update_text)
         else
           send
             (Sserver.Protocol.query_json ~rid:"o" ~doc:"ward"
                ~bind:[ ("wardNo", "6") ] qtext));
        let line = input_line ic in
        let ms = 1000. *. (Unix.gettimeofday () -. t0) in
        if not (String.length line >= 10 && String.sub line 0 10 = {|{"ok":true|})
        then incr mine_f;
        if (not is_write) && write_every = 0 then begin
          (* read-only pass: every reply byte-identical to the
             oracle-checked reference line *)
          match List.assoc_opt qtext !expected_lines with
          | Some want when String.equal line want -> ()
          | _ -> Atomic.incr wrong
        end;
        if is_write then mine_w := ms :: !mine_w
        else mine_r := ms :: !mine_r
      done;
      Unix.close fd;
      Mutex.protect lock (fun () ->
          reads := !mine_r @ !reads;
          writes := !mine_w @ !writes;
          failures := !failures + !mine_f)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let fd = connect_retry sock in
    write_all fd
      (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
    ignore (input_line (Unix.in_channel_of_descr fd));
    Unix.close fd;
    Thread.join server_thread;
    if !failures > 0 then
      failwith (Printf.sprintf "pr9: %d request(s) failed" !failures);
    let pct_of l =
      let a = Array.of_list l in
      Array.sort compare a;
      fun p ->
        if Array.length a = 0 then 0. else Sobs.Metrics.percentile a p
    in
    ( clients * rounds * n,
      List.length !writes,
      wall,
      pct_of !reads,
      pct_of !writes,
      Atomic.get wrong )
  in
  (* capture the reference reply lines and oracle-check them (full
     JSON parse, off the clock) before any timed pass runs *)
  let () =
    let service, _ = fresh_service () in
    let config = { Sserver.Server.default_config with domains = 1 } in
    let server = Sserver.Server.create ~config service in
    let sock = Filename.temp_file "secview-pr9ref" ".sock" in
    Sys.remove sock;
    let th =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let fd = connect_retry sock in
    let ic = Unix.in_channel_of_descr fd in
    let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
    send (Sserver.Protocol.hello ~peer:"pr9-ref" "nurse");
    ignore (input_line ic);
    List.iter
      (fun qtext ->
        send
          (Sserver.Protocol.query_json ~rid:"o" ~doc:"ward"
             ~bind:[ ("wardNo", "6") ] qtext);
        let line = input_line ic in
        let got =
          match Sobs.Json.of_string line with
          | Ok j -> (
            match Sobs.Json.member "results" j with
            | Some (Sobs.Json.List rs) ->
              Some
                (String.concat "\n"
                   (List.filter_map Sobs.Json.to_string_opt rs))
            | _ -> None)
          | Error _ -> None
        in
        (match got with
        | Some s when String.equal s (List.assoc qtext expected) -> ()
        | _ ->
          failwith
            ("pr9: reference reply diverges from the oracle on " ^ qtext));
        expected_lines := (qtext, line) :: !expected_lines)
      mix;
    send (Sserver.Protocol.simple "shutdown");
    ignore (input_line ic);
    Unix.close fd;
    Thread.join th
  in
  Printf.printf
    "## Domain sweep: %d clients, %d requests each, nurse view reads \
     (serve; %d core(s) available)\n\n"
    clients (rounds * n) cores;
  let sweep =
    List.map
      (fun domains ->
        let ((requests, _, wall, rpct, _, wrong) as r) =
          run_pass ~domains ~write_every:0
        in
        Printf.printf
          "domains %d  %6d req in %6.2f s (%7.0f req/s) | p50 %7.3f ms  \
           p95 %7.3f ms | wrong %d\n%!"
          domains requests wall
          (float_of_int requests /. wall)
          (rpct 50.) (rpct 95.) wrong;
        (domains, r))
      [ 1; 2; 4; 8 ]
  in
  let total_wrong =
    List.fold_left (fun acc (_, (_, _, _, _, _, w)) -> acc + w) 0 sweep
  in
  if total_wrong > 0 then
    Printf.printf "\n!! %d replies differed from the one-session oracle\n"
      total_wrong;
  if cores = 1 then
    Printf.printf
      "\n(single-core machine: the sweep measures domain overhead, not \
       scaling)\n";
  let requests_m, nwrites_m, wall_m, rpct_m, wpct_m, _ =
    run_pass ~domains:4 ~write_every:10
  in
  Printf.printf
    "\n90/10  %6d req (%5d writes) in %6.2f s (%7.0f req/s) | read p50 \
     %7.3f ms | write p50 %7.3f ms (1 coordinator)\n"
    requests_m nwrites_m wall_m
    (float_of_int requests_m /. wall_m)
    (rpct_m 50.) (wpct_m 50.);
  let side_json (requests, _, wall, rpct, _, _) =
    Sobs.Json.Obj
      [
        ("requests", Sobs.Json.Int requests);
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ("p50_ms", Sobs.Json.Float (rpct 50.));
        ("p95_ms", Sobs.Json.Float (rpct 95.));
        ("p99_ms", Sobs.Json.Float (rpct 99.));
      ]
  in
  let base_rps =
    match sweep with
    | (_, (requests, _, wall, _, _, _)) :: _ ->
      float_of_int requests /. wall
    | [] -> 1.
  in
  let sweep_json =
    Sobs.Json.List
      (List.map
         (fun (domains, ((requests, _, wall, _, _, wrong) as r)) ->
           let rps = float_of_int requests /. wall in
           match side_json r with
           | Sobs.Json.Obj fields ->
             Sobs.Json.Obj
               (("domains", Sobs.Json.Int domains)
               :: ("wrong", Sobs.Json.Int wrong)
               :: ("speedup_vs_1", Sobs.Json.Float (rps /. base_rps))
               :: fields)
           | j -> j)
         sweep)
  in
  let doc_json =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "pr9");
        ( "meta",
          meta_json ~label ~scale ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("rounds", Sobs.Json.Int rounds);
              ("cores", Sobs.Json.Int cores);
            ] );
        ("wrong", Sobs.Json.Int total_wrong);
        (* 1-domain read pass at PR 8's paths: bench_diff gates the
           single-domain read path against BENCH_PR8.json *)
        ( "recorder",
          Sobs.Json.Obj [ ("off", side_json (List.assoc 1 sweep)) ] );
        ("domains", sweep_json);
        ( "mixed",
          Sobs.Json.Obj
            [
              ("label", Sobs.Json.String "90/10");
              ("domains", Sobs.Json.Int 4);
              ("requests", Sobs.Json.Int requests_m);
              ("writes", Sobs.Json.Int nwrites_m);
              ("wall_s", Sobs.Json.Float wall_m);
              ( "throughput_rps",
                Sobs.Json.Float (float_of_int requests_m /. wall_m) );
              ( "read",
                Sobs.Json.Obj
                  [
                    ("p50_ms", Sobs.Json.Float (rpct_m 50.));
                    ("p95_ms", Sobs.Json.Float (rpct_m 95.));
                  ] );
              ( "write",
                Sobs.Json.Obj
                  [
                    ("p50_ms", Sobs.Json.Float (wpct_m 50.));
                    ("p95_ms", Sobs.Json.Float (wpct_m 95.));
                  ] );
            ] );
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc_json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out;
  if total_wrong > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* PR 10: runtime-health overhead.  The PR 9 read workload against a  *)
(* 4-domain server that already runs the flight recorder and tracer,  *)
(* with and without the Runtime_events consumer — the added cost of   *)
(* per-domain GC telemetry plus per-request pause attribution.  Every *)
(* reply is byte-compared to a one-session oracle, and a monitor      *)
(* thread polls the stats verb throughout (the [secview top] path),   *)
(* so the scrape merge runs concurrently with the traffic it reads.   *)

let pr10_bench ~label ~reps ~out () =
  let dtd = Workload.Hospital.dtd in
  let scale = 40 in
  let mix = [ "//patient/name"; "//patient/wardNo"; "//patient" ] in
  let clients = 8 in
  let rounds = 25 * reps in
  let cores = Domain.recommended_domain_count () in
  let fresh_service () =
    let catalog = Secview.Catalog.create () in
    let doc = Workload.Hospital.generated_document ~seed:7 ~scale () in
    ignore (Secview.Catalog.add catalog ~name:"ward" doc);
    ( Secview.Pipeline.Service.create ~catalog dtd
        ~groups:[ ("nurse", Workload.Hospital.nurse_spec dtd) ],
      doc )
  in
  let expected =
    let svc, doc = fresh_service () in
    let sess = Secview.Pipeline.Session.create svc in
    let env name = if name = "wardNo" then Some "6" else None in
    List.map
      (fun qtext ->
        let q = Sxpath.Parse.of_string qtext in
        let nodes =
          Secview.Pipeline.Session.answer_exn sess ~group:"nurse" ~env q doc
        in
        ( qtext,
          String.concat "\n"
            (List.map (fun n -> Sxml.Print.to_string n) nodes) ))
      mix
  in
  let qmix = Array.of_list mix in
  let n = Array.length qmix in
  let expected_lines = ref [] in
  let run_pass ~runtime_on =
    let service, _ = fresh_service () in
    let config = { Sserver.Server.default_config with domains = 4 } in
    let recorder = Sobs.Recorder.create ~capacity:256 in
    let tracer = Sobs.Tracer.create ~retain:false () in
    Sobs.Tracer.install tracer;
    let runtime = if runtime_on then Some (Sobs.Runtime.start ()) else None in
    let server =
      Sserver.Server.create ~config ~recorder ~tracer ?runtime service
    in
    let sock = Filename.temp_file "secview-pr10" ".sock" in
    Sys.remove sock;
    let server_thread =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let lock = Mutex.create () in
    let reads = ref [] in
    let failures = ref 0 in
    let wrong = Atomic.make 0 in
    (* the dashboard path: keep scraping the stats verb while the
       timed traffic runs (what [secview top --interval] does) *)
    let monitoring = Atomic.make true in
    let scrapes = ref 0 and scrape_failures = ref 0 in
    let monitor () =
      while Atomic.get monitoring do
        (try
           let fd = connect_retry sock in
           let ic = Unix.in_channel_of_descr fd in
           write_all fd
             (Sobs.Json.to_string (Sserver.Protocol.simple "stats") ^ "\n");
           let line = input_line ic in
           Unix.close fd;
           incr scrapes;
           if
             not
               (String.length line >= 10
               && String.sub line 0 10 = {|{"ok":true|})
           then incr scrape_failures
         with _ -> incr scrape_failures);
        Thread.delay 0.05
      done
    in
    let client i () =
      let fd = connect_retry sock in
      let ic = Unix.in_channel_of_descr fd in
      let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
      send (Sserver.Protocol.hello ~peer:(Printf.sprintf "pr10-%d" i) "nurse");
      ignore (input_line ic);
      let mine_r = ref [] and mine_f = ref 0 in
      for k = 0 to (rounds * n) - 1 do
        let qtext = qmix.(k mod n) in
        let t0 = Unix.gettimeofday () in
        send
          (Sserver.Protocol.query_json ~rid:"o" ~doc:"ward"
             ~bind:[ ("wardNo", "6") ] qtext);
        let line = input_line ic in
        let ms = 1000. *. (Unix.gettimeofday () -. t0) in
        if not (String.length line >= 10 && String.sub line 0 10 = {|{"ok":true|})
        then incr mine_f;
        (match List.assoc_opt qtext !expected_lines with
        | Some want when String.equal line want -> ()
        | _ -> Atomic.incr wrong);
        mine_r := ms :: !mine_r
      done;
      Unix.close fd;
      Mutex.protect lock (fun () ->
          reads := !mine_r @ !reads;
          failures := !failures + !mine_f)
    in
    let monitor_thread = Thread.create monitor () in
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Atomic.set monitoring false;
    Thread.join monitor_thread;
    let fd = connect_retry sock in
    write_all fd
      (Sobs.Json.to_string (Sserver.Protocol.simple "shutdown") ^ "\n");
    ignore (input_line (Unix.in_channel_of_descr fd));
    Unix.close fd;
    Thread.join server_thread;
    Sobs.Tracer.uninstall ();
    if !failures > 0 then
      failwith (Printf.sprintf "pr10: %d request(s) failed" !failures);
    if !scrape_failures > 0 then
      failwith
        (Printf.sprintf "pr10: %d stats scrape(s) failed" !scrape_failures);
    let pct_of l =
      let a = Array.of_list l in
      Array.sort compare a;
      fun p ->
        if Array.length a = 0 then 0. else Sobs.Metrics.percentile a p
    in
    ( clients * rounds * n,
      wall,
      pct_of !reads,
      Atomic.get wrong,
      !scrapes )
  in
  (* reference reply lines, oracle-checked off the clock (as in pr9) *)
  let () =
    let service, _ = fresh_service () in
    let config = { Sserver.Server.default_config with domains = 1 } in
    let server = Sserver.Server.create ~config service in
    let sock = Filename.temp_file "secview-pr10ref" ".sock" in
    Sys.remove sock;
    let th =
      Thread.create
        (fun () ->
          Sserver.Server.serve server [ Sserver.Server.Unix_socket sock ])
        ()
    in
    let fd = connect_retry sock in
    let ic = Unix.in_channel_of_descr fd in
    let send j = write_all fd (Sobs.Json.to_string j ^ "\n") in
    send (Sserver.Protocol.hello ~peer:"pr10-ref" "nurse");
    ignore (input_line ic);
    List.iter
      (fun qtext ->
        send
          (Sserver.Protocol.query_json ~rid:"o" ~doc:"ward"
             ~bind:[ ("wardNo", "6") ] qtext);
        let line = input_line ic in
        let got =
          match Sobs.Json.of_string line with
          | Ok j -> (
            match Sobs.Json.member "results" j with
            | Some (Sobs.Json.List rs) ->
              Some
                (String.concat "\n"
                   (List.filter_map Sobs.Json.to_string_opt rs))
            | _ -> None)
          | Error _ -> None
        in
        (match got with
        | Some s when String.equal s (List.assoc qtext expected) -> ()
        | _ ->
          failwith
            ("pr10: reference reply diverges from the oracle on " ^ qtext));
        expected_lines := (qtext, line) :: !expected_lines)
      mix;
    send (Sserver.Protocol.simple "shutdown");
    ignore (input_line ic);
    Unix.close fd;
    Thread.join th
  in
  Printf.printf
    "## Runtime-health overhead: %d clients, %d requests each, recorder + \
     tracer on (serve; %d core(s) available)\n\n"
    clients (rounds * n) cores;
  let show tag (requests, wall, rpct, wrong, scrapes) =
    Printf.printf
      "%-12s %6d req in %6.2f s (%7.0f req/s) | p50 %7.3f ms  p95 %7.3f ms \
       | wrong %d | %d stats scrape(s)\n%!"
      tag requests wall
      (float_of_int requests /. wall)
      (rpct 50.) (rpct 95.) wrong scrapes
  in
  let ((_, _, off_pct, off_wrong, _) as off) = run_pass ~runtime_on:false in
  show "runtime off" off;
  let ((_, _, on_pct, on_wrong, _) as on_) = run_pass ~runtime_on:true in
  show "runtime on" on_;
  let overhead_pct =
    if off_pct 50. > 0. then
      (on_pct 50. -. off_pct 50.) /. off_pct 50. *. 100.
    else 0.
  in
  let total_wrong = off_wrong + on_wrong in
  Printf.printf "\nread p50 overhead with the consumer on: %+.1f%%\n"
    overhead_pct;
  if total_wrong > 0 then
    Printf.printf "!! %d replies differed from the one-session oracle\n"
      total_wrong;
  let side_json (requests, wall, rpct, wrong, scrapes) =
    Sobs.Json.Obj
      [
        ("requests", Sobs.Json.Int requests);
        ("wall_s", Sobs.Json.Float wall);
        ("throughput_rps", Sobs.Json.Float (float_of_int requests /. wall));
        ("p50_ms", Sobs.Json.Float (rpct 50.));
        ("p95_ms", Sobs.Json.Float (rpct 95.));
        ("p99_ms", Sobs.Json.Float (rpct 99.));
        ("wrong", Sobs.Json.Int wrong);
        ("stats_scrapes", Sobs.Json.Int scrapes);
      ]
  in
  let doc_json =
    Sobs.Json.Obj
      [
        ("bench", Sobs.Json.String "pr10");
        ( "meta",
          meta_json ~label ~scale ~reps
            [
              ("clients", Sobs.Json.Int clients);
              ("rounds", Sobs.Json.Int rounds);
              ("cores", Sobs.Json.Int cores);
            ] );
        ("wrong", Sobs.Json.Int total_wrong);
        ( "runtime",
          Sobs.Json.Obj [ ("off", side_json off); ("on", side_json on_) ] );
        ("overhead_pct_p50", Sobs.Json.Float overhead_pct);
      ]
  in
  let oc = open_out out in
  Sobs.Json.to_channel oc doc_json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n(machine-readable results written to %s)\n\n" out;
  if total_wrong > 0 then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let scale =
    let rec find = function
      | "--scale" :: v :: _ -> int_of_string v
      | _ :: rest -> find rest
      | [] -> if has "--quick" then 30 else 120
    in
    find args
  in
  let reps = if has "--quick" then 3 else 5 in
  let flag_value flag default =
    let rec find = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> find rest
      | [] -> default
    in
    find args
  in
  let label = flag_value "--label" "dev" in
  let clients = int_of_string (flag_value "--clients" "32") in
  let json_out =
    if not (has "--json") then None
    else Some (flag_value "--out" "BENCH_PR2.json")
  in
  let all =
    not
      (has "--table1" || has "--forms" || has "--ablations" || has "--approx"
     || has "--index" || has "--xmark" || has "--json" || has "--serve"
     || has "--engines" || has "--analyze" || has "--pr7" || has "--mixed"
     || has "--domains" || has "--runtime")
  in
  if all || has "--forms" then forms ();
  if all || has "--table1" || has "--json" then
    table1 ~json_out ~label ~scale ~reps ();
  if all || has "--ablations" then ablations ~quick:(has "--quick") ();
  if all || has "--index" then index_ablation ~scale:(scale / 4) ~reps ();
  if all || has "--xmark" then xmark_bench ~reps ();
  if all || has "--approx" then approx ();
  if has "--engines" then
    engines_bench ~label ~scale ~reps
      ~out:(flag_value "--out" "BENCH_PR4.json")
      ();
  if has "--serve" then
    serve_bench ~label ~scale ~reps ~clients
      ~out:(flag_value "--out" "BENCH_PR3.json")
      ();
  if has "--analyze" then
    analyze_bench ~label ~reps
      ~out:(flag_value "--out" "BENCH_PR6.json")
      ();
  if has "--mixed" then
    pr8_bench ~label ~reps ~out:(flag_value "--out" "BENCH_PR8.json") ();
  if has "--domains" then
    pr9_bench ~label ~reps ~out:(flag_value "--out" "BENCH_PR9.json") ();
  if has "--runtime" then
    pr10_bench ~label ~reps ~out:(flag_value "--out" "BENCH_PR10.json") ();
  if has "--pr7" then
    pr7_bench ~label ~reps
      ~out:(flag_value "--out" "BENCH_PR7.json")
      ()
