(* secview — command-line front end for the security-view pipeline.

   Specifications are given in a small sidecar syntax, one annotation
   per line:

     parent child  Y
     parent child  N
     parent child  [qualifier]
     parent #PCDATA N

   '#' starts a comment.  Variables ($name) in qualifiers are bound
   with repeated --bind NAME=VALUE options. *)

open Cmdliner

let env_of_bindings bindings name =
  List.assoc_opt name bindings

(* ---- common options ------------------------------------------------ *)

let dtd_arg =
  let doc = "Document DTD file (<!ELEMENT ...> declarations)." in
  Arg.(required & opt (some file) None & info [ "dtd" ] ~docv:"FILE" ~doc)

let spec_arg =
  let doc = "Access-specification file (see secview --help)." in
  Arg.(required & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)

let doc_arg =
  let doc = "XML document file." in
  Arg.(required & opt (some file) None & info [ "doc" ] ~docv:"FILE" ~doc)

let query_arg =
  let doc = "XPath query (fragment C)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let bind_arg =
  let doc = "Bind a \\$variable used in qualifiers, e.g. --bind wardNo=6." in
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected NAME=VALUE")
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%s" k v in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "bind"; "b" ] ~docv:"NAME=VALUE" ~doc)

let root_arg =
  let doc = "Root element type (default: first declared)." in
  Arg.(value & opt (some string) None & info [ "root" ] ~docv:"NAME" ~doc)

let pair_conv ~what =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg ("expected " ^ what))
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%s" k v in
  Arg.conv (parse, print)

let group_specs_arg =
  let doc =
    "Define user group $(i,NAME) by the access specification in \
     $(i,SPECFILE) (repeatable; --spec FILE is shorthand for \
     --group user=FILE)."
  in
  Arg.(
    value
    & opt_all (pair_conv ~what:"NAME=SPECFILE") []
    & info [ "group" ] ~docv:"NAME=SPECFILE" ~doc)

(* groups from --spec (shorthand for user=FILE) plus repeated --group *)
let named_groups ~cmd dtd spec_path group_specs =
  let named =
    (match spec_path with Some p -> [ ("user", p) ] | None -> [])
    @ group_specs
  in
  if named = [] then
    failwith (cmd ^ ": provide --spec FILE and/or --group NAME=SPECFILE");
  List.map (fun (g, p) -> (g, Secview.Spec.of_sidecar_file dtd p)) named

let load_dtd root path = Sdtd.Parse.of_file ?root path

let setup dtd_path root spec_path =
  let dtd = load_dtd root dtd_path in
  let spec = Secview.Spec.of_sidecar_file dtd spec_path in
  (dtd, spec, Secview.Derive.derive spec)

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc

(* ---- commands ------------------------------------------------------ *)

let derive_cmd =
  let run dtd_path root spec_path show_sigma save =
    let _, _, view = setup dtd_path root spec_path in
    (match save with
    | Some path ->
      Secview.View.save_definition view path;
      Printf.eprintf "view definition written to %s\n" path
    | None -> ());
    if show_sigma then Format.printf "%a" Secview.View.pp view
    else Format.printf "%a" Sdtd.Dtd.pp (Secview.View.dtd view)
  in
  let sigma_arg =
    Arg.(
      value & flag
      & info [ "sigma" ]
          ~doc:"Also print the internal σ annotations (server-side only).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Store the full view definition (DTD + σ) for later use with \
             --view.")
  in
  Cmd.v
    (Cmd.info "derive" ~doc:"Derive a security view from a specification")
    Term.(const run $ dtd_arg $ root_arg $ spec_arg $ sigma_arg $ save_arg)

let graph_cmd =
  let run dtd_path root spec_path =
    let dtd = load_dtd root dtd_path in
    match spec_path with
    | None -> print_string (Sdtd.Graph.to_dot dtd)
    | Some path ->
      let spec = Secview.Spec.of_sidecar_file dtd path in
      let annotation ~parent ~child =
        match Secview.Spec.annotation spec ~parent ~child with
        | Some Secview.Spec.Yes -> Some `Yes
        | Some (Secview.Spec.Cond _) -> Some `Cond
        | Some Secview.Spec.No -> Some `No
        | None -> None
      in
      print_string
        (Sdtd.Graph.to_dot
           ~highlight:(Sdtd.Graph.spec_style ~annotation)
           dtd)
  in
  let spec_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Render the specification in Fig. 4's style: bold = accessible, \
             dotted = denied.")
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Render the DTD graph (optionally with a policy) as Graphviz")
    Term.(const run $ dtd_arg $ root_arg $ spec_opt)

let audit_cmd =
  let run dtd_path root spec_path diff_path =
    let dtd = load_dtd root dtd_path in
    let spec = Secview.Spec.of_sidecar_file dtd spec_path in
    match diff_path with
    | None -> Format.printf "%a" Secview.Audit.report spec
    | Some other ->
      let spec' = Secview.Spec.of_sidecar_file dtd other in
      let changes = Secview.Audit.diff spec spec' in
      if changes = [] then print_endline "no exposure changes"
      else
        List.iter
          (fun (el, change) ->
            match change with
            | `Gained -> Printf.printf "+ %s becomes exposed\n" el
            | `Lost -> Printf.printf "- %s becomes hidden\n" el
            | `Changed (_, _) -> Printf.printf "~ %s changes status\n" el)
          changes
  in
  let diff_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "diff" ] ~docv:"FILE"
          ~doc:"Compare against a second specification instead of reporting.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Analyse what a policy exposes; flag dead annotations")
    Term.(const run $ dtd_arg $ root_arg $ spec_arg $ diff_arg)

let materialize_cmd =
  let run dtd_path root spec_path doc_path bindings =
    let dtd, spec, view = setup dtd_path root spec_path in
    let doc = Sxml.Parse.of_file doc_path in
    (match Sdtd.Validate.check dtd doc with
    | [] -> ()
    | v :: _ ->
      failwith
        (Format.asprintf "document does not conform: %a" Sdtd.Validate
         .pp_violation v));
    let env = env_of_bindings bindings in
    let vt = Secview.Materialize.materialize ~env ~spec ~view doc in
    print_endline
      (Sxml.Print.to_string ~indent:true (Secview.Materialize.to_tree vt))
  in
  Cmd.v
    (Cmd.info "materialize"
       ~doc:
         "Materialize the view of a document (for inspection; the query \
          pipeline never does this)")
    Term.(const run $ dtd_arg $ root_arg $ spec_arg $ doc_arg $ bind_arg)

let view_arg =
  let doc =
    "Load a stored view definition (from 'derive --save') instead of \
     deriving from --spec."
  in
  Arg.(value & opt (some file) None & info [ "view" ] ~docv:"FILE" ~doc)

let spec_opt_arg =
  let doc = "Access-specification file (or use --view)." in
  Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)

let view_of ~dtd_path ~root ~spec_path ~view_path =
  let dtd = load_dtd root dtd_path in
  match (view_path, spec_path) with
  | Some path, _ -> (dtd, Secview.View.of_definition_file path)
  | None, Some spec_path ->
    let spec = Secview.Spec.of_sidecar_file dtd spec_path in
    (dtd, Secview.Derive.derive spec)
  | None, None -> failwith "either --spec or --view is required"

let rewrite_cmd =
  let run dtd_path root spec_path view_path query height optimize =
    let dtd, view = view_of ~dtd_path ~root ~spec_path ~view_path in
    let q = Sxpath.Parse.of_string query in
    let pt =
      match height with
      | Some h -> Secview.Rewrite.rewrite_with_height view ~height:h q
      | None -> Secview.Rewrite.rewrite view q
    in
    let pt = if optimize then Secview.Optimize.optimize dtd pt else pt in
    print_endline (Sxpath.Print.to_string pt)
  in
  let height_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "height" ]
          ~docv:"H"
          ~doc:
            "Document element-nesting height, required for recursive views \
             (Section 4.2 unfolding).")
  in
  let optimize_arg =
    Arg.(
      value & flag
      & info [ "optimize"; "O" ]
          ~doc:"Optimize the rewritten query against the document DTD.")
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Rewrite a view query to an equivalent document query")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ view_arg $ query_arg
      $ height_arg $ optimize_arg)

(* An audit-log path of "-" means stderr, so audit records, lint
   diagnostics and trace output can be collected from one stream. *)
let open_audit_log ?tracer = function
  | "-" -> Sobs.Audit_log.create ?tracer Sobs.Audit_log.Stderr
  | path -> Sobs.Audit_log.open_file ?tracer path

let engine_arg =
  let doc =
    "Execution engine for translated queries: $(b,plan) compiles them to \
     physical plans over the preorder index (falling back to the \
     interpreter outside the plan fragment, see lint SV301), $(b,interp) \
     always runs the set-at-a-time interpreter.  Answers are identical."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("interp", Secview.Pipeline.Interp);
             ("plan", Secview.Pipeline.Plan) ])
        Secview.Pipeline.Plan
    & info [ "engine" ] ~docv:"NAME" ~doc)

let query_cmd =
  let run dtd_path root spec_path doc_path queries bindings approach engine
      indexed stats strict timeout trace trace_out metrics slow_ms audit_log
      capture runtime_events =
    if queries = [] then failwith "query: at least one QUERY is required";
    let observing =
      trace || metrics || trace_out <> None || slow_ms <> None
      || audit_log <> None
    in
    let registry = Sobs.Metrics.create () in
    let tracer = Sobs.Tracer.create ~metrics:registry () in
    if observing then Sobs.Tracer.install tracer;
    (* the process-wide hook so slow-query stamping below goes through
       the same Runtime.stamp everything else uses *)
    let runtime =
      if runtime_events then Some (Sobs.Runtime.start ()) else None
    in
    Option.iter Sobs.Runtime.set runtime;
    let alog = Option.map (open_audit_log ~tracer) audit_log in
    (* slow-query records ride the audit log when there is one and a
       private stderr stream otherwise — --slow-ms alone should not
       force full request auditing on *)
    let slow_log, slow_owned =
      match (slow_ms, alog) with
      | None, _ -> (None, false)
      | Some _, Some a -> (Some a, false)
      | Some _, None ->
        (Some (Sobs.Audit_log.create Sobs.Audit_log.Stderr), true)
    in
    let dtd, spec, view = setup dtd_path root spec_path in
    let doc = Sxml.Parse.of_file doc_path in
    let env = env_of_bindings bindings in
    let qs = List.map Sxpath.Parse.of_string queries in
    let index = if indexed then Some (Sxml.Index.build doc) else None in
    (* the server's per-request deadline machinery, applied to the
       whole evaluation; exit 3 on expiry (after flushing the audit
       log, so the trail records what was asked before the cutoff) *)
    let guarded compute =
      match timeout with
      | None -> compute ()
      | Some seconds -> (
        match Sserver.Deadline.run ~seconds compute with
        | Ok r -> r
        | Error `Timeout ->
          Option.iter Sobs.Audit_log.close alog;
          Printf.eprintf "secview: query timed out after %gs\n" seconds;
          exit 3)
    in
    let results =
      guarded @@ fun () ->
      match approach with
      | `Naive ->
        let prepared = Secview.Naive.prepare ~env spec doc in
        let index =
          if indexed then Some (Sxml.Index.build prepared) else None
        in
        let ctx = Sxpath.Eval.Ctx.make ~env ?index ~root:prepared () in
        List.concat_map
          (fun q ->
            Sxpath.Eval.run ctx (Secview.Naive.rewrite_query ~view q))
          qs
      | `Rewrite ->
        let height = element_height doc in
        let ctx = Sxpath.Eval.Ctx.make ~env ?index ~root:doc () in
        List.concat_map
          (fun q ->
            let pt = Secview.Rewrite.rewrite_with_height view ~height q in
            Sxpath.Eval.run ctx pt)
          qs
      | `Optimize ->
        (* the full Fig. 3 loop: rewrite + optimize through the
           pipeline's translation cache *)
        let pipe =
          try
            Secview.Pipeline.Session.create
              (Secview.Pipeline.Service.create ~strict dtd
                 ~groups:[ ("user", spec) ])
          with Invalid_argument msg as e ->
            Option.iter
              (fun a ->
                Sobs.Audit_log.log_note a ~kind:"strict_gate" msg;
                Sobs.Audit_log.close a)
              alog;
            raise e
        in
        Option.iter Sobs.Audit_log.install alog;
        let cap = Option.map Sobs.Capture.open_file capture in
        (* each query is one correlated request: a stable rid (q1, q2,
           …) ties the reply, the slow-query record and any capture
           record together, and — when spans are needed — the query
           runs inside a "request" root span so its stages form one
           hierarchy (Tracer.with_request) *)
        let nq = ref 0 in
        let answers =
          List.concat_map
            (fun (qtext, q) ->
              incr nq;
              let rid = Printf.sprintf "q%d" !nq in
              let t0 = Sserver.Deadline.now () in
              let answer () =
                Secview.Pipeline.Session.answer_outcome pipe ~group:"user"
                  ~engine ~counts:(slow_ms <> None) ~env ?index q doc
              in
              let outcome, spans =
                if slow_ms <> None then Sobs.Tracer.with_request tracer answer
                else (answer (), [])
              in
              match outcome with
              | Error e -> raise (Secview.Error.E e)
              | Ok o ->
                let latency_ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                (match (slow_ms, slow_log) with
                | Some thr, Some sl when latency_ms > thr ->
                  (* GC attribution: pauses overlapping this query's
                     span window (both sides monotonic ns) *)
                  let gc =
                    match spans with
                    | [] -> None
                    | _ ->
                      let start_ns =
                        List.fold_left
                          (fun a (s : Sobs.Tracer.span) ->
                            if s.start_ns < a then s.start_ns else a)
                          Int64.max_int spans
                      in
                      let stop_ns =
                        List.fold_left
                          (fun a (s : Sobs.Tracer.span) ->
                            if s.stop_ns > a then s.stop_ns else a)
                          Int64.min_int spans
                      in
                      Sobs.Runtime.stamp ~start_ns ~stop_ns
                  in
                  Sobs.Audit_log.log_slow_query sl ~rid ~group:"user"
                    ~query:qtext
                    ~translated:
                      (Sxpath.Print.to_string o.Secview.Pipeline.o_translated)
                    ~latency_ms ~threshold_ms:thr
                    ~stages:(Sobs.Tracer.stage_totals spans)
                    ~counts:o.Secview.Pipeline.o_counts
                    ?gc_pause_ms:(Option.map fst gc)
                    ?gc_pauses:(Option.map snd gc) ()
                | _ -> ());
                Option.iter
                  (fun c ->
                    let rendered =
                      List.map
                        (fun n -> Sxml.Print.to_string n)
                        o.Secview.Pipeline.o_results
                    in
                    Sobs.Capture.write c
                      {
                        Sobs.Capture.c_rid = rid;
                        c_verb = "query";
                        c_group = "user";
                        c_doc = None;
                        c_query = qtext;
                        c_bind = bindings;
                        c_index = indexed;
                        c_engine = Secview.Pipeline.engine_label engine;
                        c_status = "ok";
                        c_results = List.length rendered;
                        c_digest = Sobs.Capture.digest rendered;
                        c_latency_ms = latency_ms;
                      })
                  cap;
                o.Secview.Pipeline.o_results)
            (List.combine queries qs)
        in
        Option.iter Sobs.Capture.close cap;
        if stats then
          List.iter
            (fun (g, (s : Secview.Pipeline.stats)) ->
              Printf.eprintf
                "cache[%s]: translation %d hit(s) %d miss(es); plans %d \
                 hit(s) %d miss(es), %d compiled, %d fallback(s)\n"
                g s.Secview.Pipeline.hits s.Secview.Pipeline.misses
                s.Secview.Pipeline.plan_hits s.Secview.Pipeline.plan_misses
                s.Secview.Pipeline.plan_compiles
                s.Secview.Pipeline.plan_fallbacks)
            (Secview.Pipeline.Session.all_stats pipe);
        answers
    in
    List.iter (fun n -> print_endline (Sxml.Print.to_string n)) results;
    if trace then Format.eprintf "%a%!" Sobs.Tracer.pp tracer;
    if metrics then Format.eprintf "%a%!" Sobs.Metrics.pp registry;
    Option.iter
      (fun path ->
        (* GC pause windows become per-domain tracks alongside the
           request spans *)
        let gc =
          match runtime with
          | None -> []
          | Some rt -> Sobs.Runtime.pauses rt
        in
        Sobs.Export.write_chrome_trace ~gc path (Sobs.Tracer.spans tracer))
      trace_out;
    Option.iter
      (fun rt ->
        Sobs.Runtime.unset ();
        Sobs.Runtime.stop rt)
      runtime;
    if slow_owned then
      Option.iter Sobs.Audit_log.close slow_log;
    Option.iter Sobs.Audit_log.close alog;
    if observing then Sobs.Tracer.uninstall ();
    Sobs.Audit_log.uninstall ()
  in
  let approach_arg =
    let doc = "Evaluation strategy: naive, rewrite or optimize." in
    Arg.(
      value
      & opt
          (enum [ ("naive", `Naive); ("rewrite", `Rewrite);
                  ("optimize", `Optimize) ])
          `Optimize
      & info [ "approach" ] ~docv:"NAME" ~doc)
  in
  let index_arg =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:"Build a tag index and use the descendant fast path.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Report the pipeline's translation- and plan-cache statistics \
             on stderr (optimize approach only).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Refuse to run when the policy or its derived view has lint \
             errors (optimize approach only).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Abandon the evaluation after $(docv) seconds and exit with \
             status 3 (the server's per-request deadline machinery, applied \
             to one-shot runs).")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record pipeline stage spans (derive, rewrite, optimize, eval, \
             ...) and print the span tree with timings on stderr.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Collect counters and per-stage latency series for this run and \
             print the registry on stderr.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the recorded spans as Chrome trace_event JSON to $(docv) \
             — load it in chrome://tracing or Perfetto.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Emit a JSONL slow_query record (translated query, stage \
             timings, plan operator counts) for every query slower than \
             $(docv) milliseconds, to --audit-log's stream or stderr; \
             optimize approach only.")
  in
  let audit_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL audit record per pipeline request to $(docv) \
             ('-' for stderr); optimize approach only.")
  in
  let queries_arg =
    let doc = "View queries to answer, in order." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let capture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"FILE"
          ~doc:
            "Write one replayable JSONL record per query (rid, group, query, \
             engine, answer digest, latency) to $(docv) — feed it to \
             $(b,secview replay); optimize approach only.")
  in
  let runtime_events_arg =
    Arg.(
      value & flag
      & info [ "runtime-events" ]
          ~doc:
            "Consume OCaml runtime events for this run: slow_query records \
             gain gc_pause_ms/gc_pauses (GC pauses overlapping the query's \
             span window, needs --slow-ms) and --trace-out gains per-domain \
             gc:minor / gc:major_slice tracks.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Securely evaluate view queries on a document")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_arg $ doc_arg $ queries_arg
      $ bind_arg $ approach_arg $ engine_arg $ index_arg $ stats_arg
      $ strict_arg $ timeout_arg $ trace_arg $ trace_out_arg $ metrics_arg
      $ slow_ms_arg $ audit_log_arg $ capture_arg $ runtime_events_arg)

let explain_cmd =
  let run dtd_path root spec_path group_specs doc_path bindings json group
      query =
    let dtd = load_dtd root dtd_path in
    let groups = named_groups ~cmd:"explain" dtd spec_path group_specs in
    let pipe =
      Secview.Pipeline.Session.create (Secview.Pipeline.Service.create dtd ~groups)
    in
    let doc = Sxml.Parse.of_file doc_path in
    let env = env_of_bindings bindings in
    let q = Sxpath.Parse.of_string query in
    match Secview.Pipeline.Session.explain pipe ~group ~env q doc with
    | Error e -> raise (Secview.Error.E e)
    | Ok x ->
      let engine_name =
        if x.Secview.Pipeline.x_plan <> None then "plan" else "interp"
      in
      let translated =
        Sxpath.Print.to_string x.Secview.Pipeline.x_translated
      in
      let admission_name =
        Secview.Pipeline.admission_label x.Secview.Pipeline.x_admission
      in
      if json then
        let j =
          Sobs.Json.Obj
            [
              ("query", Sobs.Json.String query);
              ("admission", Sobs.Json.String admission_name);
              ( "witness",
                match x.Secview.Pipeline.x_admission with
                | Secview.Pipeline.Denied_empty w -> Sobs.Json.String w
                | _ -> Sobs.Json.Null );
              ("translated", Sobs.Json.String translated);
              ("engine", Sobs.Json.String engine_name);
              ( "height",
                match x.Secview.Pipeline.x_height with
                | Some h -> Sobs.Json.Int h
                | None -> Sobs.Json.Null );
              ( "fallback",
                match x.Secview.Pipeline.x_fallback with
                | Some r -> Sobs.Json.String r
                | None -> Sobs.Json.Null );
              ("results", Sobs.Json.Int x.Secview.Pipeline.x_results);
              ( "doc_version",
                Sobs.Json.Int x.Secview.Pipeline.x_doc_version );
              ( "generation",
                Sobs.Json.Int x.Secview.Pipeline.x_generation );
              ( "plan",
                match x.Secview.Pipeline.x_plan with
                | Some (compiled, stats) ->
                  Sserver.Protocol.explain_json
                    (Splan.Explain.of_compiled compiled stats)
                | None -> Sobs.Json.Null );
            ]
        in
        print_endline (Sobs.Json.to_string j)
      else begin
        Printf.printf "query:      %s\n" query;
        (match x.Secview.Pipeline.x_admission with
        | Secview.Pipeline.Denied_empty w ->
          Printf.printf "admission:  denied — %s\n" w
        | _ -> Printf.printf "admission:  %s\n" admission_name);
        Printf.printf "translated: %s\n" translated;
        (match x.Secview.Pipeline.x_height with
        | Some h -> Printf.printf "height:     %d\n" h
        | None -> ());
        Printf.printf "engine:     %s\n" engine_name;
        (match x.Secview.Pipeline.x_fallback with
        | Some r -> Printf.printf "fallback:   %s\n" r
        | None -> ());
        Printf.printf "results:    %d\n" x.Secview.Pipeline.x_results;
        Printf.printf "doc version: %d  (plan-cache generation %d)\n"
          x.Secview.Pipeline.x_doc_version x.Secview.Pipeline.x_generation;
        match x.Secview.Pipeline.x_plan with
        | Some (compiled, stats) ->
          print_newline ();
          Format.printf "%a%!" Splan.Explain.pp
            (Splan.Explain.of_compiled compiled stats)
        | None -> ()
      end
  in
  let group_pos_arg =
    let doc = "User group whose security view answers the query." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"GROUP" ~doc)
  in
  let query_pos_arg =
    let doc = "View query (fragment C) to explain." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: one JSON object with the plan tree \
             nested under \"plan\" (the server's explain reply, minus the \
             envelope).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Translate a view query, run it once, and show the physical plan \
          with per-operator work counters (or the interpreter-fallback \
          reason)")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ group_specs_arg
      $ doc_arg $ bind_arg $ json_arg $ group_pos_arg $ query_pos_arg)

let lint_cmd =
  let run dtd_path root spec_path view_path machine audit_log queries =
    let dtd = load_dtd root dtd_path in
    let spec = Option.map (Secview.Spec.of_sidecar_file dtd) spec_path in
    let view = Option.map Secview.View.of_definition_file view_path in
    let queries = List.map (fun q -> (q, Sxpath.Parse.of_string q)) queries in
    let ds = Sanalysis.Lint.check_all ~dtd ?spec ?view ~queries () in
    (match audit_log with
    | None -> ()
    | Some path ->
      let alog = open_audit_log path in
      List.iter
        (fun (d : Sanalysis.Diagnostic.t) ->
          Sobs.Audit_log.log_diagnostic alog ~code:d.code
            ~severity:(Sanalysis.Diagnostic.severity_label d.severity)
            ~subject:(Sanalysis.Diagnostic.subject_label d.subject)
            d.message)
        (Sanalysis.Diagnostic.by_severity ds);
      Sobs.Audit_log.close alog);
    if machine then
      List.iter
        (fun d -> print_endline (Sanalysis.Diagnostic.to_line d))
        (Sanalysis.Diagnostic.by_severity ds)
    else if ds = [] then print_endline "no diagnostics"
    else Format.printf "%a" Sanalysis.Diagnostic.pp_report ds;
    exit (if Sanalysis.Diagnostic.has_errors ds then 1 else 0)
  in
  let machine_arg =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:
            "One tab-separated record per diagnostic \
             (CODE, SEVERITY, SUBJECT, MESSAGE) instead of prose.")
  in
  let audit_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Also append the diagnostics as JSONL records to $(docv) ('-' \
             for stderr) — the same stream format the query audit log \
             uses.")
  in
  let queries_arg =
    let doc = "View queries to lint against the view DTD." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyse a policy, a stored view and/or view queries; \
          exit 1 on any error-severity diagnostic")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ view_arg $ machine_arg
      $ audit_log_arg $ queries_arg)

let analyze_cmd =
  let run dtd_path root spec_path group_specs fleet json machine audit_log
      queries =
    let dtd = load_dtd root dtd_path in
    let named = named_groups ~cmd:"analyze" dtd spec_path group_specs in
    let groups =
      List.map (fun (g, spec) -> (g, Secview.Derive.derive spec)) named
    in
    let queries =
      List.map (fun q -> (q, Sxpath.Parse.of_string q)) queries
    in
    let multi = List.length groups > 1 in
    (* leakage diagnostics are per group: carry the group name in the
       message when several groups are analyzed together *)
    let tag g (d : Sanalysis.Diagnostic.t) =
      if multi then
        {
          d with
          Sanalysis.Diagnostic.message = Printf.sprintf "[%s] %s" g d.message;
        }
      else d
    in
    let leakage =
      List.concat_map
        (fun (g, v) ->
          List.map (tag g) (Sanalysis.Semantic.check_leakage ~dtd v))
        groups
    in
    let comparisons =
      if fleet then Sanalysis.Semantic.fleet dtd groups else []
    in
    let ds = leakage @ Sanalysis.Semantic.fleet_diagnostics comparisons in
    let verdicts =
      List.concat_map
        (fun (g, v) ->
          let vdtd = Secview.View.dtd v in
          List.map
            (fun (qt, q) -> (g, qt, Sanalysis.Semantic.admission vdtd q))
            queries)
        groups
    in
    (match audit_log with
    | None -> ()
    | Some path ->
      let alog = open_audit_log path in
      List.iter
        (fun (d : Sanalysis.Diagnostic.t) ->
          Sobs.Audit_log.log_diagnostic alog ~code:d.code
            ~severity:(Sanalysis.Diagnostic.severity_label d.severity)
            ~subject:(Sanalysis.Diagnostic.subject_label d.subject)
            d.message)
        (Sanalysis.Diagnostic.by_severity ds);
      Sobs.Audit_log.close alog);
    if json then begin
      let relation_json (c : Sanalysis.Semantic.comparison) =
        Sobs.Json.Obj
          ([
             ("left", Sobs.Json.String c.cmp_left);
             ("right", Sobs.Json.String c.cmp_right);
             ( "relation",
               Sobs.Json.String
                 (Sanalysis.Semantic.relation_label c.cmp_relation) );
             ( "overlap",
               match c.cmp_overlap with
               | Some l -> Sobs.Json.String l
               | None -> Sobs.Json.Null );
           ]
          @
          match c.cmp_relation with
          | Sanalysis.Semantic.Unknown why ->
            [ ("note", Sobs.Json.String why) ]
          | _ -> [])
      in
      let diag_json (d : Sanalysis.Diagnostic.t) =
        Sobs.Json.Obj
          [
            ("code", Sobs.Json.String d.code);
            ( "severity",
              Sobs.Json.String
                (Sanalysis.Diagnostic.severity_label d.severity) );
            ( "subject",
              Sobs.Json.String (Sanalysis.Diagnostic.subject_label d.subject)
            );
            ("message", Sobs.Json.String d.message);
          ]
      in
      let verdict_json (g, qt, v) =
        Sobs.Json.Obj
          [
            ("group", Sobs.Json.String g);
            ("query", Sobs.Json.String qt);
            ( "verdict",
              Sobs.Json.String (Secview.Pipeline.admission_label v) );
            ( "witness",
              match v with
              | Secview.Pipeline.Denied_empty w -> Sobs.Json.String w
              | _ -> Sobs.Json.Null );
          ]
      in
      print_endline
        (Sobs.Json.to_string
           (Sobs.Json.Obj
              [
                ( "groups",
                  Sobs.Json.List
                    (List.map (fun (g, _) -> Sobs.Json.String g) groups) );
                ( "comparisons",
                  Sobs.Json.List (List.map relation_json comparisons) );
                ( "diagnostics",
                  Sobs.Json.List
                    (List.map diag_json (Sanalysis.Diagnostic.by_severity ds))
                );
                ("admission", Sobs.Json.List (List.map verdict_json verdicts));
              ]))
    end
    else begin
      List.iter
        (fun (c : Sanalysis.Semantic.comparison) ->
          Printf.printf "compare %s vs %s: %s%s\n" c.cmp_left c.cmp_right
            (Sanalysis.Semantic.relation_label c.cmp_relation)
            (match c.cmp_relation with
            | Sanalysis.Semantic.Unknown why -> Printf.sprintf " (%s)" why
            | Sanalysis.Semantic.Overlapping -> (
              match c.cmp_overlap with
              | Some l -> Printf.sprintf " (both reach %s)" l
              | None -> "")
            | _ -> ""))
        comparisons;
      List.iter
        (fun (g, qt, v) ->
          Printf.printf "admission [%s] %s: %s\n" g qt
            (match v with
            | Secview.Pipeline.Denied_empty w -> "denied — " ^ w
            | Secview.Pipeline.Trivial -> "trivial"
            | Secview.Pipeline.Needs_eval -> "eval"))
        verdicts;
      if machine then
        List.iter
          (fun d -> print_endline (Sanalysis.Diagnostic.to_line d))
          (Sanalysis.Diagnostic.by_severity ds)
      else if ds = [] then print_endline "no diagnostics"
      else Format.printf "%a" Sanalysis.Diagnostic.pp_report ds
    end;
    exit (if Sanalysis.Diagnostic.has_errors ds then 1 else 0)
  in
  let fleet_arg =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Compare every pair of groups' accessible regions: SV401 marks \
             equivalent (merge-candidate) policies, SV402 role-hierarchy \
             subsumption, SV403 incomparable-but-overlapping ones.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One JSON object with the comparisons, diagnostics and \
             per-query admission verdicts.")
  in
  let machine_arg =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:
            "One tab-separated record per diagnostic \
             (CODE, SEVERITY, SUBJECT, MESSAGE) instead of prose.")
  in
  let audit_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Also append the diagnostics as JSONL records to $(docv) ('-' \
             for stderr) — the same stream format the query audit log \
             uses.")
  in
  let queries_arg =
    let doc =
      "View queries to classify statically against each group's view DTD \
       (denied/trivial/eval)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Semantic policy analysis: cross-group subsumption (--fleet), \
          leakage of never-populatable view structure, and static \
          admission verdicts for queries; exit 1 on any error-severity \
          diagnostic")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ group_specs_arg
      $ fleet_arg $ json_arg $ machine_arg $ audit_log_arg $ queries_arg)

let optimize_cmd =
  let run dtd_path root query =
    let dtd = load_dtd root dtd_path in
    let q = Sxpath.Parse.of_string query in
    print_endline (Sxpath.Print.to_string (Secview.Optimize.optimize dtd q))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Optimize a document query against DTD constraints")
    Term.(const run $ dtd_arg $ root_arg $ query_arg)

let annotate_cmd =
  let run dtd_path root spec_path doc_path bindings =
    let _, spec, _ = setup dtd_path root spec_path in
    let doc = Sxml.Parse.of_file doc_path in
    let env = env_of_bindings bindings in
    let prepared = Secview.Naive.prepare ~env spec doc in
    print_endline (Sxml.Print.to_string ~indent:true prepared)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:
         "Stamp @accessibility attributes on a document (the naive \
          baseline's offline step)")
    Term.(const run $ dtd_arg $ root_arg $ spec_arg $ doc_arg $ bind_arg)

let gen_cmd =
  let run dtd_path root seed star_max depth =
    let dtd = load_dtd root dtd_path in
    let config =
      {
        Sdtd.Gen.default_config with
        seed;
        star_max;
        depth_budget = depth;
      }
    in
    print_endline
      (Sxml.Print.to_string ~indent:true (Sdtd.Gen.generate ~config dtd))
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let star_arg =
    Arg.(
      value & opt int 3
      & info [ "branching" ] ~docv:"N"
          ~doc:"Maximum branching factor for starred content.")
  in
  let depth_arg =
    Arg.(
      value & opt int 12
      & info [ "depth" ] ~docv:"N" ~doc:"Depth budget for recursion.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random instance of a DTD")
    Term.(const run $ dtd_arg $ root_arg $ seed_arg $ star_arg $ depth_arg)

let validate_cmd =
  let run dtd_path root doc_path =
    let dtd = load_dtd root dtd_path in
    let doc = Sxml.Parse.of_file doc_path in
    match Sdtd.Validate.check dtd doc with
    | [] ->
      print_endline "valid";
      exit 0
    | violations ->
      List.iter
        (fun v -> Format.printf "%a@." Sdtd.Validate.pp_violation v)
        violations;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check a document against a DTD")
    Term.(const run $ dtd_arg $ root_arg $ doc_arg)

(* ---- secure updates ------------------------------------------------ *)

let update_cmd =
  let run dtd_path root spec_path group_specs doc_path bindings out audit_log
      capture json group update_text =
    let dtd = load_dtd root dtd_path in
    let groups = named_groups ~cmd:"update" dtd spec_path group_specs in
    let catalog = Secview.Catalog.create () in
    let entry = Secview.Catalog.add_file catalog ~name:"doc" doc_path in
    let svc = Secview.Pipeline.Service.create ~catalog dtd ~groups in
    let env = env_of_bindings bindings in
    let alog = Option.map (fun p -> open_audit_log p) audit_log in
    (* the admission check's id-bearing denial detail belongs in the
       audit log, never in the error shown to the requesting group *)
    let detail = ref None in
    let t0 = Sserver.Deadline.now () in
    let outcome =
      Supdate.Engine.apply_text svc ~group ~env
        ~audit:(fun d -> detail := Some d)
        ~entry update_text
    in
    let latency_ms = 1000. *. (Sserver.Deadline.now () -. t0) in
    (match alog with
    | None -> ()
    | Some a ->
      (match outcome with
      | Ok rc ->
        Sobs.Audit_log.log_update a ~group ~doc:"doc" ~update:update_text
          ~status:"ok" ~targets:rc.Supdate.Engine.r_targets
          ~old_version:rc.Supdate.Engine.r_old_version
          ~new_version:rc.Supdate.Engine.r_new_version ~latency_ms ()
      | Error e ->
        let error =
          match !detail with
          | Some d -> Secview.Error.to_string e ^ " [" ^ d ^ "]"
          | None -> Secview.Error.to_string e
        in
        Sobs.Audit_log.log_update a ~group ~doc:"doc" ~update:update_text
          ~status:"error" ~latency_ms ~error ());
      Sobs.Audit_log.close a);
    match outcome with
    | Error e -> raise (Secview.Error.E e)
    | Ok rc ->
      let digest = rc.Supdate.Engine.r_view_digest in
      (match capture with
      | None -> ()
      | Some path ->
        let cap = Sobs.Capture.open_file path in
        Sobs.Capture.write cap
          {
            Sobs.Capture.c_rid = "u1";
            c_verb = "update";
            c_group = group;
            c_doc = None;
            c_query = update_text;
            c_bind = bindings;
            c_index = false;
            c_engine = "interp";
            c_status = "ok";
            c_results = rc.Supdate.Engine.r_targets;
            c_digest = digest;
            c_latency_ms = latency_ms;
          };
        Sobs.Capture.close cap);
      (match out with
      | Some path ->
        Sxml.Print.to_file ~indent:true path rc.Supdate.Engine.r_doc
      | None -> ());
      if json then
        print_endline
          (Sobs.Json.to_string
             (Sobs.Json.Obj
                [
                  ("op", Sobs.Json.String rc.Supdate.Engine.r_op);
                  ("targets", Sobs.Json.Int rc.Supdate.Engine.r_targets);
                  ( "old_version",
                    Sobs.Json.Int rc.Supdate.Engine.r_old_version );
                  ( "new_version",
                    Sobs.Json.Int rc.Supdate.Engine.r_new_version );
                  ("digest", Sobs.Json.String digest);
                ]))
      else begin
        Printf.printf "op:       %s\n" rc.Supdate.Engine.r_op;
        Printf.printf "targets:  %d\n" rc.Supdate.Engine.r_targets;
        Printf.printf "version:  %d -> %d\n" rc.Supdate.Engine.r_old_version
          rc.Supdate.Engine.r_new_version;
        Printf.printf "digest:   %s\n" digest
      end
  in
  let group_pos_arg =
    let doc = "User group attempting the write." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"GROUP" ~doc)
  in
  let update_pos_arg =
    let doc =
      "The update: 'insert into|before|after PATH CONTENT', 'delete PATH', \
       or 'replace PATH with CONTENT' (PATH is fragment-C XPath over the \
       group's view; CONTENT is an XML fragment)."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"UPDATE" ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the updated document to $(docv) (the input file is never \
             modified in place).")
  in
  let audit_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL update/update_denied record to $(docv) ('-' \
             for stderr).")
  in
  let capture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"FILE"
          ~doc:
            "Append a replayable \"v\":2 update record (verb, group, update \
             text, digest of the group's view of the result) to $(docv) on \
             success.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable receipt: op, target count, version transition \
             and the digest of the group's view of the result as one JSON \
             object.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Run a secure view update against a document: the write is \
          admitted only when the target and every node it touches are \
          accessible to the group and the group holds the matching write \
          grant; a rejected update changes nothing")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ group_specs_arg
      $ doc_arg $ bind_arg $ out_arg $ audit_log_arg $ capture_arg $ json_arg
      $ group_pos_arg $ update_pos_arg)

(* ---- server and client --------------------------------------------- *)

let socket_arg =
  let doc = "Listen on (or connect to) a Unix-domain socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc = "Listen on (or connect to) TCP port $(docv)." in
  Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Host for --tcp (default: loopback)." in
  Arg.(value & opt string "" & info [ "host" ] ~docv:"HOST" ~doc)

let serve_cmd =
  let run dtd_path root spec_path group_specs docs socket tcp host domains
      queue deadline engine audit_log debug strict preload slow_ms
      metrics_port no_admission flight flight_snapshot capture runtime_events =
    let dtd = load_dtd root dtd_path in
    let groups = named_groups ~cmd:"serve" dtd spec_path group_specs in
    if docs = [] then
      failwith "serve: at least one --doc NAME=FILE is required";
    let catalog = Secview.Catalog.create () in
    List.iter
      (fun (n, p) -> ignore (Secview.Catalog.add_file catalog ~name:n p))
      docs;
    if preload then
      List.iter
        (fun e -> ignore (Secview.Catalog.doc e))
        (Secview.Catalog.entries catalog);
    let service =
      Secview.Pipeline.Service.create ~strict ~catalog dtd ~groups
    in
    (* one registry for everything a scrape should see; the tracer
       (installed only when something consumes stage timings) feeds the
       per-stage latency series into it *)
    let registry = Sobs.Metrics.create () in
    let tracer =
      if slow_ms <> None || metrics_port <> None || flight > 0 then begin
        let tr =
          Sobs.Tracer.create ~metrics:registry ~retain:false ()
        in
        Sobs.Tracer.install tr;
        Some tr
      end
      else None
    in
    let recorder =
      if flight > 0 then Some (Sobs.Recorder.create ~capacity:flight)
      else None
    in
    if flight <= 0 && flight_snapshot <> None then
      failwith "serve: --flight-snapshot requires --flight N";
    (* started here, owned by the server from create on: serve stops
       it when the drain completes *)
    let runtime =
      if runtime_events then Some (Sobs.Runtime.start ()) else None
    in
    let cap = Option.map Sobs.Capture.open_file capture in
    let alog =
      match (audit_log, slow_ms) with
      | Some p, _ -> Some (open_audit_log p)
      | None, Some _ ->
        (* a slow-query threshold without a log would observe and then
           say nothing: default the trail to stderr *)
        Some (Sobs.Audit_log.create Sobs.Audit_log.Stderr)
      | None, None -> None
    in
    let config =
      { Sserver.Server.domains; queue_capacity = queue; deadline; debug;
        engine; slow_ms; admission = not no_admission }
    in
    let server =
      Sserver.Server.create ~config ?audit:alog ~metrics:registry ?tracer
        ?recorder ?runtime ?flight_snapshot ?capture:cap service
    in
    let listeners =
      (match socket with
      | Some p -> [ Sserver.Server.Unix_socket p ]
      | None -> [])
      @ (match tcp with
        | Some p -> [ Sserver.Server.Tcp (host, p) ]
        | None -> [])
      @
      match metrics_port with
      | Some p -> [ Sserver.Server.Metrics_http (host, p) ]
      | None -> []
    in
    if listeners = [] then
      failwith "serve: provide --socket PATH and/or --tcp PORT";
    Sserver.Server.install_sigint server;
    List.iter
      (function
        | Sserver.Server.Unix_socket p ->
          Printf.eprintf "secview: listening on %s\n%!" p
        | Sserver.Server.Tcp (h, p) ->
          Printf.eprintf "secview: listening on %s:%d\n%!"
            (if h = "" then "127.0.0.1" else h)
            p
        | Sserver.Server.Metrics_http (h, p) ->
          Printf.eprintf "secview: metrics on http://%s:%d/metrics\n%!"
            (if h = "" then "127.0.0.1" else h)
            p)
      listeners;
    Sserver.Server.serve server listeners;
    (match tracer with Some _ -> Sobs.Tracer.uninstall () | None -> ());
    Printf.eprintf "secview: drained\n%!"
  in
  let docs_arg =
    let doc =
      "Add document $(i,FILE) to the catalog as $(i,NAME) (repeatable; \
       parsed lazily on first query unless --preload)."
    in
    Arg.(
      value
      & opt_all (pair_conv ~what:"NAME=FILE") []
      & info [ "doc" ] ~docv:"NAME=FILE" ~doc)
  in
  let domains_arg =
    Arg.(
      value
      & opt int Sserver.Server.default_config.domains
      & info [ "domains"; "workers" ] ~docv:"N"
          ~doc:
            "Worker pool size: one OCaml domain (runtime-parallel worker) \
             per unit, each with its own pipeline session.  --workers is an \
             alias kept from the threaded server.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Sserver.Server.default_config.queue_capacity
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-control bound: requests beyond $(docv) waiting are \
             answered 'overloaded' immediately.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Per-request deadline (queue wait included); expired requests \
             are answered 'timeout'.")
  in
  let audit_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per admitted query to $(docv) ('-' for \
             stderr), flushed before the server exits.")
  in
  let debug_arg =
    Arg.(
      value & flag
      & info [ "debug" ]
          ~doc:"Honour the 'sleep' test command (never in production).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Refuse to start when any group's policy has lint errors.")
  in
  let preload_arg =
    Arg.(
      value & flag
      & info [ "preload" ]
          ~doc:"Parse every catalog document before accepting connections.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Write a slow_query audit record (translated query, per-stage \
             timings, plan operator counts) for every answered query slower \
             than $(docv) milliseconds, queue wait included; defaults the \
             audit log to stderr when --audit-log is not given.")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also expose the metrics registry as OpenMetrics text over HTTP \
             on $(docv) (GET /metrics; same host as --host) for Prometheus \
             scrapes or 'secview metrics --scrape'.")
  in
  let no_admission_arg =
    Arg.(
      value & flag
      & info [ "no-admission" ]
          ~doc:
            "Disable the static admission fast path: by default, queries \
             the analyzer proves empty against the group's view DTD are \
             answered with the empty result set on the connection thread, \
             without queueing, planning or touching the document.")
  in
  let flight_arg =
    Arg.(
      value & opt int 0
      & info [ "flight" ] ~docv:"N"
          ~doc:
            "Keep an in-memory flight recorder of the last $(docv) completed \
             requests (rid, principal, query, doc version, engine, span \
             tree, operator counts, answer digest, outcome) — dump it with \
             the session-less 'flight' verb or $(b,secview flight).  0 \
             disables it (the default; a disabled recorder costs nothing on \
             the request path).")
  in
  let flight_snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-snapshot" ] ~docv:"FILE"
          ~doc:
            "Dump the flight-recorder ring to $(docv) (overwriting) whenever \
             a request ends in error, timeout or late, or over the --slow-ms \
             threshold; requires --flight.")
  in
  let capture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "capture" ] ~docv:"FILE"
          ~doc:
            "Write one replayable JSONL record per answered query (rid, \
             group, query, engine, answer digest, latency) to $(docv) — \
             feed it to $(b,secview replay).")
  in
  let runtime_events_arg =
    Arg.(
      value & flag
      & info [ "runtime-events" ]
          ~doc:
            "Consume OCaml runtime events: per-domain GC pause histograms \
             (gc_pause_seconds), collection/allocation counters and live-\
             domain gauges in every scrape, a 'runtime' section in the \
             stats verb, and gc_pause_ms attribution stamped into flight-\
             recorder entries and slow_query records whose request window \
             overlapped a pause.  Off by default (a disabled consumer \
             costs nothing).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the concurrent secure-query server (line-delimited JSON over \
          Unix-domain and/or TCP sockets; SIGINT drains gracefully)")
    Term.(
      const run $ dtd_arg $ root_arg $ spec_opt_arg $ group_specs_arg
      $ docs_arg $ socket_arg $ tcp_arg $ host_arg $ domains_arg $ queue_arg
      $ deadline_arg $ engine_arg $ audit_log_arg $ debug_arg $ strict_arg
      $ preload_arg $ slow_ms_arg $ metrics_port_arg $ no_admission_arg
      $ flight_arg $ flight_snapshot_arg $ capture_arg $ runtime_events_arg)

let client_cmd =
  let run socket tcp host wait group peer doc_name bindings indexed ping
      do_stats shutdown raws updates queries =
    let addr =
      match (socket, tcp) with
      | Some path, None -> Unix.ADDR_UNIX path
      | None, Some port ->
        let inet =
          if host = "" then Unix.inet_addr_loopback
          else
            try Unix.inet_addr_of_string host
            with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.ADDR_INET (inet, port)
      | _ -> failwith "client: provide exactly one of --socket or --tcp"
    in
    let give_up = Sserver.Deadline.now () +. wait in
    let rec connect () =
      let fd =
        Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
      in
      match Unix.connect fd addr with
      | () -> fd
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT), _, _)
        when Sserver.Deadline.now () < give_up ->
        Unix.close fd;
        Thread.delay 0.05;
        connect ()
    in
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd in
    let send_line line =
      let b = Bytes.of_string (line ^ "\n") in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write fd b off (Bytes.length b - off))
      in
      go 0
    in
    let send j = send_line (Sobs.Json.to_string j) in
    let recv () =
      let line = input_line ic in
      match Sobs.Json.of_string line with
      | Ok j -> (line, j)
      | Error e -> failwith (Printf.sprintf "client: bad reply (%s): %s" e line)
    in
    let failed = ref false in
    let check_ok what (line, j) =
      match Sobs.Json.member "ok" j with
      | Some (Sobs.Json.Bool true) -> true
      | _ ->
        failed := true;
        Printf.eprintf "secview: %s failed: %s\n" what line;
        false
    in
    if ping then begin
      send (Sserver.Protocol.simple "ping");
      if check_ok "ping" (recv ()) then print_endline "pong"
    end;
    (* raw lines go out verbatim and the reply is echoed verbatim —
       the escape hatch for demonstrating protocol errors *)
    List.iter
      (fun raw ->
        send_line raw;
        print_endline (input_line ic))
      raws;
    (match group with
    | Some g ->
      send (Sserver.Protocol.hello ?peer g);
      ignore (check_ok "hello" (recv ()))
    | None -> ());
    List.iter
      (fun u ->
        send (Sserver.Protocol.update_json ?doc:doc_name ~bind:bindings u);
        let (_, j) as r = recv () in
        if check_ok (Printf.sprintf "update %S" u) r then
          let geti name =
            match
              Option.bind (Sobs.Json.member name j) Sobs.Json.to_int_opt
            with
            | Some n -> n
            | None -> 0
          in
          Printf.printf "update ok: %d target(s), version %d -> %d\n"
            (geti "targets") (geti "old_version") (geti "new_version"))
      updates;
    List.iter
      (fun q ->
        send
          (Sserver.Protocol.query_json ?doc:doc_name ~bind:bindings
             ~use_index:indexed q);
        let (_, j) as r = recv () in
        if check_ok (Printf.sprintf "query %S" q) r then
          match Sobs.Json.member "results" j with
          | Some (Sobs.Json.List rs) ->
            List.iter
              (fun r ->
                Option.iter print_endline (Sobs.Json.to_string_opt r))
              rs
          | _ -> ())
      queries;
    if do_stats then begin
      send (Sserver.Protocol.simple "stats");
      let line, _ = recv () in
      print_endline line
    end;
    if shutdown then begin
      send (Sserver.Protocol.simple "shutdown");
      ignore (check_ok "shutdown" (recv ()))
    end;
    close_in_noerr ic;
    if !failed then exit 1
  in
  let wait_arg =
    Arg.(
      value & opt float 0.
      & info [ "wait" ] ~docv:"SECS"
          ~doc:
            "Retry the connection for up to $(docv) seconds (for scripts \
             that just started the server).")
  in
  let group_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "group" ] ~docv:"NAME"
          ~doc:"Bind the session to user group $(docv) before querying.")
  in
  let peer_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "peer" ] ~docv:"NAME"
          ~doc:"Self-reported peer label for the server's audit log.")
  in
  let doc_name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "doc" ] ~docv:"NAME"
          ~doc:
            "Query catalog document $(docv) (optional when the server holds \
             exactly one).")
  in
  let index_arg =
    Arg.(
      value & flag
      & info [ "index" ] ~doc:"Ask the server to evaluate with a tag index.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Check liveness first.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the server's statistics object after the queries.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain, last.")
  in
  let send_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "send" ] ~docv:"LINE"
          ~doc:
            "Send $(docv) verbatim and echo the reply verbatim \
             (repeatable; for exercising the wire protocol directly).")
  in
  let updates_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "update" ] ~docv:"UPDATE"
          ~doc:
            "Send $(docv) as a transactional update (repeatable; all \
             updates run before the queries, so a session can write then \
             read back).")
  in
  let queries_arg =
    let doc = "View queries to answer, in order." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running secview server (exit 1 if any request is \
          refused)")
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ wait_arg $ group_arg
      $ peer_arg $ doc_name_arg $ bind_arg $ index_arg $ ping_arg $ stats_arg
      $ shutdown_arg $ send_arg $ updates_arg $ queries_arg)

(* ---- flight recorder and replay ------------------------------------ *)

(* shared one-shot connection plumbing for the flight/replay commands *)
let remote_addr ~cmd socket tcp host =
  match (socket, tcp) with
  | Some path, None -> Unix.ADDR_UNIX path
  | None, Some port ->
    let inet =
      if host = "" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.ADDR_INET (inet, port)
  | _ -> failwith (cmd ^ ": provide exactly one of --socket or --tcp")

let connect_retry ~wait addr =
  let give_up = Sserver.Deadline.now () +. wait in
  let rec connect () =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT), _, _)
      when Sserver.Deadline.now () < give_up ->
      Unix.close fd;
      Thread.delay 0.05;
      connect ()
  in
  connect ()

let fd_send_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let wait_retry_arg ~cmd =
  Arg.(
    value & opt float 0.
    & info [ "wait" ] ~docv:"SECS"
        ~doc:
          (Printf.sprintf
             "Retry the connection for up to $(docv) seconds (for scripts \
              that just started the server the %s talks to)."
             cmd))

(* Watch-mode refresh, shared by [metrics --watch] and [top].  On a
   real terminal each frame repaints in place: home the cursor, paint,
   then clear whatever the previous (longer) frame left below — a
   redraw with no flicker and no scrollback spam.  Piped output (cram
   tests, shell captures) still gets plain concatenation.  SIGINT ends
   the loop between writes instead of killing the process mid-frame:
   the handler only flips a flag, the loop notices it at the next
   check, restores the previous handler and returns — so the command
   exits 0 with the terminal in a sane state. *)
let watch_stop = ref false

let watch_loop ~interval ~rounds render =
  watch_stop := false;
  let previous =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> watch_stop := true))
  in
  let tty = Unix.isatty Unix.stdout in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
    (fun () ->
      try
        let i = ref 0 in
        while (not !watch_stop) && !i < rounds do
          incr i;
          let frame = render () in
          if tty then
            (* full clear once, then home-paint-clear-to-end *)
            print_string (if !i = 1 then "\027[2J\027[H" else "\027[H");
          print_string frame;
          if tty then print_string "\027[0J";
          flush stdout;
          if !i < rounds && not !watch_stop then begin
            (* sleep in short slices so Ctrl-C is honoured promptly *)
            let slept = ref 0. in
            while !slept < interval && not !watch_stop do
              let d = Float.min 0.1 (interval -. !slept) in
              Thread.delay d;
              slept := !slept +. d
            done
          end
        done
      with Unix.Unix_error (Unix.EINTR, _, _) -> ())

let flight_cmd =
  let run socket tcp host wait json =
    let addr = remote_addr ~cmd:"flight" socket tcp host in
    let fd = connect_retry ~wait addr in
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () ->
        fd_send_line fd
          (Sobs.Json.to_string (Sserver.Protocol.simple "flight"));
        let line = input_line ic in
        let j =
          match Sobs.Json.of_string line with
          | Ok j -> j
          | Error e ->
            failwith (Printf.sprintf "flight: bad reply (%s): %s" e line)
        in
        (match Sobs.Json.member "ok" j with
        | Some (Sobs.Json.Bool true) -> ()
        | _ -> failwith ("flight: request failed: " ^ line));
        if json then print_endline line
        else begin
          let geti obj name =
            match
              Option.bind (Sobs.Json.member name obj) Sobs.Json.to_int_opt
            with
            | Some n -> n
            | None -> 0
          in
          Printf.printf "flight recorder: %d/%d entries, %d recorded\n"
            (geti j "flight") (geti j "capacity") (geti j "total");
          match Sobs.Json.member "entries" j with
          | Some (Sobs.Json.List es) ->
            List.iter
              (fun e ->
                let sopt name =
                  Option.bind (Sobs.Json.member name e) Sobs.Json.to_string_opt
                in
                let str name = Option.value ~default:"-" (sopt name) in
                let lat =
                  match
                    Option.bind
                      (Sobs.Json.member "latency_ms" e)
                      Sobs.Json.to_float_opt
                  with
                  | Some f -> f
                  | None -> 0.
                in
                Printf.printf "%-10s %-8s %-10s %-12s %4d  %8.3f ms  %s%s\n"
                  (str "rid")
                  (Option.value ~default:"query" (sopt "verb"))
                  (str "group") (str "status") (geti e "results")
                  lat (str "query")
                  (match sopt "error" with
                  | Some err -> "  ! " ^ err
                  | None -> ""))
              es
          | _ -> ()
        end)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Echo the server's raw flight reply instead.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Dump a running server's in-memory flight recorder (start it with \
          --flight N): one line per retained request — rid, group, outcome, \
          result count, latency, query")
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ wait_retry_arg ~cmd:"dump"
      $ json_arg)

let top_cmd =
  (* json probes, all total — a missing field renders as zero rather
     than tearing the dashboard down mid-refresh *)
  let geti j name =
    match Option.bind (Sobs.Json.member name j) Sobs.Json.to_int_opt with
    | Some n -> n
    | None -> 0
  in
  let getf j name =
    match Option.bind (Sobs.Json.member name j) Sobs.Json.to_float_opt with
    | Some f -> f
    | None -> 0.
  in
  let fields = function Some (Sobs.Json.Obj fs) -> fs | _ -> [] in
  let hms seconds =
    let s = int_of_float seconds in
    Printf.sprintf "%d:%02d:%02d" (s / 3600) (s mod 3600 / 60) (s mod 60)
  in
  let pct hits misses =
    let total = hits + misses in
    if total = 0 then "    -"
    else Printf.sprintf "%5.1f" (100. *. float_of_int hits /. float_of_int total)
  in
  let run socket tcp host wait interval iterations =
    let addr = remote_addr ~cmd:"top" socket tcp host in
    (* --wait applies to the first connection only: once the dashboard
       is up, a vanished server is an error, not something to retry *)
    let first = ref true in
    let fetch_stats () =
      let w = if !first then wait else 0. in
      first := false;
      let fd = connect_retry ~wait:w addr in
      let ic = Unix.in_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
        (fun () ->
          fd_send_line fd
            (Sobs.Json.to_string (Sserver.Protocol.simple "stats"));
          let line = input_line ic in
          match Sobs.Json.of_string line with
          | Error e ->
            failwith (Printf.sprintf "top: bad reply (%s): %s" e line)
          | Ok j -> (
            match Sobs.Json.member "ok" j with
            | Some (Sobs.Json.Bool true) -> j
            | _ -> failwith ("top: stats failed: " ^ line)))
    in
    (* rps is the accepted-counter delta between two refreshes; the
       first frame falls back to the lifetime average *)
    let prev = ref None in
    let render () =
      let j = fetch_stats () in
      let now = Sserver.Deadline.now () in
      let counters = Option.value ~default:Sobs.Json.Null
          (Sobs.Json.member "counters" j) in
      let accepted = geti counters "server.accepted" in
      let uptime = getf j "uptime_s" in
      let rps =
        match !prev with
        | Some (t0, a0) when now > t0 ->
          float_of_int (accepted - a0) /. (now -. t0)
        | _ -> if uptime > 0. then float_of_int accepted /. uptime else 0.
      in
      prev := Some (now, accepted);
      let rejected =
        List.fold_left
          (fun acc (k, v) ->
            if String.starts_with ~prefix:"server.rejected." k then
              acc + Option.value ~default:0 (Sobs.Json.to_int_opt v)
            else acc)
          0 (fields (Some counters))
      in
      let queue = Option.value ~default:Sobs.Json.Null
          (Sobs.Json.member "queue" j) in
      let b = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "secview top — up %s   %d worker(s), %d busy   queue %d/%d"
        (hms uptime) (geti j "workers") (geti j "workers_busy")
        (geti queue "length") (geti queue "capacity");
      line "requests: %.1f rps   accepted %d   timeouts %d   rejected %d"
        rps accepted (geti counters "server.timeout") rejected;
      line "";
      (* one row per group: latency quantiles + cache hit rates +
         admission denials, joined across the reply's sections *)
      let latency = Sobs.Json.member "latency_ms" j in
      let cache = Sobs.Json.member "cache" j in
      let admission = Sobs.Json.member "admission" j in
      let groups =
        List.sort_uniq compare
          (List.map fst (fields latency) @ List.map fst (fields cache))
      in
      line "%-12s %8s %9s %9s %7s %6s %7s" "group" "count" "p50ms" "p95ms"
        "cache%" "plan%" "denied";
      List.iter
        (fun g ->
          let l = Option.value ~default:Sobs.Json.Null
              (Option.bind latency (Sobs.Json.member g)) in
          let c = Option.value ~default:Sobs.Json.Null
              (Option.bind cache (Sobs.Json.member g)) in
          let a = Option.value ~default:Sobs.Json.Null
              (Option.bind admission (Sobs.Json.member g)) in
          line "%-12s %8d %9.3f %9.3f %7s %6s %7d" g (geti l "count")
            (getf l "p50") (getf l "p95")
            (pct (geti c "hits") (geti c "misses"))
            (pct (geti c "plan_hits") (geti c "plan_misses"))
            (geti a "denied"))
        groups;
      line "";
      (match Sobs.Json.member "runtime" j with
      | Some rt
        when Sobs.Json.member "enabled" rt = Some (Sobs.Json.Bool true) ->
        line "gc: %d domain(s) live   %d pause(s)   %d event(s) lost"
          (geti rt "domains_live") (geti rt "pauses_total")
          (geti rt "events_lost");
        line "%-12s %8s %9s %9s %9s %9s" "domain" "pauses" "p50ms" "p99ms"
          "maxms" "totalms";
        List.iter
          (fun (d, pj) ->
            line "%-12s %8d %9.3f %9.3f %9.3f %9.3f" d (geti pj "count")
              (getf pj "p50_ms") (getf pj "p99_ms") (getf pj "max_ms")
              (getf pj "total_ms"))
          (fields (Sobs.Json.member "gc_pause_ms" rt))
      | _ ->
        line "gc: runtime events off — start the server with \
              --runtime-events");
      Buffer.contents b
    in
    let rounds = if iterations > 0 then iterations else max_int in
    watch_loop ~interval ~rounds render
  in
  let interval_arg =
    Arg.(
      value & opt float 1.
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"Refresh every $(docv) seconds (default 1).")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes (0 = until killed; Ctrl-C \
             exits cleanly either way).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard for a running server: rps, per-group \
          latency quantiles and cache hit rates, queue depth, busy \
          workers, admission denials, and per-domain GC pause quantiles \
          when the server runs with --runtime-events")
    Term.(
      const run $ socket_arg $ tcp_arg $ host_arg $ wait_retry_arg ~cmd:"top"
      $ interval_arg $ iterations_arg)

let replay_cmd =
  let ms_of l p =
    let a = Array.of_list l in
    Array.sort Float.compare a;
    Sobs.Metrics.percentile a p
  in
  let run capture_file socket tcp host wait dtd_path root spec_path
      group_specs docs label json out =
    let records =
      match Sobs.Capture.read_file capture_file with
      | Ok rs -> rs
      | Error e -> failwith ("replay: " ^ e)
    in
    if records = [] then
      failwith (Printf.sprintf "replay: %s holds no records" capture_file);
    let remote = socket <> None || tcp <> None in
    (* replayed: (captured record, replay digest, result count, ms), in
       capture order *)
    let replayed =
      if remote then begin
        (* one session per captured group, opened up front, and every
           record re-sent in strict capture order across groups — a
           mixed read/write workload must interleave exactly as
           captured, or the writes would rebuild different document
           versions.  Rids are re-sent so the replayed request is
           traceable in the server's audit log and flight recorder. *)
        let group_names =
          List.fold_left
            (fun acc (r : Sobs.Capture.record) ->
              if List.mem r.c_group acc then acc else acc @ [ r.c_group ])
            [] records
        in
        let addr = remote_addr ~cmd:"replay" socket tcp host in
        let sessions =
          List.map
            (fun g ->
              let fd = connect_retry ~wait addr in
              let ic = Unix.in_channel_of_descr fd in
              (g, (fd, ic)))
            group_names
        in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun (_, (_, ic)) -> try close_in ic with Sys_error _ -> ())
              sessions)
          (fun () ->
            let send fd j = fd_send_line fd (Sobs.Json.to_string j) in
            let recv ic =
              let line = input_line ic in
              match Sobs.Json.of_string line with
              | Ok j -> j
              | Error e ->
                failwith (Printf.sprintf "replay: bad reply (%s): %s" e line)
            in
            List.iter
              (fun (g, (fd, ic)) ->
                send fd (Sserver.Protocol.hello ~peer:"replay" g);
                match Sobs.Json.member "ok" (recv ic) with
                | Some (Sobs.Json.Bool true) -> ()
                | _ -> failwith (Printf.sprintf "replay: hello %S refused" g))
              sessions;
            List.map
              (fun (r : Sobs.Capture.record) ->
                let fd, ic = List.assoc r.c_group sessions in
                let t0 = Sserver.Deadline.now () in
                send fd
                  (if r.c_verb = "update" then
                     Sserver.Protocol.update_json ~rid:r.c_rid ?doc:r.c_doc
                       ~bind:r.c_bind r.c_query
                   else
                     Sserver.Protocol.query_json ~rid:r.c_rid ?doc:r.c_doc
                       ~bind:r.c_bind ~use_index:r.c_index r.c_query);
                let reply = recv ic in
                let ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                match Sobs.Json.member "ok" reply with
                | Some (Sobs.Json.Bool true) when r.c_verb = "update" ->
                  (* the reply digest is of the group's view of the
                     resulting document: a match means the replayed
                     write rebuilt the byte-identical view *)
                  let digest =
                    match
                      Option.bind
                        (Sobs.Json.member "digest" reply)
                        Sobs.Json.to_string_opt
                    with
                    | Some d -> d
                    | None -> "-"
                  in
                  let targets =
                    match
                      Option.bind
                        (Sobs.Json.member "targets" reply)
                        Sobs.Json.to_int_opt
                    with
                    | Some n -> n
                    | None -> 0
                  in
                  (r, digest, targets, ms)
                | Some (Sobs.Json.Bool true) ->
                  let results =
                    match Sobs.Json.member "results" reply with
                    | Some (Sobs.Json.List rs) ->
                      List.filter_map Sobs.Json.to_string_opt rs
                    | _ -> []
                  in
                  (r, Sobs.Capture.digest results, List.length results, ms)
                | _ ->
                  let code =
                    match
                      Option.bind
                        (Sobs.Json.member "code" reply)
                        Sobs.Json.to_string_opt
                    with
                    | Some c -> c
                    | None -> "error"
                  in
                  (r, "refused:" ^ code, 0, ms))
              records)
      end
      else begin
        let need what = function
          | Some v -> v
          | None ->
            failwith
              (Printf.sprintf
                 "replay: --%s is required unless --socket or --tcp is given"
                 what)
        in
        let dtd = load_dtd root (need "dtd" dtd_path) in
        let groups = named_groups ~cmd:"replay" dtd spec_path group_specs in
        if docs = [] then
          failwith
            "replay: at least one --doc NAME=FILE is required unless \
             --socket or --tcp is given";
        let catalog = Secview.Catalog.create () in
        List.iter
          (fun (n, p) -> ignore (Secview.Catalog.add_file catalog ~name:n p))
          docs;
        let svc = Secview.Pipeline.Service.create ~catalog dtd ~groups in
        let pipe = Secview.Pipeline.Session.create svc in
        let default_doc =
          match docs with [ (n, _) ] -> Some n | _ -> None
        in
        List.map
          (fun (r : Sobs.Capture.record) ->
            let doc_name =
              match (r.c_doc, default_doc) with
              | Some n, _ | None, Some n -> n
              | None, None ->
                failwith
                  (Printf.sprintf
                     "replay: record %s names no document and several --doc \
                      were given"
                     r.c_rid)
            in
            let entry =
              match Secview.Catalog.find catalog doc_name with
              | Some e -> e
              | None ->
                failwith
                  (Printf.sprintf "replay: record %s: unknown document %S"
                     r.c_rid doc_name)
            in
            let engine =
              match Secview.Pipeline.engine_of_string r.c_engine with
              | Some e -> e
              | None ->
                failwith
                  (Printf.sprintf "replay: record %s: unknown engine %S"
                     r.c_rid r.c_engine)
            in
            let env = env_of_bindings r.c_bind in
            if r.c_verb = "update" then begin
              let t0 = Sserver.Deadline.now () in
              match
                Supdate.Engine.apply_text svc ~group:r.c_group ~env ~entry
                  r.c_query
              with
              | Ok rc ->
                let ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                (r, rc.Supdate.Engine.r_view_digest, rc.Supdate.Engine.r_targets, ms)
              | Error e ->
                let ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                (r, "error:" ^ Secview.Error.to_code e, 0, ms)
            end
            else begin
              let q = Sxpath.Parse.of_string r.c_query in
              let doc = Secview.Catalog.doc entry in
              let index =
                if r.c_index then Some (Secview.Catalog.index entry)
                else None
              in
              let t0 = Sserver.Deadline.now () in
              match
                Secview.Pipeline.Session.answer pipe ~group:r.c_group ~engine
                  ~env ?index q doc
              with
              | Ok nodes ->
                let ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                let rendered =
                  List.map (fun n -> Sxml.Print.to_string n) nodes
                in
                (r, Sobs.Capture.digest rendered, List.length rendered, ms)
              | Error e ->
                let ms = 1000. *. (Sserver.Deadline.now () -. t0) in
                (r, "error:" ^ Secview.Error.to_code e, 0, ms)
            end)
          records
      end
    in
    let mismatches =
      List.filter
        (fun ((r : Sobs.Capture.record), d, _, _) -> d <> r.c_digest)
        replayed
    in
    List.iter
      (fun ((r : Sobs.Capture.record), d, n, _) ->
        Printf.eprintf
          "secview: replay mismatch %s group=%s query=%s: captured %s (%d \
           results), replayed %s (%d results)\n"
          r.c_rid r.c_group r.c_query r.c_digest r.c_results d n)
      mismatches;
    (* per-cell latency comparison: a cell is one distinct
       (group, doc, query) the workload exercised *)
    let cells =
      List.fold_left
        (fun acc ((r : Sobs.Capture.record), _, _, ms) ->
          let key = (r.c_group, r.c_doc, r.c_query) in
          match List.assoc_opt key acc with
          | Some _ ->
            List.map
              (fun (k, (cap, rep)) ->
                if k = key then (k, (r.c_latency_ms :: cap, ms :: rep))
                else (k, (cap, rep)))
              acc
          | None -> acc @ [ (key, ([ r.c_latency_ms ], [ ms ])) ])
        [] replayed
    in
    let report =
      Sobs.Json.Obj
        [
          ("bench", Sobs.Json.String "replay");
          ("label", Sobs.Json.String label);
          ("source", Sobs.Json.String capture_file);
          ("mode", Sobs.Json.String (if remote then "live" else "local"));
          ("records", Sobs.Json.Int (List.length replayed));
          ("mismatches", Sobs.Json.Int (List.length mismatches));
          ( "cells",
            Sobs.Json.List
              (List.map
                 (fun ((g, d, q), (cap, rep)) ->
                   let side l =
                     Sobs.Json.Obj
                       [
                         ("p50_ms", Sobs.Json.Float (ms_of l 50.));
                         ("p95_ms", Sobs.Json.Float (ms_of l 95.));
                       ]
                   in
                   Sobs.Json.Obj
                     (("group", Sobs.Json.String g)
                      :: (match d with
                         | Some d -> [ ("doc", Sobs.Json.String d) ]
                         | None -> [])
                     @ [
                         ("query", Sobs.Json.String q);
                         ("n", Sobs.Json.Int (List.length cap));
                         ("captured", side cap);
                         ("replayed", side rep);
                       ]))
                 cells) );
        ]
    in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Sobs.Json.to_string report);
      output_char oc '\n';
      close_out oc
    | None -> ());
    if json then print_endline (Sobs.Json.to_string report)
    else begin
      Printf.printf "replayed %d record(s) from %s — %d mismatch(es)\n"
        (List.length replayed) capture_file
        (List.length mismatches);
      List.iter
        (fun ((g, d, q), (cap, rep)) ->
          Printf.printf
            "  %-10s %-30s n=%-3d captured %7.3f/%7.3f ms  replayed \
             %7.3f/%7.3f ms\n"
            g
            (match d with Some d -> q ^ " @" ^ d | None -> q)
            (List.length cap) (ms_of cap 50.) (ms_of cap 95.) (ms_of rep 50.)
            (ms_of rep 95.))
        cells
    end;
    if mismatches <> [] then exit 1
  in
  let capture_file_arg =
    let doc = "Capture file (JSONL, from --capture) to replay." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let dtd_opt_arg =
    let doc = "Document DTD file (local mode)." in
    Arg.(value & opt (some file) None & info [ "dtd" ] ~docv:"FILE" ~doc)
  in
  let spec_local_arg =
    let doc =
      "Access-specification file for group 'user' (local mode; shorthand \
       for --group user=FILE)."
    in
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let docs_arg =
    let doc =
      "Add document $(i,FILE) to the replay catalog as $(i,NAME) (local \
       mode, repeatable; a single --doc also serves records that name no \
       document)."
    in
    Arg.(
      value
      & opt_all (pair_conv ~what:"NAME=FILE") []
      & info [ "doc" ] ~docv:"NAME=FILE" ~doc)
  in
  let label_arg =
    Arg.(
      value & opt string "replay"
      & info [ "label" ] ~docv:"NAME" ~doc:"Label stamped into the report.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the comparison report as JSON instead of text.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also write the JSON report to $(docv) (feed two of these to \
             bench_diff).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a captured workload — against a local pipeline \
          (--dtd/--spec/--doc) or a live server (--socket/--tcp) — \
          byte-comparing every answer against its captured digest \
          (exit 1 on any mismatch) and comparing per-query latency")
    Term.(
      const run $ capture_file_arg $ socket_arg $ tcp_arg $ host_arg
      $ wait_retry_arg ~cmd:"replay" $ dtd_opt_arg $ root_arg $ spec_local_arg
      $ group_specs_arg $ docs_arg $ label_arg $ json_arg $ out_arg)

let metrics_cmd =
  let inet_of host =
    if host = "" then Unix.inet_addr_loopback
    else
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let write_all fd s =
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write fd b off (Bytes.length b - off))
    in
    go 0
  in
  (* one GET /metrics over plain HTTP/1.0 — no curl dependency *)
  let http_scrape target =
    let host, port =
      match String.rindex_opt target ':' with
      | Some i -> (
        ( String.sub target 0 i,
          match
            int_of_string_opt
              (String.sub target (i + 1) (String.length target - i - 1))
          with
          | Some p -> p
          | None -> failwith "metrics: --scrape expects HOST:PORT" ))
      | None -> failwith "metrics: --scrape expects HOST:PORT"
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (ADDR_INET (inet_of host, port));
        write_all fd
          (Printf.sprintf "GET /metrics HTTP/1.0\r\nHost: %s\r\n\r\n" host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec slurp () =
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            slurp ()
          end
        in
        slurp ();
        let response = Buffer.contents buf in
        let body =
          let rec split i =
            if i + 3 >= String.length response then response
            else if String.sub response i 4 = "\r\n\r\n" then
              String.sub response (i + 4) (String.length response - i - 4)
            else split (i + 1)
          in
          split 0
        in
        let status =
          match String.index_opt response '\n' with
          | Some i -> String.trim (String.sub response 0 i)
          | None -> response
        in
        if
          String.length status < 12
          || String.sub status 9 3 <> "200"
        then failwith (Printf.sprintf "metrics: scrape failed: %s" status);
        body)
  in
  (* the server's [metrics] verb over one throwaway connection *)
  let remote_metrics addr field =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    let ic = Unix.in_channel_of_descr fd in
    Fun.protect
      ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
      (fun () ->
        Unix.connect fd addr;
        write_all fd
          (Sobs.Json.to_string (Sserver.Protocol.simple "metrics") ^ "\n");
        let line = input_line ic in
        match field with
        | None -> line ^ "\n"
        | Some f -> (
          match
            Result.to_option (Sobs.Json.of_string line)
            |> Fun.flip Option.bind (Sobs.Json.member f)
            |> Fun.flip Option.bind Sobs.Json.to_string_opt
          with
          | Some s -> s
          | None -> failwith ("metrics: request failed: " ^ line)))
  in
  let run dtd_path root spec_path doc_path bindings engine repeat json
      openmetrics socket tcp host scrape watch iterations queries =
    let remote = scrape <> None || socket <> None || tcp <> None in
    if watch <> None && not remote then
      failwith "metrics: --watch needs --socket, --tcp or --scrape";
    if remote then begin
      let fetch =
        match scrape with
        | Some target -> fun () -> http_scrape target
        | None ->
          let addr =
            match (socket, tcp) with
            | Some path, None -> Unix.ADDR_UNIX path
            | None, Some port -> Unix.ADDR_INET (inet_of host, port)
            | _ -> failwith "metrics: provide exactly one of --socket or --tcp"
          in
          let field =
            if json then None
            else if openmetrics then Some "openmetrics"
            else Some "text"
          in
          fun () -> remote_metrics addr field
      in
      match watch with
      | None ->
        print_string (fetch ());
        flush stdout
      | Some interval ->
        let rounds = if iterations > 0 then iterations else max_int in
        watch_loop ~interval ~rounds fetch
    end
    else begin
      let need what = function
        | Some v -> v
        | None ->
          failwith
            (Printf.sprintf
               "metrics: --%s is required unless --socket, --tcp or \
                --scrape is given"
               what)
      in
      if queries = [] then failwith "metrics: at least one QUERY is required";
      let registry = Sobs.Metrics.create () in
      let tracer = Sobs.Tracer.create ~metrics:registry () in
      Sobs.Tracer.install tracer;
      let dtd = load_dtd root (need "dtd" dtd_path) in
      let spec = Secview.Spec.of_sidecar_file dtd (need "spec" spec_path) in
      let pipe =
        Secview.Pipeline.Session.create
          (Secview.Pipeline.Service.create dtd ~groups:[ ("user", spec) ])
      in
      let doc = Sxml.Parse.of_file (need "doc" doc_path) in
      let env = env_of_bindings bindings in
      List.iter
        (fun qs ->
          let q = Sxpath.Parse.of_string qs in
          for _ = 1 to repeat do
            ignore
              (Secview.Pipeline.Session.answer_exn pipe ~group:"user" ~engine
                 ~env q doc)
          done)
        queries;
      Sobs.Tracer.uninstall ();
      if openmetrics then print_string (Sobs.Export.openmetrics registry)
      else if json then
        print_endline (Sobs.Json.to_string (Sobs.Metrics.to_json registry))
      else Format.printf "%a%!" Sobs.Metrics.pp registry
    end
  in
  let dtd_opt_arg =
    let doc = "Document DTD file (local mode)." in
    Arg.(value & opt (some file) None & info [ "dtd" ] ~docv:"FILE" ~doc)
  in
  let spec_local_arg =
    let doc = "Access-specification file (local mode)." in
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let doc_opt_arg =
    let doc = "XML document file (local mode)." in
    Arg.(value & opt (some file) None & info [ "doc" ] ~docv:"FILE" ~doc)
  in
  let repeat_arg =
    Arg.(
      value & opt int 2
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Answer each query $(docv) times, so the translation cache's \
             steady-state behaviour shows up in the counters.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Dump the registry as JSON instead of text (remote: echo the \
             server's raw metrics reply).")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Render the registry as OpenMetrics text exposition instead — \
             exactly what a GET /metrics scrape returns.")
  in
  let scrape_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scrape" ] ~docv:"HOST:PORT"
          ~doc:
            "Fetch http://$(docv)/metrics from a server started with \
             --metrics-port and print the body (a curl-free scrape).")
  in
  let watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:
            "Refresh every $(docv) seconds (remote modes only); clears the \
             screen between refreshes when stdout is a terminal.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop --watch after $(docv) refreshes (0 = until killed).")
  in
  let queries_arg =
    let doc = "View queries to drive the pipeline with (local mode)." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump a metrics registry: drive queries through a local pipeline, \
          ask a running server (--socket/--tcp, optionally --watch), or \
          scrape its HTTP endpoint (--scrape)")
    Term.(
      const run $ dtd_opt_arg $ root_arg $ spec_local_arg $ doc_opt_arg
      $ bind_arg $ engine_arg $ repeat_arg $ json_arg $ openmetrics_arg
      $ socket_arg $ tcp_arg $ host_arg $ scrape_arg $ watch_arg
      $ iterations_arg $ queries_arg)

let main =
  Cmd.group
    (Cmd.info "secview" ~version:"1.0.0"
       ~doc:
         "Secure XML querying with security views (Fan, Chan, Garofalakis, \
          SIGMOD 2004)")
    [
      analyze_cmd; derive_cmd; graph_cmd; audit_cmd; lint_cmd;
      materialize_cmd; metrics_cmd; rewrite_cmd; query_cmd; explain_cmd;
      optimize_cmd; annotate_cmd; gen_cmd; validate_cmd; serve_cmd;
      client_cmd; flight_cmd; top_cmd; replay_cmd; update_cmd;
    ]

let () =
  match Cmd.eval ~catch:false main with
  | code -> exit code
  | exception Secview.Error.E e ->
    Printf.eprintf "secview: %s\n" (Secview.Error.to_string e);
    exit (Secview.Error.exit_code e)
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
    Printf.eprintf "secview: %s\n" msg;
    exit 2
  | exception Secview.Rewrite.Unsupported msg ->
    Printf.eprintf "secview: unsupported query: %s\n" msg;
    exit 2
