(* The Section 6 experimental workload as a walkthrough: the Adex-like
   classified-ads DTD, the buyers+real-estate policy, and the four
   benchmark queries under all three evaluation strategies (naive /
   rewrite / optimize), with work counters showing why Table 1 comes
   out the way it does.

   Run with: dune exec examples/adex_realestate.exe *)

let () =
  let dtd = Workload.Adex.dtd in
  let spec = Workload.Adex.spec in
  let view = Workload.Adex.view () in
  let doc = Workload.Adex.document ~ads:80 ~buyers:40 () in
  Format.printf "document: %s@." (Workload.Datasets.describe doc);

  Format.printf "@.== Security view ==@.";
  Format.printf
    "policy: children of the root are N; buyer-info and real-estate are Y@.";
  Format.printf "view DTD exposed to the user:@.%a@." Sdtd.Dtd.pp
    (Secview.View.dtd view);

  (* offline step for the naive strategy *)
  let prepared = Secview.Naive.prepare spec doc in

  let work f =
    Sxpath.Eval.visited := 0;
    let t0 = Unix.gettimeofday () in
    let result = f () in
    let dt = (Unix.gettimeofday () -. t0) *. 1000. in
    (result, !Sxpath.Eval.visited, dt)
  in

  Format.printf "@.== The four queries of Section 6 ==@.";
  List.iter
    (fun (name, q) ->
      Format.printf "@.%s = %a@." name Sxpath.Print.pp q;
      let naive_q = Secview.Naive.rewrite_query ~view q in
      let rewritten = Secview.Rewrite.rewrite view q in
      let optimized = Secview.Optimize.optimize dtd rewritten in
      Format.printf "  naive form     %a@." Sxpath.Print.pp naive_q;
      Format.printf "  rewritten form %a@." Sxpath.Print.pp rewritten;
      Format.printf "  optimized form %a@." Sxpath.Print.pp optimized;
      let r_naive, w_naive, t_naive =
        work (fun () ->
            Sxpath.Eval.run
              (Sxpath.Eval.Ctx.make ~root:prepared ())
              naive_q)
      in
      let r_rw, w_rw, t_rw =
        work (fun () -> Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~root:doc ()) rewritten)
      in
      let r_opt, w_opt, t_opt =
        work (fun () ->
            Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~root:doc ()) optimized)
      in
      Format.printf
        "  naive    : %4d results  %8d nodes visited  %7.2f ms@."
        (List.length r_naive) w_naive t_naive;
      Format.printf
        "  rewrite  : %4d results  %8d nodes visited  %7.2f ms@."
        (List.length r_rw) w_rw t_rw;
      Format.printf
        "  optimize : %4d results  %8d nodes visited  %7.2f ms@."
        (List.length r_opt) w_opt t_opt;
      assert (List.length r_naive = List.length r_rw);
      assert (List.length r_rw = List.length r_opt))
    Workload.Adex.queries;

  Format.printf
    "@.(Q4's rewritten form is already empty: the view DTD proves a house@.";
  Format.printf
    " can never have a unit-type descendant, so evaluation is skipped —@.";
  Format.printf
    " the paper reaches the same conclusion one stage later, through the@.";
  Format.printf " exclusive constraint at real-estate.)@."
