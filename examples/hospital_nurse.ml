(* The paper's running example, end to end:

   - the hospital DTD of Fig. 1 and the nurse policy of Example 3.1;
   - the inference attack of Example 1.1 against a DTD-exposing
     system, and how the security view blocks it;
   - the derived view of Fig. 2 and the materialization of
     Example 3.3;
   - query rewriting per Example 4.1.

   Run with: dune exec examples/hospital_nurse.exe *)

let section title = Format.printf "@.=== %s ===@." title

let () =
  let dtd = Workload.Hospital.dtd in
  let spec = Workload.Hospital.nurse_spec dtd in
  let env = Workload.Hospital.nurse_env "6" in
  let doc = Workload.Hospital.sample_document () in

  section "Document DTD (Fig. 1)";
  Format.printf "%a" Sdtd.Dtd.pp dtd;

  section "Nurse access specification (Example 3.1, $wardNo = 6)";
  Format.printf "%a" Secview.Spec.pp spec;

  section "The inference attack of Example 1.1";
  let p1, p2 = Workload.Hospital.inference_queries in
  let names p doc =
    List.map Sxml.Tree.string_value
      (Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~env ~root:doc ()) p)
  in
  Format.printf
    "If nurses could query the raw document with the full DTD:@.";
  Format.printf "  p1 = %a -> %s@." Sxpath.Print.pp p1
    (String.concat ", " (names p1 doc));
  Format.printf "  p2 = %a -> %s@." Sxpath.Print.pp p2
    (String.concat ", " (names p2 doc));
  Format.printf
    "  difference = patients in clinical trials (the secret!)@.";

  section "Derived security view (Fig. 2 / Example 3.2)";
  let view = Secview.Derive.derive spec in
  Format.printf "%a" Secview.View.pp view;

  section "Materialized view for ward 6 (Example 3.3; never stored)";
  let vt = Secview.Materialize.materialize ~env ~spec ~view doc in
  Format.printf "%a@." Sxml.Tree.pp (Secview.Materialize.to_tree vt);

  section "The attack through the view";
  let rewrite p = Secview.Rewrite.rewrite view p in
  let r1 = names (rewrite p1) doc and r2 = names (rewrite p2) doc in
  Format.printf "  p1 over the view -> %s@." (String.concat ", " r1);
  Format.printf "  p2 over the view -> %s@." (String.concat ", " r2);
  Format.printf "  difference: %s — nothing to infer.@."
    (match List.filter (fun n -> not (List.mem n r2)) r1 with
    | [] -> "empty"
    | leaked -> "LEAKED " ^ String.concat ", " leaked);

  section "Query rewriting (Example 4.1)";
  let q = Sxpath.Parse.of_string "//patient//bill" in
  let pt = rewrite q in
  Format.printf "  view query: %a@." Sxpath.Print.pp q;
  Format.printf "  rewritten : %a@." Sxpath.Print.pp pt;
  List.iter
    (fun n -> Format.printf "  -> bill %s@." (Sxml.Tree.string_value n))
    (Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~env ~root:doc ()) pt);

  section "Dummies hide labels but keep structure";
  let q = Sxpath.Parse.of_string "//treatment/*" in
  Format.printf "  %a rewrites to %a@." Sxpath.Print.pp q Sxpath.Print.pp
    (rewrite q);
  Format.printf
    "  (nurses see dummy1/dummy2 in their DTD and never learn that the@.";
  Format.printf "   underlying elements are 'trial' and 'regular')@."
