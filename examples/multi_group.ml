(* Multiple user groups over one document (the paper's Fig. 3 setting:
   "multiple access control policies are possibly declared over T at
   the same time").

   One hospital document, three groups — nurses, billing clerks, and
   researchers — each with its own specification, each getting its own
   derived view DTD, all answered by rewriting against the same stored
   document.  Nothing is materialized per group.

   Run with: dune exec examples/multi_group.exe *)

let () =
  let dtd = Workload.Hospital.dtd in
  let doc = Workload.Hospital.sample_document () in

  (* Group 1: nurses (Example 3.1) — per-ward, no trial membership. *)
  let nurses = Workload.Hospital.nurse_spec dtd in

  (* Group 2: billing clerks — bills of every patient, but no medical
     content: no treatment kind, no medication, no staff data. *)
  let billing =
    Secview.Spec.of_sidecar dtd
      {|dept staffInfo N
        dept clinicalTrial N
        clinicalTrial patientInfo Y
        patient treatment N
        treatment trial N
        treatment regular N
        trial bill Y
        regular bill Y|}
  in

  (* Group 3: researchers — clinical-trial data including tests, but
     no patient identities and no billing. *)
  let research =
    Secview.Spec.of_sidecar dtd
      {|dept patientInfo N
        dept staffInfo N
        patient name N
        trial bill N
        regular bill N|}
  in

  let groups =
    [ ("nurses", nurses, Some (Workload.Hospital.nurse_env "6"));
      ("billing", billing, None);
      ("research", research, None) ]
  in

  let queries =
    List.map Sxpath.Parse.of_string
      [ "//patient/name"; "//bill"; "//test"; "//medication" ]
  in

  List.iter
    (fun (name, spec, env) ->
      let env = Option.value env ~default:(fun _ -> None) in
      let view = Secview.Derive.derive spec in
      Format.printf "@.=== %s: view DTD ===@.%a" name Sdtd.Dtd.pp
        (Secview.View.dtd view);
      List.iter
        (fun q ->
          let pt = Secview.Rewrite.rewrite view q in
          let answers =
            List.map Sxml.Tree.string_value
              (Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~env ~root:doc ()) pt)
          in
          Format.printf "  %-18s -> %s@."
            (Sxpath.Print.to_string q)
            (match answers with
            | [] -> "(nothing)"
            | vs -> String.concat ", " vs))
        queries)
    groups;

  Format.printf
    "@.The same document serves all three policies; each group sees only@.";
  Format.printf
    "its own view DTD, and every query is answered by rewriting — no@.";
  Format.printf "materialized copies, no per-element run-time checks.@."
