(* Quickstart: define a DTD, annotate it with a security policy,
   derive the security view, and run a query through the
   rewrite-optimize pipeline — the full Fig. 3 loop in ~60 lines.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A document DTD, written in ordinary DTD syntax. *)
  let dtd =
    Sdtd.Parse.of_string
      {|<!ELEMENT store   (product*, ledger)>
        <!ELEMENT product (name, price, cost)>
        <!ELEMENT ledger  (entry*)>
        <!ELEMENT entry   (#PCDATA)>
        <!ELEMENT name    (#PCDATA)>
        <!ELEMENT price   (#PCDATA)>
        <!ELEMENT cost    (#PCDATA)>|}
  in

  (* 2. A policy for customers: the internal cost of each product and
     the accounting ledger are off limits; everything else is
     inherited as accessible. *)
  let policy =
    Secview.Spec.make dtd
      [
        (("product", "cost"), Secview.Spec.No);
        (("store", "ledger"), Secview.Spec.No);
      ]
  in

  (* 3. Derive the security view: customers get the view DTD; the σ
     annotations stay server-side. *)
  let view = Secview.Derive.derive policy in
  Format.printf "== View definition (server side) ==@.%a@." Secview.View.pp
    view;
  Format.printf "== View DTD (what the customer sees) ==@.%a@." Sdtd.Dtd.pp
    (Secview.View.dtd view);

  (* 4. A document instance. *)
  let doc =
    Sxml.Parse.of_string
      {|<store>
          <product><name>anvil</name><price>35</price><cost>12</cost></product>
          <product><name>rocket</name><price>920</price><cost>609</cost></product>
          <ledger><entry>q1: profit 334</entry></ledger>
        </store>|}
  in
  assert (Sdtd.Validate.conforms dtd doc);

  (* 5. A customer query over the view is rewritten to an equivalent
     query over the document and optimized against the document DTD —
     no view is ever materialized. *)
  let run q =
    let query = Sxpath.Parse.of_string q in
    let rewritten = Secview.Rewrite.rewrite view query in
    let optimized = Secview.Optimize.optimize dtd rewritten in
    Format.printf "@.query      %s@." q;
    Format.printf "rewritten  %a@." Sxpath.Print.pp rewritten;
    Format.printf "optimized  %a@." Sxpath.Print.pp optimized;
    List.iter
      (fun node -> Format.printf "  -> %a@." Sxml.Tree.pp node)
      (Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~root:doc ()) optimized)
  in
  run "//product/name";
  run "//product[price = \"35\"]";
  run "//cost" (* hidden: rewrites to the empty query *);
  run "//ledger//entry" (* hidden as well *)
