(* Recursive security views (Section 4.2 / Fig. 7).

   When the view DTD is recursive, '//' has no finite XPath expansion
   over the document ((a/c)*/b is a regular expression, not XPath), so
   rewriting first unfolds the view DTD to the height of the concrete
   document and then proceeds as usual.

   Run with: dune exec examples/recursive_views.exe *)

let () =
  let dtd = Workload.Fig7.dtd in
  let view = Workload.Fig7.view () in

  Format.printf "document DTD:@.%a@." Sdtd.Dtd.pp dtd;
  Format.printf "view (recursive: r -> a; a -> b, c; c -> a*):@.%a@."
    Secview.View.pp view;

  (* Rewriting without a height bound is impossible. *)
  (match Secview.Rewrite.rewrite view (Sxpath.Parse.of_string "//b") with
  | _ -> assert false
  | exception Secview.Rewrite.Unsupported msg ->
    Format.printf "@.direct rewrite fails as expected:@.  %s@." msg);

  List.iter
    (fun depth ->
      let doc = Workload.Fig7.document ~depth in
      (* element-nesting height of this concrete document *)
      let rec height (n : Sxml.Tree.t) =
        match Sxml.Tree.element_children n with
        | [] -> 1
        | cs -> 1 + List.fold_left (fun acc c -> max acc (height c)) 0 cs
      in
      let h = height doc in
      let unfolded = Secview.View.unfolded view ~height:h in
      Format.printf "@.-- document of a-nesting depth %d (height %d) --@."
        depth h;
      Format.printf "unfolded view DTD:@.%a" Sdtd.Dtd.pp
        (Secview.View.dtd unfolded);
      let q = Sxpath.Parse.of_string "//b" in
      let pt = Secview.Rewrite.rewrite_with_height view ~height:h q in
      Format.printf "//b rewrites to: %a@." Sxpath.Print.pp pt;
      let results = Sxpath.Eval.run (Sxpath.Eval.Ctx.make ~root:doc ()) pt in
      Format.printf "results: %s@."
        (String.concat ", " (List.map Sxml.Tree.string_value results));
      (* the hidden b child of the root never appears *)
      assert (
        List.for_all
          (fun n -> Sxml.Tree.string_value n <> "hidden")
          results))
    [ 1; 2; 3 ]
