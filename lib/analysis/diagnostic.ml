type severity =
  | Error
  | Warning
  | Info

type subject =
  | Annotation of string * string
  | Element of string
  | Sigma of string * string
  | Query of string
  | Groups of string * string
  | General

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

let make ~code ~severity ?(subject = General) message =
  { code; severity; subject; message }

let severity_label : severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let subject_label = function
  | Annotation (a, b) -> Printf.sprintf "ann(%s, %s)" a b
  | Element a -> Printf.sprintf "element %s" a
  | Sigma (a, b) -> Printf.sprintf "sigma(%s, %s)" a b
  | Query q -> Printf.sprintf "query %s" q
  | Groups (a, b) -> Printf.sprintf "groups(%s, %s)" a b
  | General -> ""

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let rank : severity -> int = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity ds =
  List.stable_sort (fun d1 d2 -> compare (rank d1.severity) (rank d2.severity)) ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let pp ppf d =
  match subject_label d.subject with
  | "" -> Format.fprintf ppf "%s[%s] %s" (severity_label d.severity) d.code d.message
  | subject ->
    Format.fprintf ppf "%s[%s] %s: %s"
      (severity_label d.severity)
      d.code subject d.message

let to_line d =
  Printf.sprintf "%s\t%s\t%s\t%s" d.code (severity_label d.severity)
    (subject_label d.subject) d.message

let pp_report ppf ds =
  match ds with
  | [] -> ()
  | ds ->
    List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (by_severity ds);
    let e, w, i = count ds in
    Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." e w i
