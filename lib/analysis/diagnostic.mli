(** Diagnostics for the static-analysis layer.

    A diagnostic is a stable code (["SV001"], …), a severity, a
    subject locating it in the policy/view/query it was found in, and
    a human message.  Codes are contracts: tests and downstream
    tooling match on them, so a code is never reused for a different
    condition.  See DESIGN.md, "Static analysis layer", for the code
    registry. *)

type severity =
  | Error  (** the artifact is broken; the CLI exits non-zero *)
  | Warning  (** almost certainly a mistake, but nothing will crash *)
  | Info  (** a fact worth knowing; often an intentional pattern *)

type subject =
  | Annotation of string * string
      (** a policy annotation [ann(parent, child)] *)
  | Element of string  (** an element type of a DTD *)
  | Sigma of string * string  (** a view annotation [σ(parent, child)] *)
  | Query of string  (** a query, by name or by its printed form *)
  | Groups of string * string
      (** a pair of user groups, for cross-group comparisons *)
  | General

type t = {
  code : string;
  severity : severity;
  subject : subject;
  message : string;
}

val make : code:string -> severity:severity -> ?subject:subject -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val subject_label : subject -> string
(** [ann(a, b)], [element a], [sigma(a, b)], [query q],
    [groups(a, b)], or [""]. *)

val errors : t list -> t list
val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, most severe first. *)

val count : t list -> int * int * int
(** (errors, warnings, infos). *)

val pp : Format.formatter -> t -> unit
(** Human rendering: [error\[SV002\] ann(a, b): message]. *)

val to_line : t -> string
(** Machine rendering, one record per line, tab-separated:
    [CODE<TAB>SEVERITY<TAB>SUBJECT<TAB>MESSAGE] — stable for scripts
    and CI annotations. *)

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics (most severe first) followed by a summary line;
    prints nothing for an empty list. *)
