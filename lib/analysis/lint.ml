module D = Diagnostic

open Walker
(* [reach]/[walk_qual]/[silent_reach]/[dead_step_message] and the
   [step_issue] type live in {!Walker}; this module only assembles
   diagnostics from what the walker reports. *)

(* ------------------------------------------------------------------ *)
(* Policy lints (SV001-SV004)                                          *)

let check_spec spec =
  let dtd = Secview.Spec.dtd spec in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* SV001: dead annotations, promoted from the schema auditor *)
  List.iter
    (fun ((a, b), ann) ->
      add
        (D.make ~code:"SV001" ~severity:D.Warning ~subject:(D.Annotation (a, b))
           (Format.asprintf
              "annotation %a can never change any node's accessibility"
              Secview.Spec.pp_annot ann)))
    (Secview.Audit.dead_annotations spec);
  (* SV002/SV003: qualifier references, checked at the annotated child
     (where the qualifier is evaluated) *)
  List.iter
    (fun ((a, b), ann) ->
      match ann with
      | Secview.Spec.Yes | Secview.Spec.No -> ()
      | Secview.Spec.Cond q ->
        let issue = function
          | Undeclared_attribute (attr, at) ->
            add
              (D.make ~code:"SV002" ~severity:D.Error
                 ~subject:(D.Annotation (a, b))
                 (Printf.sprintf
                    "qualifier references attribute @%s, which is declared on \
                     none of %s"
                    attr (comma at)))
          | Dead_step (step, at) ->
            add
              (D.make ~code:"SV003" ~severity:D.Error
                 ~subject:(D.Annotation (a, b))
                 (Printf.sprintf "qualifier %s"
                    (dead_step_message dtd (step, at))))
        in
        walk_qual ~issue dtd [ b ] q)
    (Secview.Spec.annotations spec);
  (* SV004: hidden element types that still grant access below
     themselves -- a common intentional pattern (expose a subtree under
     a hidden wrapper), surfaced for review rather than flagged *)
  let hidden = Secview.Audit.hidden_types spec in
  List.iter
    (fun ((a, b), ann) ->
      match ann with
      | (Secview.Spec.Yes | Secview.Spec.Cond _) when List.mem a hidden ->
        add
          (D.make ~code:"SV004" ~severity:D.Info ~subject:(D.Element a)
             (Printf.sprintf
                "hidden on every root-path, yet ann(%s, %s) grants access \
                 below it (verify this re-exposure is intended)"
                a b))
      | _ -> ())
    (Secview.Spec.annotations spec);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* View lints (SV101-SV103)                                            *)

let check_view ~dtd view =
  let vdtd = Secview.View.dtd view in
  let srcs = source_types ~dtd view in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Secview.View.sigma view ~parent:a ~child:b with
          | None -> ()
          | Some sg ->
            let sctx = srcs a in
            if sctx <> [] then begin
              let deads = ref [] in
              let issue = function
                | Dead_step (s, at) -> deads := (s, at) :: !deads
                | Undeclared_attribute (attr, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "references attribute @%s, declared on none of %s"
                          attr (comma at)))
              in
              let qual_issue = function
                | Dead_step (s, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf "qualifier %s"
                          (dead_step_message dtd (s, at))))
                | Undeclared_attribute (attr, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "qualifier references attribute @%s, declared on \
                           none of %s"
                          attr (comma at)))
              in
              let qual_hook cs q =
                walk_qual ~issue:qual_issue dtd cs q;
                cs
              in
              let r = reach ~issue ~qual_hook dtd sctx sg in
              (* a σ step that matches nothing is drift from the DTD,
                 whether it kills the whole extraction or only one
                 branch of it *)
              (match List.rev !deads with
              | [] ->
                if r = [] then
                  add
                    (D.make ~code:"SV101" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "path %s matches nothing in the document DTD \
                           (evaluated at %s)"
                          (Sxpath.Print.to_string sg)
                          (comma sctx)))
              | deads ->
                List.iter
                  (fun d ->
                    add
                      (D.make ~code:"SV101" ~severity:D.Error
                         ~subject:(D.Sigma (a, b))
                         (Printf.sprintf "path %s: %s"
                            (Sxpath.Print.to_string sg)
                            (dead_step_message dtd d))))
                  deads);
              if r <> [] && not (Secview.View.is_dummy view b) then begin
                let want = Sdtd.Unfold.label_of b in
                let foreign =
                  List.filter
                    (fun t ->
                      (not (label_matches want t))
                      && not (String.length t > 0 && t.[0] = '@'))
                    r
                in
                if foreign <> [] then
                  add
                    (D.make ~code:"SV102" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "path %s lands on %s, not on %s elements"
                          (Sxpath.Print.to_string sg)
                          (comma foreign) want))
              end
            end)
        (Sdtd.Dtd.children_of vdtd a))
    (Sdtd.Dtd.reachable vdtd);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Query lints (SV201-SV205)                                           *)

let check_query ?name vdtd q =
  let label = Option.value name ~default:(Sxpath.Print.to_string q) in
  let subject = D.Query label in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let deads = ref [] in
  let issue = function
    | Dead_step (s, at) -> deads := (s, at) :: !deads
    | Undeclared_attribute (attr, at) ->
      add
        (D.make ~code:"SV205" ~severity:D.Error ~subject
           (Printf.sprintf
              "attribute @%s is not declared on %s in the view DTD; \
               rewriting translates this step to the empty query"
              attr (comma at)))
  in
  let qual_hook ctxs qq =
    (* reference problems inside the qualifier (attributes only: dead
       qualifier paths are subsumed by the vacuity decision below) *)
    walk_qual
      ~issue:(function Undeclared_attribute _ as i -> issue i | Dead_step _ -> ())
      vdtd ctxs qq;
    let verdict b =
      if Sdtd.Dtd.mem vdtd b then Secview.Image.bool_of_qual vdtd qq b
      else `Unknown
    in
    let verdicts = List.map verdict ctxs in
    let qtxt = Sxpath.Print.qual_to_string qq in
    if List.for_all (( = ) `True) verdicts then
      add
        (D.make ~code:"SV203" ~severity:D.Info ~subject
           (Printf.sprintf
              "qualifier [%s] holds at every %s by DTD constraints \
               (redundant; the optimizer drops it)"
              qtxt (comma ctxs)));
    if List.for_all (( = ) `False) verdicts then
      add
        (D.make ~code:"SV204" ~severity:D.Warning ~subject
           (Printf.sprintf
              "qualifier [%s] fails at every %s by DTD constraints \
               (this step can never select anything)"
              qtxt (comma ctxs)));
    List.filter (fun b -> verdict b <> `False) ctxs
  in
  let r = reach ~issue ~qual_hook vdtd [ Sdtd.Dtd.root vdtd ] q in
  if r = [] then begin
    let detail =
      match List.rev !deads with
      | d :: _ -> ": " ^ dead_step_message vdtd d
      | [] -> ""
    in
    add
      (D.make ~code:"SV201" ~severity:D.Warning ~subject
         (Printf.sprintf
            "provably empty on every instance of the view DTD%s" detail))
  end
  else
    List.iter
      (fun d ->
        add
          (D.make ~code:"SV202" ~severity:D.Info ~subject
             (Printf.sprintf "%s (dead branch; the optimizer prunes it)"
                (dead_step_message vdtd d))))
      (List.rev !deads);
  (* SV30x: execution-engine notes (the plan compiler is static, so
     its fallbacks are too) *)
  (match Splan.Compile.compile q with
  | Ok _ -> ()
  | Error reason ->
    add
      (D.make ~code:"SV301" ~severity:D.Info ~subject
         (Printf.sprintf
            "outside the plan engine's fragment (%s); evaluation falls \
             back to the interpreter"
            reason)));
  if r <> [] && List.for_all (fun ty -> String.length ty > 0 && ty.[0] = '@') r
  then
    add
      (D.make ~code:"SV302" ~severity:D.Warning ~subject
         "the query yields only attribute values, which top-level \
          evaluation drops (only [p] and [p = c] qualifiers observe \
          them) — the answer is always the empty node set");
  List.rev !ds

(* ------------------------------------------------------------------ *)

let check_all ~dtd ?spec ?view ?(queries = []) () =
  let spec_ds = match spec with Some s -> check_spec s | None -> [] in
  let the_view =
    match (view, spec) with
    | Some v, _ -> Some v
    | None, Some s -> Some (Secview.Derive.derive s)
    | None, None -> None
  in
  let view_ds =
    match the_view with Some v -> check_view ~dtd v | None -> []
  in
  let qdtd =
    match the_view with Some v -> Secview.View.dtd v | None -> dtd
  in
  let query_ds =
    List.concat_map (fun (n, q) -> check_query ~name:n qdtd q) queries
  in
  spec_ds @ view_ds @ query_ds

(* Register the strict validation gate Pipeline.create/?strict uses:
   linking this library arms strict mode. *)
let () =
  Secview.Pipeline.set_strict_gate (fun ~dtd ?spec view ->
      let ds =
        (match spec with Some s -> check_spec s | None -> [])
        @ check_view ~dtd view
      in
      List.map (Format.asprintf "%a" D.pp) (D.errors ds))
