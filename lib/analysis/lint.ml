module A = Sxpath.Ast
module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* A schema-level path walker shared by every checker: step through a
   query over the DTD graph, tracking the set of element types the
   context can be, and surface the steps that kill every context.
   Attribute steps yield the pseudo-type "@name" (they terminate
   element navigation, like in the rewriting algorithm's tables);
   unfold level suffixes are stripped before label matching so the
   walker also works on unfolded view DTDs. *)

type step_issue =
  | Dead_step of A.path * string list  (* step, context types tried *)
  | Undeclared_attribute of string * string list

let dedup = List.sort_uniq String.compare

let label_matches l child = String.equal (Sdtd.Unfold.label_of child) l

let rec reach ~issue ~qual_hook dtd ctxs (p : A.path) : string list =
  let children c =
    if Sdtd.Dtd.mem dtd c then Sdtd.Dtd.children_of dtd c else []
  in
  match p with
  | A.Empty -> []
  | A.Eps -> ctxs
  | A.Label l ->
    let nexts =
      dedup (List.concat_map (fun c -> List.filter (label_matches l) (children c)) ctxs)
    in
    if nexts = [] && ctxs <> [] then issue (Dead_step (p, ctxs));
    nexts
  | A.Wildcard ->
    let nexts = dedup (List.concat_map children ctxs) in
    if nexts = [] && ctxs <> [] then issue (Dead_step (p, ctxs));
    nexts
  | A.Attribute at ->
    let carriers =
      List.filter
        (fun c -> Sdtd.Dtd.mem dtd c && List.mem at (Sdtd.Dtd.attributes dtd c))
        ctxs
    in
    if carriers = [] then begin
      if ctxs <> [] then issue (Undeclared_attribute (at, ctxs));
      []
    end
    else [ "@" ^ at ]
  | A.Slash (p1, p2) ->
    reach ~issue ~qual_hook dtd (reach ~issue ~qual_hook dtd ctxs p1) p2
  | A.Dslash p1 ->
    let closure =
      dedup
        (List.concat_map
           (fun c ->
             if Sdtd.Dtd.mem dtd c then
               Secview.Image.descendant_or_self_types dtd c
             else [])
           ctxs)
    in
    reach ~issue ~qual_hook dtd closure p1
  | A.Union (p1, p2) ->
    dedup
      (reach ~issue ~qual_hook dtd ctxs p1 @ reach ~issue ~qual_hook dtd ctxs p2)
  | A.Qualify (p1, q) ->
    let base = reach ~issue ~qual_hook dtd ctxs p1 in
    if base = [] then [] else qual_hook base q

(* Walk every path embedded in a qualifier (atoms of [Exists]/[Eq],
   through the boolean connectives, including nested qualifiers),
   reporting reference problems through [issue]. *)
let rec walk_qual ~issue dtd ctxs (q : A.qual) =
  let hook cs q' =
    walk_qual ~issue dtd cs q';
    cs
  in
  match q with
  | A.True | A.False -> ()
  | A.Exists p | A.Eq (p, _) -> ignore (reach ~issue ~qual_hook:hook dtd ctxs p)
  | A.And (q1, q2) | A.Or (q1, q2) ->
    walk_qual ~issue dtd ctxs q1;
    walk_qual ~issue dtd ctxs q2
  | A.Not q1 -> walk_qual ~issue dtd ctxs q1

let silent_reach dtd ctxs p =
  reach ~issue:(fun _ -> ()) ~qual_hook:(fun cs _ -> cs) dtd ctxs p

let comma = String.concat ", "

let dead_step_message dtd (step, at) =
  let stxt = Sxpath.Print.to_string step in
  match step with
  | A.Label l when not (Sdtd.Dtd.mem dtd l) ->
    Printf.sprintf "step %s: %s is not an element type of the DTD" stxt l
  | _ -> Printf.sprintf "step %s can never match under %s" stxt (comma at)

(* ------------------------------------------------------------------ *)
(* Policy lints (SV001-SV004)                                          *)

let check_spec spec =
  let dtd = Secview.Spec.dtd spec in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* SV001: dead annotations, promoted from the schema auditor *)
  List.iter
    (fun ((a, b), ann) ->
      add
        (D.make ~code:"SV001" ~severity:D.Warning ~subject:(D.Annotation (a, b))
           (Format.asprintf
              "annotation %a can never change any node's accessibility"
              Secview.Spec.pp_annot ann)))
    (Secview.Audit.dead_annotations spec);
  (* SV002/SV003: qualifier references, checked at the annotated child
     (where the qualifier is evaluated) *)
  List.iter
    (fun ((a, b), ann) ->
      match ann with
      | Secview.Spec.Yes | Secview.Spec.No -> ()
      | Secview.Spec.Cond q ->
        let issue = function
          | Undeclared_attribute (attr, at) ->
            add
              (D.make ~code:"SV002" ~severity:D.Error
                 ~subject:(D.Annotation (a, b))
                 (Printf.sprintf
                    "qualifier references attribute @%s, which is declared on \
                     none of %s"
                    attr (comma at)))
          | Dead_step (step, at) ->
            add
              (D.make ~code:"SV003" ~severity:D.Error
                 ~subject:(D.Annotation (a, b))
                 (Printf.sprintf "qualifier %s"
                    (dead_step_message dtd (step, at))))
        in
        walk_qual ~issue dtd [ b ] q)
    (Secview.Spec.annotations spec);
  (* SV004: hidden element types that still grant access below
     themselves -- a common intentional pattern (expose a subtree under
     a hidden wrapper), surfaced for review rather than flagged *)
  let hidden = Secview.Audit.hidden_types spec in
  List.iter
    (fun ((a, b), ann) ->
      match ann with
      | (Secview.Spec.Yes | Secview.Spec.Cond _) when List.mem a hidden ->
        add
          (D.make ~code:"SV004" ~severity:D.Info ~subject:(D.Element a)
             (Printf.sprintf
                "hidden on every root-path, yet ann(%s, %s) grants access \
                 below it (verify this re-exposure is intended)"
                a b))
      | _ -> ())
    (Secview.Spec.annotations spec);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* View lints (SV101-SV103)                                            *)

(* Source element types per view type: the document types a view
   element's source node can have, propagated from σ(root) = root
   through every σ edge to a fixpoint (recursive view DTDs converge
   because type sets only grow). *)
let source_types ~dtd view =
  let vdtd = Secview.View.dtd view in
  let srcs : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let get v = Option.value (Hashtbl.find_opt srcs v) ~default:[] in
  Hashtbl.replace srcs (Sdtd.Dtd.root vdtd) [ Sdtd.Dtd.root dtd ];
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            match Secview.View.sigma view ~parent:a ~child:b with
            | None -> ()
            | Some sg ->
              let r = silent_reach dtd (get a) sg in
              let merged = dedup (r @ get b) in
              if merged <> get b then begin
                Hashtbl.replace srcs b merged;
                changed := true
              end)
          (Sdtd.Dtd.children_of vdtd a))
      (Sdtd.Dtd.reachable vdtd)
  done;
  get

let check_view ~dtd view =
  let vdtd = Secview.View.dtd view in
  let srcs = source_types ~dtd view in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match Secview.View.sigma view ~parent:a ~child:b with
          | None -> ()
          | Some sg ->
            let sctx = srcs a in
            if sctx <> [] then begin
              let deads = ref [] in
              let issue = function
                | Dead_step (s, at) -> deads := (s, at) :: !deads
                | Undeclared_attribute (attr, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "references attribute @%s, declared on none of %s"
                          attr (comma at)))
              in
              let qual_issue = function
                | Dead_step (s, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf "qualifier %s"
                          (dead_step_message dtd (s, at))))
                | Undeclared_attribute (attr, at) ->
                  add
                    (D.make ~code:"SV103" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "qualifier references attribute @%s, declared on \
                           none of %s"
                          attr (comma at)))
              in
              let qual_hook cs q =
                walk_qual ~issue:qual_issue dtd cs q;
                cs
              in
              let r = reach ~issue ~qual_hook dtd sctx sg in
              (* a σ step that matches nothing is drift from the DTD,
                 whether it kills the whole extraction or only one
                 branch of it *)
              (match List.rev !deads with
              | [] ->
                if r = [] then
                  add
                    (D.make ~code:"SV101" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "path %s matches nothing in the document DTD \
                           (evaluated at %s)"
                          (Sxpath.Print.to_string sg)
                          (comma sctx)))
              | deads ->
                List.iter
                  (fun d ->
                    add
                      (D.make ~code:"SV101" ~severity:D.Error
                         ~subject:(D.Sigma (a, b))
                         (Printf.sprintf "path %s: %s"
                            (Sxpath.Print.to_string sg)
                            (dead_step_message dtd d))))
                  deads);
              if r <> [] && not (Secview.View.is_dummy view b) then begin
                let want = Sdtd.Unfold.label_of b in
                let foreign =
                  List.filter
                    (fun t ->
                      (not (label_matches want t))
                      && not (String.length t > 0 && t.[0] = '@'))
                    r
                in
                if foreign <> [] then
                  add
                    (D.make ~code:"SV102" ~severity:D.Error
                       ~subject:(D.Sigma (a, b))
                       (Printf.sprintf
                          "path %s lands on %s, not on %s elements"
                          (Sxpath.Print.to_string sg)
                          (comma foreign) want))
              end
            end)
        (Sdtd.Dtd.children_of vdtd a))
    (Sdtd.Dtd.reachable vdtd);
  List.rev !ds

(* ------------------------------------------------------------------ *)
(* Query lints (SV201-SV205)                                           *)

let check_query ?name vdtd q =
  let label = Option.value name ~default:(Sxpath.Print.to_string q) in
  let subject = D.Query label in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let deads = ref [] in
  let issue = function
    | Dead_step (s, at) -> deads := (s, at) :: !deads
    | Undeclared_attribute (attr, at) ->
      add
        (D.make ~code:"SV205" ~severity:D.Error ~subject
           (Printf.sprintf
              "attribute @%s is not declared on %s in the view DTD; \
               rewriting translates this step to the empty query"
              attr (comma at)))
  in
  let qual_hook ctxs qq =
    (* reference problems inside the qualifier (attributes only: dead
       qualifier paths are subsumed by the vacuity decision below) *)
    walk_qual
      ~issue:(function Undeclared_attribute _ as i -> issue i | Dead_step _ -> ())
      vdtd ctxs qq;
    let verdict b =
      if Sdtd.Dtd.mem vdtd b then Secview.Image.bool_of_qual vdtd qq b
      else `Unknown
    in
    let verdicts = List.map verdict ctxs in
    let qtxt = Sxpath.Print.qual_to_string qq in
    if List.for_all (( = ) `True) verdicts then
      add
        (D.make ~code:"SV203" ~severity:D.Info ~subject
           (Printf.sprintf
              "qualifier [%s] holds at every %s by DTD constraints \
               (redundant; the optimizer drops it)"
              qtxt (comma ctxs)));
    if List.for_all (( = ) `False) verdicts then
      add
        (D.make ~code:"SV204" ~severity:D.Warning ~subject
           (Printf.sprintf
              "qualifier [%s] fails at every %s by DTD constraints \
               (this step can never select anything)"
              qtxt (comma ctxs)));
    List.filter (fun b -> verdict b <> `False) ctxs
  in
  let r = reach ~issue ~qual_hook vdtd [ Sdtd.Dtd.root vdtd ] q in
  if r = [] then begin
    let detail =
      match List.rev !deads with
      | d :: _ -> ": " ^ dead_step_message vdtd d
      | [] -> ""
    in
    add
      (D.make ~code:"SV201" ~severity:D.Warning ~subject
         (Printf.sprintf
            "provably empty on every instance of the view DTD%s" detail))
  end
  else
    List.iter
      (fun d ->
        add
          (D.make ~code:"SV202" ~severity:D.Info ~subject
             (Printf.sprintf "%s (dead branch; the optimizer prunes it)"
                (dead_step_message vdtd d))))
      (List.rev !deads);
  (* SV30x: execution-engine notes (the plan compiler is static, so
     its fallbacks are too) *)
  (match Splan.Compile.compile q with
  | Ok _ -> ()
  | Error reason ->
    add
      (D.make ~code:"SV301" ~severity:D.Info ~subject
         (Printf.sprintf
            "outside the plan engine's fragment (%s); evaluation falls \
             back to the interpreter"
            reason)));
  if r <> [] && List.for_all (fun ty -> String.length ty > 0 && ty.[0] = '@') r
  then
    add
      (D.make ~code:"SV302" ~severity:D.Warning ~subject
         "the query yields only attribute values, which top-level \
          evaluation drops (only [p] and [p = c] qualifiers observe \
          them) — the answer is always the empty node set");
  List.rev !ds

(* ------------------------------------------------------------------ *)

let check_all ~dtd ?spec ?view ?(queries = []) () =
  let spec_ds = match spec with Some s -> check_spec s | None -> [] in
  let the_view =
    match (view, spec) with
    | Some v, _ -> Some v
    | None, Some s -> Some (Secview.Derive.derive s)
    | None, None -> None
  in
  let view_ds =
    match the_view with Some v -> check_view ~dtd v | None -> []
  in
  let qdtd =
    match the_view with Some v -> Secview.View.dtd v | None -> dtd
  in
  let query_ds =
    List.concat_map (fun (n, q) -> check_query ~name:n qdtd q) queries
  in
  spec_ds @ view_ds @ query_ds

(* Register the strict validation gate Pipeline.create/?strict uses:
   linking this library arms strict mode. *)
let () =
  Secview.Pipeline.set_strict_gate (fun ~dtd ?spec view ->
      let ds =
        (match spec with Some s -> check_spec s | None -> [])
        @ check_view ~dtd view
      in
      List.map (Format.asprintf "%a" D.pp) (D.errors ds))
