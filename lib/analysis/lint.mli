(** Static analysis over policies, views and queries.

    Everything here is decided at the schema level — no document is
    touched — by reusing the machinery the pipeline already trusts:
    {!Secview.Audit} for exposure analysis, {!Secview.Image} for
    DTD-graph reachability and qualifier decision, and the DTD graph
    itself for step-by-step satisfiability.  The checkers are
    conservative in the reporting direction: an [Error] diagnostic is
    a proof that something can never work; [Warning]/[Info] may flag
    intentional patterns (a provably-empty query is not a policy
    violation, merely pointless).

    Diagnostic codes (see DESIGN.md for the full registry):

    {v
    Policy (over Spec.t)
      SV001 warning  dead annotation (can never change accessibility)
      SV002 error    qualifier references an undeclared attribute
      SV003 error    qualifier path step can never match
      SV004 info     hidden element type re-grants access below itself
    View (over View.t, against the document DTD)
      SV101 error    σ path matches nothing in the document DTD
      SV102 error    σ path reaches foreign element types
      SV103 error    σ qualifier references unknown attribute/element
    Query (against a view DTD)
      SV201 warning  query provably empty on every instance
      SV202 info     union branch / step provably empty (will be pruned)
      SV203 info     qualifier vacuously true under DTD constraints
      SV204 warning  qualifier vacuously false under DTD constraints
      SV205 error    attribute step undeclared in the view DTD
                     (rewriting silently translates it to ∅)

    Execution engine
      SV301 info     outside the plan engine's fragment (descendant
                     step with no single-label head); the plan engine
                     falls back to the interpreter
      SV302 warning  query yields only attribute values, which
                     top-level evaluation drops
    v} *)

val check_spec : Secview.Spec.t -> Diagnostic.t list
(** Policy lints (SV001–SV004) over an access specification and its
    document DTD. *)

val check_view : dtd:Sdtd.Dtd.t -> Secview.View.t -> Diagnostic.t list
(** View lints (SV101–SV103): type-check every σ annotation against
    the document DTD graph.  Source element types are propagated from
    the root through σ (so a σ path is checked at the types its parent
    can actually bind to), which is what catches stored views that
    drifted from the DTD. *)

val check_query :
  ?name:string -> Sdtd.Dtd.t -> Sxpath.Ast.path -> Diagnostic.t list
(** Query lints (SV201–SV205, SV301–SV302) against a (view) DTD.
    [name] labels the diagnostics' subject; default: the printed
    query. *)

val check_all :
  dtd:Sdtd.Dtd.t ->
  ?spec:Secview.Spec.t ->
  ?view:Secview.View.t ->
  ?queries:(string * Sxpath.Ast.path) list ->
  unit ->
  Diagnostic.t list
(** Run every applicable checker: policy lints when [spec] is given,
    view lints over [view] (or over the view derived from [spec] when
    only [spec] is given), and query lints against the resulting view
    DTD (the document DTD when neither [spec] nor [view] is given). *)
