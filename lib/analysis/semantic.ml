module A = Sxpath.Ast
module D = Diagnostic
module Dtd = Sdtd.Dtd
module View = Secview.View
module Image = Secview.Image
open Walker

(* ------------------------------------------------------------------ *)
(* Accessible regions                                                  *)
(* ------------------------------------------------------------------ *)

type relation =
  | Equivalent
  | Subsumed
  | Subsumes
  | Overlapping
  | Disjoint
  | Unknown of string

type claim = {
  claim_at : string;
  claim_elem : string;
  claim_lhs : A.path;
  claim_rhs : A.path;
}

type comparison = {
  cmp_left : string;
  cmp_right : string;
  cmp_relation : relation;
  cmp_overlap : string option;
  cmp_claims : claim list;
}

let relation_label = function
  | Equivalent -> "equivalent"
  | Subsumed -> "subsumed"
  | Subsumes -> "subsumes"
  | Overlapping -> "overlapping"
  | Disjoint -> "disjoint"
  | Unknown _ -> "unknown"

(* σ-composition down the view DTD in topological (parents-first)
   order: each type's accumulated document path is final before it is
   pushed into its children, so one pass suffices.  Recursive view
   DTDs have no such order and no finite composition — bounding the
   unfolding would make the comparison unsound, so we refuse. *)
let region_paths view =
  let vdtd = View.dtd view in
  match Dtd.topological_order vdtd with
  | None -> None
  | Some order ->
    let acc : (string, A.path) Hashtbl.t = Hashtbl.create 16 in
    let get v = Option.value (Hashtbl.find_opt acc v) ~default:A.Empty in
    Hashtbl.replace acc (Dtd.root vdtd) A.Eps;
    List.iter
      (fun a ->
        let pa = get a in
        if not (A.is_empty pa) then
          List.iter
            (fun b ->
              match View.sigma view ~parent:a ~child:b with
              | None -> ()
              | Some sg ->
                Hashtbl.replace acc b (A.union (get b) (A.slash pa sg)))
            (Dtd.children_of vdtd a))
      order;
    let regions : (string, A.path) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun v ->
        if not (View.is_dummy view v) then begin
          let p = get v in
          if not (A.is_empty p) then begin
            let l = Sdtd.Unfold.label_of v in
            let prev =
              Option.value (Hashtbl.find_opt regions l) ~default:A.Empty
            in
            Hashtbl.replace regions l (A.union prev p)
          end
        end)
      order;
    Some
      (List.sort
         (fun (l1, _) (l2, _) -> String.compare l1 l2)
         (Hashtbl.fold (fun l p rs -> (l, p) :: rs) regions []))

(* Schema-level non-emptiness of a region at the document root; a
   budget blowup counts as possibly non-empty (the sound direction
   for an overlap witness). *)
let populatable dtd p root =
  (not (A.is_empty p))
  &&
  match Image.image dtd p root with
  | Some _ -> true
  | None -> false
  | exception Image.Too_large -> true

let compare_views dtd (name_a, view_a) (name_b, view_b) =
  match (region_paths view_a, region_paths view_b) with
  | None, _ | _, None ->
    {
      cmp_left = name_a;
      cmp_right = name_b;
      cmp_relation = Unknown "recursive view DTD: no finite σ-composition";
      cmp_overlap = None;
      cmp_claims = [];
    }
  | Some ra, Some rb ->
    let root = Dtd.root dtd in
    let labels = dedup (List.map fst ra @ List.map fst rb) in
    let find r l = Option.value (List.assoc_opt l r) ~default:A.Empty in
    (* [true] is a proof (Prop 5.1); an empty lhs is contained in
       anything; a budget blowup proves nothing. *)
    let contained p q =
      A.is_empty p
      ||
      match Secview.Simulate.contained dtd p q root with
      | verdict -> verdict
      | exception Image.Too_large -> false
    in
    let claims = ref [] in
    let claim l p q =
      if populatable dtd p root then
        claims :=
          { claim_at = root; claim_elem = l; claim_lhs = p; claim_rhs = q }
          :: !claims
    in
    let direction r1 r2 =
      List.fold_left
        (fun all l ->
          let p = find r1 l and q = find r2 l in
          let ok = contained p q in
          if ok then claim l p q;
          all && ok)
        true labels
    in
    let a_in_b = direction ra rb in
    let b_in_a = direction rb ra in
    let overlap =
      List.find_opt
        (fun l ->
          populatable dtd (find ra l) root && populatable dtd (find rb l) root)
        labels
    in
    let relation =
      match (a_in_b, b_in_a) with
      | true, true -> Equivalent
      | true, false -> Subsumed
      | false, true -> Subsumes
      | false, false -> (
        match overlap with
        | Some _ -> Overlapping
        | None -> Disjoint)
    in
    {
      cmp_left = name_a;
      cmp_right = name_b;
      cmp_relation = relation;
      cmp_overlap = (match relation with Overlapping -> overlap | _ -> None);
      cmp_claims = List.rev !claims;
    }

let fleet dtd groups =
  let rec pairs = function
    | [] -> []
    | g :: rest -> List.map (compare_views dtd g) rest @ pairs rest
  in
  pairs groups

let sv402 small big =
  D.make ~code:"SV402" ~severity:D.Info ~subject:(D.Groups (small, big))
    (Printf.sprintf
       "every node accessible to %s is accessible to %s — a role-hierarchy \
        edge (%s subsumes %s)"
       small big big small)

let fleet_diagnostics cmps =
  List.concat_map
    (fun c ->
      match c.cmp_relation with
      | Equivalent ->
        [
          D.make ~code:"SV401" ~severity:D.Warning
            ~subject:(D.Groups (c.cmp_left, c.cmp_right))
            "the groups expose the same accessible region on every instance \
             — merge candidates (one view definition can serve both)";
        ]
      | Subsumed -> [ sv402 c.cmp_left c.cmp_right ]
      | Subsumes -> [ sv402 c.cmp_right c.cmp_left ]
      | Overlapping ->
        [
          D.make ~code:"SV403" ~severity:D.Info
            ~subject:(D.Groups (c.cmp_left, c.cmp_right))
            (Printf.sprintf
               "accessible regions are incomparable but overlap%s — neither \
                policy bounds the other"
               (match c.cmp_overlap with
               | Some l -> Printf.sprintf " (both can reach %s elements)" l
               | None -> ""));
        ]
      | Disjoint | Unknown _ -> [])
    cmps

(* ------------------------------------------------------------------ *)
(* Static query admission                                              *)
(* ------------------------------------------------------------------ *)

let admission vdtd q =
  let witness = ref None in
  let note w = if !witness = None then witness := Some w in
  let issue = function
    | Dead_step (s, at) -> note (dead_step_message vdtd (s, at))
    | Undeclared_attribute (at, cs) ->
      note
        (Printf.sprintf "attribute @%s is declared on none of %s" at
           (comma cs))
  in
  let qual_hook ctxs qq =
    let live =
      List.filter
        (fun b ->
          (not (Dtd.mem vdtd b)) || Image.bool_of_qual vdtd qq b <> `False)
        ctxs
    in
    if live = [] && ctxs <> [] then
      note
        (Printf.sprintf "qualifier [%s] fails at every %s by DTD constraints"
           (Sxpath.Print.qual_to_string qq)
           (comma ctxs));
    live
  in
  let r = reach ~issue ~qual_hook vdtd [ Dtd.root vdtd ] q in
  if r = [] then
    Secview.Pipeline.Denied_empty
      (Option.value !witness
         ~default:"the query matches nothing under the view DTD")
  else if List.for_all (fun t -> String.length t > 0 && t.[0] = '@') r then
    Secview.Pipeline.Denied_empty
      "the query yields only attribute values, which top-level evaluation \
       drops — the answer is the empty node set on every instance"
  else
    let opt =
      try Secview.Optimize.optimize vdtd q with Image.Too_large -> q
    in
    if A.is_empty opt then
      Secview.Pipeline.Denied_empty
        (Option.value !witness
           ~default:
             "the optimizer reduces the query to the empty path under the \
              view DTD")
    else if A.equal_path opt A.Eps then Secview.Pipeline.Trivial
    else Secview.Pipeline.Needs_eval

(* ------------------------------------------------------------------ *)
(* Leakage: structure exposed that no instance can populate            *)
(* ------------------------------------------------------------------ *)

let check_leakage ~dtd view =
  let vdtd = View.dtd view in
  let vroot = Dtd.root vdtd in
  (* Populatable source types per view type: like {!Walker.source_types}
     but stepping σ with {!Image.reach}, which discards branches whose
     qualifiers are decided false — a σ whose qualifier can never hold
     contributes nothing, which is exactly the leak SV410 looks for. *)
  let pop : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let get v = Option.value (Hashtbl.find_opt pop v) ~default:[] in
  Hashtbl.replace pop vroot [ Dtd.root dtd ];
  let sat_reach srcs sg =
    dedup
      (List.concat_map
         (fun s ->
           match Image.reach dtd sg s with
           | ts -> ts
           | exception Image.Too_large -> silent_reach dtd [ s ] sg)
         srcs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        match get a with
        | [] -> ()
        | srcs ->
          List.iter
            (fun b ->
              match View.sigma view ~parent:a ~child:b with
              | None -> ()
              | Some sg ->
                let merged = dedup (sat_reach srcs sg @ get b) in
                if merged <> get b then begin
                  Hashtbl.replace pop b merged;
                  changed := true
                end)
            (Dtd.children_of vdtd a))
      (Dtd.reachable vdtd)
  done;
  let reachable = Dtd.reachable vdtd in
  (* Only the topmost dead type of an unpopulatable subtree: a type is
     reported when it has a populatable parent but no sources itself —
     its descendants are implied. *)
  let dead_elements =
    List.filter
      (fun b ->
        (not (String.equal b vroot))
        && get b = []
        && List.exists
             (fun a -> get a <> [] && List.mem b (Dtd.children_of vdtd a))
             reachable)
      reachable
  in
  let elem_diags =
    List.map
      (fun b ->
        D.make ~code:"SV410" ~severity:D.Warning ~subject:(D.Element b)
          (Printf.sprintf
             "declared by the view DTD but unpopulatable: every σ path into \
              %s from a populatable parent matches nothing under the \
              document DTD's constraints — exposed structure leaks the shape \
              of hidden data"
             b))
      dead_elements
  in
  let attr_diags =
    List.concat_map
      (fun b ->
        match get b with
        | [] -> []
        | srcs ->
          List.filter_map
            (fun x ->
              if
                List.exists
                  (fun s ->
                    Dtd.mem dtd s && List.mem x (Dtd.attributes dtd s))
                  srcs
              then None
              else
                Some
                  (D.make ~code:"SV410" ~severity:D.Warning
                     ~subject:(D.Element b)
                     (Printf.sprintf
                        "attribute @%s is declared by the view DTD but none \
                         of its source types (%s) carry it — advertised data \
                         no instance can supply"
                        x (comma srcs))))
            (Dtd.attributes vdtd b))
      reachable
  in
  elem_diags @ attr_diags

(* Register with the pipeline so any embedder that links the analysis
   sublibrary gets static admission (the strict-gate pattern — see
   {!Lint}'s registration). *)
let () = Secview.Pipeline.set_admission_analyzer admission
