(** Semantic policy analysis: what the per-group artifacts {e mean},
    compared across groups and against the queries users will send.

    Three analyses, all schema-level (no document is ever touched):

    - {b Cross-group comparison} ({!compare_views}, {!fleet}): for two
      groups over the same document DTD, derive each group's
      {e accessible region} per exposed element label — the union of
      σ-compositions from the view root down — and decide containment
      both ways with the approximate simulation test
      ({!Secview.Simulate.contained}, Prop 5.1).  A proven relation is
      sound (containment claims hold on every instance); [Needs_eval]'s
      analogue here is {!relation.Overlapping}/{!relation.Unknown},
      which claim nothing.  Diagnosed as SV401 (equivalent regions:
      merge candidates), SV402 (strict subsumption) and SV403
      (incomparable but overlapping).

    - {b Static query admission} ({!admission}): classify a view query
      against a view DTD as provably empty (with a witness
      explanation), trivially answerable, or needing evaluation —
      generalizing the per-step lint SV201 to a whole-query verdict.
      Registered with {!Secview.Pipeline.set_admission_analyzer} when
      this module is linked, so servers answer provably-empty queries
      without planning or evaluating anything.

    - {b Leakage check} ({!check_leakage}): view-DTD element types and
      attributes whose every σ extraction is unsatisfiable under the
      document DTD — schema structure exposed to the group that no
      instance can ever populate, leaking the shape of hidden data
      (SV410).

    Everything here shares {!Secview.Image}'s process-global memo
    tables; like the optimizer, concurrent callers must serialize
    (the pipeline runs the registered analyzer under its translation
    lock). *)

(** How two groups' accessible regions compare.  [Subsumed]/[Subsumes]
    mean one direction of containment is {e proven} and the converse is
    {e not proven} — the test is approximate, so "strict" is relative
    to what simulation can see; the proven direction is sound. *)
type relation =
  | Equivalent  (** containment proven both ways: identical regions *)
  | Subsumed  (** left ⊑ right proven, converse not *)
  | Subsumes  (** right ⊑ left proven, converse not *)
  | Overlapping
      (** neither direction proven, but some element label is
          populatable by both — genuinely entangled policies *)
  | Disjoint  (** neither direction proven and no label is shared *)
  | Unknown of string
      (** not analyzable (e.g. a recursive view DTD has no finite
          σ-composition); the payload says why *)

(** One containment claim a verdict rests on: [v⟦lhs⟧ ⊆ v⟦rhs⟧] at
    every [at]-element (the document root).  Exposed so the
    differential test suite can hand every claim to
    {!Secview.Containment.refute} — a refuted claim is a soundness
    bug. *)
type claim = {
  claim_at : string;  (** context element type (the document root) *)
  claim_elem : string;  (** the element label whose regions compare *)
  claim_lhs : Sxpath.Ast.path;
  claim_rhs : Sxpath.Ast.path;
}

type comparison = {
  cmp_left : string;
  cmp_right : string;
  cmp_relation : relation;
  cmp_overlap : string option;
      (** an element label both regions can populate — the witness
          reported with SV403 *)
  cmp_claims : claim list;  (** every proven containment claim *)
}

val region_paths :
  Secview.View.t -> (string * Sxpath.Ast.path) list option
(** Accessible region per exposed (non-dummy) element label: the union
    over same-labeled view types of their σ-compositions from the view
    root, each a document query that — evaluated at the document root —
    selects exactly that label's accessible nodes.  Labels whose every
    composition is the empty path are dropped.  [None] when the view
    DTD is recursive: σ-composition does not terminate, and bounding it
    would be unsound ({!compare_views} reports {!relation.Unknown}). *)

val compare_views :
  Sdtd.Dtd.t ->
  string * Secview.View.t ->
  string * Secview.View.t ->
  comparison
(** [compare_views dtd (name_a, view_a) (name_b, view_b)]: compare the
    two groups' accessible regions label by label.  Both views must be
    over [dtd]. *)

val fleet :
  Sdtd.Dtd.t -> (string * Secview.View.t) list -> comparison list
(** All unordered pairs, in the given order. *)

val fleet_diagnostics : comparison list -> Diagnostic.t list
(** SV401 (warning) for [Equivalent], SV402 (info) for
    [Subsumed]/[Subsumes] (subject ordered contained-first), SV403
    (info) for [Overlapping].  [Disjoint] and [Unknown] produce no
    diagnostic — render those from the comparisons directly. *)

val relation_label : relation -> string
(** ["equivalent"], ["subsumed"], ["subsumes"], ["overlapping"],
    ["disjoint"], ["unknown"] — stable spellings for machine output. *)

val admission :
  Sdtd.Dtd.t -> Sxpath.Ast.path -> Secview.Pipeline.admission
(** Classify a view query against a view DTD.  [Denied_empty] carries
    a witness naming the step or qualifier that kills the query (or
    that it only yields attribute values, which top-level evaluation
    drops); [Trivial] means the optimizer reduces it to [ε] — the
    answer is the context root itself, no evaluation needed.  Both are
    proofs; [Needs_eval] claims nothing.  Never raises: analysis
    budget blowups ({!Secview.Image.Too_large}) degrade to
    [Needs_eval]. *)

val check_leakage :
  dtd:Sdtd.Dtd.t -> Secview.View.t -> Diagnostic.t list
(** SV410 (warning): view element types no document instance can
    populate — every σ path into them from a populatable parent is
    unsatisfiable under [dtd]'s constraints (qualifier-false pruning
    included, so this sees emptiness the per-edge lint SV101 cannot) —
    and attributes the view DTD declares that no source element type
    carries.  Only the topmost unpopulatable type of a dead subtree is
    reported. *)
