module A = Sxpath.Ast

type step_issue =
  | Dead_step of A.path * string list  (* step, context types tried *)
  | Undeclared_attribute of string * string list

let dedup = List.sort_uniq String.compare

let label_matches l child = String.equal (Sdtd.Unfold.label_of child) l

let rec reach ~issue ~qual_hook dtd ctxs (p : A.path) : string list =
  let children c =
    if Sdtd.Dtd.mem dtd c then Sdtd.Dtd.children_of dtd c else []
  in
  match p with
  | A.Empty -> []
  | A.Eps -> ctxs
  | A.Label l ->
    let nexts =
      dedup (List.concat_map (fun c -> List.filter (label_matches l) (children c)) ctxs)
    in
    if nexts = [] && ctxs <> [] then issue (Dead_step (p, ctxs));
    nexts
  | A.Wildcard ->
    let nexts = dedup (List.concat_map children ctxs) in
    if nexts = [] && ctxs <> [] then issue (Dead_step (p, ctxs));
    nexts
  | A.Attribute at ->
    let carriers =
      List.filter
        (fun c -> Sdtd.Dtd.mem dtd c && List.mem at (Sdtd.Dtd.attributes dtd c))
        ctxs
    in
    if carriers = [] then begin
      if ctxs <> [] then issue (Undeclared_attribute (at, ctxs));
      []
    end
    else [ "@" ^ at ]
  | A.Slash (p1, p2) ->
    reach ~issue ~qual_hook dtd (reach ~issue ~qual_hook dtd ctxs p1) p2
  | A.Dslash p1 ->
    let closure =
      dedup
        (List.concat_map
           (fun c ->
             if Sdtd.Dtd.mem dtd c then
               Secview.Image.descendant_or_self_types dtd c
             else [])
           ctxs)
    in
    reach ~issue ~qual_hook dtd closure p1
  | A.Union (p1, p2) ->
    dedup
      (reach ~issue ~qual_hook dtd ctxs p1 @ reach ~issue ~qual_hook dtd ctxs p2)
  | A.Qualify (p1, q) ->
    let base = reach ~issue ~qual_hook dtd ctxs p1 in
    if base = [] then [] else qual_hook base q

(* Walk every path embedded in a qualifier (atoms of [Exists]/[Eq],
   through the boolean connectives, including nested qualifiers),
   reporting reference problems through [issue]. *)
let rec walk_qual ~issue dtd ctxs (q : A.qual) =
  let hook cs q' =
    walk_qual ~issue dtd cs q';
    cs
  in
  match q with
  | A.True | A.False -> ()
  | A.Exists p | A.Eq (p, _) -> ignore (reach ~issue ~qual_hook:hook dtd ctxs p)
  | A.And (q1, q2) | A.Or (q1, q2) ->
    walk_qual ~issue dtd ctxs q1;
    walk_qual ~issue dtd ctxs q2
  | A.Not q1 -> walk_qual ~issue dtd ctxs q1

let silent_reach dtd ctxs p =
  reach ~issue:(fun _ -> ()) ~qual_hook:(fun cs _ -> cs) dtd ctxs p

let comma = String.concat ", "

let dead_step_message dtd (step, at) =
  let stxt = Sxpath.Print.to_string step in
  match step with
  | A.Label l when not (Sdtd.Dtd.mem dtd l) ->
    Printf.sprintf "step %s: %s is not an element type of the DTD" stxt l
  | _ -> Printf.sprintf "step %s can never match under %s" stxt (comma at)

(* Source element types per view type: the document types a view
   element's source node can have, propagated from σ(root) = root
   through every σ edge to a fixpoint (recursive view DTDs converge
   because type sets only grow). *)
let source_types ~dtd view =
  let vdtd = Secview.View.dtd view in
  let srcs : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let get v = Option.value (Hashtbl.find_opt srcs v) ~default:[] in
  Hashtbl.replace srcs (Sdtd.Dtd.root vdtd) [ Sdtd.Dtd.root dtd ];
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            match Secview.View.sigma view ~parent:a ~child:b with
            | None -> ()
            | Some sg ->
              let r = silent_reach dtd (get a) sg in
              let merged = dedup (r @ get b) in
              if merged <> get b then begin
                Hashtbl.replace srcs b merged;
                changed := true
              end)
          (Sdtd.Dtd.children_of vdtd a))
      (Sdtd.Dtd.reachable vdtd)
  done;
  get
