(** The schema-level path walker shared by every checker in this
    sublibrary: step a query through the DTD graph, tracking the set of
    element types the context can be, and surface the steps that kill
    every context.

    Attribute steps yield the pseudo-type ["@name"] (they terminate
    element navigation, like in the rewriting algorithm's tables);
    unfold level suffixes are stripped before label matching, so the
    walker also works on unfolded view DTDs.  The walk is an
    over-approximation in the same direction as {!Secview.Image.reach}:
    an empty result set is a proof that the path matches nothing, a
    non-empty one proves nothing. *)

(** A step that eliminated every context, reported through the caller's
    [issue] callback as the walk passes it. *)
type step_issue =
  | Dead_step of Sxpath.Ast.path * string list
      (** the step and the context types it was tried under *)
  | Undeclared_attribute of string * string list
      (** attribute name and the context types, none of which declare
          it *)

val reach :
  issue:(step_issue -> unit) ->
  qual_hook:(string list -> Sxpath.Ast.qual -> string list) ->
  Sdtd.Dtd.t ->
  string list ->
  Sxpath.Ast.path ->
  string list
(** [reach ~issue ~qual_hook dtd ctxs p]: the element types (or
    ["@attr"] pseudo-types) reachable from context types [ctxs] via
    [p].  [qual_hook] sees the surviving contexts at every [p\[q\]] and
    returns the subset to continue with — identity for a pure walk,
    {!Secview.Image.bool_of_qual}-based filtering for emptiness
    analysis. *)

val walk_qual :
  issue:(step_issue -> unit) ->
  Sdtd.Dtd.t ->
  string list ->
  Sxpath.Ast.qual ->
  unit
(** Walk every path embedded in a qualifier (through the boolean
    connectives, nested qualifiers included), reporting reference
    problems through [issue]. *)

val silent_reach : Sdtd.Dtd.t -> string list -> Sxpath.Ast.path -> string list
(** {!reach} with no issue reporting and no qualifier pruning. *)

val source_types :
  dtd:Sdtd.Dtd.t -> Secview.View.t -> string -> string list
(** Source element types per view type: the document types a view
    element's source node can have, propagated from σ(root) = root
    through every σ edge to a fixpoint.  An empty list means no
    document node can ever populate that view type. *)

val dedup : string list -> string list
(** Sorted, duplicate-free. *)

val label_matches : string -> string -> bool
(** [label_matches l ty]: does element type [ty] (possibly carrying an
    unfold level suffix) have label [l]? *)

val comma : string list -> string
(** Comma-join, for messages. *)

val dead_step_message : Sdtd.Dtd.t -> Sxpath.Ast.path * string list -> string
(** Render a {!Dead_step} for humans (special-cased for labels that are
    not element types at all). *)
