module IntSet = Set.Make (Int)

let no_env : string -> string option = fun _ -> None

let accessible_set ?(env = no_env) spec doc =
  let ctx = Sxpath.Eval.Ctx.make ~env ~root:doc () in
  let result = ref IntSet.empty in
  (* anc_ok: every conditional annotation on a strict ancestor holds.
     parent_acc: the parent is accessible (for inheritance). *)
  let rec visit ~parent_tag ~anc_ok ~parent_acc (node : Sxml.Tree.t) =
    let child_key =
      match node.desc with
      | Sxml.Tree.Text _ -> Sdtd.Regex.pcdata
      | Sxml.Tree.Element e -> e.tag
    in
    let annot =
      match parent_tag with
      | None -> Some Spec.Yes (* the root is Y by default *)
      | Some parent -> Spec.annotation spec ~parent ~child:child_key
    in
    let self_acc, qual_ok =
      match annot with
      | Some Spec.Yes -> (anc_ok, true)
      | Some Spec.No -> (false, true)
      | Some (Spec.Cond q) ->
        let holds = Sxpath.Eval.check ctx q node in
        (anc_ok && holds, holds)
      | None -> (parent_acc, true)
    in
    if self_acc then result := IntSet.add node.id !result;
    match node.desc with
    | Sxml.Tree.Text _ -> ()
    | Sxml.Tree.Element e ->
      let anc_ok = anc_ok && qual_ok in
      List.iter
        (visit ~parent_tag:(Some e.tag) ~anc_ok ~parent_acc:self_acc)
        e.children
  in
  visit ~parent_tag:None ~anc_ok:true ~parent_acc:true doc;
  !result

let accessible ?env spec doc v =
  IntSet.mem v.Sxml.Tree.id (accessible_set ?env spec doc)

(* Ancestor-qualifier truth along the path to a node: the same
   condition accessibility itself uses. *)
let rec anc_ok ~env spec ~parent_tag (target : Sxml.Tree.t)
    (node : Sxml.Tree.t) =
  (* walk down from [node] towards [target], conjoining qualifier
     annotations; returns None when target is not in this subtree *)
  let self_qual_ok () =
    match parent_tag with
    | None -> Some true
    | Some parent -> (
      match
        Spec.annotation spec ~parent
          ~child:
            (match node.Sxml.Tree.desc with
            | Sxml.Tree.Element e -> e.tag
            | Sxml.Tree.Text _ -> Sdtd.Regex.pcdata)
      with
      | Some (Spec.Cond q) ->
        Some (Sxpath.Eval.check (Sxpath.Eval.Ctx.make ~env ~root:node ()) q node)
      | _ -> Some true)
  in
  if node.Sxml.Tree.id = target.Sxml.Tree.id then self_qual_ok ()
  else
    match node.Sxml.Tree.desc with
    | Sxml.Tree.Text _ -> None
    | Sxml.Tree.Element e ->
      List.fold_left
        (fun acc child ->
          match acc with
          | Some _ -> acc
          | None -> (
            match
              anc_ok ~env spec ~parent_tag:(Some e.tag) target child
            with
            | Some ok -> (
              match self_qual_ok () with
              | Some ok' -> Some (ok && ok')
              | None -> Some ok)
            | None -> None))
        None e.children

let accessible_attributes ?(env = no_env) ?accessible spec doc node =
  match node.Sxml.Tree.desc with
  | Sxml.Tree.Text _ -> []
  | Sxml.Tree.Element e ->
    let declared = Sdtd.Dtd.attributes (Spec.dtd spec) e.tag in
    let set =
      match accessible with
      | Some set -> set
      | None -> accessible_set ~env spec doc
    in
    let node_accessible = IntSet.mem node.Sxml.Tree.id set in
    let ancestors_ok =
      lazy (anc_ok ~env spec ~parent_tag:None node doc = Some true)
    in
    List.filter
      (fun (name, _) ->
        List.mem name declared
        &&
        match Spec.annotation spec ~parent:e.tag ~child:("@" ^ name) with
        | Some Spec.Yes -> Lazy.force ancestors_ok
        | Some (Spec.Cond _) -> false (* rejected by Spec.make *)
        | Some Spec.No -> false
        | None -> node_accessible)
      e.attrs

let accessible_elements ?env spec doc =
  let set = accessible_set ?env spec doc in
  Sxml.Tree.find_all
    (fun n -> Sxml.Tree.is_element n && IntSet.mem n.Sxml.Tree.id set)
    doc

let annotate ?env ?(attribute = "accessibility") spec doc =
  let set = accessible_set ?env spec doc in
  Sxml.Tree.map_attrs
    (fun node ->
      let flag = if IntSet.mem node.Sxml.Tree.id set then "1" else "0" in
      let previous =
        match node.Sxml.Tree.desc with
        | Sxml.Tree.Element e ->
          List.remove_assoc attribute e.Sxml.Tree.attrs
        | Sxml.Tree.Text _ -> []
      in
      (attribute, flag) :: previous)
    doc
