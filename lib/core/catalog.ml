type source =
  | Loaded of Sxml.Tree.t
  | File of string

(* A snapshot is one immutable incarnation of a document plus its
   lazily-memoized derived facts.  Mutation never touches a snapshot
   in place: applying an update builds a fresh tree and swaps a fresh
   snapshot into the entry, so a reader that pinned the old one keeps
   a consistent {version, doc, height, index} quadruple for as long as
   it holds the pin — in-flight reads are never torn. *)
type snapshot = {
  version : int;
  slock : Mutex.t;
  mutable source : source;
  mutable height : int option;
  mutable index : Sxml.Index.t option;
}

type entry = {
  name : string option;
  elock : Mutex.t;  (* serializes snapshot swaps *)
  mutable snap : snapshot;
}

type t = {
  lock : Mutex.t;
  named : (string, entry) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
  mutable interned : entry list;  (* anonymous, newest first *)
  intern_capacity : int;
  height_walks : int Atomic.t;
}

let create ?(intern_capacity = 64) () =
  {
    lock = Mutex.create ();
    named = Hashtbl.create 8;
    order = [];
    interned = [];
    intern_capacity = max 1 intern_capacity;
    height_walks = Atomic.make 0;
  }

(* Version stamps are process-global and monotonic: re-registering a
   document under an existing name — or applying an update — yields a
   snapshot with a higher version, so provenance records (flight
   recorder, audit) can tell which incarnation of a document answered
   a request, and caches keyed on the stamp invalidate on bump. *)
let next_version = Atomic.make 1

let make_snapshot source =
  {
    version = Atomic.fetch_and_add next_version 1;
    slock = Mutex.create ();
    source;
    height = None;
    index = None;
  }

let make_entry ?name source =
  { name; elock = Mutex.create (); snap = make_snapshot source }

let register t ~name entry =
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.named name) then t.order <- name :: t.order;
      Hashtbl.replace t.named name entry);
  entry

let add t ~name doc = register t ~name (make_entry ~name (Loaded doc))
let add_file t ~name path = register t ~name (make_entry ~name (File path))

let find t name =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.named name)

let names t = Mutex.protect t.lock (fun () -> List.rev t.order)

let name e = e.name

(* Reading [snap] is a single mutable-field load — atomic in the
   OCaml memory model — so pinning costs nothing and sees either the
   old or the new snapshot, never a mix. *)
let pin e = e.snap
let snapshot_version s = s.version
let version e = e.snap.version

let snapshot_doc s =
  Mutex.protect s.slock (fun () ->
      match s.source with
      | Loaded d -> d
      | File path ->
        let d = Sxml.Parse.of_file path in
        s.source <- Loaded d;
        d)

let doc e = snapshot_doc e.snap

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc

let snapshot_memoized_height s = Mutex.protect s.slock (fun () -> s.height)
let memoized_height e = snapshot_memoized_height e.snap

let snapshot_height t s =
  let d = snapshot_doc s in
  Mutex.protect s.slock (fun () ->
      match s.height with
      | Some h -> h
      | None ->
        let h = element_height d in
        Atomic.incr t.height_walks;
        s.height <- Some h;
        h)

let height t e = snapshot_height t e.snap

let snapshot_index s =
  let d = snapshot_doc s in
  Mutex.protect s.slock (fun () ->
      match s.index with
      | Some i -> i
      | None ->
        let i = Sxml.Index.build d in
        s.index <- Some i;
        i)

let index e = snapshot_index e.snap

let update e doc =
  Mutex.protect e.elock (fun () ->
      let s = make_snapshot (Loaded doc) in
      e.snap <- s;
      s.version)

(* Interning looks the document up by physical identity: the named
   table first (a server answers requests over catalog documents it
   loaded itself), then the bounded anonymous list.  The bound keeps a
   caller that streams throwaway documents through [Pipeline.answer]
   from leaking entries; eviction drops the oldest. *)
let intern t d =
  let is_loaded e =
    (* no lock: [source] only ever steps File -> Loaded, and a racing
       reader that misses the update just falls through to a fresh
       anonymous entry with the same memoized-height semantics *)
    match e.snap.source with Loaded d' -> d' == d | File _ -> false
  in
  Mutex.protect t.lock (fun () ->
      let named =
        Hashtbl.fold
          (fun _ e acc -> if acc = None && is_loaded e then Some e else acc)
          t.named None
      in
      match named with
      | Some e -> e
      | None -> (
        match List.find_opt is_loaded t.interned with
        | Some e -> e
        | None ->
          let e = make_entry (Loaded d) in
          let kept =
            if List.length t.interned >= t.intern_capacity then
              List.filteri (fun i _ -> i < t.intern_capacity - 1) t.interned
            else t.interned
          in
          t.interned <- e :: kept;
          e))

let height_walks t = Atomic.get t.height_walks

let entries t =
  Mutex.protect t.lock (fun () ->
      List.rev_map (fun n -> Hashtbl.find t.named n) t.order)
