(** A catalog of documents a server answers queries over.

    Each entry memoizes the per-document facts the query pipeline
    needs repeatedly but that cost a full tree walk to compute: the
    element-nesting height (the unfolding bound for recursive views,
    {!Pipeline.answer}) and the tag index ({!Sxml.Index}).  Entries
    are either {e named} — registered up front from a loaded tree or
    lazily from a file path, the server's document namespace — or
    {e interned}: looked up by physical identity when a bare tree
    reaches [Pipeline.answer], so alternating queries over several
    loaded documents never recompute heights (the single-slot memo
    this replaces thrashed on exactly that pattern).

    All operations are thread-safe; memoized values are computed at
    most once per entry.  Interned (anonymous) entries are bounded
    ([intern_capacity], default 64, oldest evicted) so streaming
    throwaway documents through a pipeline cannot leak memory. *)

type t
type entry

val create : ?intern_capacity:int -> unit -> t

val add : t -> name:string -> Sxml.Tree.t -> entry
(** Register (or replace) a named, already-loaded document. *)

val add_file : t -> name:string -> string -> entry
(** Register a named document parsed from the file on first use.
    Parse errors ({!Sxml.Parse.Error}, [Sys_error]) surface at that
    first use, not here. *)

val find : t -> string -> entry option
val names : t -> string list
(** Registration order. *)

val entries : t -> entry list

val name : entry -> string option
(** [None] for interned entries. *)

val version : entry -> int
(** Process-global monotonic stamp assigned at entry creation:
    re-registering a name yields a higher version, so provenance
    records (flight recorder) can identify which incarnation of a
    document answered.  Future update support will bump it on
    mutation. *)

val doc : entry -> Sxml.Tree.t
(** The document; parses file-backed entries on first call. *)

val height : t -> entry -> int
(** Element-nesting height, computed once and memoized. *)

val memoized_height : entry -> int option
(** The memo without forcing a computation (probe for observability
    call sites that count memo hits vs walks). *)

val index : entry -> Sxml.Index.t
(** Tag index, built once and memoized. *)

val intern : t -> Sxml.Tree.t -> entry
(** Find-or-create the entry for a loaded tree by physical identity. *)

val height_walks : t -> int
(** How many full-tree height walks this catalog has performed —
    the memo's effectiveness measure ([answers - walks] were served
    from memo). *)

val element_height : Sxml.Tree.t -> int
(** The raw walk (exposed for callers that bypass the catalog). *)
