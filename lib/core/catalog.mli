(** A catalog of documents a server answers queries over.

    Each entry memoizes the per-document facts the query pipeline
    needs repeatedly but that cost a full tree walk to compute: the
    element-nesting height (the unfolding bound for recursive views,
    {!Pipeline.answer}) and the tag index ({!Sxml.Index}).  Entries
    are either {e named} — registered up front from a loaded tree or
    lazily from a file path, the server's document namespace — or
    {e interned}: looked up by physical identity when a bare tree
    reaches [Pipeline.answer], so alternating queries over several
    loaded documents never recompute heights (the single-slot memo
    this replaces thrashed on exactly that pattern).

    Entries are {e versioned}: each holds a current {!snapshot} — an
    immutable incarnation of the document plus its memos, stamped with
    a process-global monotonic version.  {!update} swaps in a fresh
    snapshot (new tree, new version, cold memos); a reader that
    {!pin}ned the old snapshot keeps a consistent
    [{version; doc; height; index}] view for as long as it holds it,
    so in-flight reads are never torn by a concurrent update.

    All operations are thread-safe; memoized values are computed at
    most once per snapshot.  Interned (anonymous) entries are bounded
    ([intern_capacity], default 64, oldest evicted) so streaming
    throwaway documents through a pipeline cannot leak memory. *)

type t
type entry

type snapshot
(** One immutable incarnation of a document: tree + version stamp +
    height/index memos.  Obtained from {!pin}; never mutated in
    place. *)

val create : ?intern_capacity:int -> unit -> t

val add : t -> name:string -> Sxml.Tree.t -> entry
(** Register (or replace) a named, already-loaded document. *)

val add_file : t -> name:string -> string -> entry
(** Register a named document parsed from the file on first use.
    Parse errors ({!Sxml.Parse.Error}, [Sys_error]) surface at that
    first use, not here. *)

val find : t -> string -> entry option
val names : t -> string list
(** Registration order. *)

val entries : t -> entry list

val name : entry -> string option
(** [None] for interned entries. *)

val version : entry -> int
(** The current snapshot's version: a process-global monotonic stamp.
    Re-registering a name or applying an {!update} yields a higher
    version, so provenance records (flight recorder) can identify
    which incarnation of a document answered, and caches keyed on the
    stamp invalidate on bump. *)

val doc : entry -> Sxml.Tree.t
(** The current snapshot's document; parses file-backed entries on
    first call. *)

val height : t -> entry -> int
(** Element-nesting height of the current snapshot, computed once and
    memoized per snapshot. *)

val memoized_height : entry -> int option
(** The memo without forcing a computation (probe for observability
    call sites that count memo hits vs walks). *)

val index : entry -> Sxml.Index.t
(** Tag index of the current snapshot, built once and memoized per
    snapshot. *)

(** {2 Snapshots and mutation} *)

val pin : entry -> snapshot
(** The entry's current snapshot — a single atomic field read.  The
    pinned snapshot stays valid (tree, version and memos all
    consistent with each other) however many updates land after the
    pin; it is simply no longer current. *)

val update : entry -> Sxml.Tree.t -> int
(** [update e doc] swaps a fresh snapshot holding [doc] into [e] and
    returns its (new, strictly higher) version.  Swaps serialize per
    entry; pinned readers are unaffected.  Memos start cold — the next
    height/index request recomputes against the new tree. *)

val snapshot_version : snapshot -> int
val snapshot_doc : snapshot -> Sxml.Tree.t
val snapshot_height : t -> snapshot -> int
val snapshot_memoized_height : snapshot -> int option
val snapshot_index : snapshot -> Sxml.Index.t

val intern : t -> Sxml.Tree.t -> entry
(** Find-or-create the entry for a loaded tree by physical identity. *)

val height_walks : t -> int
(** How many full-tree height walks this catalog has performed —
    the memo's effectiveness measure ([answers - walks] were served
    from memo). *)

val element_height : Sxml.Tree.t -> int
(** The raw walk (exposed for callers that bypass the catalog). *)
