let subset xs ys =
  List.for_all (fun (x : Sxml.Tree.t) ->
      List.exists (fun (y : Sxml.Tree.t) -> x.id = y.id) ys)
    xs

let refute ?(samples = 20) ?(seed = 0) dtd p1 p2 ~at =
  let rec go i =
    if i >= samples then None
    else begin
      let config =
        {
          Sdtd.Gen.default_config with
          seed = seed + i;
          star_min = 0;
          star_max = 2;
          depth_budget = 8;
        }
      in
      let doc = Sdtd.Gen.generate ~config dtd in
      let contexts =
        Sxml.Tree.find_all (fun n -> Sxml.Tree.tag n = Some at) doc
      in
      let witness =
        List.exists
          (fun v ->
            let ctx = Sxpath.Eval.Ctx.make ~root:v () in
            not
              (subset (Sxpath.Eval.run ctx p1) (Sxpath.Eval.run ctx p2)))
          contexts
      in
      if witness then Some doc else go (i + 1)
    end
  in
  go 0

type stats = {
  pairs : int;
  refuted : int;
  claimed : int;
  claimed_and_refuted : int;
  silent_unrefuted : int;
}

let measure ?(pairs = max_int) ?samples ?seed dtd ~queries =
  let at = Sdtd.Dtd.root dtd in
  let all_pairs =
    List.concat_map
      (fun p1 -> List.map (fun p2 -> (p1, p2)) queries)
      queries
    |> List.filteri (fun i _ -> i < pairs)
  in
  List.fold_left
    (fun acc (p1, p2) ->
      let claimed = Simulate.contained dtd p1 p2 at in
      let refuted = refute ?samples ?seed dtd p1 p2 ~at <> None in
      {
        pairs = acc.pairs + 1;
        refuted = (acc.refuted + if refuted then 1 else 0);
        claimed = (acc.claimed + if claimed then 1 else 0);
        claimed_and_refuted =
          (acc.claimed_and_refuted + if claimed && refuted then 1 else 0);
        silent_unrefuted =
          (acc.silent_unrefuted
          + if (not claimed) && not refuted then 1 else 0);
      })
    {
      pairs = 0;
      refuted = 0;
      claimed = 0;
      claimed_and_refuted = 0;
      silent_unrefuted = 0;
    }
    all_pairs

let pp_stats ppf s =
  Format.fprintf ppf
    "%d pairs: %d instance-refuted, %d simulation-claimed (%d unsound — \
     must be 0), %d silent-but-unrefuted (approximation gap + unlucky \
     sampling)"
    s.pairs s.refuted s.claimed s.claimed_and_refuted s.silent_unrefuted
