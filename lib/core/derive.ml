module R = Sdtd.Regex
module A = Sxpath.Ast

(* Occurrence context of a child inside a production, deciding whether
   an inaccessible child's reg() can be inlined there. *)
type ctx =
  | In_seq
  | In_choice
  | In_star
  | At_top

type state = {
  spec : Spec.t;
  visited_acc : (string, unit) Hashtbl.t;
  visited_inacc : (string, unit) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;  (* Proc_InAcc call stack *)
  view_prods : (string, R.t) Hashtbl.t;  (* accessible types + dummies *)
  sigma : (string * string, A.path list) Hashtbl.t;
  reg : (string, R.t) Hashtbl.t;
  path : (string * string, A.path list) Hashtbl.t;
  dummy_of : (string, string) Hashtbl.t;  (* source type -> dummy label *)
  mutable dummy_count : int;
  mutable dummy_order : string list;
}

let add_binding table key p =
  let previous = Option.value (Hashtbl.find_opt table key) ~default:[] in
  if not (List.exists (A.equal_path p) previous) then
    Hashtbl.replace table key (previous @ [ p ])

let fresh_dummy st source =
  match Hashtbl.find_opt st.dummy_of source with
  | Some x -> x
  | None ->
    let taken name =
      Sdtd.Dtd.mem (Spec.dtd st.spec) name || Hashtbl.mem st.view_prods name
    in
    let rec pick () =
      st.dummy_count <- st.dummy_count + 1;
      let name = Printf.sprintf "dummy%d" st.dummy_count in
      if taken name then pick () else name
    in
    let x = pick () in
    Hashtbl.replace st.dummy_of source x;
    st.dummy_order <- x :: st.dummy_order;
    x

(* Can reg_b replace an occurrence of an inaccessible child in the
   given context without breaking the production's structure?  PCDATA
   never inlines: its extraction is tied to the hidden source node. *)
let can_inline ctx reg_b =
  (not (R.mentions_str reg_b))
  &&
  match (ctx, R.shape reg_b) with
  | _, Some R.Shape_epsilon -> true
  | (In_seq | At_top), Some (R.Shape_seq _) -> true
  (* A single label counts as a concatenation, not a disjunction: the
     paper dummy-renames reg(trial) = bill inside treatment's choice
     (Example 3.4), so only genuine disjunctions inline there. *)
  | (In_choice | At_top), Some (R.Shape_choice _) -> true
  | (In_star | At_top), Some (R.Shape_seq [ _ ] | R.Shape_star _) -> true
  | _, _ -> false

let rec proc_acc st a =
  if not (Hashtbl.mem st.visited_acc a) then begin
    Hashtbl.add st.visited_acc a ();
    (* Reserve the slot before recursing so recursive accessible types
       are not re-entered. *)
    let rg = Sdtd.Dtd.production (Spec.dtd st.spec) a in
    let prod = transform st ~parent:a ~accessible:true At_top rg in
    Hashtbl.replace st.view_prods a prod
  end

and proc_inacc st a =
  if not (Hashtbl.mem st.visited_inacc a) then begin
    Hashtbl.add st.visited_inacc a ();
    Hashtbl.add st.in_progress a ();
    let rg = Sdtd.Dtd.production (Spec.dtd st.spec) a in
    let reg_a = transform st ~parent:a ~accessible:false At_top rg in
    Hashtbl.remove st.in_progress a;
    Hashtbl.replace st.reg a reg_a;
    (* If the computation of reg(a) re-encountered [a], a recursive
       dummy was created; give it its production and σ rows now. *)
    match Hashtbl.find_opt st.dummy_of a with
    | Some x when not (Hashtbl.mem st.view_prods x) ->
      Hashtbl.replace st.view_prods x reg_a;
      List.iter
        (fun c ->
          List.iter
            (fun p -> add_binding st.sigma (x, c) p)
            (Option.value (Hashtbl.find_opt st.path (a, c)) ~default:[]))
        (R.labels reg_a)
    | Some _ | None -> ()
  end

(* Transform the production regex of [parent], producing either the
   view production (accessible parent, bindings into σ) or reg(parent)
   (inaccessible parent, bindings into path). *)
and transform st ~parent ~accessible ctx rg =
  let bind child p =
    let table = if accessible then st.sigma else st.path in
    add_binding table (parent, child) p
  in
  match rg with
  | R.Empty -> R.Empty
  | R.Epsilon -> R.Epsilon
  | R.Str ->
    let ann =
      Spec.annotation st.spec ~parent ~child:Sdtd.Regex.pcdata
    in
    let keep =
      match (ann, accessible) with
      | Some Spec.Yes, _ -> true
      | Some Spec.No, _ -> false
      | Some (Spec.Cond _), _ -> false (* rejected by Spec.make *)
      | None, inherited -> inherited
    in
    if keep then R.Str else R.Epsilon
  | R.Seq rs -> R.seq (List.map (transform st ~parent ~accessible In_seq) rs)
  | R.Choice rs ->
    R.choice (List.map (transform st ~parent ~accessible In_choice) rs)
  | R.Star r -> R.star (transform st ~parent ~accessible In_star r)
  | R.Elt b -> (
    let ann = Spec.annotation st.spec ~parent ~child:b in
    let child_accessible =
      match ann with
      | Some Spec.Yes -> `Yes
      | Some (Spec.Cond q) -> `Cond q
      | Some Spec.No -> `No
      | None -> if accessible then `Yes else `No
    in
    match child_accessible with
    | `Yes ->
      bind b (A.Label b);
      proc_acc st b;
      R.Elt b
    | `Cond q ->
      bind b (A.qualify (A.Label b) q);
      proc_acc st b;
      R.Elt b
    | `No ->
      if Hashtbl.mem st.in_progress b then begin
        (* Recursive inaccessible type: dummy-rename, production filled
           in when proc_inacc b completes. *)
        let x = fresh_dummy st b in
        bind x (A.Label b);
        R.Elt x
      end
      else begin
        proc_inacc st b;
        let reg_b = Hashtbl.find st.reg b in
        if R.is_empty_language reg_b then R.Epsilon (* prune *)
        else if can_inline ctx reg_b then begin
          (* Short-cut: b's closest accessible descendants become
             children of [parent], reached through b. *)
          List.iter
            (fun c ->
              List.iter
                (fun p -> bind c (A.slash (A.Label b) p))
                (Option.value (Hashtbl.find_opt st.path (b, c)) ~default:[]))
            (R.labels reg_b);
          reg_b
        end
        else begin
          let x = fresh_dummy st b in
          bind x (A.Label b);
          if not (Hashtbl.mem st.view_prods x) then begin
            Hashtbl.replace st.view_prods x reg_b;
            List.iter
              (fun c ->
                List.iter
                  (fun p -> add_binding st.sigma (x, c) p)
                  (Option.value (Hashtbl.find_opt st.path (b, c)) ~default:[]))
              (R.labels reg_b)
          end;
          R.Elt x
        end
      end)

(* Merge duplicate labels in a production: the first occurrence becomes
   a starred occurrence, later ones vanish; σ for the label is the
   union of all collected paths (Example 3.4's compaction). *)
let merge_duplicates prod =
  let count = Hashtbl.create 8 in
  let rec tally = function
    | R.Empty | R.Epsilon | R.Str -> ()
    | R.Elt l ->
      Hashtbl.replace count l
        (1 + Option.value (Hashtbl.find_opt count l) ~default:0)
    | R.Seq rs | R.Choice rs -> List.iter tally rs
    | R.Star r -> tally r
  in
  tally prod;
  let emitted = Hashtbl.create 8 in
  let rec rebuild = function
    | (R.Empty | R.Epsilon | R.Str) as r -> r
    | R.Elt l as r ->
      if Option.value (Hashtbl.find_opt count l) ~default:0 <= 1 then r
      else if Hashtbl.mem emitted l then R.Epsilon
      else begin
        Hashtbl.add emitted l ();
        R.star (R.Elt l)
      end
    | R.Seq rs -> R.seq (List.map rebuild rs)
    | R.Choice rs -> R.choice (List.map rebuild rs)
    | R.Star r -> R.star (rebuild r)
  in
  rebuild prod

let derive spec =
  Trace.span "derive" @@ fun () ->
  let st =
    {
      spec;
      visited_acc = Hashtbl.create 16;
      visited_inacc = Hashtbl.create 16;
      in_progress = Hashtbl.create 16;
      view_prods = Hashtbl.create 16;
      sigma = Hashtbl.create 32;
      reg = Hashtbl.create 16;
      path = Hashtbl.create 32;
      dummy_of = Hashtbl.create 8;
      dummy_count = 0;
      dummy_order = [];
    }
  in
  let root = Sdtd.Dtd.root (Spec.dtd spec) in
  proc_acc st root;
  let decls =
    Hashtbl.fold
      (fun name prod acc -> (name, merge_duplicates prod) :: acc)
      st.view_prods []
    |> List.sort compare
  in
  let dtd = Sdtd.Dtd.restrict_reachable (Sdtd.Dtd.create ~root decls) in
  (* Attributes: a view type exposes the declared attributes of its
     document source type, per the same inheritance/override rules as
     children — unannotated attributes follow the element (visible on
     accessible types, hidden on dummies), explicit annotations win. *)
  let doc_dtd = Spec.dtd spec in
  let source_of =
    let reverse = Hashtbl.create 8 in
    Hashtbl.iter (fun src dummy -> Hashtbl.replace reverse dummy src)
      st.dummy_of;
    fun view_type ->
      match Hashtbl.find_opt reverse view_type with
      | Some src -> (src, false)
      | None -> (view_type, true)
  in
  let dtd =
    List.fold_left
      (fun dtd view_type ->
        let src, element_accessible = source_of view_type in
        let visible =
          List.filter
            (fun a ->
              match
                Spec.annotation spec ~parent:src ~child:("@" ^ a)
              with
              | Some Spec.Yes -> true
              | Some (Spec.Cond _) (* rejected by Spec.make *)
              | Some Spec.No ->
                false
              | None -> element_accessible)
            (Sdtd.Dtd.attributes doc_dtd src)
        in
        if visible = [] then dtd
        else Sdtd.Dtd.with_attributes dtd view_type visible)
      dtd
      (Sdtd.Dtd.reachable dtd)
  in
  let sigma =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            match Hashtbl.find_opt st.sigma (a, b) with
            | Some paths -> Some ((a, b), A.union_all paths)
            | None -> None)
          (Sdtd.Dtd.children_of dtd a))
      (Sdtd.Dtd.reachable dtd)
  in
  let dummies =
    List.filter (Sdtd.Dtd.mem dtd) (List.rev st.dummy_order)
  in
  View.make ~dummies ~dtd ~sigma ()
