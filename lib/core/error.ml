type t =
  | Parse_error of {
      position : int;
      message : string;
    }
  | Unbound_variable of string
  | Unknown_group of {
      group : string;
      known : string list;
    }
  | Unknown_doc of {
      doc : string option;
      known : string list;
    }
  | Unsupported of string
  | Update_denied of string
  | Invalid_update of string
  | Timeout of string
  | Overloaded of string
  | Draining
  | No_session
  | Bad_request of string
  | Internal of string

exception E of t

let have known =
  match known with
  | [] -> ""
  | _ -> Printf.sprintf " (have: %s)" (String.concat ", " known)

let to_string = function
  | Parse_error { position; message } ->
    Printf.sprintf "parse error at %d: %s" position message
  | Unbound_variable name -> Printf.sprintf "unbound variable $%s" name
  | Unknown_group { group; known } ->
    Printf.sprintf "unknown group %S%s" group (have known)
  | Unknown_doc { doc = Some doc; known } ->
    Printf.sprintf "unknown document %S%s" doc (have known)
  | Unknown_doc { doc = None; known } ->
    Printf.sprintf "more than one document: pass \"doc\"%s" (have known)
  | Unsupported msg -> msg
  | Update_denied msg -> msg
  | Invalid_update msg -> msg
  | Timeout msg -> msg
  | Overloaded msg -> msg
  | Draining -> "server is draining"
  | No_session -> "no session: send {\"cmd\":\"hello\",\"group\":…} first"
  | Bad_request msg -> msg
  | Internal msg -> msg

let to_code = function
  | Parse_error _ | Unbound_variable _ | Unsupported _ | Internal _ ->
    "query_error"
  | Update_denied _ -> "update_denied"
  | Invalid_update _ -> "invalid_update"
  | Unknown_group _ -> "unknown_group"
  | Unknown_doc _ -> "unknown_document"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"
  | Draining -> "draining"
  | No_session -> "no_session"
  | Bad_request _ -> "bad_request"

let exit_code = function Timeout _ -> 3 | _ -> 2

let () =
  Printexc.register_printer (function
    | E e -> Some (Printf.sprintf "Secview.Error.E(%s: %s)" (to_code e) (to_string e))
    | _ -> None)
