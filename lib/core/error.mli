(** The engine's typed error vocabulary.

    Every way a secure-query request can fail — at the library, CLI or
    server layer — is one constructor here, so the mapping onto wire
    error codes ({!to_code}, the closed vocabulary of
    [Sserver.Protocol]) and process exit codes ({!exit_code}) lives in
    one place instead of scattered [try … with] clauses.
    {!Pipeline.answer} returns [(_, t) result]; layers above wrap or
    rethrow as {!E}. *)

type t =
  | Parse_error of {
      position : int;
      message : string;
    }  (** query text did not parse (byte offset, reason) *)
  | Unbound_variable of string
      (** a [$var] the environment does not bind was evaluated *)
  | Unknown_group of {
      group : string;
      known : string list;
    }  (** no such user group; [known] lists the configured ones *)
  | Unknown_doc of {
      doc : string option;
      known : string list;
    }
      (** no such catalog document ([doc = None]: the request named
          none and the catalog holds several) *)
  | Unsupported of string
      (** the view/query combination is outside the supported
          fragment (e.g. recursive view without a height) *)
  | Update_denied of string
      (** an update's target set escapes the group's accessible
          region, or the group holds no write grant for the edge —
          rejected atomically, nothing applied *)
  | Invalid_update of string
      (** the update is malformed independent of policy: target
          matches nothing, content violates the DTD, root deletion *)
  | Timeout of string  (** a deadline cut the evaluation off *)
  | Overloaded of string  (** admission queue full — try again *)
  | Draining  (** server is shutting down *)
  | No_session  (** protocol: query before [hello] *)
  | Bad_request of string  (** protocol: malformed request *)
  | Internal of string  (** anything else, pre-rendered *)

exception E of t
(** For layers that want exceptions; registered with
    [Printexc.register_printer]. *)

val to_string : t -> string
(** Human-readable message (no code prefix). *)

val to_code : t -> string
(** The wire error code, matching the [Sserver.Protocol] constants
    ([query_error], [update_denied], [invalid_update],
    [unknown_group], [unknown_document], [timeout], [overloaded],
    [draining], [no_session], [bad_request]). *)

val exit_code : t -> int
(** CLI exit status: 3 for {!Timeout}, 2 otherwise. *)
