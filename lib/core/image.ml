module A = Sxpath.Ast
module R = Sdtd.Regex

type node = {
  id : int;
  label : string;
  mutable kids : node list;
  mutable quals : node list;
  mutable ambiguous : bool;
}

type t = {
  root : node;
  frontier : node list;
}

exception Too_large

(* Image graphs of reasonable queries are small, but deeply nested //
   over unions can multiply construction work; rather than risk
   exponential blow-up we budget node allocations per top-level
   analysis and let callers treat overflow as "undecided" (sound in
   every use: qualifiers stay `Unknown, containment is not claimed). *)
let node_budget = 20_000

(* All mutable analysis state — the construction budget, the node-id
   counter, and the schema-level memo tables — lives in one
   domain-local record.  Domains never share it, so parallel workers
   analyze without synchronizing with each other; threads *within* a
   domain do share it, so the public entry points serialize on
   [mlock] (the lock is uncontended whenever a domain runs a single
   worker, which is the server's layout). *)
type memo = {
  mlock : Mutex.t;
  mutable active : bool;
  mutable nodes_left : int;
  mutable counter : int;
  reach_cache : (int * Sxpath.Ast.path * string, string list) Hashtbl.t;
  dos_cache : (int * string, string list) Hashtbl.t;
  guaranteed_cache : (int * Sxpath.Ast.path * string, bool) Hashtbl.t;
  qual_cache :
    (int * Sxpath.Ast.qual * string, [ `True | `False | `Unknown ]) Hashtbl.t;
}

let memo_key : memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        mlock = Mutex.create ();
        active = false;
        nodes_left = node_budget;
        counter = 0;
        reach_cache = Hashtbl.create 512;
        dos_cache = Hashtbl.create 128;
        guaranteed_cache = Hashtbl.create 512;
        qual_cache = Hashtbl.create 512;
      })

let memo () = Domain.DLS.get memo_key

let with_budget f =
  let m = memo () in
  if m.active then f ()
  else begin
    m.active <- true;
    m.nodes_left <- node_budget;
    Fun.protect ~finally:(fun () -> m.active <- false) f
  end

let fresh label =
  let m = memo () in
  if m.active then begin
    m.nodes_left <- m.nodes_left - 1;
    if m.nodes_left <= 0 then raise Too_large
  end;
  m.counter <- m.counter + 1;
  { id = m.counter; label; kids = []; quals = []; ambiguous = false }

let children dtd a = Sdtd.Dtd.children_of dtd a

let dedup_nodes nodes =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n.id then false
      else begin
        Hashtbl.add seen n.id ();
        true
      end)
    nodes

(* ------------------------------------------------------------------ *)
(* Structural facts about productions                                 *)

(* Every word of L(rg) contains the symbol l. *)
let rec mandatory_symbol rg l =
  match rg with
  | R.Empty -> true (* vacuously: no words at all *)
  | R.Epsilon -> false
  | R.Str -> String.equal l R.pcdata
  | R.Elt x -> String.equal x l
  | R.Seq rs -> List.exists (fun r -> mandatory_symbol r l) rs
  | R.Choice rs -> List.for_all (fun r -> mandatory_symbol r l) rs
  | R.Star _ -> false

(* Every word of L(rg) contains at least one symbol from the set. *)
let rec mandatory_one_of rg labels =
  match rg with
  | R.Empty -> true
  | R.Epsilon | R.Str -> false
  | R.Elt x -> List.mem x labels
  | R.Seq rs -> List.exists (fun r -> mandatory_one_of r labels) rs
  | R.Choice rs -> List.for_all (fun r -> mandatory_one_of r labels) rs
  | R.Star _ -> false

(* Every word of L(rg) contains at least one element symbol. *)
let rec always_has_element = function
  | R.Empty -> true
  | R.Epsilon | R.Str -> false
  | R.Elt _ -> true
  | R.Seq rs -> List.exists always_has_element rs
  | R.Choice rs -> List.for_all always_has_element rs
  | R.Star _ -> false

(* Some word of L(rg) contains an element symbol (over-approximated by
   label presence, which errs on the safe side of the exclusive
   rule). *)
let can_have_element rg = R.labels rg <> []

(* Every word of L(rg) contains at most one element symbol — the
   "exclusive" structural constraint of disjunctive productions. *)
let rec at_most_one_element = function
  | R.Empty | R.Epsilon | R.Str | R.Elt _ -> true
  | R.Choice rs -> List.for_all at_most_one_element rs
  | R.Star r -> not (can_have_element r)
  | R.Seq rs ->
    List.for_all at_most_one_element rs
    && List.length (List.filter can_have_element rs) <= 1

(* ------------------------------------------------------------------ *)
(* Syntactic path facts                                                *)

let rec requires_child = function
  | A.Eps | A.Attribute _ -> false
  | A.Empty -> true (* vacuous: no witnesses at all *)
  | A.Label _ | A.Wildcard -> true
  | A.Slash (p1, p2) -> requires_child p1 || requires_child p2
  | A.Dslash p -> requires_child p
  | A.Union (p1, p2) -> requires_child p1 && requires_child p2
  | A.Qualify (p, _) -> requires_child p

(* Could p yield the context node itself?  (Over-approximation.) *)
let rec can_match_self = function
  | A.Eps -> true
  | A.Empty | A.Label _ | A.Wildcard | A.Attribute _ -> false
  | A.Slash (p1, p2) -> can_match_self p1 && can_match_self p2
  | A.Dslash p -> can_match_self p
  | A.Union (p1, p2) -> can_match_self p1 || can_match_self p2
  | A.Qualify (p, _) -> can_match_self p

(* ------------------------------------------------------------------ *)
(* Reachability of element types through a path                        *)

let descendant_or_self_types dtd a =
  let m = memo () in
  let key = (Sdtd.Dtd.stamp dtd, a) in
  match Hashtbl.find_opt m.dos_cache key with
  | Some r -> r
  | None ->
    let seen = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.add seen a ();
    Queue.add a queue;
    let out = ref [] in
    while not (Queue.is_empty queue) do
      let t = Queue.pop queue in
      out := t :: !out;
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c) then begin
            Hashtbl.add seen c ();
            Queue.add c queue
          end)
        (children dtd t)
    done;
    let r = List.rev !out in
    Hashtbl.replace m.dos_cache key r;
    r

let rec reach dtd p a =
  let m = memo () in
  let key = (Sdtd.Dtd.stamp dtd, p, a) in
  match Hashtbl.find_opt m.reach_cache key with
  | Some r -> r
  | None ->
    let r = compute_reach dtd p a in
    Hashtbl.replace m.reach_cache key r;
    r

and compute_reach dtd p a =
  match p with
  | A.Empty | A.Attribute _ -> []
  | A.Eps -> [ a ]
  | A.Label l -> if List.mem l (children dtd a) then [ l ] else []
  | A.Wildcard -> children dtd a
  | A.Slash (p1, p2) ->
    List.sort_uniq String.compare
      (List.concat_map (fun b -> reach dtd p2 b) (reach dtd p1 a))
  | A.Dslash p1 ->
    List.sort_uniq String.compare
      (List.concat_map (fun b -> reach dtd p1 b)
         (descendant_or_self_types dtd a))
  | A.Union (p1, p2) ->
    List.sort_uniq String.compare (reach dtd p1 a @ reach dtd p2 a)
  | A.Qualify (p1, q) ->
    List.filter (fun b -> bool_of_qual dtd q b <> `False) (reach dtd p1 a)

(* ------------------------------------------------------------------ *)
(* Guaranteed non-emptiness (co-existence constraints)                 *)

and guaranteed dtd p a =
  let m = memo () in
  let key = (Sdtd.Dtd.stamp dtd, p, a) in
  match Hashtbl.find_opt m.guaranteed_cache key with
  | Some r -> r
  | None ->
    let r = compute_guaranteed dtd p a in
    Hashtbl.replace m.guaranteed_cache key r;
    r

and compute_guaranteed dtd p a =
  match p with
  | A.Empty | A.Attribute _ -> false
  | A.Eps -> true
  | A.Label l -> mandatory_symbol (Sdtd.Dtd.production dtd a) l
  | A.Wildcard -> always_has_element (Sdtd.Dtd.production dtd a)
  | A.Slash (p1, p2) ->
    guaranteed dtd p1 a
    && (match reach dtd p1 a with
       | [] -> false
       | bs -> List.for_all (fun b -> guaranteed dtd p2 b) bs)
  | A.Dslash p1 -> guaranteed dtd p1 a (* self counts; deeper is a bonus *)
  | A.Union _ -> (
    (* A union of guaranteed-nothing branches can still be guaranteed
       jointly: b ∪ c under a -> (b | c).  Recognize unions whose
       branches all start with a plain label step and whose
       continuations (if any) are guaranteed there. *)
    let branch_label = function
      | A.Label l -> Some (l, None)
      | A.Slash (A.Label l, rest) -> Some (l, Some rest)
      | _ -> None
    in
    let branches = A.union_branches p in
    if List.exists (fun b -> guaranteed dtd b a) branches then true
    else
      match
        List.map branch_label branches
        |> List.fold_left
             (fun acc b ->
               match (acc, b) with
               | Some acc, Some entry -> Some (entry :: acc)
               | _, _ -> None)
             (Some [])
      with
      | None -> false
      | Some entries ->
        let labels = List.map fst entries in
        mandatory_one_of (Sdtd.Dtd.production dtd a) labels
        && List.for_all
             (fun (l, rest) ->
               match rest with
               | None -> true
               | Some rest ->
                 Sdtd.Dtd.mem dtd l && guaranteed dtd rest l)
             entries)
  | A.Qualify (p1, q) ->
    guaranteed dtd p1 a
    && (match reach dtd p1 a with
       | [] -> false
       | bs -> List.for_all (fun b -> bool_of_qual dtd q b = `True) bs)

(* ------------------------------------------------------------------ *)
(* Deciding qualifiers from DTD constraints                            *)

(* Child types of [a] through which witnesses of [p] can pass
   (over-approximation, as the exclusive rule requires). *)
and first_children dtd p a =
  match p with
  | A.Empty | A.Eps | A.Attribute _ -> []
  | A.Label l -> if List.mem l (children dtd a) then [ l ] else []
  | A.Wildcard -> children dtd a
  | A.Slash (p1, p2) ->
    let via_p1 = first_children dtd p1 a in
    if can_match_self p1 then
      List.sort_uniq String.compare (via_p1 @ first_children dtd p2 a)
    else via_p1
  | A.Dslash p1 ->
    (* Witnesses of //p pass either directly through p's own first
       step at the context, or through a child whose subtree lets p
       match somewhere. *)
    let deep =
      List.filter
        (fun c ->
          List.exists
            (fun t -> reach dtd p1 t <> [] || can_match_self p1)
            (descendant_or_self_types dtd c))
        (children dtd a)
    in
    List.sort_uniq String.compare (first_children dtd p1 a @ deep)
  | A.Union (p1, p2) ->
    List.sort_uniq String.compare
      (first_children dtd p1 a @ first_children dtd p2 a)
  | A.Qualify (p1, _) -> first_children dtd p1 a

and flatten_conjuncts = function
  | A.And (q1, q2) -> flatten_conjuncts q1 @ flatten_conjuncts q2
  | q -> [ q ]

and exclusive_violation dtd conjuncts a =
  (* Under a production whose words carry at most one element child,
     two conjuncts that each require a child and can only be satisfied
     through disjoint child sets cannot both hold. *)
  at_most_one_element (Sdtd.Dtd.production dtd a)
  &&
  let demands =
    List.filter_map
      (fun q ->
        match q with
        | A.Exists p | A.Eq (p, _) ->
          if requires_child p then
            match first_children dtd p a with
            | [] -> None (* empty image: handled as `False elsewhere *)
            | cs -> Some cs
          else None
        | A.True | A.False | A.And _ | A.Or _ | A.Not _ -> None)
      conjuncts
  in
  let disjoint cs1 cs2 = not (List.exists (fun c -> List.mem c cs2) cs1) in
  let rec any_disjoint_pair = function
    | [] -> false
    | cs :: rest ->
      List.exists (disjoint cs) rest || any_disjoint_pair rest
  in
  any_disjoint_pair demands

and bool_of_qual dtd q a : [ `True | `False | `Unknown ] =
  let m = memo () in
  let key = (Sdtd.Dtd.stamp dtd, q, a) in
  match Hashtbl.find_opt m.qual_cache key with
  | Some r -> r
  | None ->
    let r = compute_bool_of_qual dtd q a in
    Hashtbl.replace m.qual_cache key r;
    r

and compute_bool_of_qual dtd q a : [ `True | `False | `Unknown ] =
  match q with
  | A.True -> `True
  | A.False -> `False
  | A.Exists p -> (
    match p with
    | A.Attribute at ->
      (* undeclared attributes can never exist *)
      if List.mem at (Sdtd.Dtd.attributes dtd a) then `Unknown else `False
    | _ when A.mem_attribute p -> `Unknown
    | _ -> (
      match image dtd p a with
      | None -> `False
      | Some _ -> if guaranteed dtd p a then `True else `Unknown
      | exception Too_large -> `Unknown))
  | A.Eq (p, _) -> (
    match p with
    | A.Attribute at ->
      if List.mem at (Sdtd.Dtd.attributes dtd a) then `Unknown else `False
    | _ when A.mem_attribute p -> `Unknown
    | _ -> (
      match image dtd p a with
      | None -> `False
      | Some _ -> `Unknown
      | exception Too_large -> `Unknown))
  | A.And (q1, q2) -> (
    match (bool_of_qual dtd q1 a, bool_of_qual dtd q2 a) with
    | `False, _ | _, `False -> `False
    | `True, `True -> `True
    | (`True | `Unknown), (`True | `Unknown) ->
      if exclusive_violation dtd (flatten_conjuncts q) a then `False
      else `Unknown)
  | A.Or (q1, q2) -> (
    match (bool_of_qual dtd q1 a, bool_of_qual dtd q2 a) with
    | `True, _ | _, `True -> `True
    | `False, `False -> `False
    | (`False | `Unknown), (`False | `Unknown) -> `Unknown)
  | A.Not q1 -> (
    match bool_of_qual dtd q1 a with
    | `True -> `False
    | `False -> `True
    | `Unknown -> `Unknown)

(* ------------------------------------------------------------------ *)
(* Image construction                                                  *)

and qual_nodes dtd q a : node list =
  (* '[]' roots for a qualifier already known to be `Unknown at [a]. *)
  let relabel label g =
    let m = memo () in
    m.counter <- m.counter + 1;
    {
      id = m.counter;
      label;
      kids = g.root.kids;
      quals = g.root.quals;
      ambiguous = g.root.ambiguous;
    }
  in
  let opaque () =
    [ fresh ("[]?" ^ Sxpath.Print.qual_to_string q) ]
  in
  match q with
  | A.True -> []
  | A.False -> opaque () (* unreachable when callers pre-decide *)
  | A.And (q1, q2) ->
    let part qq =
      match bool_of_qual dtd qq a with
      | `True -> []
      | `False -> assert false (* the conjunction would be `False *)
      | `Unknown -> qual_nodes dtd qq a
    in
    part q1 @ part q2
  | A.Exists p -> (
    if A.mem_attribute p then opaque ()
    else
      match image dtd p a with
      | Some g -> [ relabel "[]" g ]
      | None | (exception Too_large) -> opaque ())
  | A.Eq (p, v) -> (
    let const = match v with A.Const c -> c | A.Var x -> "$" ^ x in
    if A.mem_attribute p then opaque ()
    else
      match image dtd p a with
      | Some g -> [ relabel ("[]=" ^ const) g ]
      | None | (exception Too_large) -> opaque ())
  | A.Or _ | A.Not _ -> opaque ()

and image dtd p a : t option =
  with_budget (fun () ->
      match build dtd p a with
      | None -> None
      | Some g ->
        prune g;
        Some g)

and build dtd p a : t option =
  match p with
  | A.Empty | A.Attribute _ -> None
  | A.Eps ->
    let n = fresh a in
    Some { root = n; frontier = [ n ] }
  | A.Label l ->
    if List.mem l (children dtd a) then begin
      let root = fresh a in
      let kid = fresh l in
      root.kids <- [ kid ];
      Some { root; frontier = [ kid ] }
    end
    else None
  | A.Wildcard -> (
    match children dtd a with
    | [] -> None
    | cs ->
      let root = fresh a in
      let kids = List.map fresh cs in
      root.kids <- kids;
      Some { root; frontier = kids })
  | A.Slash (p1, p2) -> (
    match build dtd p1 a with
    | None -> None
    | Some g ->
      let conts = Hashtbl.create 4 in
      let continuation label =
        match Hashtbl.find_opt conts label with
        | Some c -> c
        | None ->
          let c = build dtd p2 label in
          Hashtbl.add conts label c;
          c
      in
      let frontier = ref [] in
      List.iter
        (fun f ->
          match continuation f.label with
          | None -> () (* dead end; pruned later *)
          | Some cont ->
            f.kids <- dedup_nodes (f.kids @ cont.root.kids);
            f.quals <- f.quals @ cont.root.quals;
            f.ambiguous <- f.ambiguous || cont.root.ambiguous;
            (* the continuation's root merges into the host node: a
               frontier entry that IS the root (ε-like continuations)
               must become the host, not a disconnected copy *)
            let adopted =
              List.map
                (fun fr -> if fr.id = cont.root.id then f else fr)
                cont.frontier
            in
            frontier := adopted @ !frontier)
        (dedup_nodes g.frontier);
      (match dedup_nodes !frontier with
      | [] -> None
      | fs -> Some { root = g.root; frontier = fs }))
  | A.Dslash p1 -> (
    (* Type-keyed closure of the DTD below [a], then p1 grafted at
       every closure node (descendant-or-self). *)
    let keyed = Hashtbl.create 16 in
    let node_of t =
      match Hashtbl.find_opt keyed t with
      | Some n -> n
      | None ->
        let n = fresh t in
        Hashtbl.add keyed t n;
        n
    in
    let closure = descendant_or_self_types dtd a in
    List.iter
      (fun t ->
        let n = node_of t in
        n.kids <- dedup_nodes (n.kids @ List.map node_of (children dtd t)))
      closure;
    let frontier = ref [] in
    List.iter
      (fun t ->
        match build dtd p1 t with
        | None -> ()
        | Some cont ->
          let n = node_of t in
          n.kids <- dedup_nodes (n.kids @ cont.root.kids);
          n.quals <- n.quals @ cont.root.quals;
          n.ambiguous <- n.ambiguous || cont.root.ambiguous;
          let adopted =
            List.map
              (fun fr -> if fr.id = cont.root.id then n else fr)
              cont.frontier
          in
          frontier := adopted @ !frontier)
      closure;
    match dedup_nodes !frontier with
    | [] -> None
    | fs -> Some { root = node_of a; frontier = fs })
  | A.Union (p1, p2) -> (
    match (build dtd p1 a, build dtd p2 a) with
    | None, None -> None
    | Some g, None | None, Some g -> Some g
    | Some g1, Some g2 ->
      let root = fresh a in
      root.kids <- dedup_nodes (g1.root.kids @ g2.root.kids);
      root.quals <- g1.root.quals @ g2.root.quals;
      root.ambiguous <-
        g1.root.ambiguous || g2.root.ambiguous
        || (g1.root.quals <> [] && g2.root.quals <> []);
      let remap f =
        if f.id = g1.root.id || f.id = g2.root.id then root else f
      in
      let frontier = dedup_nodes (List.map remap (g1.frontier @ g2.frontier)) in
      Some { root; frontier })
  | A.Qualify (p1, q) -> (
    match build dtd p1 a with
    | None -> None
    | Some g ->
      let kept =
        List.filter_map
          (fun f ->
            match bool_of_qual dtd q f.label with
            | `False -> None
            | `True -> Some f
            | `Unknown ->
              f.quals <- f.quals @ qual_nodes dtd q f.label;
              Some f)
          (dedup_nodes g.frontier)
      in
      match kept with
      | [] -> None
      | fs -> Some { root = g.root; frontier = fs })

(* Remove branches that died before reaching the frontier: keep the
   nodes from which a frontier node is reachable (frontier included),
   drop other kid edges.  Qualifier subgraphs of kept nodes are kept
   whole — they encode constraints, not result paths. *)
and prune g =
  (* keep = nodes from which a frontier node is reachable; computed by
     a reverse-edge BFS so pruning stays linear in the graph size *)
  let all_nodes =
    let seen = Hashtbl.create 32 in
    let acc = ref [] in
    let rec go n =
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        acc := n :: !acc;
        List.iter go n.kids
      end
    in
    go g.root;
    !acc
  in
  let parents : (int, node list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          let prev = Option.value (Hashtbl.find_opt parents k.id) ~default:[] in
          Hashtbl.replace parents k.id (n :: prev))
        n.kids)
    all_nodes;
  let keep = Hashtbl.create 64 in
  let queue = Queue.create () in
  let mark n =
    if not (Hashtbl.mem keep n.id) then begin
      Hashtbl.replace keep n.id ();
      Queue.add n queue
    end
  in
  List.iter mark g.frontier;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter mark (Option.value (Hashtbl.find_opt parents n.id) ~default:[])
  done;
  Hashtbl.replace keep g.root.id ();
  List.iter
    (fun n ->
      if Hashtbl.mem keep n.id then
        n.kids <- List.filter (fun k -> Hashtbl.mem keep k.id) n.kids)
    all_nodes

(* ------------------------------------------------------------------ *)

(* Public entry points serialize the calling domain's threads over its
   memo state; the internal recursion above never re-locks.  Pure
   helpers ([requires_child], [size], [pp]) touch no state and stay
   unguarded. *)
let locked f =
  let m = memo () in
  Mutex.lock m.mlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.mlock) f

let image dtd p a = locked (fun () -> image dtd p a)
let bool_of_qual dtd q a = locked (fun () -> bool_of_qual dtd q a)
let guaranteed dtd p a = locked (fun () -> guaranteed dtd p a)
let reach dtd p a = locked (fun () -> reach dtd p a)

let descendant_or_self_types dtd a =
  locked (fun () -> descendant_or_self_types dtd a)

let all_nodes g =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      acc := n :: !acc;
      List.iter go n.kids;
      List.iter go n.quals
    end
  in
  go g.root;
  List.rev !acc

let size g = List.length (all_nodes g)

let pp ppf g =
  List.iter
    (fun n ->
      Format.fprintf ppf "%d:%s -> [%s]%s%s@." n.id n.label
        (String.concat "; "
           (List.map (fun k -> string_of_int k.id ^ ":" ^ k.label) n.kids))
        (match n.quals with
        | [] -> ""
        | qs ->
          " quals ["
          ^ String.concat "; "
              (List.map (fun k -> string_of_int k.id ^ ":" ^ k.label) qs)
          ^ "]"
        )
        (if n.ambiguous then " (ambiguous)" else ""))
    (all_nodes g)
