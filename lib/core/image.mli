(** Image graphs (Section 5.1): the sub-structure of a DTD graph that a
    query can traverse from a given element type, together with the
    qualifier constraints collected along the way.  Image graphs drive
    the approximate containment test ({!Simulate}) and the
    DTD-constraint evaluation of qualifiers used by {!Optimize}.

    Qualifier nodes are stored separately from element children and
    carry labels of the form ["[]"] (plain existence), ["[]=c"]
    (equality with the constant [c]), or ["[]?<serialized>"] (opaque:
    a boolean combination the graph structure cannot represent; it
    matches only a syntactically identical qualifier on the other
    side).  When a union merges two qualified roots, the merged node is
    marked {e ambiguous}: its qualifiers only hold on one branch, so
    the simulation treats them as unusable on the simulated side and
    as unsatisfiable on the simulating side — a sound approximation
    the paper's construction glosses over.

    Deciding qualifiers ([bool(\[q\], A)]) uses the three families of
    structural DTD constraints of Example 5.1:
    - {e non-existence}: the image of the qualifier path is empty;
    - {e co-existence}: the path is guaranteed non-empty on every
      instance (concatenation members that cannot be skipped);
    - {e exclusive}: a conjunction needs two disjoint child sets under
      a production whose words carry at most one element. *)

type node = {
  id : int;
  label : string;
  mutable kids : node list;
  mutable quals : node list;  (** '[]'-labeled qualifier roots *)
  mutable ambiguous : bool;
}

type t = {
  root : node;
  frontier : node list;  (** nodes the query's results correspond to *)
}

exception Too_large
(** Raised by {!image} when construction exceeds its node budget
    (deeply nested descendant steps over unions can multiply work).
    Callers treat it as "undecided": {!bool_of_qual} absorbs it into
    [`Unknown]; {!Simulate.contained} into "not contained". *)

(** Implementation note: the pure schema-level analyses ({!reach},
    {!guaranteed}, {!bool_of_qual}, {!descendant_or_self_types}) are
    memoized {e per domain} ([Domain.DLS]), keyed by
    {!Sdtd.Dtd.stamp} — nested descendant steps would otherwise
    recompute reachability once per closure type per nesting level.
    Memory grows with the number of distinct DTDs analyzed per domain
    (servers typically hold a handful).  Each public entry point is
    guarded by a per-domain mutex, so threads sharing a domain may
    call concurrently; domains never contend with each other. *)

val image : Sdtd.Dtd.t -> Sxpath.Ast.path -> string -> t option
(** [image dtd p a]: the image graph of [p] at element type [a], or
    [None] when [p] can reach nothing there (the non-existence
    constraint).  Dead branches that stopped matching before the
    frontier are pruned.  Works on recursive DTDs (the graph then has
    cycles; {!Simulate} is coinductive). *)

val bool_of_qual :
  Sdtd.Dtd.t -> Sxpath.Ast.qual -> string -> [ `True | `False | `Unknown ]
(** [bool(\[q\], A)]: decide a qualifier from DTD constraints alone.
    Sound in both directions: [`True] ⇒ holds on every instance,
    [`False] ⇒ holds on none. *)

val guaranteed : Sdtd.Dtd.t -> Sxpath.Ast.path -> string -> bool
(** Is [v⟦p⟧] non-empty at every [a]-element of every instance?
    (Conservative: [true] is a guarantee, [false] says nothing.) *)

val requires_child : Sxpath.Ast.path -> bool
(** Syntactic check: can [p] only ever produce strict descendants of
    the context node?  (Conservative in the same direction.)  Used by
    the exclusive-constraint rule. *)

val descendant_or_self_types : Sdtd.Dtd.t -> string -> string list
(** Element types reachable downward from a type (itself included),
    BFS order — the schema-level [reach(//, A)]. *)

val reach : Sdtd.Dtd.t -> Sxpath.Ast.path -> string -> string list
(** Element types the path can reach from a type (an over-approximation
    that already discards branches whose qualifiers are decided
    false). *)

val size : t -> int
(** Distinct nodes in the graph (qualifier subgraphs included). *)

val pp : Format.formatter -> t -> unit
(** Debug rendering: one [label -> kids | quals] line per node. *)
