type vtree = {
  vlabel : string;
  source : Sxml.Tree.t;
  vattrs : (string * string) list;
  vchildren : vchild list;
}

and vchild =
  | Velem of vtree
  | Vtext of string

exception Abort of string

let abort fmt = Printf.ksprintf (fun s -> raise (Abort s)) fmt

let materialize ?env ~spec ~view doc =
  let accessible = Access.accessible_set ?env spec doc in
  let is_accessible (n : Sxml.Tree.t) =
    Access.IntSet.mem n.id accessible
  in
  let attrs_of source =
    Access.accessible_attributes ?env ~accessible spec doc source
  in
  let dtd = View.dtd view in
  let rec build vlabel (source : Sxml.Tree.t) =
    let prod = Sdtd.Dtd.production dtd vlabel in
    (* Candidate element children: for each label of the production,
       extract via σ; a node may be produced under several labels (it
       then appears once per label, ordered by document position). *)
    let element_candidates =
      List.concat_map
        (fun b ->
          let q = View.sigma_exn view ~parent:vlabel ~child:b in
          let extracted =
            Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ~root:source ()) q
          in
          let kept =
            if View.is_dummy view b then extracted
            else List.filter is_accessible extracted
          in
          List.map (fun n -> (b, n)) kept)
        (Sdtd.Regex.labels prod)
    in
    let text_candidates =
      if Sdtd.Regex.mentions_str prod then
        List.filter_map
          (fun (c : Sxml.Tree.t) ->
            match c.desc with
            | Sxml.Tree.Text s when is_accessible c -> Some (c.id, s)
            | Sxml.Tree.Text _ | Sxml.Tree.Element _ -> None)
          (Sxml.Tree.children source)
      else []
    in
    let tagged =
      List.map
        (fun (b, n) -> (n.Sxml.Tree.id, `Elem (b, n)))
        element_candidates
      @ List.map (fun (id, s) -> (id, `Text s)) text_candidates
    in
    let ordered =
      List.sort (fun (i, _) (j, _) -> Int.compare i j) tagged
    in
    let word =
      List.map
        (function
          | _, `Elem (b, _) -> b
          | _, `Text _ -> Sdtd.Regex.pcdata)
        ordered
    in
    if not (Sdtd.Regex.matches prod word) then
      abort "children [%s] of <%s> (source node %d) do not match %s"
        (String.concat "; " word) vlabel source.Sxml.Tree.id
        (Sdtd.Regex.to_string prod);
    let vchildren =
      List.map
        (function
          | _, `Elem (b, n) -> Velem (build b n)
          | _, `Text s -> Vtext s)
        ordered
    in
    { vlabel; source; vattrs = attrs_of source; vchildren }
  in
  let root_label = View.root view in
  (match Sxml.Tree.tag doc with
  | Some tag when String.equal tag root_label -> ()
  | Some tag ->
    abort "document root <%s> does not match the view root <%s>" tag
      root_label
  | None -> abort "document root is a text node");
  build root_label doc

let to_tree vtree =
  let rec spec { vlabel; vattrs; vchildren; _ } =
    Sxml.Tree.elem vlabel ~attrs:vattrs
      (List.map
         (function Velem v -> spec v | Vtext s -> Sxml.Tree.text s)
         vchildren)
  in
  Sxml.Tree.of_spec (spec vtree)

let to_tree_with_sources vtree =
  let tree = to_tree vtree in
  (* [to_tree] numbers nodes in preorder, and the vtree visited in the
     same preorder yields matching elements; walk both in lockstep. *)
  let table = Hashtbl.create 64 in
  let rec walk (v : vtree) (n : Sxml.Tree.t) =
    Hashtbl.replace table n.Sxml.Tree.id v.source.Sxml.Tree.id;
    let elems =
      List.filter_map (function Velem c -> Some c | Vtext _ -> None)
        v.vchildren
    in
    List.iter2 walk elems (Sxml.Tree.element_children n)
  in
  walk vtree tree;
  (tree, fun id -> Hashtbl.find_opt table id)

let element_sources vtree =
  let rec go acc v =
    let acc = (v.vlabel, v.source.Sxml.Tree.id) :: acc in
    List.fold_left
      (fun acc -> function Velem c -> go acc c | Vtext _ -> acc)
      acc v.vchildren
  in
  List.rev (go [] vtree)

let size vtree =
  let rec go v =
    1
    + List.fold_left
        (fun acc -> function Velem c -> acc + go c | Vtext _ -> acc + 1)
        0 v.vchildren
  in
  go vtree
