module A = Sxpath.Ast

let attribute = "accessibility"

let accessible_qual =
  A.Eq (A.Attribute attribute, A.Const "1")

(* Rule 2: child axis -> descendant axis, applied to every step of the
   main path and of qualifier paths.  Structurally: each Label/Wildcard
   step becomes a //-step. *)
let rec loosen ~dummy (p : A.path) : A.path =
  match p with
  | A.Empty | A.Eps | A.Attribute _ -> p
  | A.Label l -> A.Dslash (if dummy l then A.Wildcard else A.Label l)
  | A.Wildcard -> A.Dslash A.Wildcard
  | A.Slash (p1, p2) -> A.Slash (loosen ~dummy p1, loosen ~dummy p2)
  | A.Dslash p1 -> A.Dslash (strip_lead ~dummy p1)
  | A.Union (p1, p2) -> A.Union (loosen ~dummy p1, loosen ~dummy p2)
  | A.Qualify (p1, q) -> A.Qualify (loosen ~dummy p1, loosen_qual ~dummy q)

(* Under an existing //, the first step needs no extra descent. *)
and strip_lead ~dummy (p : A.path) : A.path =
  match p with
  | A.Label l -> if dummy l then A.Wildcard else p
  | A.Wildcard | A.Empty | A.Eps | A.Attribute _ -> p
  | A.Slash (p1, p2) -> A.Slash (strip_lead ~dummy p1, loosen ~dummy p2)
  | A.Dslash p1 -> A.Dslash (strip_lead ~dummy p1)
  | A.Union (p1, p2) -> A.Union (strip_lead ~dummy p1, strip_lead ~dummy p2)
  | A.Qualify (p1, q) ->
    A.Qualify (strip_lead ~dummy p1, loosen_qual ~dummy q)

and loosen_qual ~dummy (q : A.qual) : A.qual =
  match q with
  | A.True | A.False -> q
  | A.Exists p -> A.Exists (loosen ~dummy p)
  | A.Eq (p, v) -> A.Eq (loosen ~dummy p, v)
  | A.And (a, b) -> A.And (loosen_qual ~dummy a, loosen_qual ~dummy b)
  | A.Or (a, b) -> A.Or (loosen_qual ~dummy a, loosen_qual ~dummy b)
  | A.Not a -> A.Not (loosen_qual ~dummy a)

let rewrite_query ?view p =
  let dummy =
    match view with
    | None -> fun _ -> false
    | Some v -> fun l -> View.is_dummy v l
  in
  A.Qualify (loosen ~dummy p, accessible_qual)

let prepare ?env spec doc = Access.annotate ?env ~attribute spec doc

let eval ?env ?view p doc =
  Sxpath.Eval.run
    (Sxpath.Eval.Ctx.make ?env ~root:doc ())
    (rewrite_query ?view p)
