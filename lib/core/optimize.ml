module A = Sxpath.Ast

(* The optimizer mirrors the rewriting algorithm's table shape: for a
   sub-query and a context type it keeps one optimized path per element
   type the sub-query can reach, with the invariant that each path,
   evaluated at a context-type element, returns only nodes of its
   target type.  That invariant is what makes per-target qualifier
   decisions sound (a qualifier false at one reached type prunes only
   that type's entry) and what lets dead union branches disappear —
   Example 5.1's (a ∪ b)/c ↦ a/c.  The wildcard consequently expands
   into labels, exactly as Fig. 10's case (3) does.

   On recursive DTDs the [//] axis has no finite expansion; such
   sub-queries fall back to a single "coarse" entry carrying the
   original query text (with targets still tracked for emptiness
   detection), and coarse entries flow through compositions without
   per-target simplification. *)

type entry = {
  targets : (string * A.path) list;
  coarse : bool;
      (* when true, [targets] all share one path which may reach any of
         the target types; per-target reasoning is disabled *)
}

let empty_entry = { targets = []; coarse = false }

let is_empty_entry e = e.targets = []

let entry_path e =
  match e.targets with
  | [] -> A.Empty
  | (_, q) :: _ when e.coarse -> q
  | ts -> A.union_all (List.map snd ts)

let merge_targets lists =
  List.fold_left
    (fun acc (b, q) ->
      let rec add = function
        | [] -> [ (b, q) ]
        | (b', q') :: rest when String.equal b b' ->
          (b', A.union q' q) :: rest
        | e :: rest -> e :: add rest
      in
      add acc)
    [] (List.concat lists)

let coarse_entry path targets =
  { targets = List.map (fun b -> (b, path)) targets; coarse = true }

type ctx = {
  dtd : Sdtd.Dtd.t;
  recursive : bool;
  idview : View.t option;  (* identity view, for // expansion *)
  recrw_cache : (string, (string * A.path) list) Hashtbl.t;
  memo : (A.path * string, entry) Hashtbl.t;
}

let make_ctx dtd =
  let recursive = Sdtd.Dtd.is_recursive dtd in
  {
    dtd;
    recursive;
    idview = (if recursive then None else Some (View.identity_of dtd));
    recrw_cache = Hashtbl.create 16;
    memo = Hashtbl.create 64;
  }

let recrw ctx a =
  match Hashtbl.find_opt ctx.recrw_cache a with
  | Some r -> r
  | None ->
    let view = Option.get ctx.idview in
    let r = Rewrite.recrw view a in
    Hashtbl.replace ctx.recrw_cache a r;
    r

let children ctx a = Sdtd.Dtd.children_of ctx.dtd a

let rec go ctx (p : A.path) (a : string) : entry =
  match Hashtbl.find_opt ctx.memo (p, a) with
  | Some e -> e
  | None ->
    let e = compute ctx p a in
    let e = { e with targets = List.filter (fun (_, q) -> q <> A.Empty) e.targets } in
    Hashtbl.replace ctx.memo (p, a) e;
    e

and compute ctx p a : entry =
  match p with
  | A.Empty -> empty_entry
  | A.Eps -> { targets = [ (a, A.Eps) ]; coarse = false }
  | A.Label l ->
    if List.mem l (children ctx a) then
      { targets = [ (l, A.Label l) ]; coarse = false }
    else empty_entry
  | A.Wildcard ->
    (* expand into labels (Fig. 10 case 3), preserving the per-target
       invariant *)
    {
      targets = List.map (fun c -> (c, A.Label c)) (children ctx a);
      coarse = false;
    }
  | A.Attribute _ ->
    (* outside the DTD model: keep as-is, a single opaque entry *)
    coarse_entry p []
  | A.Slash (p1, p2) -> (
    let first = go ctx p1 a in
    if is_empty_entry first then empty_entry
    else if first.coarse then begin
      (* compose coarsely with the original continuation *)
      let conts = List.map (fun (b, _) -> (b, go ctx p2 b)) first.targets in
      let reach =
        List.sort_uniq String.compare
          (List.concat_map (fun (_, e) -> List.map fst e.targets) conts)
      in
      if reach = [] then empty_entry
      else coarse_entry (A.slash (entry_path first) p2) reach
    end
    else begin
      let products =
        List.map
          (fun (b, q1) ->
            let cont = go ctx p2 b in
            if cont.coarse then
              (* a coarse tail poisons the composition *)
              `Coarse (b, q1, cont)
            else
              `Fine
                (List.map (fun (c, q2) -> (c, A.slash q1 q2)) cont.targets))
          first.targets
      in
      if
        List.exists (function `Coarse _ -> true | `Fine _ -> false) products
      then begin
        (* fall back: original p2 after the optimized-but-unsplit p1 *)
        let reach =
          List.sort_uniq String.compare
            (List.concat_map
               (fun (b, _) -> List.map fst (go ctx p2 b).targets)
               first.targets)
        in
        if reach = [] then empty_entry
        else coarse_entry (A.slash (entry_path first) p2) reach
      end
      else
        {
          targets =
            merge_targets
              (List.map
                 (function `Fine ts -> ts | `Coarse _ -> [])
                 products);
          coarse = false;
        }
    end)
  | A.Dslash p1 ->
    let closure = Image.descendant_or_self_types ctx.dtd a in
    if ctx.recursive then begin
      let reaches =
        List.concat_map
          (fun b -> List.map fst (go ctx p1 b).targets)
          closure
        |> List.sort_uniq String.compare
      in
      if reaches = [] then empty_entry else coarse_entry (A.dslash p1) reaches
    end
    else begin
      let parts =
        List.concat_map
          (fun (b, rr) ->
            let cont = go ctx p1 b in
            if cont.coarse then [] (* cannot happen: DTD non-recursive *)
            else List.map (fun (c, q) -> (c, A.slash rr q)) cont.targets)
          (recrw ctx a)
      in
      { targets = merge_targets [ parts ]; coarse = false }
    end
  | A.Union (p1, p2) -> (
    let e1 = go ctx p1 a in
    let e2 = go ctx p2 a in
    match (is_empty_entry e1, is_empty_entry e2) with
    | true, _ -> e2
    | _, true -> e1
    | false, false ->
      if e1.coarse || e2.coarse then
        coarse_entry
          (A.union (entry_path e1) (entry_path e2))
          (List.sort_uniq String.compare
             (List.map fst e1.targets @ List.map fst e2.targets))
      else if Simulate.contained ctx.dtd p1 p2 a then e2
      else if Simulate.contained ctx.dtd p2 p1 a then e1
      else { targets = merge_targets [ e1.targets; e2.targets ]; coarse = false })
  | A.Qualify (p1, q) -> (
    let base = go ctx p1 a in
    if is_empty_entry base then empty_entry
    else if base.coarse then begin
      let live =
        List.filter
          (fun (b, _) -> Image.bool_of_qual ctx.dtd q b <> `False)
          base.targets
      in
      if live = [] then empty_entry
      else coarse_entry (A.qualify (entry_path base) q) (List.map fst live)
    end
    else
      {
        targets =
          List.filter_map
            (fun (b, qp) ->
              match Image.bool_of_qual ctx.dtd q b with
              | `False -> None
              | `True -> Some (b, qp)
              | `Unknown -> (
                match simplify_qual_at ctx b q with
                | A.False -> None
                | rq -> Some (b, A.qualify qp rq)))
            base.targets;
        coarse = false;
      })

and simplify_qual_at ctx b (q : A.qual) : A.qual =
  match Image.bool_of_qual ctx.dtd q b with
  | `True -> A.True
  | `False -> A.False
  | `Unknown -> (
    match q with
    | A.True | A.False -> q
    | A.Exists p ->
      if A.mem_attribute p then q
      else A.exists (entry_path (go ctx p b))
    | A.Eq (p, v) ->
      if A.mem_attribute p then q
      else (
        match entry_path (go ctx p b) with
        | A.Empty -> A.False
        | opt -> A.Eq (opt, v))
    | A.And (q1, q2) -> (
      let s1 = simplify_qual_at ctx b q1 in
      let s2 = simplify_qual_at ctx b q2 in
      match (implies ctx b q1 q2, implies ctx b q2 q1) with
      | true, _ -> s1
      | _, true -> s2
      | false, false -> A.qand s1 s2)
    | A.Or (q1, q2) -> (
      let s1 = simplify_qual_at ctx b q1 in
      let s2 = simplify_qual_at ctx b q2 in
      match (implies ctx b q1 q2, implies ctx b q2 q1) with
      | true, _ -> s2
      | _, true -> s1
      | false, false -> A.qor s1 s2)
    | A.Not q1 -> A.qnot (simplify_qual_at ctx b q1))

(* [q1] implies [q2] at b-elements: via path containment for the
   existential atoms the paper's C⁻ covers. *)
and implies ctx b q1 q2 =
  match (q1, q2) with
  | _ when A.qual_mem_attribute q1 || A.qual_mem_attribute q2 -> false
  | A.Exists p1, A.Exists p2 -> Simulate.contained ctx.dtd p1 p2 b
  | A.Eq (p1, v1), A.Eq (p2, v2) ->
    v1 = v2 && Simulate.contained ctx.dtd p1 p2 b
  | A.Eq (p1, _), A.Exists p2 -> Simulate.contained ctx.dtd p1 p2 b
  | _ -> false

let optimize_with_reach ?at dtd p =
  Trace.span "optimize" @@ fun () ->
  let ctx = make_ctx dtd in
  let a = Option.value at ~default:(Sdtd.Dtd.root dtd) in
  let e = go ctx p a in
  (Sxpath.Simplify.factor (entry_path e), List.map fst e.targets)

let optimize ?at dtd p = fst (optimize_with_reach ?at dtd p)

let simplify_qual dtd a q =
  let ctx = make_ctx dtd in
  simplify_qual_at ctx a q
