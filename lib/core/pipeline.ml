type group = {
  name : string;
  view : View.t;
}

type group_state = {
  info : group;
  recursive : bool;
  lock : Mutex.t;  (* guards [cache], [hits], [misses] *)
  cache : (Sxpath.Ast.path * int option, Sxpath.Ast.path) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  dtd : Sdtd.Dtd.t;
  states : (string, group_state) Hashtbl.t;  (* read-only after create *)
  order : string list;
  catalog : Catalog.t;
  translate_lock : Mutex.t;
}

let strict_gate :
    (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) option ref =
  ref None

let set_strict_gate f = strict_gate := Some f

(* [pairs]: (group, view, policy if we have one). *)
let run_strict_gate dtd pairs =
  match !strict_gate with
  | None ->
    invalid_arg
      "Pipeline: ?strict requires the static-analysis gate; link the \
       analysis sublibrary (Sanalysis.Lint) or drop ~strict:true"
  | Some gate ->
    let errors =
      List.concat_map
        (fun (name, view, spec) ->
          List.map
            (fun e -> Printf.sprintf "group %S: %s" name e)
            (gate ~dtd ?spec view))
        pairs
    in
    if errors <> [] then
      invalid_arg
        ("Pipeline: strict validation failed:\n" ^ String.concat "\n" errors)

let of_views ?catalog dtd pairs =
  let states = Hashtbl.create 8 in
  List.iter
    (fun (name, view) ->
      if Hashtbl.mem states name then
        invalid_arg (Printf.sprintf "Pipeline: duplicate group %S" name);
      Hashtbl.replace states name
        {
          info = { name; view };
          recursive = Sdtd.Dtd.is_recursive (View.dtd view);
          lock = Mutex.create ();
          cache = Hashtbl.create 32;
          hits = 0;
          misses = 0;
        })
    pairs;
  let catalog =
    match catalog with Some c -> c | None -> Catalog.create ()
  in
  {
    dtd;
    states;
    order = List.map fst pairs;
    catalog;
    translate_lock = Mutex.create ();
  }

let create ?(strict = false) ?catalog dtd ~groups =
  List.iter
    (fun (_, spec) ->
      if Sdtd.Dtd.stamp (Spec.dtd spec) <> Sdtd.Dtd.stamp dtd then
        invalid_arg "Pipeline.create: specification over a different DTD")
    groups;
  let derived =
    List.map (fun (name, spec) -> (name, Derive.derive spec, spec)) groups
  in
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived);
  of_views ?catalog dtd (List.map (fun (name, view, _) -> (name, view)) derived)

let create_with_views ?(strict = false) ?catalog dtd ~groups =
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view) -> (name, view, None)) groups);
  of_views ?catalog dtd groups

let dtd t = t.dtd
let catalog t = t.catalog

let groups t =
  List.map (fun name -> (Hashtbl.find t.states name).info) t.order

let state t name =
  match Hashtbl.find_opt t.states name with
  | Some st -> st
  | None -> raise Not_found

let view_dtd t ~group = View.dtd (state t group).info.view

(* Translation under contention: the per-group lock only covers cache
   lookups and counters, so warm requests from many threads never
   serialize on translation work.  A miss computes outside that lock
   but inside the pipeline-wide [translate_lock]: rewrite/optimize
   lean on Optimize's schema-analysis machinery (Image), whose memo
   tables and node budget are process-global and not thread-safe, so
   cold translations are serialized — they are schema-sized (µs–ms)
   while evaluation, which runs fully concurrently, is data-sized.
   Exactly one of hits/misses is bumped per call, so per-group
   hits + misses always equals calls issued. *)
let translate t ~group ?height q =
  let st = state t group in
  let key = (q, height) in
  let cached =
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.cache key with
        | Some p ->
          st.hits <- st.hits + 1;
          Some p
        | None ->
          st.misses <- st.misses + 1;
          None)
  in
  match cached with
  | Some p ->
    if Trace.enabled () then Trace.count ("pipeline.cache.hit." ^ group) 1;
    p
  | None ->
    if Trace.enabled () then Trace.count ("pipeline.cache.miss." ^ group) 1;
    Mutex.protect t.translate_lock (fun () ->
        (* another thread may have translated this key while we waited *)
        match Mutex.protect st.lock (fun () -> Hashtbl.find_opt st.cache key)
        with
        | Some p -> p
        | None ->
          let optimized =
            Trace.span "translate" @@ fun () ->
            let rewritten =
              match (st.recursive, height) with
              | true, Some h ->
                Rewrite.rewrite_with_height st.info.view ~height:h q
              | true, None ->
                raise
                  (Rewrite.Unsupported
                     "recursive view: Pipeline.translate needs ~height")
              | false, _ -> Rewrite.rewrite st.info.view q
            in
            Optimize.optimize t.dtd rewritten
          in
          Mutex.protect st.lock (fun () ->
              Hashtbl.replace st.cache key optimized);
          optimized)

let doc_height t doc =
  let entry = Catalog.intern t.catalog doc in
  match Catalog.memoized_height entry with
  | Some h ->
    if Trace.enabled () then Trace.count "pipeline.height.memo_hit" 1;
    h
  | None ->
    let h = Trace.span "height" (fun () -> Catalog.height t.catalog entry) in
    if Trace.enabled () then Trace.count "pipeline.height.computed" 1;
    h

let request_height t st ?height doc =
  if not st.recursive then None
  else
    match height with Some _ -> height | None -> Some (doc_height t doc)

let cached_mem st key = Mutex.protect st.lock (fun () -> Hashtbl.mem st.cache key)

let answer_observed t st ~group ?env ?index ?height q doc =
  Trace.span "answer" @@ fun () ->
  let height = request_height t st ?height doc in
  let cache_hit = cached_mem st (q, height) in
  let finish translated results error =
    Trace.audit { Trace.group; query = q; translated; cache_hit; height;
                  results; error }
  in
  match translate t ~group ?height q with
  | exception e ->
    if Trace.audit_enabled () then finish None 0 (Some (Printexc.to_string e));
    raise e
  | translated -> (
    let v0 = !Sxpath.Eval.visited in
    match Trace.span "eval" (fun () -> Sxpath.Eval.eval ?env ?index translated doc)
    with
    | exception e ->
      Trace.value "eval.visited" (!Sxpath.Eval.visited - v0);
      if Trace.audit_enabled () then
        finish (Some translated) 0 (Some (Printexc.to_string e));
      raise e
    | results ->
      Trace.value "eval.visited" (!Sxpath.Eval.visited - v0);
      if Trace.audit_enabled () then
        finish (Some translated) (List.length results) None;
      results)

let answer t ~group ?env ?index ?height q doc =
  let st = state t group in
  if Trace.enabled () || Trace.audit_enabled () then
    answer_observed t st ~group ?env ?index ?height q doc
  else
    let height = request_height t st ?height doc in
    Sxpath.Eval.eval ?env ?index (translate t ~group ?height q) doc

let cache_stats t ~group =
  let st = state t group in
  Mutex.protect st.lock (fun () -> (st.hits, st.misses))

let stats t =
  List.map
    (fun name ->
      let st = Hashtbl.find t.states name in
      (name, Mutex.protect st.lock (fun () -> (st.hits, st.misses))))
    t.order
