type group = {
  name : string;
  view : View.t;
}

type group_state = {
  info : group;
  recursive : bool;
  cache : (Sxpath.Ast.path * int option, Sxpath.Ast.path) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  dtd : Sdtd.Dtd.t;
  states : (string, group_state) Hashtbl.t;
  order : string list;
}

let strict_gate :
    (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) option ref =
  ref None

let set_strict_gate f = strict_gate := Some f

(* [pairs]: (group, view, policy if we have one). *)
let run_strict_gate dtd pairs =
  match !strict_gate with
  | None ->
    invalid_arg
      "Pipeline: ?strict requires the static-analysis gate; link the \
       analysis sublibrary (Sanalysis.Lint) or drop ~strict:true"
  | Some gate ->
    let errors =
      List.concat_map
        (fun (name, view, spec) ->
          List.map
            (fun e -> Printf.sprintf "group %S: %s" name e)
            (gate ~dtd ?spec view))
        pairs
    in
    if errors <> [] then
      invalid_arg
        ("Pipeline: strict validation failed:\n" ^ String.concat "\n" errors)

let of_views dtd pairs =
  let states = Hashtbl.create 8 in
  List.iter
    (fun (name, view) ->
      if Hashtbl.mem states name then
        invalid_arg (Printf.sprintf "Pipeline: duplicate group %S" name);
      Hashtbl.replace states name
        {
          info = { name; view };
          recursive = Sdtd.Dtd.is_recursive (View.dtd view);
          cache = Hashtbl.create 32;
          hits = 0;
          misses = 0;
        })
    pairs;
  { dtd; states; order = List.map fst pairs }

let create ?(strict = false) dtd ~groups =
  List.iter
    (fun (_, spec) ->
      if Sdtd.Dtd.stamp (Spec.dtd spec) <> Sdtd.Dtd.stamp dtd then
        invalid_arg "Pipeline.create: specification over a different DTD")
    groups;
  let derived =
    List.map (fun (name, spec) -> (name, Derive.derive spec, spec)) groups
  in
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived);
  of_views dtd (List.map (fun (name, view, _) -> (name, view)) derived)

let create_with_views ?(strict = false) dtd ~groups =
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view) -> (name, view, None)) groups);
  of_views dtd groups

let dtd t = t.dtd

let groups t =
  List.map (fun name -> (Hashtbl.find t.states name).info) t.order

let state t name =
  match Hashtbl.find_opt t.states name with
  | Some st -> st
  | None -> raise Not_found

let view_dtd t ~group = View.dtd (state t group).info.view

let translate t ~group ?height q =
  let st = state t group in
  let key = (q, height) in
  match Hashtbl.find_opt st.cache key with
  | Some p ->
    st.hits <- st.hits + 1;
    p
  | None ->
    st.misses <- st.misses + 1;
    let rewritten =
      match (st.recursive, height) with
      | true, Some h -> Rewrite.rewrite_with_height st.info.view ~height:h q
      | true, None ->
        raise
          (Rewrite.Unsupported
             "recursive view: Pipeline.translate needs ~height")
      | false, _ -> Rewrite.rewrite st.info.view q
    in
    let optimized = Optimize.optimize t.dtd rewritten in
    Hashtbl.replace st.cache key optimized;
    optimized

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc

let answer t ~group ?env ?index q doc =
  let st = state t group in
  let height = if st.recursive then Some (element_height doc) else None in
  let translated = translate t ~group ?height q in
  Sxpath.Eval.eval ?env ?index translated doc

let cache_stats t ~group =
  let st = state t group in
  (st.hits, st.misses)
