type group = {
  name : string;
  view : View.t;
}

type engine =
  | Interp
  | Plan

let engine_label = function Interp -> "interp" | Plan -> "plan"

let engine_of_string = function
  | "interp" -> Some Interp
  | "plan" -> Some Plan
  | _ -> None

(* Cached translation entry: the rewritten+optimized query plus the
   lazily compiled physical plan for it.  Entries live in a Session's
   caches, which have a single owner — no locking. *)
type plan_state =
  | Unplanned
  | Planned of Splan.Compile.t
  | Fallback of string  (* compile refusal reason; use the interpreter *)

type centry = {
  translated : Sxpath.Ast.path;
  mutable plan : plan_state;
}

type admission =
  | Denied_empty of string
  | Trivial
  | Needs_eval

let admission_label = function
  | Denied_empty _ -> "denied"
  | Trivial -> "trivial"
  | Needs_eval -> "eval"

(* The one per-group counter shape: translation cache, plan cache and
   admission verdicts together, so every consumer (CLI --stats, the
   server's stats verb, GET /metrics) renders and merges the same
   record through the same code path. *)
type stats = {
  hits : int;
  misses : int;
  plan_hits : int;
  plan_misses : int;
  plan_compiles : int;
  plan_fallbacks : int;
  denied : int;
  trivial : int;
  eval : int;
}

let stats_zero =
  {
    hits = 0;
    misses = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_compiles = 0;
    plan_fallbacks = 0;
    denied = 0;
    trivial = 0;
    eval = 0;
  }

let stats_merge a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    plan_hits = a.plan_hits + b.plan_hits;
    plan_misses = a.plan_misses + b.plan_misses;
    plan_compiles = a.plan_compiles + b.plan_compiles;
    plan_fallbacks = a.plan_fallbacks + b.plan_fallbacks;
    denied = a.denied + b.denied;
    trivial = a.trivial + b.trivial;
    eval = a.eval + b.eval;
  }

(* Canonical field spelling, in canonical order — the single authority
   every JSON/metrics rendering of a stats record goes through. *)
let stats_fields s =
  [
    ("hits", s.hits);
    ("misses", s.misses);
    ("plan_hits", s.plan_hits);
    ("plan_misses", s.plan_misses);
    ("plan_compiles", s.plan_compiles);
    ("plan_fallbacks", s.plan_fallbacks);
    ("denied", s.denied);
    ("trivial", s.trivial);
    ("eval", s.eval);
  ]

(* ---- registration hooks (analysis sublibrary) ----------------------- *)

let strict_gate :
    (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) option ref =
  ref None

let set_strict_gate f = strict_gate := Some f

(* The admission analyzer is registered by the analysis sublibrary
   (Sanalysis.Semantic) the same way the strict gate is: lib/core
   cannot depend on lib/analysis, so classification degrades to
   [Needs_eval] when that library is not linked.  Both hooks are set
   once at link time (module initialization) and only read afterwards,
   so sharing them across domains is safe. *)
let admission_analyzer :
    (Sdtd.Dtd.t -> Sxpath.Ast.path -> admission) option ref =
  ref None

let set_admission_analyzer f = admission_analyzer := Some f

(* [pairs]: (group, view, policy if we have one). *)
let run_strict_gate dtd pairs =
  match !strict_gate with
  | None ->
    invalid_arg
      "Pipeline: ?strict requires the static-analysis gate; link the \
       analysis sublibrary (Sanalysis.Lint) or drop ~strict:true"
  | Some gate ->
    let errors =
      List.concat_map
        (fun (name, view, spec) ->
          List.map
            (fun e -> Printf.sprintf "group %S: %s" name e)
            (gate ~dtd ?spec view))
        pairs
    in
    if errors <> [] then
      invalid_arg
        ("Pipeline: strict validation failed:\n" ^ String.concat "\n" errors)

type outcome = {
  o_results : Sxml.Tree.t list;
  o_translated : Sxpath.Ast.path;
  o_engine : engine;
  o_counts : (string * int) list;
}

type explanation = {
  x_admission : admission;
  x_translated : Sxpath.Ast.path;
  x_height : int option;
  x_plan : (Splan.Compile.t * Splan.Exec.Stats.t) option;
  x_fallback : string option;
  x_results : int;
  x_doc_version : int;
  x_generation : int;
}

(* ---- Service: the immutable, domain-shareable layer ------------------ *)

module Service = struct
  type gview = {
    g_info : group;
    g_spec : Spec.t option;  (* None: view-only construction — no writes *)
    g_recursive : bool;
  }

  (* The invalidation log: an immutable record swapped through one
     Atomic.  [gen] counts every invalidation ever; [entries] keeps
     the most recent [(gen, version)] pairs newest-first, bounded — a
     Session that fell further behind than the log remembers clears
     its caches wholesale instead of evicting per version. *)
  type invlog = {
    gen : int;
    entries : (int * int) list;
  }

  let max_invlog = 64

  type t = {
    s_dtd : Sdtd.Dtd.t;
    s_views : (string, gview) Hashtbl.t;  (* read-only after create *)
    s_order : string list;
    s_catalog : Catalog.t;
    s_inv : invlog Atomic.t;
  }

  let of_views ?catalog dtd pairs =
    let views = Hashtbl.create 8 in
    List.iter
      (fun (name, view, spec) ->
        if Hashtbl.mem views name then
          invalid_arg (Printf.sprintf "Pipeline: duplicate group %S" name);
        Hashtbl.replace views name
          {
            g_info = { name; view };
            g_spec = spec;
            g_recursive = Sdtd.Dtd.is_recursive (View.dtd view);
          })
      pairs;
    let catalog =
      match catalog with Some c -> c | None -> Catalog.create ()
    in
    {
      s_dtd = dtd;
      s_views = views;
      s_order = List.map (fun (name, _, _) -> name) pairs;
      s_catalog = catalog;
      s_inv = Atomic.make { gen = 0; entries = [] };
    }

  let create ?(strict = false) ?catalog dtd ~groups =
    List.iter
      (fun (_, spec) ->
        if Sdtd.Dtd.stamp (Spec.dtd spec) <> Sdtd.Dtd.stamp dtd then
          invalid_arg "Pipeline.create: specification over a different DTD")
      groups;
    let derived =
      List.map (fun (name, spec) -> (name, Derive.derive spec, spec)) groups
    in
    if strict then
      run_strict_gate dtd
        (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived);
    of_views ?catalog dtd
      (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived)

  let create_with_views ?(strict = false) ?catalog dtd ~groups =
    if strict then
      run_strict_gate dtd
        (List.map (fun (name, view) -> (name, view, None)) groups);
    of_views ?catalog dtd
      (List.map (fun (name, view) -> (name, view, None)) groups)

  let dtd t = t.s_dtd
  let catalog t = t.s_catalog
  let order t = t.s_order

  let groups t =
    List.map (fun name -> (Hashtbl.find t.s_views name).g_info) t.s_order

  let gview t name =
    match Hashtbl.find_opt t.s_views name with
    | Some gv -> gv
    | None -> raise Not_found

  let view t ~group = (gview t group).g_info.view
  let view_dtd t ~group = View.dtd (gview t group).g_info.view
  let spec t ~group = (gview t group).g_spec
  let generation t = (Atomic.get t.s_inv).gen

  (* Record that every translation populated on behalf of document
     version [v] is now stale.  Lock-free: a CAS loop swaps in a new
     log record; Sessions notice the generation moved and evict their
     own entries lazily on their next call. *)
  let invalidate_version t version =
    let rec swap () =
      let old = Atomic.get t.s_inv in
      let rec take n = function
        | [] -> []
        | _ when n <= 0 -> []
        | e :: rest -> e :: take (n - 1) rest
      in
      let next =
        {
          gen = old.gen + 1;
          entries = (old.gen + 1, version) :: take (max_invlog - 1) old.entries;
        }
      in
      if not (Atomic.compare_and_set t.s_inv old next) then swap ()
    in
    swap ();
    if Trace.enabled () then Trace.count "pipeline.cache.invalidated" 1

  type slot = t Atomic.t

  let slot t = Atomic.make t
  let current slot = Atomic.get slot
  let publish slot t = Atomic.set slot t
end

(* ---- Session: the per-domain caching layer --------------------------- *)

module Session = struct
  (* Counters are Atomics so another domain (the stats/metrics scrape
     path) can read a session's traffic without synchronizing with its
     owner; the owner is the only writer. *)
  type counters = {
    c_hits : int Atomic.t;
    c_misses : int Atomic.t;
    c_plan_hits : int Atomic.t;
    c_plan_misses : int Atomic.t;
    c_plan_compiles : int Atomic.t;
    c_plan_fallbacks : int Atomic.t;
    c_denied : int Atomic.t;
    c_trivial : int Atomic.t;
    c_eval : int Atomic.t;
  }

  let fresh_counters () =
    {
      c_hits = Atomic.make 0;
      c_misses = Atomic.make 0;
      c_plan_hits = Atomic.make 0;
      c_plan_misses = Atomic.make 0;
      c_plan_compiles = Atomic.make 0;
      c_plan_fallbacks = Atomic.make 0;
      c_denied = Atomic.make 0;
      c_trivial = Atomic.make 0;
      c_eval = Atomic.make 0;
    }

  let read_counters c =
    {
      hits = Atomic.get c.c_hits;
      misses = Atomic.get c.c_misses;
      plan_hits = Atomic.get c.c_plan_hits;
      plan_misses = Atomic.get c.c_plan_misses;
      plan_compiles = Atomic.get c.c_plan_compiles;
      plan_fallbacks = Atomic.get c.c_plan_fallbacks;
      denied = Atomic.get c.c_denied;
      trivial = Atomic.get c.c_trivial;
      eval = Atomic.get c.c_eval;
    }

  type sgroup = {
    gv : Service.gview;
    cache : (Sxpath.Ast.path * int option, centry) Hashtbl.t;
    (* which cache keys were populated on behalf of which document
       version, so an invalidation can evict exactly the affected
       document's translations/plans *)
    byver : (int, (Sxpath.Ast.path * int option) list ref) Hashtbl.t;
    admission_cache : (Sxpath.Ast.path, admission) Hashtbl.t;
    ctr : counters;
  }

  type t = {
    slot : Service.slot;
    mutable svc : Service.t;
    mutable seen_gen : int;
    tbl : (string, sgroup) Hashtbl.t;
  }

  let fresh_sgroup ?ctr gv =
    {
      gv;
      cache = Hashtbl.create 32;
      byver = Hashtbl.create 8;
      admission_cache = Hashtbl.create 32;
      ctr = (match ctr with Some c -> c | None -> fresh_counters ());
    }

  (* (Re)build the per-group cache table for a service.  Counters
     survive a rebuild — they measure this session's traffic, not one
     service's. *)
  let rebuild sess (svc : Service.t) =
    let old = Hashtbl.copy sess.tbl in
    Hashtbl.reset sess.tbl;
    List.iter
      (fun name ->
        let gv = Hashtbl.find svc.Service.s_views name in
        let ctr =
          match Hashtbl.find_opt old name with
          | Some sg -> Some sg.ctr
          | None -> None
        in
        Hashtbl.replace sess.tbl name (fresh_sgroup ?ctr gv))
      svc.Service.s_order;
    sess.svc <- svc;
    sess.seen_gen <- Service.generation svc

  let of_slot slot =
    let svc = Service.current slot in
    let sess = { slot; svc; seen_gen = 0; tbl = Hashtbl.create 8 } in
    rebuild sess svc;
    sess

  let create svc = of_slot (Service.slot svc)

  let evict_version sess version =
    Hashtbl.iter
      (fun _ sg ->
        match Hashtbl.find_opt sg.byver version with
        | None -> ()
        | Some keys ->
          List.iter (fun k -> Hashtbl.remove sg.cache k) !keys;
          Hashtbl.remove sg.byver version)
      sess.tbl

  let clear_caches sess =
    Hashtbl.iter
      (fun _ sg ->
        Hashtbl.reset sg.cache;
        Hashtbl.reset sg.byver)
      sess.tbl

  (* Catch up with the shared state: a republished service rebuilds
     the cache table; otherwise replay the invalidation log entries
     this session has not seen (or clear wholesale when the bounded
     log was truncated past us).  Called on every public entry — two
     atomic loads on the warm path. *)
  let sync sess =
    let svc = Service.current sess.slot in
    if svc != sess.svc then rebuild sess svc
    else begin
      let inv = Atomic.get svc.Service.s_inv in
      if inv.Service.gen <> sess.seen_gen then begin
        let missed = inv.Service.gen - sess.seen_gen in
        if missed < 0 || missed > List.length inv.Service.entries then
          clear_caches sess
        else
          List.iter
            (fun (g, v) -> if g > sess.seen_gen then evict_version sess v)
            inv.Service.entries;
        sess.seen_gen <- inv.Service.gen
      end
    end

  let service sess =
    sync sess;
    sess.svc

  let sgroup sess name =
    match Hashtbl.find_opt sess.tbl name with
    | Some sg -> sg
    | None -> raise Not_found

  (* Warm lookups are one Hashtbl probe, no locks: the caches belong
     to this session alone.  Cold translations run the rewriter and
     optimizer right here — Image's memo tables are domain-local and
     guard themselves, so concurrent sessions on different domains
     translate in parallel.  Exactly one of hits/misses is bumped per
     call, so per-group [hits + misses] equals calls issued. *)
  let translate_entry sess sg ~group ?height ?doc q =
    let key = (q, height) in
    match Hashtbl.find_opt sg.cache key with
    | Some ce ->
      Atomic.incr sg.ctr.c_hits;
      if Trace.enabled () then Trace.count ("pipeline.cache.hit." ^ group) 1;
      ce
    | None ->
      Atomic.incr sg.ctr.c_misses;
      if Trace.enabled () then Trace.count ("pipeline.cache.miss." ^ group) 1;
      let optimized =
        Trace.span "translate" @@ fun () ->
        let rewritten =
          match (sg.gv.Service.g_recursive, height) with
          | true, Some h ->
            Rewrite.rewrite_with_height sg.gv.Service.g_info.view ~height:h q
          | true, None ->
            raise
              (Rewrite.Unsupported
                 "recursive view: Pipeline.translate needs ~height")
          | false, _ -> Rewrite.rewrite sg.gv.Service.g_info.view q
        in
        Optimize.optimize sess.svc.Service.s_dtd rewritten
      in
      let ce = { translated = optimized; plan = Unplanned } in
      Hashtbl.replace sg.cache key ce;
      (* attribute the fresh entry to the document version it was
         translated for, so an invalidation can evict it *)
      (match doc with
      | None -> ()
      | Some d ->
        let v =
          Catalog.version (Catalog.intern sess.svc.Service.s_catalog d)
        in
        let keys =
          match Hashtbl.find_opt sg.byver v with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace sg.byver v r;
            r
        in
        if not (List.mem key !keys) then keys := key :: !keys);
      ce

  let translate sess ~group ?height q =
    sync sess;
    (translate_entry sess (sgroup sess group) ~group ?height q).translated

  (* Static admission: decide the (group, query) pair from the view
     DTD alone — no document, no rewriting.  Cached per group and
     query (the verdict depends only on the view DTD, not on heights
     or documents).  Counters are bumped per call, not per distinct
     query, so they measure request traffic like the server's. *)
  let classify_sg sg q =
    let verdict =
      match Hashtbl.find_opt sg.admission_cache q with
      | Some v -> v
      | None ->
        let v =
          match !admission_analyzer with
          | None -> Needs_eval
          | Some analyze ->
            Trace.span "admission" @@ fun () ->
            analyze (View.dtd sg.gv.Service.g_info.view) q
        in
        Hashtbl.replace sg.admission_cache q v;
        v
    in
    (match verdict with
    | Denied_empty _ -> Atomic.incr sg.ctr.c_denied
    | Trivial -> Atomic.incr sg.ctr.c_trivial
    | Needs_eval -> Atomic.incr sg.ctr.c_eval);
    Trace.count ("pipeline.admission." ^ admission_label verdict) 1;
    verdict

  let classify sess ~group q =
    sync sess;
    match sgroup sess group with
    | exception Not_found ->
      Error (Error.Unknown_group { group; known = sess.svc.Service.s_order })
    | sg -> Ok (classify_sg sg q)

  (* The physical plan for a cached translation, compiled at most once
     per entry (same hit/miss discipline as translation). *)
  let plan_of sess sg ~group ce =
    match ce.plan with
    | Planned p ->
      Atomic.incr sg.ctr.c_plan_hits;
      if Trace.enabled () then Trace.count ("pipeline.plan.hit." ^ group) 1;
      Ok p
    | Fallback reason ->
      Atomic.incr sg.ctr.c_plan_hits;
      if Trace.enabled () then Trace.count ("pipeline.plan.hit." ^ group) 1;
      Error reason
    | Unplanned -> (
      Atomic.incr sg.ctr.c_plan_misses;
      if Trace.enabled () then Trace.count ("pipeline.plan.miss." ^ group) 1;
      let compiled =
        Trace.span "plan" (fun () ->
            (* With the admission analyzer linked, statically-empty
               top-level union branches of the translated document
               query are dropped before lowering (the verdict is over
               the document DTD here — the query is past rewriting). *)
            match
              (!admission_analyzer, Sxpath.Ast.union_branches ce.translated)
            with
            | None, _ | _, ([] | [ _ ]) ->
              (* nothing to prune on a single branch: the provably-empty
                 whole-query case is [classify]'s job, before planning *)
              Splan.Compile.compile ce.translated
            | Some analyze, branches ->
              let dead =
                List.filter
                  (fun b ->
                    match analyze sess.svc.Service.s_dtd b with
                    | Denied_empty _ -> true
                    | Trivial | Needs_eval -> false)
                  branches
              in
              Splan.Compile.compile ~prune:dead ce.translated)
      in
      match compiled with
      | Ok p ->
        ce.plan <- Planned p;
        Atomic.incr sg.ctr.c_plan_compiles;
        Ok p
      | Error reason ->
        ce.plan <- Fallback reason;
        Atomic.incr sg.ctr.c_plan_fallbacks;
        Error reason)

  let doc_height sess doc =
    let entry = Catalog.intern sess.svc.Service.s_catalog doc in
    match Catalog.memoized_height entry with
    | Some h ->
      if Trace.enabled () then Trace.count "pipeline.height.memo_hit" 1;
      h
    | None ->
      let h =
        Trace.span "height" (fun () ->
            Catalog.height sess.svc.Service.s_catalog entry)
      in
      if Trace.enabled () then Trace.count "pipeline.height.computed" 1;
      h

  let request_height sess sg ?height doc =
    if not sg.gv.Service.g_recursive then None
    else
      match height with Some _ -> height | None -> Some (doc_height sess doc)

  (* The index the plan engine executes over: the caller's if given,
     else the catalog's memoized one.  A context that is not a
     document root cannot be indexed — the engine falls back to the
     interpreter (only reachable through direct library use; the CLI
     and server always answer at document roots). *)
  let exec_index sess ?index (doc : Sxml.Tree.t) =
    match index with
    | Some _ -> index
    | None ->
      if doc.Sxml.Tree.id = 0 then
        Some (Catalog.index (Catalog.intern sess.svc.Service.s_catalog doc))
      else None

  let interp ?env ?index translated doc =
    Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) translated

  (* Pick the engine that will actually run: (engine used, per-operator
     stats when the plan engine runs and the caller asked, thunk).
     [want_stats] keeps the hot path allocation-free — counters are
     only sized and threaded through when an outcome consumer asked. *)
  let run_engine sess sg ~group ~engine ~want_stats ?env ?index ce doc =
    match engine with
    | Interp -> (Interp, None, fun () -> interp ?env ?index ce.translated doc)
    | Plan -> (
      match exec_index sess ?index doc with
      | None -> (Interp, None, fun () -> interp ?env ?index ce.translated doc)
      | Some idx -> (
        match plan_of sess sg ~group ce with
        | Ok compiled ->
          let stats =
            if want_stats then Some (Splan.Exec.Stats.for_plan compiled)
            else None
          in
          (Plan, stats,
           fun () -> Splan.Exec.run ?stats compiled ~index:idx ?env doc)
        | Error _ ->
          (Interp, None, fun () -> interp ?env ~index:idx ce.translated doc)))

  let answer_observed sess sg ~group ~engine ~want_stats ?env ?index ?height q
      doc =
    Trace.span "answer" @@ fun () ->
    let height = request_height sess sg ?height doc in
    let cache_hit = Hashtbl.mem sg.cache (q, height) in
    let finish translated results error =
      Trace.audit { Trace.group; query = q; translated; cache_hit; height;
                    results; error }
    in
    match translate_entry sess sg ~group ?height ~doc q with
    | exception e ->
      if Trace.audit_enabled () then
        finish None 0 (Some (Printexc.to_string e));
      raise e
    | ce -> (
      (* [visited] is a trace-only work meter shared by every domain's
         evaluators without synchronization: lost updates under
         parallel load are acceptable, a per-request delta observed on
         one domain is exact *)
      let v0 = !Sxpath.Eval.visited + !Splan.Exec.visited in
      let used, stats, thunk =
        run_engine sess sg ~group ~engine ~want_stats ?env ?index ce doc
      in
      match Trace.span "eval" thunk with
      | exception e ->
        Trace.value "eval.visited"
          (!Sxpath.Eval.visited + !Splan.Exec.visited - v0);
        if Trace.audit_enabled () then
          finish (Some ce.translated) 0 (Some (Printexc.to_string e));
        raise e
      | results ->
        Trace.value "eval.visited"
          (!Sxpath.Eval.visited + !Splan.Exec.visited - v0);
        if Trace.audit_enabled () then
          finish (Some ce.translated) (List.length results) None;
        (results, ce, used, stats))

  let answer_outcome sess ~group ?(engine = Plan) ?(counts = false) ?env
      ?index ?height q doc =
    sync sess;
    match sgroup sess group with
    | exception Not_found ->
      Error (Error.Unknown_group { group; known = sess.svc.Service.s_order })
    | sg -> (
      match
        if Trace.enabled () || Trace.audit_enabled () then
          answer_observed sess sg ~group ~engine ~want_stats:counts ?env
            ?index ?height q doc
        else
          let height = request_height sess sg ?height doc in
          let ce = translate_entry sess sg ~group ?height ~doc q in
          let used, stats, thunk =
            run_engine sess sg ~group ~engine ~want_stats:counts ?env ?index
              ce doc
          in
          (thunk (), ce, used, stats)
      with
      | results, ce, used, stats ->
        Ok
          {
            o_results = results;
            o_translated = ce.translated;
            o_engine = used;
            o_counts =
              (match stats with
              | Some s -> Splan.Exec.Stats.totals s
              | None -> []);
          }
      | exception Rewrite.Unsupported msg -> Error (Error.Unsupported msg)
      | exception Sxpath.Eval.Unbound_variable name ->
        Error (Error.Unbound_variable name))

  let answer sess ~group ?engine ?env ?index ?height q doc =
    Result.map
      (fun o -> o.o_results)
      (answer_outcome sess ~group ?engine ?env ?index ?height q doc)

  let answer_exn sess ~group ?engine ?env ?index ?height q doc =
    match answer sess ~group ?engine ?env ?index ?height q doc with
    | Ok results -> results
    | Error e -> raise (Error.E e)

  (* EXPLAIN: run the request once, preferring the plan engine with
     per-operator counters; report why when the interpreter had to
     answer instead.  Uses the same caches as [answer], so explaining
     a query warms it.  The audit hook does not fire — an explanation
     is operator introspection, not a data answer (results are
     counted, not returned). *)
  let explain sess ~group ?env ?index ?height q doc =
    sync sess;
    match sgroup sess group with
    | exception Not_found ->
      Error (Error.Unknown_group { group; known = sess.svc.Service.s_order })
    | sg -> (
      let admission = classify_sg sg q in
      let doc_version =
        Catalog.version (Catalog.intern sess.svc.Service.s_catalog doc)
      in
      let generation = Service.generation sess.svc in
      match
        let height = request_height sess sg ?height doc in
        let ce = translate_entry sess sg ~group ?height ~doc q in
        match exec_index sess ?index doc with
        | None ->
          let results = interp ?env ?index ce.translated doc in
          ( ce.translated, height, None,
            Some "context is not an indexed document root",
            List.length results )
        | Some idx -> (
          match plan_of sess sg ~group ce with
          | Error reason ->
            let results = interp ?env ~index:idx ce.translated doc in
            (ce.translated, height, None, Some reason, List.length results)
          | Ok compiled ->
            let stats = Splan.Exec.Stats.for_plan compiled in
            let results =
              Splan.Exec.run ~stats compiled ~index:idx ?env doc
            in
            ( ce.translated, height, Some (compiled, stats), None,
              List.length results ))
      with
      | translated, height, plan, fallback, results ->
        Ok
          {
            x_admission = admission;
            x_translated = translated;
            x_height = height;
            x_plan = plan;
            x_fallback = fallback;
            x_results = results;
            x_doc_version = doc_version;
            x_generation = generation;
          }
      | exception Rewrite.Unsupported msg -> Error (Error.Unsupported msg)
      | exception Sxpath.Eval.Unbound_variable name ->
        Error (Error.Unbound_variable name))

  let stats_of sess ~group =
    sync sess;
    read_counters (sgroup sess group).ctr

  let all_stats sess =
    sync sess;
    List.map
      (fun name -> (name, read_counters (sgroup sess name).ctr))
      sess.svc.Service.s_order

end

(* ---- deprecated single-handle facade --------------------------------- *)

(* One PR of compatibility: the old mutex-everywhere [Pipeline.t] is
   now a Session behind one lock.  Correct from any number of threads,
   but the whole request — evaluation included — serializes; new code
   should hold a [Service.t] and give each domain its own
   [Session.t]. *)
type t = {
  lk : Mutex.t;
  sess : Session.t;
}

type cache_stats = {
  hits : int;
  misses : int;
  plan_hits : int;
  plan_misses : int;
  plan_compiles : int;
  plan_fallbacks : int;
}

type admission_stats = {
  denied : int;
  trivial : int;
  eval : int;
}

let wrap svc = { lk = Mutex.create (); sess = Session.create svc }

let create ?strict ?catalog dtd ~groups =
  wrap (Service.create ?strict ?catalog dtd ~groups)

let create_with_views ?strict ?catalog dtd ~groups =
  wrap (Service.create_with_views ?strict ?catalog dtd ~groups)

let locked t f = Mutex.protect t.lk f
let service t = locked t (fun () -> Session.service t.sess)
let dtd t = Service.dtd (service t)
let catalog t = Service.catalog (service t)
let groups t = Service.groups (service t)
let view t ~group = Service.view (service t) ~group
let view_dtd t ~group = Service.view_dtd (service t) ~group
let spec t ~group = Service.spec (service t) ~group
let generation t = Service.generation (service t)
let invalidate_version t version =
  Service.invalidate_version (service t) version

let translate t ~group ?height q =
  locked t (fun () -> Session.translate t.sess ~group ?height q)

let classify t ~group q = locked t (fun () -> Session.classify t.sess ~group q)

let answer t ~group ?engine ?env ?index ?height q doc =
  locked t (fun () ->
      Session.answer t.sess ~group ?engine ?env ?index ?height q doc)

let answer_exn t ~group ?engine ?env ?index ?height q doc =
  locked t (fun () ->
      Session.answer_exn t.sess ~group ?engine ?env ?index ?height q doc)

let answer_outcome t ~group ?engine ?counts ?env ?index ?height q doc =
  locked t (fun () ->
      Session.answer_outcome t.sess ~group ?engine ?counts ?env ?index
        ?height q doc)

let explain t ~group ?env ?index ?height q doc =
  locked t (fun () ->
      Session.explain t.sess ~group ?env ?index ?height q doc)

let session_stats t ~group =
  locked t (fun () -> Session.stats_of t.sess ~group)

let to_cache_stats (s : stats) : cache_stats =
  {
    hits = s.hits;
    misses = s.misses;
    plan_hits = s.plan_hits;
    plan_misses = s.plan_misses;
    plan_compiles = s.plan_compiles;
    plan_fallbacks = s.plan_fallbacks;
  }

let cache_stats t ~group = to_cache_stats (session_stats t ~group)

let admission_stats t ~group : admission_stats =
  let s = session_stats t ~group in
  { denied = s.denied; trivial = s.trivial; eval = s.eval }

let stats t =
  locked t (fun () ->
      List.map
        (fun (g, s) -> (g, to_cache_stats s))
        (Session.all_stats t.sess))

