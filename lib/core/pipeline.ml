type group = {
  name : string;
  view : View.t;
}

type group_state = {
  info : group;
  recursive : bool;
  cache : (Sxpath.Ast.path * int option, Sxpath.Ast.path) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  dtd : Sdtd.Dtd.t;
  states : (string, group_state) Hashtbl.t;
  order : string list;
  mutable height_memo : (Sxml.Tree.t * int) option;
}

let strict_gate :
    (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) option ref =
  ref None

let set_strict_gate f = strict_gate := Some f

(* [pairs]: (group, view, policy if we have one). *)
let run_strict_gate dtd pairs =
  match !strict_gate with
  | None ->
    invalid_arg
      "Pipeline: ?strict requires the static-analysis gate; link the \
       analysis sublibrary (Sanalysis.Lint) or drop ~strict:true"
  | Some gate ->
    let errors =
      List.concat_map
        (fun (name, view, spec) ->
          List.map
            (fun e -> Printf.sprintf "group %S: %s" name e)
            (gate ~dtd ?spec view))
        pairs
    in
    if errors <> [] then
      invalid_arg
        ("Pipeline: strict validation failed:\n" ^ String.concat "\n" errors)

let of_views dtd pairs =
  let states = Hashtbl.create 8 in
  List.iter
    (fun (name, view) ->
      if Hashtbl.mem states name then
        invalid_arg (Printf.sprintf "Pipeline: duplicate group %S" name);
      Hashtbl.replace states name
        {
          info = { name; view };
          recursive = Sdtd.Dtd.is_recursive (View.dtd view);
          cache = Hashtbl.create 32;
          hits = 0;
          misses = 0;
        })
    pairs;
  { dtd; states; order = List.map fst pairs; height_memo = None }

let create ?(strict = false) dtd ~groups =
  List.iter
    (fun (_, spec) ->
      if Sdtd.Dtd.stamp (Spec.dtd spec) <> Sdtd.Dtd.stamp dtd then
        invalid_arg "Pipeline.create: specification over a different DTD")
    groups;
  let derived =
    List.map (fun (name, spec) -> (name, Derive.derive spec, spec)) groups
  in
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived);
  of_views dtd (List.map (fun (name, view, _) -> (name, view)) derived)

let create_with_views ?(strict = false) dtd ~groups =
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view) -> (name, view, None)) groups);
  of_views dtd groups

let dtd t = t.dtd

let groups t =
  List.map (fun name -> (Hashtbl.find t.states name).info) t.order

let state t name =
  match Hashtbl.find_opt t.states name with
  | Some st -> st
  | None -> raise Not_found

let view_dtd t ~group = View.dtd (state t group).info.view

let translate t ~group ?height q =
  let st = state t group in
  let key = (q, height) in
  match Hashtbl.find_opt st.cache key with
  | Some p ->
    st.hits <- st.hits + 1;
    if Trace.enabled () then Trace.count ("pipeline.cache.hit." ^ group) 1;
    p
  | None ->
    st.misses <- st.misses + 1;
    if Trace.enabled () then Trace.count ("pipeline.cache.miss." ^ group) 1;
    let optimized =
      Trace.span "translate" @@ fun () ->
      let rewritten =
        match (st.recursive, height) with
        | true, Some h -> Rewrite.rewrite_with_height st.info.view ~height:h q
        | true, None ->
          raise
            (Rewrite.Unsupported
               "recursive view: Pipeline.translate needs ~height")
        | false, _ -> Rewrite.rewrite st.info.view q
      in
      Optimize.optimize t.dtd rewritten
    in
    Hashtbl.replace st.cache key optimized;
    optimized

let element_height doc =
  let rec go (n : Sxml.Tree.t) =
    match Sxml.Tree.element_children n with
    | [] -> 1
    | cs -> 1 + List.fold_left (fun acc c -> max acc (go c)) 0 cs
  in
  go doc

(* One-slot memo keyed by physical document identity: a server answers
   bursts of queries over the same loaded document, and the height is
   a full-tree walk — the dominant per-request cost for recursive
   views once the translation cache is warm. *)
let doc_height t doc =
  match t.height_memo with
  | Some (d, h) when d == doc ->
    if Trace.enabled () then Trace.count "pipeline.height.memo_hit" 1;
    h
  | _ ->
    let h = Trace.span "height" (fun () -> element_height doc) in
    if Trace.enabled () then Trace.count "pipeline.height.computed" 1;
    t.height_memo <- Some (doc, h);
    h

let request_height t st ?height doc =
  if not st.recursive then None
  else
    match height with Some _ -> height | None -> Some (doc_height t doc)

let answer_observed t st ~group ?env ?index ?height q doc =
  Trace.span "answer" @@ fun () ->
  let height = request_height t st ?height doc in
  let cache_hit = Hashtbl.mem st.cache (q, height) in
  let finish translated results error =
    Trace.audit { Trace.group; query = q; translated; cache_hit; height;
                  results; error }
  in
  match translate t ~group ?height q with
  | exception e ->
    if Trace.audit_enabled () then finish None 0 (Some (Printexc.to_string e));
    raise e
  | translated -> (
    let v0 = !Sxpath.Eval.visited in
    match Trace.span "eval" (fun () -> Sxpath.Eval.eval ?env ?index translated doc)
    with
    | exception e ->
      Trace.value "eval.visited" (!Sxpath.Eval.visited - v0);
      if Trace.audit_enabled () then
        finish (Some translated) 0 (Some (Printexc.to_string e));
      raise e
    | results ->
      Trace.value "eval.visited" (!Sxpath.Eval.visited - v0);
      if Trace.audit_enabled () then
        finish (Some translated) (List.length results) None;
      results)

let answer t ~group ?env ?index ?height q doc =
  let st = state t group in
  if Trace.enabled () || Trace.audit_enabled () then
    answer_observed t st ~group ?env ?index ?height q doc
  else
    let height = request_height t st ?height doc in
    Sxpath.Eval.eval ?env ?index (translate t ~group ?height q) doc

let cache_stats t ~group =
  let st = state t group in
  (st.hits, st.misses)

let stats t =
  List.map
    (fun name ->
      let st = Hashtbl.find t.states name in
      (name, (st.hits, st.misses)))
    t.order
