type group = {
  name : string;
  view : View.t;
}

type engine =
  | Interp
  | Plan

let engine_label = function Interp -> "interp" | Plan -> "plan"

let engine_of_string = function
  | "interp" -> Some Interp
  | "plan" -> Some Plan
  | _ -> None

(* Cached translation entry: the rewritten+optimized query plus the
   lazily compiled physical plan for it.  [plan] is guarded by the
   owning group's lock. *)
type plan_state =
  | Unplanned
  | Planned of Splan.Compile.t
  | Fallback of string  (* compile refusal reason; use the interpreter *)

type centry = {
  translated : Sxpath.Ast.path;
  mutable plan : plan_state;
}

type cache_stats = {
  hits : int;
  misses : int;
  plan_hits : int;
  plan_misses : int;
  plan_compiles : int;
  plan_fallbacks : int;
}

type admission =
  | Denied_empty of string
  | Trivial
  | Needs_eval

type admission_stats = {
  denied : int;
  trivial : int;
  eval : int;
}

type group_state = {
  info : group;
  spec : Spec.t option;  (* None: view-only construction — no writes *)
  recursive : bool;
  lock : Mutex.t;  (* guards [cache] (incl. entry plans) and counters *)
  cache : (Sxpath.Ast.path * int option, centry) Hashtbl.t;
  (* which cache keys were populated on behalf of which document
     version, so an update can evict exactly the affected document's
     translations/plans (see [invalidate_version]) *)
  byver : (int, (Sxpath.Ast.path * int option) list ref) Hashtbl.t;
  admission_cache : (Sxpath.Ast.path, admission) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_compiles : int;
  mutable plan_fallbacks : int;
  mutable adm_denied : int;
  mutable adm_trivial : int;
  mutable adm_eval : int;
}

type t = {
  dtd : Sdtd.Dtd.t;
  states : (string, group_state) Hashtbl.t;  (* read-only after create *)
  order : string list;
  catalog : Catalog.t;
  translate_lock : Mutex.t;
  generation : int Atomic.t;  (* bumped by every cache invalidation *)
}

let strict_gate :
    (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) option ref =
  ref None

let set_strict_gate f = strict_gate := Some f

(* The admission analyzer is registered by the analysis sublibrary
   (Sanalysis.Semantic) the same way the strict gate is: lib/core
   cannot depend on lib/analysis, so classification degrades to
   [Needs_eval] when that library is not linked. *)
let admission_analyzer :
    (Sdtd.Dtd.t -> Sxpath.Ast.path -> admission) option ref =
  ref None

let set_admission_analyzer f = admission_analyzer := Some f

let admission_label = function
  | Denied_empty _ -> "denied"
  | Trivial -> "trivial"
  | Needs_eval -> "eval"

(* [pairs]: (group, view, policy if we have one). *)
let run_strict_gate dtd pairs =
  match !strict_gate with
  | None ->
    invalid_arg
      "Pipeline: ?strict requires the static-analysis gate; link the \
       analysis sublibrary (Sanalysis.Lint) or drop ~strict:true"
  | Some gate ->
    let errors =
      List.concat_map
        (fun (name, view, spec) ->
          List.map
            (fun e -> Printf.sprintf "group %S: %s" name e)
            (gate ~dtd ?spec view))
        pairs
    in
    if errors <> [] then
      invalid_arg
        ("Pipeline: strict validation failed:\n" ^ String.concat "\n" errors)

let of_views ?catalog dtd pairs =
  let states = Hashtbl.create 8 in
  List.iter
    (fun (name, view, spec) ->
      if Hashtbl.mem states name then
        invalid_arg (Printf.sprintf "Pipeline: duplicate group %S" name);
      Hashtbl.replace states name
        {
          info = { name; view };
          spec;
          recursive = Sdtd.Dtd.is_recursive (View.dtd view);
          lock = Mutex.create ();
          cache = Hashtbl.create 32;
          byver = Hashtbl.create 8;
          admission_cache = Hashtbl.create 32;
          hits = 0;
          misses = 0;
          plan_hits = 0;
          plan_misses = 0;
          plan_compiles = 0;
          plan_fallbacks = 0;
          adm_denied = 0;
          adm_trivial = 0;
          adm_eval = 0;
        })
    pairs;
  let catalog =
    match catalog with Some c -> c | None -> Catalog.create ()
  in
  {
    dtd;
    states;
    order = List.map (fun (name, _, _) -> name) pairs;
    catalog;
    translate_lock = Mutex.create ();
    generation = Atomic.make 0;
  }

let create ?(strict = false) ?catalog dtd ~groups =
  List.iter
    (fun (_, spec) ->
      if Sdtd.Dtd.stamp (Spec.dtd spec) <> Sdtd.Dtd.stamp dtd then
        invalid_arg "Pipeline.create: specification over a different DTD")
    groups;
  let derived =
    List.map (fun (name, spec) -> (name, Derive.derive spec, spec)) groups
  in
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived);
  of_views ?catalog dtd
    (List.map (fun (name, view, spec) -> (name, view, Some spec)) derived)

let create_with_views ?(strict = false) ?catalog dtd ~groups =
  if strict then
    run_strict_gate dtd
      (List.map (fun (name, view) -> (name, view, None)) groups);
  of_views ?catalog dtd
    (List.map (fun (name, view) -> (name, view, None)) groups)

let dtd t = t.dtd
let catalog t = t.catalog

let groups t =
  List.map (fun name -> (Hashtbl.find t.states name).info) t.order

let state t name =
  match Hashtbl.find_opt t.states name with
  | Some st -> st
  | None -> raise Not_found

let view_dtd t ~group = View.dtd (state t group).info.view
let view t ~group = (state t group).info.view
let spec t ~group = (state t group).spec
let generation t = Atomic.get t.generation

(* Evict every translation (and its attached plan) that was populated
   on behalf of [version], in every group.  An entry another document
   still uses is re-translated on its next request — a cold miss, not
   a wrong answer (translations depend on the document only through
   the unfolding height, which is part of the cache key). *)
let invalidate_version t version =
  Hashtbl.iter
    (fun _ st ->
      Mutex.protect st.lock (fun () ->
          match Hashtbl.find_opt st.byver version with
          | None -> ()
          | Some keys ->
            List.iter (fun k -> Hashtbl.remove st.cache k) !keys;
            Hashtbl.remove st.byver version))
    t.states;
  Atomic.incr t.generation;
  if Trace.enabled () then Trace.count "pipeline.cache.invalidated" 1

(* Translation under contention: the per-group lock only covers cache
   lookups and counters, so warm requests from many threads never
   serialize on translation work.  A miss computes outside that lock
   but inside the pipeline-wide [translate_lock]: rewrite/optimize
   lean on Optimize's schema-analysis machinery (Image), whose memo
   tables and node budget are process-global and not thread-safe, so
   cold translations are serialized — they are schema-sized (µs–ms)
   while evaluation, which runs fully concurrently, is data-sized.
   Exactly one of hits/misses is bumped per call, so per-group
   hits + misses always equals calls issued. *)
let translate_entry t st ~group ?height ?doc q =
  let key = (q, height) in
  (* A fresh entry is attributed to the document version it was
     translated for, so [invalidate_version] can evict it when an
     update replaces that snapshot.  The attribution interns only on
     the cold path — warm lookups stay lock-per-group. *)
  let record_version () =
    match doc with
    | None -> ()
    | Some d ->
      let v = Catalog.version (Catalog.intern t.catalog d) in
      Mutex.protect st.lock (fun () ->
          let keys =
            match Hashtbl.find_opt st.byver v with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.replace st.byver v r;
              r
          in
          if not (List.mem key !keys) then keys := key :: !keys)
  in
  let cached =
    Mutex.protect st.lock (fun () ->
        match Hashtbl.find_opt st.cache key with
        | Some ce ->
          st.hits <- st.hits + 1;
          Some ce
        | None ->
          st.misses <- st.misses + 1;
          None)
  in
  match cached with
  | Some ce ->
    if Trace.enabled () then Trace.count ("pipeline.cache.hit." ^ group) 1;
    ce
  | None ->
    if Trace.enabled () then Trace.count ("pipeline.cache.miss." ^ group) 1;
    Mutex.protect t.translate_lock (fun () ->
        (* another thread may have translated this key while we waited *)
        match Mutex.protect st.lock (fun () -> Hashtbl.find_opt st.cache key)
        with
        | Some ce -> ce
        | None ->
          let optimized =
            Trace.span "translate" @@ fun () ->
            let rewritten =
              match (st.recursive, height) with
              | true, Some h ->
                Rewrite.rewrite_with_height st.info.view ~height:h q
              | true, None ->
                raise
                  (Rewrite.Unsupported
                     "recursive view: Pipeline.translate needs ~height")
              | false, _ -> Rewrite.rewrite st.info.view q
            in
            Optimize.optimize t.dtd rewritten
          in
          let ce = { translated = optimized; plan = Unplanned } in
          Mutex.protect st.lock (fun () -> Hashtbl.replace st.cache key ce);
          record_version ();
          ce)

let translate t ~group ?height q =
  (translate_entry t (state t group) ~group ?height q).translated

(* Static admission: decide the (group, query) pair from the view DTD
   alone — no document, no rewriting.  Cached per group and query
   (the verdict depends only on the view DTD, not on heights or
   documents); the analyzer itself runs under [translate_lock] because
   it leans on the same process-global Image memo tables the optimizer
   does.  Counters are bumped per call, not per distinct query, so
   they measure request traffic like the server's. *)
let classify_state t st q =
  let verdict =
    match
      Mutex.protect st.lock (fun () -> Hashtbl.find_opt st.admission_cache q)
    with
    | Some v -> v
    | None ->
      let v =
        match !admission_analyzer with
        | None -> Needs_eval
        | Some analyze ->
          Trace.span "admission" @@ fun () ->
          Mutex.protect t.translate_lock (fun () ->
              analyze (View.dtd st.info.view) q)
      in
      Mutex.protect st.lock (fun () ->
          match Hashtbl.find_opt st.admission_cache q with
          | Some v -> v
          | None ->
            Hashtbl.replace st.admission_cache q v;
            v)
  in
  Mutex.protect st.lock (fun () ->
      match verdict with
      | Denied_empty _ -> st.adm_denied <- st.adm_denied + 1
      | Trivial -> st.adm_trivial <- st.adm_trivial + 1
      | Needs_eval -> st.adm_eval <- st.adm_eval + 1);
  Trace.count ("pipeline.admission." ^ admission_label verdict) 1;
  verdict

let classify t ~group q =
  match state t group with
  | exception Not_found ->
    Error (Error.Unknown_group { group; known = t.order })
  | st -> Ok (classify_state t st q)

let admission_stats t ~group =
  let st = state t group in
  Mutex.protect st.lock (fun () ->
      { denied = st.adm_denied; trivial = st.adm_trivial; eval = st.adm_eval })

(* The physical plan for a cached translation, compiled at most once
   per entry (same hit/miss discipline as translation: exactly one of
   plan_hits/plan_misses per lookup).  Compilation is pure and
   AST-sized, so a race between two cold threads at worst compiles
   twice and counts one compile. *)
let plan_of t st ~group ce =
  let cached =
    Mutex.protect st.lock (fun () ->
        match ce.plan with
        | Unplanned ->
          st.plan_misses <- st.plan_misses + 1;
          None
        | Planned p ->
          st.plan_hits <- st.plan_hits + 1;
          Some (Ok p)
        | Fallback reason ->
          st.plan_hits <- st.plan_hits + 1;
          Some (Error reason))
  in
  match cached with
  | Some r ->
    if Trace.enabled () then Trace.count ("pipeline.plan.hit." ^ group) 1;
    r
  | None ->
    if Trace.enabled () then Trace.count ("pipeline.plan.miss." ^ group) 1;
    let compiled =
      Trace.span "plan" (fun () ->
          (* With the admission analyzer linked, statically-empty
             top-level union branches of the translated document query
             are dropped before lowering (the verdict is over the
             document DTD here — the query is past rewriting).  The
             analyzer shares Image's process-global memos, hence the
             translate lock. *)
          match
            (!admission_analyzer, Sxpath.Ast.union_branches ce.translated)
          with
          | None, _ | _, ([] | [ _ ]) ->
            (* nothing to prune on a single branch: the provably-empty
               whole-query case is [classify]'s job, before planning *)
            Splan.Compile.compile ce.translated
          | Some analyze, branches ->
            let dead =
              Mutex.protect t.translate_lock (fun () ->
                  List.filter
                    (fun b ->
                      match analyze t.dtd b with
                      | Denied_empty _ -> true
                      | Trivial | Needs_eval -> false)
                    branches)
            in
            Splan.Compile.compile ~prune:dead ce.translated)
    in
    Mutex.protect st.lock (fun () ->
        match ce.plan with
        | Planned p -> Ok p
        | Fallback reason -> Error reason
        | Unplanned -> (
          match compiled with
          | Ok p ->
            ce.plan <- Planned p;
            st.plan_compiles <- st.plan_compiles + 1;
            Ok p
          | Error reason ->
            ce.plan <- Fallback reason;
            st.plan_fallbacks <- st.plan_fallbacks + 1;
            Error reason))

let doc_height t doc =
  let entry = Catalog.intern t.catalog doc in
  match Catalog.memoized_height entry with
  | Some h ->
    if Trace.enabled () then Trace.count "pipeline.height.memo_hit" 1;
    h
  | None ->
    let h = Trace.span "height" (fun () -> Catalog.height t.catalog entry) in
    if Trace.enabled () then Trace.count "pipeline.height.computed" 1;
    h

let request_height t st ?height doc =
  if not st.recursive then None
  else
    match height with Some _ -> height | None -> Some (doc_height t doc)

let cached_mem st key = Mutex.protect st.lock (fun () -> Hashtbl.mem st.cache key)

(* The index the plan engine executes over: the caller's if given,
   else the catalog's memoized one.  A context that is not a document
   root cannot be indexed — the engine falls back to the interpreter
   (only reachable through direct library use; the CLI and server
   always answer at document roots). *)
let exec_index t ?index (doc : Sxml.Tree.t) =
  match index with
  | Some _ -> index
  | None ->
    if doc.Sxml.Tree.id = 0 then
      Some (Catalog.index (Catalog.intern t.catalog doc))
    else None

let interp ?env ?index translated doc =
  Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ?index ~root:doc ()) translated

(* Pick the engine that will actually run: (engine used, per-operator
   stats when the plan engine runs and the caller asked, thunk).
   [want_stats] keeps the hot path allocation-free — counters are only
   sized and threaded through when an outcome consumer asked. *)
let run_engine t st ~group ~engine ~want_stats ?env ?index ce doc =
  match engine with
  | Interp -> (Interp, None, fun () -> interp ?env ?index ce.translated doc)
  | Plan -> (
    match exec_index t ?index doc with
    | None -> (Interp, None, fun () -> interp ?env ?index ce.translated doc)
    | Some idx -> (
      match plan_of t st ~group ce with
      | Ok compiled ->
        let stats =
          if want_stats then Some (Splan.Exec.Stats.for_plan compiled)
          else None
        in
        (Plan, stats,
         fun () -> Splan.Exec.run ?stats compiled ~index:idx ?env doc)
      | Error _ ->
        (Interp, None, fun () -> interp ?env ~index:idx ce.translated doc)))

let answer_observed t st ~group ~engine ~want_stats ?env ?index ?height q doc =
  Trace.span "answer" @@ fun () ->
  let height = request_height t st ?height doc in
  let cache_hit = cached_mem st (q, height) in
  let finish translated results error =
    Trace.audit { Trace.group; query = q; translated; cache_hit; height;
                  results; error }
  in
  match translate_entry t st ~group ?height ~doc q with
  | exception e ->
    if Trace.audit_enabled () then finish None 0 (Some (Printexc.to_string e));
    raise e
  | ce -> (
    let v0 = !Sxpath.Eval.visited + !Splan.Exec.visited in
    let used, stats, thunk =
      run_engine t st ~group ~engine ~want_stats ?env ?index ce doc
    in
    match Trace.span "eval" thunk with
    | exception e ->
      Trace.value "eval.visited"
        (!Sxpath.Eval.visited + !Splan.Exec.visited - v0);
      if Trace.audit_enabled () then
        finish (Some ce.translated) 0 (Some (Printexc.to_string e));
      raise e
    | results ->
      Trace.value "eval.visited"
        (!Sxpath.Eval.visited + !Splan.Exec.visited - v0);
      if Trace.audit_enabled () then
        finish (Some ce.translated) (List.length results) None;
      (results, ce, used, stats))

type outcome = {
  o_results : Sxml.Tree.t list;
  o_translated : Sxpath.Ast.path;
  o_engine : engine;
  o_counts : (string * int) list;
}

let answer_outcome t ~group ?(engine = Plan) ?(counts = false) ?env ?index
    ?height q doc =
  match state t group with
  | exception Not_found ->
    Error (Error.Unknown_group { group; known = t.order })
  | st -> (
    match
      if Trace.enabled () || Trace.audit_enabled () then
        answer_observed t st ~group ~engine ~want_stats:counts ?env ?index
          ?height q doc
      else
        let height = request_height t st ?height doc in
        let ce = translate_entry t st ~group ?height ~doc q in
        let used, stats, thunk =
          run_engine t st ~group ~engine ~want_stats:counts ?env ?index ce doc
        in
        (thunk (), ce, used, stats)
    with
    | results, ce, used, stats ->
      Ok
        {
          o_results = results;
          o_translated = ce.translated;
          o_engine = used;
          o_counts =
            (match stats with
            | Some s -> Splan.Exec.Stats.totals s
            | None -> []);
        }
    | exception Rewrite.Unsupported msg -> Error (Error.Unsupported msg)
    | exception Sxpath.Eval.Unbound_variable name ->
      Error (Error.Unbound_variable name))

let answer t ~group ?engine ?env ?index ?height q doc =
  Result.map
    (fun o -> o.o_results)
    (answer_outcome t ~group ?engine ?env ?index ?height q doc)

type explanation = {
  x_admission : admission;
  x_translated : Sxpath.Ast.path;
  x_height : int option;
  x_plan : (Splan.Compile.t * Splan.Exec.Stats.t) option;
  x_fallback : string option;
  x_results : int;
  x_doc_version : int;
  x_generation : int;
}

(* EXPLAIN: run the request once, preferring the plan engine with
   per-operator counters; report why when the interpreter had to
   answer instead.  Uses the same caches as [answer], so explaining a
   query warms it.  The audit hook does not fire — an explanation is
   operator introspection, not a data answer (results are counted,
   not returned). *)
let explain t ~group ?env ?index ?height q doc =
  match state t group with
  | exception Not_found ->
    Error (Error.Unknown_group { group; known = t.order })
  | st -> (
    let admission = classify_state t st q in
    let doc_version = Catalog.version (Catalog.intern t.catalog doc) in
    let generation = Atomic.get t.generation in
    match
      let height = request_height t st ?height doc in
      let ce = translate_entry t st ~group ?height ~doc q in
      match exec_index t ?index doc with
      | None ->
        let results = interp ?env ?index ce.translated doc in
        ( ce.translated, height, None,
          Some "context is not an indexed document root",
          List.length results )
      | Some idx -> (
        match plan_of t st ~group ce with
        | Error reason ->
          let results = interp ?env ~index:idx ce.translated doc in
          (ce.translated, height, None, Some reason, List.length results)
        | Ok compiled ->
          let stats = Splan.Exec.Stats.for_plan compiled in
          let results = Splan.Exec.run ~stats compiled ~index:idx ?env doc in
          ( ce.translated, height, Some (compiled, stats), None,
            List.length results ))
    with
    | translated, height, plan, fallback, results ->
      Ok
        {
          x_admission = admission;
          x_translated = translated;
          x_height = height;
          x_plan = plan;
          x_fallback = fallback;
          x_results = results;
          x_doc_version = doc_version;
          x_generation = generation;
        }
    | exception Rewrite.Unsupported msg -> Error (Error.Unsupported msg)
    | exception Sxpath.Eval.Unbound_variable name ->
      Error (Error.Unbound_variable name))

let answer_exn t ~group ?engine ?env ?index ?height q doc =
  match answer t ~group ?engine ?env ?index ?height q doc with
  | Ok results -> results
  | Error e -> raise (Error.E e)

let cache_stats t ~group =
  let st = state t group in
  Mutex.protect st.lock (fun () ->
      {
        hits = st.hits;
        misses = st.misses;
        plan_hits = st.plan_hits;
        plan_misses = st.plan_misses;
        plan_compiles = st.plan_compiles;
        plan_fallbacks = st.plan_fallbacks;
      })

let stats t = List.map (fun name -> (name, cache_stats t ~group:name)) t.order
