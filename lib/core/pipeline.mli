(** The full Fig. 3 loop behind one handle.

    A pipeline binds a document DTD and one access policy per user
    group: construction derives (or loads) each group's security view
    once; query evaluation then rewrites, optimizes, {e compiles} and
    caches the translated queries, so repeated queries pay translation
    and plan compilation once.

    This is the module a server embeds: [create] at configuration
    time, [answer] per request — concurrently from as many threads as
    the server runs.  The per-group caches (translation + physical
    plan) and their counters share one mutex per group (exactly one of
    hit/miss is counted per lookup, so per-group [hits + misses]
    equals calls issued); cold translations additionally serialize on
    one pipeline-wide lock because the optimizer's schema-analysis
    memo tables ({!Image}) are process-global.  Evaluation — the
    data-sized cost — runs without any pipeline lock. *)

type t

type group = {
  name : string;
  view : View.t;
}

(** How {!answer} executes the translated query:
    - [Plan] (the default) compiles it to a physical plan
      ([Splan]) run over the document's tag/extent index; the plan is
      cached next to the translation.  Queries the compiler refuses
      (descendant steps with no single-label head — see lint SV301)
      fall back to the interpreter transparently.
    - [Interp] is the set-at-a-time interpreter
      ({!Sxpath.Eval.run}); answers are byte-identical. *)
type engine =
  | Interp
  | Plan

val engine_label : engine -> string
(** ["plan"] / ["interp"] — the canonical wire spelling (protocol
    replies, capture records, flight-recorder entries, CLI flags). *)

val engine_of_string : string -> engine option
(** Inverse of {!engine_label}. *)

(** Per-group cache counters, one lookup = one hit or miss in each
    cache the request consulted.  [plan_compiles + plan_fallbacks]
    equals the number of distinct translated queries the plan engine
    saw; fallbacks stay fallbacks (the reason is cached too). *)
type cache_stats = {
  hits : int;  (** translation cache hits *)
  misses : int;  (** translation cache misses *)
  plan_hits : int;  (** plan cache hits (incl. cached fallbacks) *)
  plan_misses : int;  (** plan cache misses *)
  plan_compiles : int;  (** successful plan compilations *)
  plan_fallbacks : int;  (** compile refusals → interpreter *)
}

val create :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * Spec.t) list ->
  t
(** Derive a security view per group.  With [~strict:true] every
    group's policy and derived view must pass the registered
    static-analysis gate (see {!set_strict_gate}) before the pipeline
    is handed out — configuration errors surface here instead of at
    query time.  [catalog] is the document catalog [answer] memoizes
    per-document heights and indexes in; pass the server's catalog so
    documents registered there share their memo with the pipeline
    (default: a fresh private catalog).
    @raise Invalid_argument on duplicate group names, a specification
    over a different DTD instance, or (strict mode) lint errors. *)

val create_with_views :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * View.t) list ->
  t
(** Use stored view definitions instead of deriving.  [~strict:true]
    validates each stored view against the document DTD through the
    gate — the defense against view definitions that drifted from the
    DTD they were derived for. *)

val set_strict_gate :
  (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) -> unit
(** Install the validation gate strict construction runs per group:
    given the document DTD, the group's view and (for {!create}) its
    policy, return the rendered errors — an empty list means the group
    is clean.  The analysis sublibrary ([Sanalysis.Lint]) registers
    its diagnostics engine here when linked; [?strict] without a
    registered gate raises [Invalid_argument]. *)

val dtd : t -> Sdtd.Dtd.t

val catalog : t -> Catalog.t
(** The catalog [answer] resolves documents against. *)

val groups : t -> group list
val view_dtd : t -> group:string -> Sdtd.Dtd.t
(** What to publish to that user group.  @raise Not_found. *)

val view : t -> group:string -> View.t
(** The group's security view.  @raise Not_found. *)

val spec : t -> group:string -> Spec.t option
(** The access specification the group's view was derived from —
    [None] when the pipeline was built with {!create_with_views}
    (stored views carry no policy, so such a group can never hold a
    write grant: all updates are rejected).  @raise Not_found. *)

val generation : t -> int
(** The plan/translation-cache generation: starts at 0 and is bumped
    by every {!invalidate_version} call, so two explain outputs with
    the same generation are guaranteed to have executed against the
    same cache contents. *)

val invalidate_version : t -> int -> unit
(** [invalidate_version t v] evicts, in every group, exactly the
    translation-cache entries (and their attached plans) that were
    populated on behalf of document version [v], and bumps
    {!generation}.  Called by the update engine after swapping a new
    snapshot into the catalog; unknown versions are a no-op (the
    generation still bumps). *)

(** Static admission verdict for a (group, query) pair, decided from
    the group's view DTD alone — no document is touched:
    - [Denied_empty]: provably empty on {e every} instance of the view
      DTD (the payload is a witness explanation naming the step or
      qualifier that kills the query) — a server can answer the empty
      node set without queueing, planning or evaluating anything;
    - [Trivial]: the query is answerable from the view DTD alone
      (e.g. it asks for the view root itself);
    - [Needs_eval]: everything else — evaluation must run.
    The verdicts are conservative in the sound direction: a
    [Denied_empty]/[Trivial] claim is a proof, [Needs_eval] claims
    nothing. *)
type admission =
  | Denied_empty of string
  | Trivial
  | Needs_eval

val set_admission_analyzer :
  (Sdtd.Dtd.t -> Sxpath.Ast.path -> admission) -> unit
(** Install the analyzer {!classify} consults (the registration
    pattern of {!set_strict_gate}: [Sanalysis.Semantic] registers
    itself when linked).  Without one, {!classify} answers
    [Needs_eval] for everything.  The analyzer is called with the
    group's view DTD under the pipeline's translation lock (it shares
    {!Image}'s process-global memo tables), and additionally with the
    {e document} DTD on translated queries when compiling plans — see
    {!Splan.Compile}'s branch pruning. *)

val admission_label : admission -> string
(** ["denied"], ["trivial"], ["eval"] — the stable spelling used in
    counter names and wire replies. *)

val classify :
  t -> group:string -> Sxpath.Ast.path -> (admission, Error.t) result
(** Classify a view query for a group.  Verdicts are cached per group
    and query (they depend only on the view DTD); every call bumps the
    group's admission counters and the
    [pipeline.admission.{denied,trivial,eval}] trace counters, and a
    cold classification runs inside a ["admission"] trace span.
    [Error Unknown_group] for an unknown group. *)

(** Per-group admission verdict counters, one bump per {!classify}
    call (cached verdicts count too — the counters measure request
    traffic, not distinct queries). *)
type admission_stats = {
  denied : int;
  trivial : int;
  eval : int;
}

val admission_stats : t -> group:string -> admission_stats
(** The group's admission counters.  @raise Not_found. *)

val translate :
  t -> group:string -> ?height:int -> Sxpath.Ast.path -> Sxpath.Ast.path
(** Rewritten and optimized document query for a view query (cached
    per group and query).  [height] is required when the group's view
    DTD is recursive — pass the document's element-nesting height; the
    cache keys include it.
    @raise Not_found for an unknown group;
    @raise Rewrite.Unsupported for recursive views without [height]. *)

val answer :
  t ->
  group:string ->
  ?engine:engine ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (Sxml.Tree.t list, Error.t) result
(** Translate (through the cache) and evaluate at the document's root
    element with the chosen [engine] (default {!Plan}).  When the
    group's view is recursive the unfolding height is taken from
    [height] if supplied, otherwise resolved through the pipeline's
    document {!Catalog}: the tree is interned by physical identity and
    its height and index computed once per catalog entry — queries
    alternating over any number of loaded documents never recompute
    either.  With an observability probe installed (see {!Trace}),
    the call is wrapped in spans and, when an audit hook is installed,
    emits one {!Trace.audit_event}.

    Failures come back as {!Error.t} values instead of mixed
    exceptions: [Unknown_group], [Unsupported] (recursive view without
    a resolvable height, out-of-fragment rewrite) and
    [Unbound_variable].  Exceptions that indicate caller bugs
    (e.g. an index over the wrong document) still raise. *)

val answer_exn :
  t ->
  group:string ->
  ?engine:engine ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** [answer], raising {!Error.E} instead of returning [Error]. *)

(** What {!answer_outcome} adds over the bare result list: the
    document query that ran, the engine that actually executed it
    ([o_engine = Interp] for a plan-engine request means a fallback),
    and — with [~counts:true] and the plan engine — the operator work
    totals ({!Splan.Exec.Stats.totals}: [scanned]/[probes]/[joined]/
    [rows]; [[]] otherwise).  Slow-query records are built from
    this. *)
type outcome = {
  o_results : Sxml.Tree.t list;
  o_translated : Sxpath.Ast.path;
  o_engine : engine;
  o_counts : (string * int) list;
}

val answer_outcome :
  t ->
  group:string ->
  ?engine:engine ->
  ?counts:bool ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (outcome, Error.t) result
(** Exactly {!answer} — same caches, spans, audit event — but
    returning the request's {!outcome}.  [counts] (default [false])
    allocates and fills per-operator counters when the plan engine
    runs; the default keeps the hot path identical to {!answer}. *)

(** One EXPLAINed request: the admission verdict ({!classify}'s, from
    the same cache), the translated query, the resolved unfolding
    height (recursive views), the compiled plan with its per-operator
    counters when the plan engine answered — render with
    {!Splan.Explain.of_compiled} — or the fallback reason when the
    interpreter had to ([x_plan = None]), and the result count.  A
    [Denied_empty] query is still run (explain shows what evaluation
    would do; the count is provably 0).  [x_doc_version] and
    [x_generation] pin the provenance: which catalog snapshot of the
    document answered, and which cache generation (see {!generation})
    the translation/plan came from — a stale-plan bug is diagnosable
    from two explain outputs alone. *)
type explanation = {
  x_admission : admission;
  x_translated : Sxpath.Ast.path;
  x_height : int option;
  x_plan : (Splan.Compile.t * Splan.Exec.Stats.t) option;
  x_fallback : string option;
  x_results : int;
  x_doc_version : int;
  x_generation : int;
}

val explain :
  t ->
  group:string ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (explanation, Error.t) result
(** Run the query once, preferring the plan engine and collecting
    {!Splan.Exec.Stats} per operator.  Shares {!answer}'s translation
    and plan caches (explaining a query warms them) but does not emit
    an audit event — results are counted, not returned.  Errors as in
    {!answer}. *)

val cache_stats : t -> group:string -> cache_stats
(** The group's cache counters (one consistent snapshot). *)

val stats : t -> (string * cache_stats) list
(** {!cache_stats} for {e every} group, in construction order. *)
