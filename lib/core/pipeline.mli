(** The full Fig. 3 loop behind two handles: a shared immutable
    {!Service} and a per-domain {!Session}.

    {!Service.create} binds a document DTD and one access policy per
    user group: construction derives (or loads) each group's security
    view once.  The resulting service is {e immutable} — interned
    views, specs and the document catalog — and safe to share across
    any number of domains without synchronization (the catalog
    versions its documents internally).

    Each worker then owns a {!Session}: the translation cache, plan
    cache, admission-verdict cache and traffic counters for that
    worker alone.  The hot read path takes {e no locks} — a warm
    {!Session.answer} is two atomic loads (service identity and the
    invalidation generation) plus hash probes on caches nobody else
    touches.  Cold translations run the rewriter/optimizer inline;
    {!Image}'s schema-analysis memos are domain-local and guard
    themselves, so cold work on different domains proceeds in
    parallel.

    Writes and policy reloads publish through the service: a document
    update swaps a new snapshot into the catalog and appends to the
    service's invalidation log ({!Service.invalidate_version}); a
    policy reload builds a whole new service and {!Service.publish}es
    it on the slot sessions watch.  Sessions catch up lazily on their
    next call — targeted eviction for invalidated versions, a full
    rebuild on republish.

    The old single-handle [Pipeline.t] API remains for one PR as a
    deprecated facade (a Session behind one mutex). *)

type group = {
  name : string;
  view : View.t;
}

(** How {!Session.answer} executes the translated query:
    - [Plan] (the default) compiles it to a physical plan
      ([Splan]) run over the document's tag/extent index; the plan is
      cached next to the translation.  Queries the compiler refuses
      (descendant steps with no single-label head — see lint SV301)
      fall back to the interpreter transparently.
    - [Interp] is the set-at-a-time interpreter
      ({!Sxpath.Eval.run}); answers are byte-identical. *)
type engine =
  | Interp
  | Plan

val engine_label : engine -> string
(** ["plan"] / ["interp"] — the canonical wire spelling (protocol
    replies, capture records, flight-recorder entries, CLI flags). *)

val engine_of_string : string -> engine option
(** Inverse of {!engine_label}. *)

(** Static admission verdict for a (group, query) pair, decided from
    the group's view DTD alone — no document is touched:
    - [Denied_empty]: provably empty on {e every} instance of the view
      DTD (the payload is a witness explanation naming the step or
      qualifier that kills the query) — a server can answer the empty
      node set without queueing, planning or evaluating anything;
    - [Trivial]: the query is answerable from the view DTD alone
      (e.g. it asks for the view root itself);
    - [Needs_eval]: everything else — evaluation must run.
    The verdicts are conservative in the sound direction: a
    [Denied_empty]/[Trivial] claim is a proof, [Needs_eval] claims
    nothing. *)
type admission =
  | Denied_empty of string
  | Trivial
  | Needs_eval

val admission_label : admission -> string
(** ["denied"], ["trivial"], ["eval"] — the stable spelling used in
    counter names and wire replies. *)

(** The unified per-group counter record: translation-cache traffic,
    plan-cache traffic and admission verdicts in one shape, so the CLI
    ([query --stats]), the server's [stats] verb and [GET /metrics]
    render and merge sessions through a single code path.  Exactly one
    of [hits]/[misses] is counted per translation lookup (so
    [hits + misses] equals calls issued), likewise for the plan cache;
    [plan_compiles + plan_fallbacks] equals distinct translated
    queries the plan engine saw; [denied]/[trivial]/[eval] count
    {!Session.classify} traffic (cached verdicts count too). *)
type stats = {
  hits : int;  (** translation cache hits *)
  misses : int;  (** translation cache misses *)
  plan_hits : int;  (** plan cache hits (incl. cached fallbacks) *)
  plan_misses : int;  (** plan cache misses *)
  plan_compiles : int;  (** successful plan compilations *)
  plan_fallbacks : int;  (** compile refusals → interpreter *)
  denied : int;  (** admission: provably-empty verdicts *)
  trivial : int;  (** admission: trivially-answerable verdicts *)
  eval : int;  (** admission: needs-evaluation verdicts *)
}

val stats_zero : stats

val stats_merge : stats -> stats -> stats
(** Field-wise sum — merging per-domain sessions into fleet totals. *)

val stats_fields : stats -> (string * int) list
(** The canonical (name, value) rendering, in canonical order — the
    one authority for wire/JSON/metrics field spelling. *)

val set_strict_gate :
  (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) -> unit
(** Install the validation gate strict construction runs per group:
    given the document DTD, the group's view and (for
    {!Service.create}) its policy, return the rendered errors — an
    empty list means the group is clean.  The analysis sublibrary
    ([Sanalysis.Lint]) registers its diagnostics engine here when
    linked; [?strict] without a registered gate raises
    [Invalid_argument]. *)

val set_admission_analyzer :
  (Sdtd.Dtd.t -> Sxpath.Ast.path -> admission) -> unit
(** Install the analyzer {!Session.classify} consults (the
    registration pattern of {!set_strict_gate}: [Sanalysis.Semantic]
    registers itself when linked).  Without one, classification
    answers [Needs_eval] for everything.  The analyzer is called with
    the group's view DTD, and additionally with the {e document} DTD
    on translated queries when compiling plans — see
    {!Splan.Compile}'s branch pruning.  It must be safe to call from
    any domain (the registered analyzer is: it leans on {!Image},
    whose memos are domain-local). *)

(** What {!Session.answer_outcome} adds over the bare result list: the
    document query that ran, the engine that actually executed it
    ([o_engine = Interp] for a plan-engine request means a fallback),
    and — with [~counts:true] and the plan engine — the operator work
    totals ({!Splan.Exec.Stats.totals}: [scanned]/[probes]/[joined]/
    [rows]; [[]] otherwise).  Slow-query records are built from
    this. *)
type outcome = {
  o_results : Sxml.Tree.t list;
  o_translated : Sxpath.Ast.path;
  o_engine : engine;
  o_counts : (string * int) list;
}

(** One EXPLAINed request: the admission verdict ({!Session.classify}'s,
    from the same cache), the translated query, the resolved unfolding
    height (recursive views), the compiled plan with its per-operator
    counters when the plan engine answered — render with
    {!Splan.Explain.of_compiled} — or the fallback reason when the
    interpreter had to ([x_plan = None]), and the result count.  A
    [Denied_empty] query is still run (explain shows what evaluation
    would do; the count is provably 0).  [x_doc_version] and
    [x_generation] pin the provenance: which catalog snapshot of the
    document answered, and which invalidation generation (see
    {!Service.generation}) the translation/plan came from — a
    stale-plan bug is diagnosable from two explain outputs alone. *)
type explanation = {
  x_admission : admission;
  x_translated : Sxpath.Ast.path;
  x_height : int option;
  x_plan : (Splan.Compile.t * Splan.Exec.Stats.t) option;
  x_fallback : string option;
  x_results : int;
  x_doc_version : int;
  x_generation : int;
}

(** The shared, immutable layer: views, specs, the document catalog
    and the invalidation log.  One service is built at startup and
    handed (by value or through a {!Service.slot}) to every session on
    every domain. *)
module Service : sig
  type t

  val create :
    ?strict:bool ->
    ?catalog:Catalog.t ->
    Sdtd.Dtd.t ->
    groups:(string * Spec.t) list ->
    t
  (** Derive a security view per group.  With [~strict:true] every
      group's policy and derived view must pass the registered
      static-analysis gate (see {!set_strict_gate}) before the service
      is handed out — configuration errors surface here instead of at
      query time.  [catalog] is the document catalog sessions memoize
      per-document heights and indexes in; pass the server's catalog
      so documents registered there share their memo with the
      pipeline (default: a fresh private catalog).
      @raise Invalid_argument on duplicate group names, a
      specification over a different DTD instance, or (strict mode)
      lint errors. *)

  val create_with_views :
    ?strict:bool ->
    ?catalog:Catalog.t ->
    Sdtd.Dtd.t ->
    groups:(string * View.t) list ->
    t
  (** Use stored view definitions instead of deriving.  [~strict:true]
      validates each stored view against the document DTD through the
      gate — the defense against view definitions that drifted from
      the DTD they were derived for. *)

  val dtd : t -> Sdtd.Dtd.t

  val catalog : t -> Catalog.t
  (** The catalog sessions resolve documents against. *)

  val groups : t -> group list
  val order : t -> string list
  (** Group names in construction order. *)

  val view : t -> group:string -> View.t
  (** The group's security view.  @raise Not_found. *)

  val view_dtd : t -> group:string -> Sdtd.Dtd.t
  (** What to publish to that user group.  @raise Not_found. *)

  val spec : t -> group:string -> Spec.t option
  (** The access specification the group's view was derived from —
      [None] when the service was built with {!create_with_views}
      (stored views carry no policy, so such a group can never hold a
      write grant: all updates are rejected).  @raise Not_found. *)

  val generation : t -> int
  (** The invalidation generation: starts at 0 and is bumped by every
      {!invalidate_version} call, so two explain outputs with the same
      generation are guaranteed to have executed against the same
      logical cache contents. *)

  val invalidate_version : t -> int -> unit
  (** [invalidate_version t v] appends version [v] to the service's
      invalidation log (lock-free) and bumps {!generation}.  Every
      session evicts exactly the translation-cache entries (and their
      attached plans) populated on behalf of [v], lazily, on its next
      call.  Called by the update engine after swapping a new snapshot
      into the catalog; unknown versions cost each session nothing
      beyond the generation check. *)

  type slot = t Atomic.t
  (** Where sessions watch for republished services (policy reload):
      plain [Atomic.t], owned by whoever coordinates reloads. *)

  val slot : t -> slot
  val current : slot -> t

  val publish : slot -> t -> unit
  (** Atomically replace the service.  Sessions built on this slot
      ({!Session.of_slot}) rebuild their caches on their next call;
      in-flight requests finish against the service they started
      with.  Counters survive the swap. *)
end

(** The per-domain layer: caches and counters with a single owner.

    A session is {b not} thread-safe — it is the one-owner fast path.
    Give each domain (or each thread that wants isolation) its own via
    {!Session.create}/{!Session.of_slot}; sessions sharing a
    {!Service} share documents, versions and invalidation, not cache
    memory.  The only cross-domain traffic a session supports is
    {e reading} its counters ({!Session.stats}/{!Session.all_stats}
    are safe to call from another domain while the owner works — the
    counters are atomics). *)
module Session : sig
  type t

  val create : Service.t -> t
  (** A session pinned to one service value (its own private slot). *)

  val of_slot : Service.slot -> t
  (** A session that follows {!Service.publish}es on [slot]. *)

  val service : t -> Service.t
  (** The service this session currently answers for (syncs first). *)

  val translate :
    t -> group:string -> ?height:int -> Sxpath.Ast.path -> Sxpath.Ast.path
  (** Rewritten and optimized document query for a view query (cached
      per group and query).  [height] is required when the group's
      view DTD is recursive — pass the document's element-nesting
      height; the cache keys include it.
      @raise Not_found for an unknown group;
      @raise Rewrite.Unsupported for recursive views without
      [height]. *)

  val classify :
    t -> group:string -> Sxpath.Ast.path -> (admission, Error.t) result
  (** Classify a view query for a group.  Verdicts are cached per
      group and query (they depend only on the view DTD); every call
      bumps the group's admission counters and the
      [pipeline.admission.{denied,trivial,eval}] trace counters, and a
      cold classification runs inside an ["admission"] trace span.
      [Error Unknown_group] for an unknown group. *)

  val answer :
    t ->
    group:string ->
    ?engine:engine ->
    ?env:(string -> string option) ->
    ?index:Sxml.Index.t ->
    ?height:int ->
    Sxpath.Ast.path ->
    Sxml.Tree.t ->
    (Sxml.Tree.t list, Error.t) result
  (** Translate (through the cache) and evaluate at the document's
      root element with the chosen [engine] (default {!Plan}).  When
      the group's view is recursive the unfolding height is taken from
      [height] if supplied, otherwise resolved through the service's
      document {!Catalog}: the tree is interned by physical identity
      and its height and index computed once per catalog entry —
      queries alternating over any number of loaded documents never
      recompute either.  With an observability probe installed (see
      {!Trace}), the call is wrapped in spans and, when an audit hook
      is installed, emits one {!Trace.audit_event}.

      Failures come back as {!Error.t} values instead of mixed
      exceptions: [Unknown_group], [Unsupported] (recursive view
      without a resolvable height, out-of-fragment rewrite) and
      [Unbound_variable].  Exceptions that indicate caller bugs
      (e.g. an index over the wrong document) still raise. *)

  val answer_exn :
    t ->
    group:string ->
    ?engine:engine ->
    ?env:(string -> string option) ->
    ?index:Sxml.Index.t ->
    ?height:int ->
    Sxpath.Ast.path ->
    Sxml.Tree.t ->
    Sxml.Tree.t list
  (** [answer], raising {!Error.E} instead of returning [Error]. *)

  val answer_outcome :
    t ->
    group:string ->
    ?engine:engine ->
    ?counts:bool ->
    ?env:(string -> string option) ->
    ?index:Sxml.Index.t ->
    ?height:int ->
    Sxpath.Ast.path ->
    Sxml.Tree.t ->
    (outcome, Error.t) result
  (** Exactly {!answer} — same caches, spans, audit event — but
      returning the request's {!outcome}.  [counts] (default [false])
      allocates and fills per-operator counters when the plan engine
      runs; the default keeps the hot path identical to {!answer}. *)

  val explain :
    t ->
    group:string ->
    ?env:(string -> string option) ->
    ?index:Sxml.Index.t ->
    ?height:int ->
    Sxpath.Ast.path ->
    Sxml.Tree.t ->
    (explanation, Error.t) result
  (** Run the query once, preferring the plan engine and collecting
      {!Splan.Exec.Stats} per operator.  Shares {!answer}'s
      translation and plan caches (explaining a query warms them) but
      does not emit an audit event — results are counted, not
      returned.  Errors as in {!answer}. *)

  val stats_of : t -> group:string -> stats
  (** The group's counters (safe from any domain).
      @raise Not_found. *)

  val all_stats : t -> (string * stats) list
  (** {!stats_of} for {e every} group, in construction order (safe
      from any domain). *)
end

(** {2 Deprecated single-handle facade}

    The pre-domain API: one handle, safe from any number of threads,
    every call — evaluation included — serialized on one internal
    mutex.  Kept for one PR so out-of-tree callers get a warning, not
    a break.  Migration map (also in DESIGN.md §12):
    {ul
    {- [create]/[create_with_views] → {!Service.create} /
       {!Service.create_with_views}, then one {!Session.create} per
       worker;}
    {- [answer]/[answer_outcome]/[explain]/[classify]/[translate] →
       the same names under {!Session};}
    {- [cache_stats]/[admission_stats]/[stats] → {!Session.stats_of} /
       {!Session.all_stats} (one unified {!stats} record);}
    {- [invalidate_version]/[generation]/accessors → the same names
       under {!Service}.}} *)

type t
[@@deprecated "use Pipeline.Service + Pipeline.Session"]

type cache_stats = {
  hits : int;
  misses : int;
  plan_hits : int;
  plan_misses : int;
  plan_compiles : int;
  plan_fallbacks : int;
}
[@@deprecated "use Pipeline.stats (Session.stats_of / Session.all_stats)"]

type admission_stats = {
  denied : int;
  trivial : int;
  eval : int;
}
[@@deprecated "use Pipeline.stats (Session.stats_of / Session.all_stats)"]

[@@@alert "-deprecated"]
[@@@warning "-3"]

val create :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * Spec.t) list ->
  t
[@@deprecated "use Pipeline.Service.create + Pipeline.Session.create"]

val create_with_views :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * View.t) list ->
  t
[@@deprecated
  "use Pipeline.Service.create_with_views + Pipeline.Session.create"]

val service : t -> Service.t
[@@deprecated "hold the Service directly"]

val dtd : t -> Sdtd.Dtd.t [@@deprecated "use Pipeline.Service.dtd"]
val catalog : t -> Catalog.t [@@deprecated "use Pipeline.Service.catalog"]
val groups : t -> group list [@@deprecated "use Pipeline.Service.groups"]

val view : t -> group:string -> View.t
[@@deprecated "use Pipeline.Service.view"]

val view_dtd : t -> group:string -> Sdtd.Dtd.t
[@@deprecated "use Pipeline.Service.view_dtd"]

val spec : t -> group:string -> Spec.t option
[@@deprecated "use Pipeline.Service.spec"]

val generation : t -> int [@@deprecated "use Pipeline.Service.generation"]

val invalidate_version : t -> int -> unit
[@@deprecated "use Pipeline.Service.invalidate_version"]

val translate :
  t -> group:string -> ?height:int -> Sxpath.Ast.path -> Sxpath.Ast.path
[@@deprecated "use Pipeline.Session.translate"]

val classify :
  t -> group:string -> Sxpath.Ast.path -> (admission, Error.t) result
[@@deprecated "use Pipeline.Session.classify"]

val answer :
  t ->
  group:string ->
  ?engine:engine ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (Sxml.Tree.t list, Error.t) result
[@@deprecated "use Pipeline.Session.answer"]

val answer_exn :
  t ->
  group:string ->
  ?engine:engine ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
[@@deprecated "use Pipeline.Session.answer_exn"]

val answer_outcome :
  t ->
  group:string ->
  ?engine:engine ->
  ?counts:bool ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (outcome, Error.t) result
[@@deprecated "use Pipeline.Session.answer_outcome"]

val explain :
  t ->
  group:string ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  (explanation, Error.t) result
[@@deprecated "use Pipeline.Session.explain"]

val session_stats : t -> group:string -> stats
[@@deprecated "use Pipeline.Session.stats_of"]

val cache_stats : t -> group:string -> cache_stats
[@@deprecated "use Pipeline.Session.stats_of"]

val admission_stats : t -> group:string -> admission_stats
[@@deprecated "use Pipeline.Session.stats_of"]

val stats : t -> (string * cache_stats) list
[@@deprecated "use Pipeline.Session.all_stats"]
