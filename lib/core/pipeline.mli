(** The full Fig. 3 loop behind one handle.

    A pipeline binds a document DTD and one access policy per user
    group: construction derives (or loads) each group's security view
    once; query evaluation then rewrites, optimizes and caches the
    translated queries, so repeated queries pay translation once.

    This is the module a server embeds: [create] at configuration
    time, [answer] per request — concurrently from as many threads as
    the server runs.  The per-group translation cache and its
    hit/miss counters are mutex-protected (exactly one of hit/miss is
    counted per call, so per-group [hits + misses] equals calls
    issued); cold translations additionally serialize on one
    pipeline-wide lock because the optimizer's schema-analysis memo
    tables ({!Image}) are process-global.  Evaluation — the data-sized
    cost — runs without any pipeline lock. *)

type t

type group = {
  name : string;
  view : View.t;
}

val create :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * Spec.t) list ->
  t
(** Derive a security view per group.  With [~strict:true] every
    group's policy and derived view must pass the registered
    static-analysis gate (see {!set_strict_gate}) before the pipeline
    is handed out — configuration errors surface here instead of at
    query time.  [catalog] is the document catalog [answer] memoizes
    per-document heights in; pass the server's catalog so documents
    registered there share their memo with the pipeline (default: a
    fresh private catalog).
    @raise Invalid_argument on duplicate group names, a specification
    over a different DTD instance, or (strict mode) lint errors. *)

val create_with_views :
  ?strict:bool ->
  ?catalog:Catalog.t ->
  Sdtd.Dtd.t ->
  groups:(string * View.t) list ->
  t
(** Use stored view definitions instead of deriving.  [~strict:true]
    validates each stored view against the document DTD through the
    gate — the defense against view definitions that drifted from the
    DTD they were derived for. *)

val set_strict_gate :
  (dtd:Sdtd.Dtd.t -> ?spec:Spec.t -> View.t -> string list) -> unit
(** Install the validation gate strict construction runs per group:
    given the document DTD, the group's view and (for {!create}) its
    policy, return the rendered errors — an empty list means the group
    is clean.  The analysis sublibrary ([Sanalysis.Lint]) registers
    its diagnostics engine here when linked; [?strict] without a
    registered gate raises [Invalid_argument]. *)

val dtd : t -> Sdtd.Dtd.t

val catalog : t -> Catalog.t
(** The catalog [answer] resolves documents against. *)

val groups : t -> group list
val view_dtd : t -> group:string -> Sdtd.Dtd.t
(** What to publish to that user group.  @raise Not_found. *)

val translate :
  t -> group:string -> ?height:int -> Sxpath.Ast.path -> Sxpath.Ast.path
(** Rewritten and optimized document query for a view query (cached
    per group and query).  [height] is required when the group's view
    DTD is recursive — pass the document's element-nesting height; the
    cache keys include it.
    @raise Not_found for an unknown group;
    @raise Rewrite.Unsupported for recursive views without [height]. *)

val answer :
  t ->
  group:string ->
  ?env:(string -> string option) ->
  ?index:Sxml.Index.t ->
  ?height:int ->
  Sxpath.Ast.path ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** Translate (through the cache) and evaluate at the document's root
    element.  When the group's view is recursive the unfolding height
    is taken from [height] if supplied, otherwise resolved through the
    pipeline's document {!Catalog}: the tree is interned by physical
    identity and its height computed once per catalog entry — queries
    alternating over any number of loaded documents never recompute a
    height.  With an observability probe installed (see {!Trace}),
    the call is wrapped in spans and, when an audit hook is
    installed, emits one {!Trace.audit_event}. *)

val cache_stats : t -> group:string -> int * int
(** (hits, misses) of the group's translation cache. *)

val stats : t -> (string * (int * int)) list
(** Translation-cache (hits, misses) for {e every} group, in
    construction order. *)
