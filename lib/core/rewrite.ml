module A = Sxpath.Ast

type mode = [ `Precise | `Paper ]

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* View graph plumbing                                                *)

type graph = {
  view : View.t;
  dtd : Sdtd.Dtd.t;
  topo : string list;  (* reachable nodes, parents-first *)
}

let graph_of view =
  let dtd = View.dtd view in
  match Sdtd.Dtd.topological_order dtd with
  | None ->
    raise
      (Unsupported
         "recursive view DTD: unfold it first (use rewrite_with_height)")
  | Some topo -> { view; dtd; topo }

let children g a = Sdtd.Dtd.children_of g.dtd a
let sigma g a b = View.sigma_exn g.view ~parent:a ~child:b
let label_of = Sdtd.Unfold.label_of

(* ------------------------------------------------------------------ *)
(* recProc: all-paths translations for //                             *)

(* Left-factor a union of (prefix, tail) pairs: group by tail so that
   recrw(A,B) = ∪_tails (∪ prefixes)/tail, keeping shared prefixes
   factored as in the paper's symbolic-variable construction. *)
let factored_union contributions =
  let groups =
    List.fold_left
      (fun groups (prefix, tail) ->
        let rec insert = function
          | [] -> [ (tail, [ prefix ]) ]
          | (t, ps) :: rest when A.equal_path t tail ->
            (t, prefix :: ps) :: rest
          | g :: rest -> g :: insert rest
        in
        insert groups)
      [] contributions
  in
  A.union_all
    (List.map
       (fun (tail, prefixes) ->
         A.slash (A.union_all (List.rev prefixes)) tail)
       groups)

(* recrw(a, -) over the DAG below [a]: process nodes parents-first;
   each edge (p, c) contributes recrw(a,p)/σ(p,c) to c.  Results are
   returned as an association list, [a] (with ε) first, in topological
   order — the order [reach(//, a)] is consumed in. *)
let compute_recrw g a =
  let table : (string, A.path) Hashtbl.t = Hashtbl.create 16 in
  let contribs : (string, (A.path * A.path) list) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.replace table a A.Eps;
  let out = ref [] in
  List.iter
    (fun p ->
      let here =
        if String.equal p a then Some A.Eps
        else
          match Hashtbl.find_opt contribs p with
          | None -> None (* not below [a] *)
          | Some pairs -> Some (factored_union (List.rev pairs))
      in
      match here with
      | None -> ()
      | Some q ->
        Hashtbl.replace table p q;
        out := (p, q) :: !out;
        List.iter
          (fun c ->
            let prev =
              Option.value (Hashtbl.find_opt contribs c) ~default:[]
            in
            Hashtbl.replace contribs c ((q, sigma g p c) :: prev))
          (children g p))
    g.topo;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The dynamic program                                                *)
(*                                                                    *)
(* For every sub-query p' and view node A we keep the translation as  *)
(* an association list from reached view type B to the document query *)
(* leading from A-sources to B-sources ([`Precise]).  [`Paper] mode   *)
(* collapses the association list at every composition, reproducing   *)
(* the published combination rw(p1,A)/(∪_B rw(p2,B)).                 *)

type entry = (string * A.path) list

let merge_entries (entries : entry list) : entry =
  List.fold_left
    (fun acc entry ->
      List.fold_left
        (fun acc (b, q) ->
          let rec add = function
            | [] -> [ (b, q) ]
            | (b', q') :: rest when String.equal b b' ->
              (b', A.union q' q) :: rest
            | e :: rest -> e :: add rest
          in
          add acc)
        acc entry)
    [] entries

let drop_empty (entry : entry) : entry =
  List.filter (fun (_, q) -> not (A.is_empty q)) entry

type dp = {
  g : graph;
  mode : mode;
  recrw_cache : (string, (string * A.path) list) Hashtbl.t;
  table : (A.path * string, entry) Hashtbl.t;
}

let recrw_at dp a =
  match Hashtbl.find_opt dp.recrw_cache a with
  | Some r -> r
  | None ->
    let r = compute_recrw dp.g a in
    Hashtbl.replace dp.recrw_cache a r;
    r

(* Collapse an entry to the paper's coarse form: every reached type is
   associated with the same union query. *)
let collapse mode (entry : entry) : entry =
  match mode with
  | `Precise -> entry
  | `Paper -> (
    match entry with
    | [] | [ _ ] -> entry
    | entries ->
      let q = A.union_all (List.map snd entries) in
      List.map (fun (b, _) -> (b, q)) entries)

let rec rw dp (p : A.path) (a : string) : entry =
  match Hashtbl.find_opt dp.table (p, a) with
  | Some e -> e
  | None ->
    let e = drop_empty (compute dp p a) in
    Hashtbl.replace dp.table (p, a) e;
    e

and compute dp p a =
  match p with
  | A.Empty -> []
  | A.Eps -> [ (a, A.Eps) ]
  | A.Label l ->
    List.filter_map
      (fun c ->
        if String.equal (label_of c) l then Some (c, sigma dp.g a c)
        else None)
      (children dp.g a)
  | A.Wildcard -> List.map (fun c -> (c, sigma dp.g a c)) (children dp.g a)
  | A.Attribute at ->
    (* attribute steps (the paper's deferred extension): valid when the
       view DTD declares the attribute on the context type; the source
       element carries the same attribute, so the step passes through.
       Undeclared attributes are simply invisible (∅ / false). *)
    if List.mem at (Sdtd.Dtd.attributes dp.g.dtd a) then
      [ ("@" ^ at, p) ]
    else []
  | A.Slash (p1, p2) -> (
    let first = collapse dp.mode (rw dp p1 a) in
    match dp.mode with
    | `Precise ->
      merge_entries
        (List.map
           (fun (b, q1) ->
             List.map (fun (c, q2) -> (c, A.slash q1 q2)) (rw dp p2 b))
           first)
    | `Paper ->
      (* qq = ∪_{B ∈ reach(p1,A)} rw(p2, B), applied to the single
         coarse translation of p1. *)
      let continuations = List.map (fun (b, _) -> rw dp p2 b) first in
      let qq =
        A.union_all
          (List.concat_map (fun e -> List.map snd e) continuations)
      in
      let reach =
        List.sort_uniq String.compare
          (List.concat_map (fun e -> List.map fst e) continuations)
      in
      if A.is_empty qq then []
      else
        let q1 = match first with (_, q) :: _ -> q | [] -> A.Empty in
        List.map (fun c -> (c, A.slash q1 qq)) reach)
  | A.Dslash p1 ->
    let entries =
      List.map
        (fun (b, rr) ->
          List.map (fun (c, q) -> (c, A.slash rr q)) (rw dp p1 b))
        (recrw_at dp a)
    in
    collapse dp.mode (merge_entries entries)
  | A.Union (p1, p2) ->
    collapse dp.mode (merge_entries [ rw dp p1 a; rw dp p2 a ])
  | A.Qualify (p1, q) -> (
    let base = rw dp p1 a in
    match dp.mode with
    | `Precise ->
      List.filter_map
        (fun (b, qp) ->
          match rw_qual dp q b with
          | A.False -> None
          | rq -> Some (b, A.qualify qp rq))
        base
    | `Paper ->
      (* p[q] ≡ p/ε[q]: the qualifier is rewritten at each reached
         type and the ε[q'] branches are unioned. *)
      let base = collapse dp.mode base in
      let qq =
        A.union_all
          (List.map
             (fun (b, _) -> A.qualify A.Eps (rw_qual dp q b))
             base)
      in
      if A.is_empty qq then []
      else
        let q1 = match base with (_, q) :: _ -> q | [] -> A.Empty in
        List.map (fun (b, _) -> (b, A.slash q1 qq)) base)

and rw_qual dp (q : A.qual) (a : string) : A.qual =
  match q with
  | A.True | A.False -> q
  | A.Exists p -> A.exists (A.union_all (List.map snd (rw dp p a)))
  | A.Eq (p, v) -> (
    match A.union_all (List.map snd (rw dp p a)) with
    | A.Empty -> A.False
    | p' -> A.Eq (p', v))
  | A.And (q1, q2) -> A.qand (rw_qual dp q1 a) (rw_qual dp q2 a)
  | A.Or (q1, q2) -> A.qor (rw_qual dp q1 a) (rw_qual dp q2 a)
  | A.Not q1 -> A.qnot (rw_qual dp q1 a)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)

let make_dp ?(mode = `Precise) view =
  {
    g = graph_of view;
    mode;
    recrw_cache = Hashtbl.create 16;
    table = Hashtbl.create 64;
  }

let targets ?mode view p =
  let dp = make_dp ?mode view in
  List.map
    (fun (b, q) -> (b, Sxpath.Simplify.factor q))
    (rw dp p (Sdtd.Dtd.root dp.g.dtd))

let rewrite ?mode view p =
  Trace.span "rewrite" @@ fun () ->
  let dp = make_dp ?mode view in
  let entry = rw dp p (Sdtd.Dtd.root dp.g.dtd) in
  Sxpath.Simplify.factor (A.union_all (List.map snd entry))

let rewrite_with_height ?mode view ~height p =
  if Trace.enabled () then Trace.value "rewrite.unfold_height" height;
  let unfolded = Trace.span "unfold" (fun () -> View.unfolded view ~height) in
  rewrite ?mode unfolded p

let recrw view a =
  let dp = make_dp view in
  List.map (fun (b, q) -> (b, Sxpath.Simplify.factor q)) (recrw_at dp a)
