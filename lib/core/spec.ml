type annot =
  | Yes
  | Cond of Sxpath.Ast.qual
  | No

type write_op =
  | Insert
  | Delete
  | Replace

let all_write_ops = [ Insert; Delete; Replace ]

let write_op_to_string = function
  | Insert -> "insert"
  | Delete -> "delete"
  | Replace -> "replace"

let write_op_of_string = function
  | "insert" -> Some Insert
  | "delete" -> Some Delete
  | "replace" -> Some Replace
  | _ -> None

module PairMap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

type t = {
  dtd : Sdtd.Dtd.t;
  ann : annot PairMap.t;
  order : ((string * string) * annot) list;
  write : write_op list PairMap.t;
  write_order : ((string * string) * write_op list) list;
}

let make ?(write = []) dtd anns =
  let check_edge (a, b) =
    match Sdtd.Dtd.production_opt dtd a with
    | None ->
      invalid_arg (Printf.sprintf "Spec.make: unknown element type %S" a)
    | Some rg ->
      let ok =
        if String.equal b Sdtd.Regex.pcdata then Sdtd.Regex.mentions_str rg
        else if String.length b > 0 && b.[0] = '@' then
          List.mem
            (String.sub b 1 (String.length b - 1))
            (Sdtd.Dtd.attributes dtd a)
        else List.mem b (Sdtd.Regex.labels rg)
      in
      if not ok then
        invalid_arg
          (Printf.sprintf "Spec.make: (%s, %s) is not an edge of the DTD" a b)
  in
  let ann =
    List.fold_left
      (fun m ((a, b), annot) ->
        check_edge (a, b);
        if PairMap.mem (a, b) m then
          invalid_arg
            (Printf.sprintf "Spec.make: (%s, %s) annotated twice" a b);
        (match annot with
        | Cond _
          when String.equal b Sdtd.Regex.pcdata
               || (String.length b > 0 && b.[0] = '@') ->
          invalid_arg
            (Printf.sprintf
               "Spec.make: conditional annotation on %s is not enforceable \
                by query rewriting"
               b)
        | _ -> ());
        PairMap.add (a, b) annot m)
      PairMap.empty anns
  in
  let wmap =
    List.fold_left
      (fun m ((a, b), ops) ->
        check_edge (a, b);
        if PairMap.mem (a, b) m then
          invalid_arg
            (Printf.sprintf "Spec.make: write (%s, %s) granted twice" a b);
        let ops = List.sort_uniq compare ops in
        PairMap.add (a, b) ops m)
      PairMap.empty write
  in
  { dtd; ann; order = anns; write = wmap; write_order = write }

let dtd spec = spec.dtd

let annotation spec ~parent ~child = PairMap.find_opt (parent, child) spec.ann

let annotations spec = spec.order

let write_grants spec = spec.write_order

let writable spec ~parent ~child op =
  match PairMap.find_opt (parent, child) spec.write with
  | None -> false
  | Some ops -> List.mem op ops

let variables spec =
  let seen = Hashtbl.create 4 in
  let out = ref [] in
  List.iter
    (fun (_, annot) ->
      match annot with
      | Yes | No -> ()
      | Cond q ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              out := v :: !out
            end)
          (Sxpath.Ast.variables (Sxpath.Ast.Qualify (Sxpath.Ast.Eps, q))))
    spec.order;
  List.rev !out

let pp_annot ppf = function
  | Yes -> Format.pp_print_string ppf "Y"
  | No -> Format.pp_print_string ppf "N"
  | Cond q -> Format.fprintf ppf "[%a]" Sxpath.Print.pp_qual q

(* Sidecar format: 'parent child Y|N|[qual]' lines, plus write grants
   as 'write parent child OPS' (OPS a comma-list of
   insert/delete/replace, or 'all'/'none').  A line whose first
   non-blank character is '#' is a comment, as is anything after
   " # " — but the bare token "#PCDATA" is a child name, so '#' alone
   does not open a comment. *)
let parse_write_ops lineno s =
  match s with
  | "all" -> all_write_ops
  | "none" -> []
  | s ->
    List.map
      (fun tok ->
        match write_op_of_string (String.trim tok) with
        | Some op -> op
        | None ->
          failwith
            (Printf.sprintf
               "line %d: expected insert, delete, replace, all or none, \
                got %S"
               lineno tok))
      (String.split_on_char ',' s)

let of_sidecar dtd text =
  let strip_comment line =
    let line =
      match String.index_opt line '#' with
      | Some 0 -> ""
      | _ -> line
    in
    let rec cut i =
      if i + 2 >= String.length line then line
      else if line.[i] = ' ' && line.[i + 1] = '#' && line.[i + 2] = ' ' then
        String.sub line 0 i
      else cut (i + 1)
    in
    if String.trim line = "" then "" else cut 0
  in
  let parse_line lineno line =
    let line = String.trim (strip_comment line) in
    if line = "" then None
    else
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | "write" :: parent :: child :: rest ->
        let ops_text = String.concat "" rest in
        if ops_text = "" then
          failwith
            (Printf.sprintf "line %d: expected 'write parent child ops'"
               lineno)
        else Some (`Write ((parent, child), parse_write_ops lineno ops_text))
      | parent :: child :: rest -> (
        let annot_text = String.concat " " rest in
        match annot_text with
        | "Y" -> Some (`Ann ((parent, child), Yes))
        | "N" -> Some (`Ann ((parent, child), No))
        | s
          when String.length s >= 2
               && s.[0] = '['
               && s.[String.length s - 1] = ']' -> (
          match
            Sxpath.Parse.qual_of_string
              (String.sub s 1 (String.length s - 2))
          with
          | q -> Some (`Ann ((parent, child), Cond q))
          | exception Sxpath.Parse.Error e ->
            failwith
              (Printf.sprintf "line %d: bad qualifier: %s" lineno
                 (Sxpath.Parse.error_to_string e)))
        | s ->
          failwith
            (Printf.sprintf "line %d: expected Y, N or [qualifier], got %S"
               lineno s))
      | _ ->
        failwith
          (Printf.sprintf "line %d: expected 'parent child annotation'"
             lineno)
  in
  let lines = String.split_on_char '\n' text in
  let parsed =
    List.concat
      (List.mapi
         (fun i line ->
           match parse_line (i + 1) line with Some a -> [ a ] | None -> [])
         lines)
  in
  let anns =
    List.filter_map (function `Ann a -> Some a | `Write _ -> None) parsed
  in
  let write =
    List.filter_map (function `Write w -> Some w | `Ann _ -> None) parsed
  in
  make ~write dtd anns

let of_sidecar_file dtd path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_sidecar dtd text

let to_sidecar spec =
  let buf = Buffer.create 256 in
  List.iter
    (fun ((a, b), annot) ->
      let value =
        match annot with
        | Yes -> "Y"
        | No -> "N"
        | Cond q -> "[" ^ Sxpath.Print.qual_to_string q ^ "]"
      in
      Buffer.add_string buf (Printf.sprintf "%s %s %s\n" a b value))
    spec.order;
  List.iter
    (fun ((a, b), ops) ->
      let value =
        match ops with
        | [] -> "none"
        | ops ->
          if List.length ops = List.length all_write_ops then "all"
          else String.concat "," (List.map write_op_to_string ops)
      in
      Buffer.add_string buf (Printf.sprintf "write %s %s %s\n" a b value))
    spec.write_order;
  Buffer.contents buf

let pp ppf spec =
  List.iter
    (fun name ->
      let annotated_here =
        List.filter (fun ((a, _), _) -> String.equal a name) spec.order
      in
      if annotated_here <> [] then begin
        Format.fprintf ppf "%s -> %s@." name
          (Sdtd.Regex.to_string (Sdtd.Dtd.production spec.dtd name));
        List.iter
          (fun ((a, b), annot) ->
            Format.fprintf ppf "  ann(%s, %s) = %a@." a b pp_annot annot)
          annotated_here
      end)
    (Sdtd.Dtd.element_types spec.dtd)
