(** Access specifications S = (D, ann) (Section 3.2).

    [ann] is a partial map over the parent/child edges of the document
    DTD: for a production [A → α] and element type [B] in [α],
    [ann (A, B)] — when defined — is [Y], [\[q\]] (a qualifier of the
    fragment), or [N].  An undefined annotation means [B] children of
    [A] elements inherit the accessibility of their parent; an explicit
    annotation overrides it.  The root is [Y] by default and cannot be
    annotated otherwise.

    Annotations on text content use the pseudo-child {!Sdtd.Regex.pcdata}
    and are restricted to [Y]/[N] (a conditional annotation on raw
    PCDATA has no counterpart in the view-DTD machinery).

    Annotations on attributes — the extension the paper defers with
    "they can be easily incorporated" — use the pseudo-child ["@name"]
    for an attribute the element type declares; an attribute without an
    annotation inherits its owning element's accessibility.  Like
    PCDATA, attributes take [Y]/[N] only: a conditional attribute has
    no query-rewriting enforcement (the view DTD carries no per-
    attribute σ), so [Cond] on either is rejected. *)

type annot =
  | Yes
  | Cond of Sxpath.Ast.qual
      (** qualifier over the {e document} DTD, evaluated at the child *)
  | No

(** {2 Write grants}

    Updates are governed separately from read visibility: a group may
    modify [B] children of [A] elements only when the edge [(A, B)]
    carries an explicit write grant listing the operation.  The default
    is {e no write access} — a spec without grants is read-only, which
    keeps every pre-update policy file semantically unchanged. *)

type write_op =
  | Insert  (** insert new content into/before/after a target *)
  | Delete  (** delete a target subtree *)
  | Replace  (** replace a target subtree with new content *)

val all_write_ops : write_op list
val write_op_to_string : write_op -> string
val write_op_of_string : string -> write_op option

type t

val make :
  ?write:((string * string) * write_op list) list ->
  Sdtd.Dtd.t ->
  ((string * string) * annot) list ->
  t
(** [make dtd anns] validates and freezes a specification.  [?write]
    lists the write grants per DTD edge (validated like annotations;
    granting an edge twice is an error; default: none).
    @raise Invalid_argument if an annotated pair [(a, b)] is not an
    edge of the DTD graph (with [b] possibly {!Sdtd.Regex.pcdata} when
    [a]'s production mentions PCDATA), if a pair is annotated twice, if
    the root would be annotated [N]/[Cond] from every parent — the root
    has no parent, so any [(­_, root)] edge is an ordinary edge — or if
    a [Cond] is placed on PCDATA. *)

val dtd : t -> Sdtd.Dtd.t
val annotation : t -> parent:string -> child:string -> annot option
val annotations : t -> ((string * string) * annot) list
(** In the order given to {!make}. *)

val write_grants : t -> ((string * string) * write_op list) list
(** In the order given to {!make}. *)

val writable : t -> parent:string -> child:string -> write_op -> bool
(** Whether the group holds a grant for [op] on the edge
    [(parent, child)] — [false] for any edge without a grant. *)

val variables : t -> string list
(** The [$parameters] appearing in conditional annotations, each
    once. *)

val pp_annot : Format.formatter -> annot -> unit
val pp : Format.formatter -> t -> unit
(** The paper's notation: productions interleaved with
    [ann(A, B) = …] lines (only annotated pairs are shown). *)

(** {2 The sidecar exchange format}

    One annotation per line — [parent child Y], [parent child N], or
    [parent child \[qualifier\]] — with [#]-comments and blank lines;
    PCDATA annotations use the literal child name [#PCDATA].  Write
    grants are [write parent child OPS] lines, where [OPS] is a
    comma-list of [insert]/[delete]/[replace], or [all]/[none] (the
    leading keyword means no element type named [write] can start an
    annotation line; none of the bundled DTDs declare one).  This is
    what the [secview] command-line tool reads. *)

val of_sidecar : Sdtd.Dtd.t -> string -> t
(** Parse sidecar text.
    @raise Failure with a [line: message] on malformed lines;
    @raise Invalid_argument for non-edges (as {!make}). *)

val of_sidecar_file : Sdtd.Dtd.t -> string -> t

val to_sidecar : t -> string
(** Inverse of {!of_sidecar} (modulo comments/blank lines). *)
