type span_id = int

type probe = {
  enter : string -> span_id;
  leave : span_id -> unit;
  count : string -> int -> unit;
  value : string -> int -> unit;
}

let null =
  {
    enter = (fun _ -> 0);
    leave = (fun _ -> ());
    count = (fun _ _ -> ());
    value = (fun _ _ -> ());
  }

let probe = ref null

let set_probe p = probe := p
let clear_probe () = probe := null

(* Physical equality: installing a structurally-null probe still
   counts as enabled, which is what a recording probe wants. *)
let enabled () = !probe != null

let span name f =
  let p = !probe in
  if p == null then f ()
  else begin
    let id = p.enter name in
    match f () with
    | v ->
      p.leave id;
      v
    | exception e ->
      p.leave id;
      raise e
  end

let count name n =
  let p = !probe in
  if p != null then p.count name n

let value name v =
  let p = !probe in
  if p != null then p.value name v

type audit_event = {
  group : string;
  query : Sxpath.Ast.path;
  translated : Sxpath.Ast.path option;
  cache_hit : bool;
  height : int option;
  results : int;
  error : string option;
}

let audit_hook : (audit_event -> unit) option ref = ref None

let set_audit f = audit_hook := Some f
let clear_audit () = audit_hook := None
let audit_enabled () = !audit_hook <> None

let audit ev = match !audit_hook with None -> () | Some f -> f ev
