(** Observability probe points for the query pipeline.

    The core library stays free of clocks, sinks and serialization:
    this module only holds injection points (the pattern of
    {!Pipeline.set_strict_gate}) that the observability sublibrary
    ([Sobs], {e lib/obs}) fills in when the embedding application asks
    for tracing, metrics or audit logging.

    Two independent hooks:

    - a {e probe} — nested span enter/leave plus named counter and
      integer-observation events, fired by the instrumented stages
      ([derive], [rewrite], [optimize], translation-cache lookup,
      [eval]);
    - an {e audit hook} — one structured {!audit_event} per
      {!Pipeline.answer} call.

    With neither installed (the default) every operation here is a
    no-op that performs no allocation and no I/O: [span] applies its
    thunk directly, [count]/[value] return without touching their
    arguments, and the instrumented call sites guard any
    event-payload construction behind {!enabled}/{!audit_enabled}.
    This is the overhead-when-disabled guarantee
    [test/test_obs.ml] pins down with [Gc.minor_words]. *)

type span_id = int

type probe = {
  enter : string -> span_id;
      (** Start a span named after a pipeline stage; returns a token
          [leave] must be called with.  Stage names in use: ["answer"],
          ["height"], ["translate"], ["rewrite"], ["unfold"],
          ["optimize"], ["plan"], ["derive"], ["eval"]. *)
  leave : span_id -> unit;
  count : string -> int -> unit;  (** Add to a named counter. *)
  value : string -> int -> unit;
      (** Record one integer observation under a named series (e.g.
          unfolding height, evaluator nodes visited). *)
}

val null : probe
(** The default probe: every field ignores its arguments. *)

val set_probe : probe -> unit
val clear_probe : unit -> unit

val enabled : unit -> bool
(** [true] iff a probe other than {!null} is installed.  Call sites
    use it to guard argument construction that would itself allocate
    (string concatenation, deltas). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a probe span.  With the null
    probe this is exactly [f ()].  The span is closed on exceptions
    too. *)

val count : string -> int -> unit
val value : string -> int -> unit

(** {1 Audit events} *)

type audit_event = {
  group : string;
  query : Sxpath.Ast.path;  (** the view query as asked *)
  translated : Sxpath.Ast.path option;
      (** the document query actually evaluated; [None] when
          translation failed *)
  cache_hit : bool;  (** translation served from the group's cache *)
  height : int option;
      (** unfolding height used (recursive views only) *)
  results : int;  (** number of answer nodes ([0] on failure) *)
  error : string option;  (** set when the request raised *)
}

val set_audit : (audit_event -> unit) -> unit
val clear_audit : unit -> unit

val audit_enabled : unit -> bool

val audit : audit_event -> unit
(** Forward an event to the installed audit hook; no-op without
    one. *)
