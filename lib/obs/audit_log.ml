type sink =
  | Null
  | Stderr
  | Channel of out_channel
  | Buffer of Buffer.t

type t = {
  clock : Clock.t;
  tracer : Tracer.t option;
  sink : sink;
  owned : bool;  (* close the channel on [close] *)
}

let create ?(clock = Clock.monotonic) ?tracer sink =
  { clock; tracer; sink; owned = false }

let open_file ?(clock = Clock.monotonic) ?tracer path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  { clock; tracer; sink = Channel oc; owned = true }

let close t =
  match t.sink with
  | Channel oc -> if t.owned then close_out oc else flush oc
  | Null | Stderr | Buffer _ -> ()

let emit t json =
  match t.sink with
  | Null -> ()
  | Stderr ->
    output_string stderr (Json.to_string json);
    output_char stderr '\n';
    flush stderr
  | Channel oc ->
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  | Buffer buf ->
    Buffer.add_string buf (Json.to_string json);
    Buffer.add_char buf '\n'

let base t kind =
  [ ("type", Json.String kind); ("ts_ns", Json.Int (Int64.to_int (t.clock ()))) ]

let log_event t (ev : Secview.Trace.audit_event) =
  let opt f = function Some v -> f v | None -> Json.Null in
  let stages =
    match t.tracer with
    | None -> []
    | Some tr ->
      [
        ( "stages_ms",
          Json.Obj
            (List.map
               (fun (name, ms) -> (name, Json.Float ms))
               (Tracer.stage_totals (Tracer.drain_new tr))) );
      ]
  in
  emit t
    (Json.Obj
       (base t "query"
       @ [
           ("group", Json.String ev.group);
           ("query", Json.String (Sxpath.Print.to_string ev.query));
           ( "translated",
             opt (fun p -> Json.String (Sxpath.Print.to_string p))
               ev.translated );
           ("cache", Json.String (if ev.cache_hit then "hit" else "miss"));
           ("height", opt (fun h -> Json.Int h) ev.height);
           ("results", Json.Int ev.results);
           ("error", opt (fun e -> Json.String e) ev.error);
         ]
       @ stages))

let log_diagnostic t ~code ~severity ~subject message =
  emit t
    (Json.Obj
       (base t "diagnostic"
       @ [
           ("code", Json.String code);
           ("severity", Json.String severity);
           ("subject", Json.String subject);
           ("message", Json.String message);
         ]))

let rid_field = function
  | Some r -> [ ("rid", Json.String r) ]
  | None -> []

let log_request t ?rid ~session ~peer ~group ~doc ~query ~status ~results
    ~latency_ms ?error () =
  emit t
    (Json.Obj
       (base t "request" @ rid_field rid
       @ [
           ("session", Json.Int session);
           ("peer", Json.String peer);
           ("group", Json.String group);
           ("doc", Json.String doc);
           ("query", Json.String query);
           ("status", Json.String status);
           ("results", Json.Int results);
           ("latency_ms", Json.Float latency_ms);
           ( "error",
             match error with Some e -> Json.String e | None -> Json.Null );
         ]))

(* One record per update attempt.  An admitted write is kind "update"
   with the version transition; a rejected one is "update_denied" with
   the typed error code and message — distinguishable at a glance from
   a denied query (kind "request", status "denied_empty"). *)
let log_update t ?rid ?session ?peer ~group ~doc ~update ~status ?targets
    ?old_version ?new_version ~latency_ms ?error () =
  let opt f = function Some v -> f v | None -> Json.Null in
  let ctx =
    List.concat
      [
        rid_field rid;
        (match session with
        | Some s -> [ ("session", Json.Int s) ]
        | None -> []);
        (match peer with Some p -> [ ("peer", Json.String p) ] | None -> []);
      ]
  in
  let kind = if error = None then "update" else "update_denied" in
  emit t
    (Json.Obj
       (base t kind @ ctx
       @ [
           ("group", Json.String group);
           ("doc", Json.String doc);
           ("update", Json.String update);
           ("status", Json.String status);
           ("targets", opt (fun n -> Json.Int n) targets);
           ("old_version", opt (fun v -> Json.Int v) old_version);
           ("new_version", opt (fun v -> Json.Int v) new_version);
           ("latency_ms", Json.Float latency_ms);
           ("error", opt (fun e -> Json.String e) error);
         ]))

let log_slow_query t ?rid ~group ~query ?translated ~latency_ms ~threshold_ms
    ~stages ~counts ?gc_pause_ms ?gc_pauses ?session ?peer ?doc () =
  let opt f = function Some v -> f v | None -> Json.Null in
  let ctx =
    List.concat
      [
        rid_field rid;
        (match session with
        | Some s -> [ ("session", Json.Int s) ]
        | None -> []);
        (match peer with Some p -> [ ("peer", Json.String p) ] | None -> []);
        (match doc with Some d -> [ ("doc", Json.String d) ] | None -> []);
      ]
  in
  emit t
    (Json.Obj
       (base t "slow_query" @ ctx
       @ [
           ("group", Json.String group);
           ("query", Json.String query);
           ("translated", opt (fun s -> Json.String s) translated);
           ("latency_ms", Json.Float latency_ms);
           ("threshold_ms", Json.Float threshold_ms);
           ( "stages_ms",
             Json.Obj
               (List.map (fun (name, ms) -> (name, Json.Float ms)) stages) );
           ( "op_counts",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counts) );
           ("gc_pause_ms", opt (fun v -> Json.Float v) gc_pause_ms);
           ("gc_pauses", opt (fun v -> Json.Int v) gc_pauses);
         ]))

let log_note t ~kind message =
  emit t
    (Json.Obj
       (base t "note"
       @ [ ("kind", Json.String kind); ("message", Json.String message) ]))

let install t =
  (match t.tracer with
  | Some tr -> ignore (Tracer.drain_new tr)
  | None -> ());
  Secview.Trace.set_audit (fun ev -> log_event t ev)

let uninstall () = Secview.Trace.clear_audit ()
