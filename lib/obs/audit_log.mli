(** Per-request security audit log: one JSON record per line (JSONL).

    An access-control system owes its administrators an account of
    what was asked and what was answered.  Each {!Secview.Trace}
    audit event — one per {!Secview.Pipeline.answer} call — becomes a
    record carrying the requesting group, the view query as asked,
    the document query actually evaluated, the translation-cache
    outcome, the unfolding height (recursive views), the result
    count, the error if the request raised, and (when a {!Tracer} is
    attached) the stage timings attributed to that request.

    The same stream also carries static-analysis diagnostics
    ({!log_diagnostic}: [secview lint] and the strict construction
    gate route through here), so audit and lint output can be
    collected from one place.  Record schemas, discriminated by the
    ["type"] field:

    {v
    {"type":"query","ts_ns":…,"group":…,"query":…,"translated":…,
     "cache":"hit"|"miss","height":N|null,"results":N,"error":S|null,
     "stages_ms":{"eval":…, …}}          (stages_ms only with a tracer)
    {"type":"diagnostic","ts_ns":…,"code":…,"severity":…,"subject":…,
     "message":…}
    {"type":"note","ts_ns":…,"kind":…,"message":…}
    {"type":"request","ts_ns":…,["rid":S,]"session":N,"peer":…,"group":…,
     "doc":…,"query":…,"status":"ok"|"error"|"timeout"|"late"|
     "overloaded"|"denied_empty","results":N,"latency_ms":F,
     "error":S|null}
    {"type":"slow_query","ts_ns":…,["rid":S,]["session":N,"peer":…,
     "doc":…,]"group":…,"query":…,"translated":S|null,"latency_ms":F,
     "threshold_ms":F,"stages_ms":{…},"op_counts":{"scanned":N,…}}
    {"type":"update"|"update_denied","ts_ns":…,["rid":S,]["session":N,
     "peer":…,]"group":…,"doc":…,"update":…,"status":S,"targets":N|null,
     "old_version":N|null,"new_version":N|null,"latency_ms":F,
     "error":S|null}
    v}

    ["rid"] is the request-correlation id (PR 7): the same id is
    stamped into the protocol reply, the flight-recorder entry, and
    any capture record, so one request can be followed across every
    surface.

    ["request"] records are the server's ([Sserver.Server]): one per
    admitted query, stamped with the session's group and peer — the
    who-asked-what trail a multi-user deployment owes its
    administrators.  The writer serializes concurrent [log_*] calls
    itself (the server holds one observability lock); this module
    performs no locking.

    Timestamps are readings of the log's clock (monotonic by default:
    an arbitrary epoch, deterministic under {!Clock.fake}). *)

type sink =
  | Null  (** drop every record (hook installed, output discarded) *)
  | Stderr
  | Channel of out_channel
  | Buffer of Buffer.t  (** for tests *)

type t

val create : ?clock:Clock.t -> ?tracer:Tracer.t -> sink -> t
(** With [tracer], each query record carries ["stages_ms"]: the
    per-stage totals of the spans completed since the previous
    record. *)

val open_file : ?clock:Clock.t -> ?tracer:Tracer.t -> string -> t
(** Append-mode file sink; {!close} flushes and closes it. *)

val close : t -> unit
(** Flush; close the channel iff {!open_file} opened it. *)

val install : t -> unit
(** Register as the {!Secview.Trace} audit hook.  Pending tracer
    spans (e.g. from pipeline construction) are drained first so the
    first query record only carries its own stages. *)

val uninstall : unit -> unit

val log_event : t -> Secview.Trace.audit_event -> unit
val log_diagnostic :
  t -> code:string -> severity:string -> subject:string -> string -> unit
val log_note : t -> kind:string -> string -> unit

val log_request :
  t ->
  ?rid:string ->
  session:int ->
  peer:string ->
  group:string ->
  doc:string ->
  query:string ->
  status:string ->
  results:int ->
  latency_ms:float ->
  ?error:string ->
  unit ->
  unit
(** One server-side ["request"] record ([status] ∈ ok/error/timeout/
    late; [latency_ms] includes queue wait). *)

val log_update :
  t ->
  ?rid:string ->
  ?session:int ->
  ?peer:string ->
  group:string ->
  doc:string ->
  update:string ->
  status:string ->
  ?targets:int ->
  ?old_version:int ->
  ?new_version:int ->
  latency_ms:float ->
  ?error:string ->
  unit ->
  unit
(** One write-path record: kind ["update"] when [error] is absent
    (an admitted write, with its [old_version → new_version]
    transition and target count), ["update_denied"] otherwise (the
    [error] carries the typed reason) — so a denied write is
    distinguishable from a denied query. *)

val log_slow_query :
  t ->
  ?rid:string ->
  group:string ->
  query:string ->
  ?translated:string ->
  latency_ms:float ->
  threshold_ms:float ->
  stages:(string * float) list ->
  counts:(string * int) list ->
  ?gc_pause_ms:float ->
  ?gc_pauses:int ->
  ?session:int ->
  ?peer:string ->
  ?doc:string ->
  unit ->
  unit
(** One ["slow_query"] record — emitted by [query --slow-ms] and
    [serve --slow-ms] for any request over threshold.  [stages] are
    per-stage millisecond totals (see {!Tracer.stage_totals}) of the
    spans belonging to this request only; [counts] are the plan
    engine's operator totals (empty for the interpreter).
    [gc_pause_ms]/[gc_pauses] carry {!Runtime.overlap} attribution
    when a runtime consumer is installed ([null] otherwise — absent
    is distinguishable from a measured zero).  The optional
    [session]/[peer]/[doc] triple is the server's request context. *)
