let schema_version = 2

type record = {
  c_rid : string;
  c_verb : string;
  c_group : string;
  c_doc : string option;
  c_query : string;
  c_bind : (string * string) list;
  c_index : bool;
  c_engine : string;
  c_status : string;
  c_results : int;
  c_digest : string;
  c_latency_ms : float;
}

let digest results = Digest.to_hex (Digest.string (String.concat "\n" results))

let to_json r =
  Json.Obj
    [
      ("v", Json.Int schema_version);
      ("rid", Json.String r.c_rid);
      ("verb", Json.String r.c_verb);
      ("group", Json.String r.c_group);
      ( "doc",
        match r.c_doc with Some d -> Json.String d | None -> Json.Null );
      ("query", Json.String r.c_query);
      ( "bind",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.c_bind) );
      ("index", Json.Bool r.c_index);
      ("engine", Json.String r.c_engine);
      ("status", Json.String r.c_status);
      ("results", Json.Int r.c_results);
      ("digest", Json.String r.c_digest);
      ("latency_ms", Json.Float r.c_latency_ms);
    ]

let of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let req name =
    match str name with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "capture record: missing %S" name)
  in
  match Option.bind (Json.member "v" j) Json.to_int_opt with
  | None -> Error "capture record: missing \"v\""
  | Some v when v <> 1 && v <> schema_version ->
    Error (Printf.sprintf "capture record: unsupported version %d" v)
  | Some _ -> (
    match (req "rid", req "group", req "query", req "digest") with
    | Ok c_rid, Ok c_group, Ok c_query, Ok c_digest ->
      let c_bind =
        match Json.member "bind" j with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              match Json.to_string_opt v with
              | Some s -> Some (k, s)
              | None -> None)
            fields
        | _ -> []
      in
      Ok
        {
          c_rid;
          c_verb = Option.value ~default:"query" (str "verb");
          c_group;
          c_doc = str "doc";
          c_query;
          c_bind;
          c_index =
            Option.value ~default:true
              (Option.bind (Json.member "index" j) Json.to_bool_opt);
          c_engine = Option.value ~default:"plan" (str "engine");
          c_status = Option.value ~default:"ok" (str "status");
          c_results =
            Option.value ~default:0
              (Option.bind (Json.member "results" j) Json.to_int_opt);
          c_digest;
          c_latency_ms =
            Option.value ~default:0.
              (Option.bind (Json.member "latency_ms" j) Json.to_float_opt);
        }
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _
    | _, _, _, Error e ->
      Error e)

(* Writer: one JSONL line per request, flushed so a captured workload
   survives a crash of the process under observation.  The mutex
   serializes concurrent server workers. *)

type t = { oc : out_channel; wlock : Mutex.t }

let open_file path =
  (* append, so a mixed workload built by several CLI invocations
     (query, then update, then query again) accumulates in one file *)
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  { oc; wlock = Mutex.create () }

let write t r =
  Mutex.protect t.wlock (fun () ->
      Json.to_channel t.oc (to_json r);
      output_char t.oc '\n';
      flush t.oc)

let close t = Mutex.protect t.wlock (fun () -> close_out t.oc)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop n acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> loop (n + 1) acc
        | line -> (
          match Json.of_string line with
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e)
          | Ok j -> (
            match of_json j with
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e)
            | Ok r -> loop (n + 1) (r :: acc)))
      in
      loop 1 [])
