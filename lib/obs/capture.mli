(** Replayable workload capture: one JSONL record per answered query.

    [secview query --capture] and [secview serve --capture] append one
    record per request; [secview replay] re-executes them (against
    {!Secview.Pipeline} or a live server) and byte-compares each
    answer against the captured [digest].  Schema (version field
    first, so readers can reject future formats cheaply):

    {v
    {"v":2,"rid":S,"verb":"query"|"update","group":S,"doc":S|null,
     "query":S,"bind":{…},"index":B,"engine":"plan"|"interp",
     "status":S,"results":N,"digest":S,"latency_ms":F}
    v}

    Version 1 files (no [verb] field — everything was a query) read
    back fine; the writer always emits version 2.

    For queries, [digest] is the MD5 hex of the rendered result lines
    joined with ["\n"] — the same rendering the CLI prints and the
    server puts in its ["results"] reply field, so a replay digest
    match means the byte-identical answer.  For updates, [query] holds
    the update's concrete syntax, [results] the target count, and
    [digest] the MD5 hex of the {e resulting document}'s serialization
    — a replay digest match means the replayed write produced the
    byte-identical document version. *)

val schema_version : int

type record = {
  c_rid : string;
  c_verb : string;  (** ["query"] or ["update"] *)
  c_group : string;
  c_doc : string option;  (** catalog doc name; [None] = requester default *)
  c_query : string;  (** query text, or the update's concrete syntax *)
  c_bind : (string * string) list;
  c_index : bool;
  c_engine : string;
  c_status : string;  (** ["ok"] or ["denied_empty"] *)
  c_results : int;
  c_digest : string;
  c_latency_ms : float;
}

val digest : string list -> string
(** MD5 hex of the rendered result lines, joined with ["\n"]. *)

val to_json : record -> Json.t
val of_json : Json.t -> (record, string) result

(** {2 Writing} *)

type t
(** A capture sink: an open file plus a mutex serializing concurrent
    server workers.  Every record is flushed on write. *)

val open_file : string -> t
(** Opens in append mode (creating the file if needed), so several
    process runs pointed at the same path build one workload — the
    way a mixed read/write capture is assembled from the CLI. *)

val write : t -> record -> unit
val close : t -> unit

(** {2 Reading} *)

val read_file : string -> (record list, string) result
(** Parse a capture file; the error carries [file:line]. *)
