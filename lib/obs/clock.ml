type t = unit -> int64

let monotonic : t = Monotonic_clock.now

let fake ?(start = 0L) ?(step = 1_000_000L) () : t =
  let now = ref start in
  fun () ->
    let v = !now in
    now := Int64.add v step;
    v

let ms start stop = Int64.to_float (Int64.sub stop start) /. 1e6
