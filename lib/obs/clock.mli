(** Clocks for the observability layer.

    A clock is a function returning nanoseconds.  The default is the
    host's monotonic clock ([CLOCK_MONOTONIC] via bechamel's stub —
    the only preinstalled binding), so span durations are immune to
    wall-clock adjustments; its absolute value is an arbitrary epoch,
    meaningful only as differences.

    Tests use {!fake}: a deterministic clock that advances by a fixed
    step on every read, making every recorded duration and timestamp
    reproducible. *)

type t = unit -> int64
(** Current time in nanoseconds. *)

val monotonic : t

val fake : ?start:int64 -> ?step:int64 -> unit -> t
(** [fake ()] starts at [start] (default [0L]) and advances by [step]
    (default [1_000_000L] = 1ms) on each call, returning the
    pre-advance value. *)

val ms : int64 -> int64 -> float
(** [ms start stop]: elapsed milliseconds. *)
