let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  "secview_" ^ mapped

let fstr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let openmetrics m =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                   Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# TYPE %s counter" n;
      line "%s_total %d" n v)
    (Metrics.counters m);
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      line "# TYPE %s gauge" n;
      line "%s %s" n (fstr v))
    (Metrics.gauges m);
  List.iter
    (fun (name, (s : Metrics.summary)) ->
      let n = sanitize name in
      line "# TYPE %s histogram" n;
      List.iter
        (fun (le, cum) -> line "%s_bucket{le=\"%s\"} %d" n (fstr le) cum)
        (Metrics.buckets m name);
      line "%s_bucket{le=\"+Inf\"} %d" n s.count;
      line "%s_sum %s" n (fstr s.sum);
      line "%s_count %d" n s.count)
    (Metrics.summaries m);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let us_of_ns ns = Int64.to_float ns /. 1e3

(* GC pause slices render as their own per-domain tracks: pid 2
   ("runtime") with one tid per domain, so Perfetto shows pauses as
   rows of their own, visibly overlapping the request slices they
   stole time from. *)
let gc_events pauses =
  List.map
    (fun (p : Runtime.pause) ->
      Json.Obj
        [
          ("name", Json.String ("gc:" ^ Runtime.kind_label p.Runtime.kind));
          ("cat", Json.String "gc");
          ("ph", Json.String "X");
          ("ts", Json.Float (us_of_ns p.Runtime.start_ns));
          ( "dur",
            Json.Float
              (us_of_ns (Int64.sub p.Runtime.stop_ns p.Runtime.start_ns)) );
          ("pid", Json.Int 2);
          ("tid", Json.Int p.Runtime.domain);
          ("args", Json.Obj [ ("domain", Json.Int p.Runtime.domain) ]);
        ])
    pauses

let chrome_trace ?(gc = []) spans =
  let events =
    List.map
      (fun (sp : Tracer.span) ->
        Json.Obj
          [
            ("name", Json.String sp.name);
            ("cat", Json.String "secview");
            ("ph", Json.String "X");
            ("ts", Json.Float (us_of_ns sp.start_ns));
            ("dur", Json.Float (us_of_ns (Int64.sub sp.stop_ns sp.start_ns)));
            ("pid", Json.Int 1);
            ("tid", Json.Int sp.tid);
            ( "args",
              Json.Obj
                [
                  ("seq", Json.Int sp.seq);
                  ( "parent",
                    match sp.parent with
                    | Some p -> Json.Int p
                    | None -> Json.Null );
                  ("trace_id", Json.Int sp.trace_id);
                  ("depth", Json.Int sp.depth);
                ] );
          ])
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (events @ gc_events gc));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome_trace ?gc path spans =
  let oc = open_out path in
  output_string oc (Json.to_string (chrome_trace ?gc spans));
  output_char oc '\n';
  close_out oc
