(** Exporters: the in-process registry and tracer, rendered in the
    two formats the outside world actually speaks.

    {!openmetrics} renders a {!Metrics} registry as OpenMetrics /
    Prometheus text exposition: counters (with the [_total] suffix),
    gauges, and each series as a histogram — cumulative
    [_bucket{le="…"}] lines straight from {!Metrics.buckets}, an
    explicit [+Inf] bucket, [_sum] and [_count], terminated by
    [# EOF].  Metric names are prefixed [secview_] and sanitized to
    [[A-Za-z0-9_]].  This is what the server's [GET /metrics] endpoint
    returns.

    {!chrome_trace} renders completed {!Tracer} spans as Chrome
    [trace_event] JSON ("X" complete events, microsecond timestamps,
    one row per recording thread) loadable in [chrome://tracing] or
    Perfetto; [secview query --trace-out FILE] writes it via
    {!write_chrome_trace}. *)

val sanitize : string -> string
(** [secview_] + the name with every character outside
    [[A-Za-z0-9_]] replaced by [_]. *)

val openmetrics : Metrics.t -> string

val chrome_trace : ?gc:Runtime.pause list -> Tracer.span list -> Json.t
(** [gc] pause windows render as extra per-domain tracks (pid 2, one
    tid per domain, names [gc:minor]/[gc:major_slice]) interleaved
    with the pipeline-stage rows — a pause visibly overlaps the
    request slice it stole time from. *)

val write_chrome_trace : ?gc:Runtime.pause list -> string -> Tracer.span list -> unit
(** Write [chrome_trace spans] to a file (truncating). *)
