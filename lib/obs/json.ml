type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing ------------------------------------------------------- *)

exception Bad of string

type parser_state = {
  src : string;
  mutable pos : int;
}

let fail p msg = raise (Bad (Printf.sprintf "at offset %d: %s" p.pos msg))

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    p.pos < String.length p.src
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance p
  done

let expect p c =
  match peek p with
  | Some d when d = c -> advance p
  | Some d -> fail p (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail p (Printf.sprintf "expected %C, found end of input" c)

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src
    && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "expected %s" word)

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail p "invalid \\u escape"

let u16 p =
  if p.pos + 4 > String.length p.src then fail p "truncated \\u escape";
  let v =
    List.fold_left
      (fun acc i -> (acc lsl 4) lor hex_digit p p.src.[p.pos + i])
      0 [ 0; 1; 2; 3 ]
  in
  p.pos <- p.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' ->
      advance p;
      (match peek p with
      | None -> fail p "unterminated escape"
      | Some c ->
        advance p;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let hi = u16 p in
          if hi >= 0xD800 && hi <= 0xDBFF then
            (* surrogate pair: require the low half *)
            if
              p.pos + 2 <= String.length p.src
              && p.src.[p.pos] = '\\'
              && p.src.[p.pos + 1] = 'u'
            then begin
              p.pos <- p.pos + 2;
              let lo = u16 p in
              if lo < 0xDC00 || lo > 0xDFFF then fail p "invalid surrogate pair"
              else
                add_utf8 buf
                  (0x10000 + (((hi - 0xD800) lsl 10) lor (lo - 0xDC00)))
            end
            else fail p "lone high surrogate"
          else if hi >= 0xDC00 && hi <= 0xDFFF then fail p "lone low surrogate"
          else add_utf8 buf hi
        | c -> fail p (Printf.sprintf "invalid escape \\%C" c));
        go ())
    | Some c when Char.code c < 0x20 -> fail p "raw control character in string"
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  if peek p = Some '-' then advance p;
  let digits () =
    let saw = ref false in
    while
      match peek p with
      | Some ('0' .. '9') ->
        saw := true;
        advance p;
        true
      | _ -> false
    do
      ()
    done;
    if not !saw then fail p "expected digit"
  in
  digits ();
  if peek p = Some '.' then begin
    is_float := true;
    advance p;
    digits ()
  end;
  (match peek p with
  | Some ('e' | 'E') ->
    is_float := true;
    advance p;
    (match peek p with Some ('+' | '-') -> advance p | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub p.src start (p.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "expected a value"
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws p;
        let key = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        fields := (key, v) :: !fields;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          members ()
        | Some '}' -> advance p
        | _ -> fail p "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | Some ',' ->
          advance p;
          elements ()
        | Some ']' -> advance p
        | _ -> fail p "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length s then
      Error (Printf.sprintf "at offset %d: trailing garbage" p.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ---- accessors ----------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
