type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)
