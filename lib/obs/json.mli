(** A minimal JSON value and serializer.

    Just enough for the metrics dump, the bench results file and the
    audit log — no parser, no dependency.  Serialization is
    deterministic: object fields are emitted in construction order,
    floats with ["%.6g"] (integral floats print without a fraction,
    which keeps golden tests and diffs stable). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val to_channel : out_channel -> t -> unit
