(** A minimal JSON value, serializer and parser.

    Just enough for the metrics dump, the bench results file, the
    audit log and the server's line-delimited protocol — no
    dependency.  Serialization is deterministic: object fields are
    emitted in construction order, floats with ["%.6g"] (integral
    floats print without a fraction, which keeps golden tests and
    diffs stable).  The parser accepts standard JSON: numbers without
    a fraction or exponent that fit in [int] become [Int], everything
    else numeric becomes [Float]; [\u] escapes (including surrogate
    pairs) decode to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse one complete JSON value (leading/trailing whitespace
    allowed; anything else after the value is an error).  The error
    string carries the byte offset. *)

(** {1 Accessors}

    Structure-probing helpers for protocol decoding; all total. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_bool_opt : t -> bool option
