type series = {
  mutable data : float array;
  mutable len : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let create () = { counters = Hashtbl.create 16; series = Hashtbl.create 16 }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
      let s = { data = Array.make 64 0.; len = 0 } in
      Hashtbl.replace t.series name s;
      s
  in
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0. in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

(* Nearest-rank on a sorted array: the ⌈q/100·n⌉-th smallest. *)
let percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let summarize s =
  if s.len = 0 then None
  else begin
    let sorted = Array.sub s.data 0 s.len in
    Array.sort compare sorted;
    let total = Array.fold_left ( +. ) 0. sorted in
    Some
      {
        count = s.len;
        min = sorted.(0);
        max = sorted.(s.len - 1);
        mean = total /. float_of_int s.len;
        p50 = percentile sorted 50.;
        p90 = percentile sorted 90.;
        p95 = percentile sorted 95.;
        p99 = percentile sorted 99.;
      }
  end

let summary t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> summarize s
  | None -> None

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)

let summaries t =
  List.filter_map
    (fun (k, s) -> Option.map (fun sum -> (k, sum)) (summarize s))
    (sorted_bindings t.series)

let pp ppf t =
  let cs = counters t and ss = summaries t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %d@." k v) cs
  end;
  if ss <> [] then begin
    Format.fprintf ppf "series (count/min/mean/p50/p95/max):@.";
    List.iter
      (fun (k, s) ->
        Format.fprintf ppf "  %-40s %6d %10.3f %10.3f %10.3f %10.3f %10.3f@."
          k s.count s.min s.mean s.p50 s.p95 s.max)
      ss
  end

let summary_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("mean", Json.Float s.mean);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p95", Json.Float s.p95);
      ("p99", Json.Float s.p99);
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "series",
        Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (summaries t))
      );
    ]
