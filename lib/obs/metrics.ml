(* Fixed-bucket histograms rather than raw observation arrays: the
   same buckets back both the human percentile dump and the
   OpenMetrics exposition (Export), so the two can never drift. *)

type hist = {
  bounds : float array;  (* ascending finite upper bounds, frozen at creation *)
  counts : int array;    (* per-bucket (not cumulative); last slot is +Inf *)
  mutable sum : float;
  mutable n : int;
  mutable minv : float;
  mutable maxv : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, hist) Hashtbl.t;
}

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

(* Roughly logarithmic, sized for millisecond latencies but wide
   enough for counts (eval.visited) and sub-ms stages. *)
let default_buckets =
  [|
    0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.;
    100.; 250.; 500.; 1000.; 2500.; 5000.; 10000.;
  |]

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 16;
  }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.series

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let observe ?buckets t name v =
  let h =
    match Hashtbl.find_opt t.series name with
    | Some h -> h
    | None ->
      let bounds =
        match buckets with Some b -> Array.copy b | None -> default_buckets
      in
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.;
          n = 0;
          minv = infinity;
          maxv = neg_infinity;
        }
      in
      Hashtbl.replace t.series name h;
      h
  in
  let k = Array.length h.bounds in
  let rec slot i = if i >= k || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v

(* Nearest-rank on a sorted array: the ⌈q/100·n⌉-th smallest.  Kept
   for callers (bench) that hold raw samples. *)
let percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

(* Bucket-derived nearest-rank estimate: the upper bound of the bucket
   holding the ⌈q/100·n⌉-th observation, clamped to the exact observed
   [min, max] so single-observation and at-bound series stay sharp. *)
let hist_percentile h q =
  let rank = max 1 (int_of_float (ceil (q /. 100. *. float_of_int h.n))) in
  let k = Array.length h.bounds in
  let rec go i cum =
    if i >= k then h.maxv
    else
      let cum = cum + h.counts.(i) in
      if cum >= rank then h.bounds.(i) else go (i + 1) cum
  in
  Float.max h.minv (Float.min (go 0 0) h.maxv)

let summarize h =
  if h.n = 0 then None
  else
    Some
      {
        count = h.n;
        sum = h.sum;
        min = h.minv;
        max = h.maxv;
        mean = h.sum /. float_of_int h.n;
        p50 = hist_percentile h 50.;
        p90 = hist_percentile h 90.;
        p95 = hist_percentile h 95.;
        p99 = hist_percentile h 99.;
      }

let summary t name =
  match Hashtbl.find_opt t.series name with
  | Some h -> summarize h
  | None -> None

let buckets t name =
  match Hashtbl.find_opt t.series name with
  | None -> []
  | Some h ->
    let cum = ref 0 in
    Array.to_list
      (Array.mapi
         (fun i le ->
           cum := !cum + h.counts.(i);
           (le, !cum))
         h.bounds)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.counters)
let gauges t = List.map (fun (k, r) -> (k, !r)) (sorted_bindings t.gauges)

let summaries t =
  List.filter_map
    (fun (k, h) -> Option.map (fun sum -> (k, sum)) (summarize h))
    (sorted_bindings t.series)

(* Merge [src] into [into]: counters add, gauges take [src]'s value
   (last writer wins — gauges are instantaneous), histograms add
   per-bucket.  A series whose bucket ladder differs from the
   destination's is dropped rather than corrupted — ladders are fixed
   at creation, so this only happens when two registries configured
   the same name differently, which is a caller bug. *)
let absorb ~into src =
  Hashtbl.iter (fun name r -> incr ~by:!r into name) src.counters;
  Hashtbl.iter (fun name r -> set_gauge into name !r) src.gauges;
  Hashtbl.iter
    (fun name h ->
      if h.n > 0 then
        match Hashtbl.find_opt into.series name with
        | None ->
          Hashtbl.replace into.series name
            {
              bounds = h.bounds;
              counts = Array.copy h.counts;
              sum = h.sum;
              n = h.n;
              minv = h.minv;
              maxv = h.maxv;
            }
        | Some d ->
          if d.bounds = h.bounds then begin
            Array.iteri
              (fun i c -> d.counts.(i) <- d.counts.(i) + c)
              h.counts;
            d.sum <- d.sum +. h.sum;
            d.n <- d.n + h.n;
            if h.minv < d.minv then d.minv <- h.minv;
            if h.maxv > d.maxv then d.maxv <- h.maxv
          end)
    src.series

(* Domain-sharded registry: writers land on the shard indexed by their
   domain id, guarded by that shard's mutex (uncontended unless two
   domains alias modulo the shard count), and a scrape merges every
   shard into a fresh snapshot under the same mutexes — so a reader
   can never observe a half-updated histogram (the torn-read hazard of
   scraping one shared registry while workers write it). *)
module Sharded = struct
  type plain = t

  let plain_create : unit -> plain = create

  type shard = {
    slock : Mutex.t;
    reg : plain;
  }

  let shard_count = 16

  type t = shard array

  let create () =
    Array.init shard_count (fun _ ->
        { slock = Mutex.create (); reg = plain_create () })

  let shard t =
    t.((Domain.self () :> int) land (shard_count - 1))

  let incr ?by t name =
    let s = shard t in
    Mutex.protect s.slock (fun () -> incr ?by s.reg name)

  let set_gauge t name v =
    let s = shard t in
    Mutex.protect s.slock (fun () -> set_gauge s.reg name v)

  let observe ?buckets t name v =
    let s = shard t in
    Mutex.protect s.slock (fun () -> observe ?buckets s.reg name v)

  (* One consistent merged view.  [into] lets the caller overlay the
     shards onto an externally-fed registry (e.g. the tracer's stage
     series) without mutating it: absorb that one first, then the
     shards. *)
  let snapshot ?into t =
    let out = plain_create () in
    (match into with Some r -> absorb ~into:out r | None -> ());
    Array.iter
      (fun s -> Mutex.protect s.slock (fun () -> absorb ~into:out s.reg))
      t;
    out
end

let pp ppf t =
  let cs = counters t and gs = gauges t and ss = summaries t in
  if cs <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %d@." k v) cs
  end;
  if gs <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-40s %.3f@." k v) gs
  end;
  if ss <> [] then begin
    Format.fprintf ppf "series (count/min/mean/p50/p95/max):@.";
    List.iter
      (fun (k, s) ->
        Format.fprintf ppf "  %-40s %6d %10.3f %10.3f %10.3f %10.3f %10.3f@."
          k s.count s.min s.mean s.p50 s.p95 s.max)
      ss
  end

let summary_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("mean", Json.Float s.mean);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p95", Json.Float s.p95);
      ("p99", Json.Float s.p99);
    ]

let to_json t =
  let gs = gauges t in
  Json.Obj
    ([
       ( "counters",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
       ( "series",
         Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (summaries t))
       );
     ]
    @
    if gs = [] then []
    else [ ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gs)) ]
    )
