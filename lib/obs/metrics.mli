(** A metrics registry: named counters, gauges and fixed-bucket
    histograms.

    Counters are monotonically increasing integers (translation-cache
    hits and misses per group, …); gauges are instantaneous values set
    by the owner on read (queue depth, heap words); series are
    histograms over a fixed bucket ladder, collected per observation
    (per-stage durations in milliseconds, evaluator nodes visited).

    The bucket ladder is the {e single} source of truth: the
    percentiles in {!summary} are nearest-rank estimates read from the
    cumulative buckets (clamped to the exact observed min/max), and
    {!Export.openmetrics} exposes the same buckets as a Prometheus
    histogram — so the human dump and the scraped series can never
    disagree.

    A registry is plain mutable state with no global registration and
    no internal locking: the CLI and tests create one per run and hand
    it to a {!Tracer}; the server serializes access with its own
    mutex. *)

type t

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val create : unit -> t
val reset : t -> unit

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** Current value; [0] for a counter never incremented. *)

val set_gauge : t -> string -> float -> unit
(** Set (creating if needed) an instantaneous value. *)

val gauge : t -> string -> float option

val default_buckets : float array
(** The default upper-bound ladder: 20 roughly logarithmic bounds from
    0.005 to 10000, sized for millisecond latencies. *)

val observe : ?buckets:float array -> t -> string -> float -> unit
(** Record one observation under [name].  [buckets] (ascending finite
    upper bounds; defaults to {!default_buckets}) takes effect only on
    the observation that creates the series and is ignored after. *)

val summary : t -> string -> summary option
(** [None] for a series with no observations.  [min]/[max]/[mean]/[sum]
    are exact; percentiles are bucket upper-bound estimates. *)

val buckets : t -> string -> (float * int) list
(** [(le, cumulative count)] per finite bound, ascending; the implicit
    [+Inf] bucket equals [summary.count].  [[]] for an unknown
    series. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

val summaries : t -> (string * summary) list
(** All series, sorted by name. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile of a {e sorted} non-empty array;
    [percentile a 50.] is the median.  Exposed for the bench
    harness, which keeps raw samples. *)

val pp : Format.formatter -> t -> unit
(** Sections [counters], [gauges] and [series]; prints nothing for an
    empty registry. *)

val to_json : t -> Json.t

val absorb : into:t -> t -> unit
(** Merge a registry into another: counters add, gauges take the
    source's value, histograms add per-bucket.  A series whose bucket
    ladder differs from the destination's is dropped (ladders are
    frozen at creation; a mismatch is a caller bug, and corrupting
    buckets would be worse than losing them).  The source is not
    modified. *)

(** Domain-sharded writes, consistent reads.  Writers land on the
    shard indexed by their domain id (one mutex per shard —
    uncontended unless two domains alias modulo the shard count);
    {!Sharded.snapshot} merges every shard into a fresh plain registry
    under those same mutexes, so a scrape can never observe a
    half-updated histogram — the torn read that sharing one plain
    registry between writing workers and a scraping reader allows. *)
module Sharded : sig
  type plain := t
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> string -> unit
  val set_gauge : t -> string -> float -> unit
  val observe : ?buckets:float array -> t -> string -> float -> unit

  val snapshot : ?into:plain -> t -> plain
  (** A merged copy of every shard (plus, first, a copy of [into] when
      given — the overlay for an externally-fed registry such as the
      tracer's stage series; [into] itself is not mutated and must not
      be written concurrently). *)
end
