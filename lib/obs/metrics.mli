(** A metrics registry: named counters and latency/size distributions.

    Counters are monotonically increasing integers (translation-cache
    hits and misses per group, height-memo hits, …); series collect
    individual observations (per-stage durations in milliseconds,
    unfolding heights, evaluator nodes visited) and summarize as
    count/min/max/mean and nearest-rank percentiles.

    A registry is plain mutable state with no global registration: the
    CLI and tests create one per run and hand it to a {!Tracer}.
    Rendering is offered both human-readable ({!pp}) and
    machine-readable ({!to_json}). *)

type t

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val create : unit -> t
val reset : t -> unit

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** Current value; [0] for a counter never incremented. *)

val observe : t -> string -> float -> unit
(** Record one observation under [name]. *)

val summary : t -> string -> summary option
(** [None] for a series with no observations. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val summaries : t -> (string * summary) list
(** All series, sorted by name. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile of a {e sorted} non-empty array;
    [percentile a 50.] is the median.  Exposed for the bench
    harness. *)

val pp : Format.formatter -> t -> unit
(** Two sections, [counters] and [series]; prints nothing for an
    empty registry. *)

val to_json : t -> Json.t
