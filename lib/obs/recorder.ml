type entry = {
  rid : string;
  verb : string;
  session : int option;
  peer : string option;
  group : string;
  doc : string option;
  doc_version : int option;
  query : string;
  engine : string;
  admission : string option;
  status : string;
  error : string option;
  results : int;
  digest : string option;
  latency_ms : float;
  gc_pause_ms : float;
  gc_pauses : int;
  ts_ns : int64;
  spans : Tracer.span list;
  counts : (string * int) list;
}

type t = {
  lock : Mutex.t;
  ring : entry option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;  (* entries currently retained *)
  mutable total : int;  (* entries ever recorded; survives [clear] *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be > 0";
  { lock = Mutex.create (); ring = Array.make capacity None; head = 0;
    len = 0; total = 0 }

let capacity t = Array.length t.ring

let record t e =
  Mutex.protect t.lock (fun () ->
      t.ring.(t.head) <- Some e;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.len <- min (t.len + 1) (Array.length t.ring);
      t.total <- t.total + 1)

let total t = Mutex.protect t.lock (fun () -> t.total)

let entries t =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.ring in
      let n = t.len in
      (* oldest first: the ring wraps at [head] *)
      List.filter_map
        (fun i -> t.ring.((t.head - n + i + (2 * cap)) mod cap))
        (List.init n Fun.id))

let length t = Mutex.protect t.lock (fun () -> t.len)

let clear t =
  Mutex.protect t.lock (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.head <- 0;
      t.len <- 0)

(* Process-global hook, mirroring [Secview.Trace]'s probe spine: the
   CLI installs a recorder here so [Pipeline]-level callers can note
   requests without threading a value through every signature.  The
   disabled path must stay allocation-free: [enabled] is a single ref
   read and callers guard entry construction behind it. *)

let hook : t option ref = ref None
let set r = hook := Some r
let unset () = hook := None
let current () = !hook
let enabled () = match !hook with None -> false | Some _ -> true
let note e = match !hook with None -> () | Some t -> record t e

let opt_json f = function Some v -> f v | None -> Json.Null

let span_json (sp : Tracer.span) =
  Json.Obj
    [
      ("name", Json.String sp.Tracer.name);
      ("seq", Json.Int sp.Tracer.seq);
      ("parent", opt_json (fun p -> Json.Int p) sp.Tracer.parent);
      ("depth", Json.Int sp.Tracer.depth);
      ("ms", Json.Float (Clock.ms sp.Tracer.start_ns sp.Tracer.stop_ns));
    ]

let entry_json e =
  Json.Obj
    [
      ("rid", Json.String e.rid);
      ("verb", Json.String e.verb);
      ("ts_ns", Json.Int (Int64.to_int e.ts_ns));
      ("session", opt_json (fun s -> Json.Int s) e.session);
      ("peer", opt_json (fun p -> Json.String p) e.peer);
      ("group", Json.String e.group);
      ("doc", opt_json (fun d -> Json.String d) e.doc);
      ("doc_version", opt_json (fun v -> Json.Int v) e.doc_version);
      ("query", Json.String e.query);
      ("engine", Json.String e.engine);
      ("admission", opt_json (fun a -> Json.String a) e.admission);
      ("status", Json.String e.status);
      ("error", opt_json (fun err -> Json.String err) e.error);
      ("results", Json.Int e.results);
      ("digest", opt_json (fun d -> Json.String d) e.digest);
      ("latency_ms", Json.Float e.latency_ms);
      ("gc_pause_ms", Json.Float e.gc_pause_ms);
      ("gc_pauses", Json.Int e.gc_pauses);
      ("spans", Json.List (List.map span_json e.spans));
      ( "op_counts",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counts) );
    ]

let to_json t =
  let es = entries t in
  Json.Obj
    [
      ("flight", Json.Int (List.length es));
      ("capacity", Json.Int (capacity t));
      ("total", Json.Int (total t));
      ("entries", Json.List (List.map entry_json es));
    ]

let dump_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc (to_json t);
      output_char oc '\n')

let pp_entry ppf e =
  Format.fprintf ppf "%-8s %-6s %-6s %-12s %-6s %5d  %8.3fms  %s" e.rid
    e.verb e.group
    (match e.doc with Some d -> d | None -> "-")
    e.status e.results e.latency_ms e.query;
  match e.error with
  | Some err -> Format.fprintf ppf "  ! %s" err
  | None -> ()

let pp ppf t =
  let es = entries t in
  Format.fprintf ppf "flight recorder: %d/%d entries (%d recorded)@."
    (List.length es) (capacity t) (total t);
  List.iter (fun e -> Format.fprintf ppf "  %a@." pp_entry e) es
