(** In-memory flight recorder: the last N completed requests in full
    fidelity.

    Aggregate telemetry ({!Metrics}, the audit log) tells you that
    something was slow; the flight recorder tells you {e which
    request} — id, principal (session/peer/group), query, document
    version, engine, admission verdict, per-stage {!Tracer.span}s,
    plan-operator counts, answer digest, and outcome — for the most
    recent window of traffic, without any I/O on the request path.

    The ring is fixed-size and thread-safe (private mutex, never
    shared with the tracer/server observability lock, so recording
    cannot deadlock against span draining).  When full, the oldest
    entry is overwritten.

    A {e disabled} recorder costs nothing: {!enabled} is one ref
    read, and callers must build the {!entry} only behind it —
    [if Recorder.enabled () then Recorder.note (… allocate …)] — a
    discipline pinned by a [Gc.minor_words] test exactly like
    {!Secview.Trace}'s null probe. *)

type entry = {
  rid : string;  (** request-correlation id, as stamped in the reply *)
  verb : string;  (** ["query"], ["explain"] or ["update"] — a denied
                      write is distinguishable from a denied read *)
  session : int option;  (** server session, [None] for CLI requests *)
  peer : string option;
  group : string;
  doc : string option;  (** catalog name of the target document *)
  doc_version : int option;  (** {!Secview.Catalog.version} stamp *)
  query : string;  (** query text, or the update's concrete syntax *)
  engine : string;  (** ["plan"] or ["interp"] *)
  admission : string option;  (** {!Secview.Pipeline.admission_label} *)
  status : string;  (** ok/error/timeout/late/overloaded/denied_empty *)
  error : string option;
  results : int;
  digest : string option;  (** MD5 hex of the rendered answer *)
  latency_ms : float;
  gc_pause_ms : float;
      (** unioned GC pause time overlapping this request's span window
          ({!Runtime.overlap}); [0.] when no consumer is running *)
  gc_pauses : int;  (** pause episodes intersecting the window *)
  ts_ns : int64;
  spans : Tracer.span list;  (** this request's span tree *)
  counts : (string * int) list;  (** plan operator totals *)
}

type t

val create : capacity:int -> t
(** Ring of at most [capacity] entries.  Raises [Invalid_argument] if
    [capacity <= 0]. *)

val capacity : t -> int
val record : t -> entry -> unit
val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Entries currently retained ([<= capacity]). *)

val total : t -> int
(** Entries ever recorded (monotonic; [total - length] were evicted). *)

val clear : t -> unit

(** {2 Process-global hook}

    The CLI's [query --flight] path records through a global slot so
    the hot path needs no plumbing; the server holds its recorder
    directly instead. *)

val set : t -> unit
val unset : unit -> unit
val current : unit -> t option
val enabled : unit -> bool
(** One ref read, no allocation — the hot-path guard. *)

val note : entry -> unit
(** Record into the hooked recorder, if any. *)

(** {2 Rendering} *)

val entry_json : entry -> Json.t
val to_json : t -> Json.t
(** [{"flight":N,"capacity":C,"total":T,"entries":[…]}] with entries
    oldest first; each entry's spans carry [seq]/[parent] links. *)

val dump_file : t -> string -> unit
(** Write {!to_json} to a file (the [--flight-snapshot] sink). *)

val pp : Format.formatter -> t -> unit
(** Human-readable table, one line per entry. *)
