module RE = Runtime_events

type kind = Minor | Major_slice

let kind_label = function Minor -> "minor" | Major_slice -> "major_slice"

type pause = { domain : int; kind : kind; start_ns : int64; stop_ns : int64 }

(* Upper bounds in seconds: GC pauses live in the microsecond-to-
   hundreds-of-milliseconds range, far below the millisecond-latency
   ladder in [Metrics.default_buckets]. *)
let pause_buckets =
  [|
    1e-6; 5e-6; 1e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2;
    2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5;
  |]

(* Per-ring consumer state.  A ring belongs to one domain for that
   domain's lifetime (a later domain may reuse the slot); the metric
   names are built once per ring, so the event path allocates nothing
   per event beyond the metrics updates themselves. *)
type ring_state = {
  rid : int;
  mutable minor_begin : int64;  (* -1 = no open phase on this ring *)
  mutable slice_begin : int64;
  mutable pool_words : float;  (* last EV_C_MAJOR_HEAP_* samples *)
  mutable large_words : float;
  pause_series : string;  (* gc.pause_seconds.d<rid> *)
  minor_ctr : string;
  slice_ctr : string;
  alloc_ctr : string;
  promoted_ctr : string;
  heap_gauge : string;
}

type t = {
  lock : Mutex.t;
      (* guards the registry, the pause ring, the ring-state table and
         the cursor: read_poll and every query serialize here *)
  reg : Metrics.t;
  cursor : RE.cursor option;  (* None: an [offline] consumer *)
  mutable callbacks : RE.Callbacks.t;
  ring : pause option array;  (* recent pause windows, oldest overwritten *)
  mutable head : int;
  mutable retained : int;
  mutable total : int;  (* pauses ever seen *)
  mutable spawned : int;
  mutable terminated : int;
  mutable lost : int;
  rings : (int, ring_state) Hashtbl.t;
  stopping : bool Atomic.t;
  mutable poller : Thread.t option;
  interval : float;
}

let no_ts = -1L

let ring_state t rid =
  match Hashtbl.find_opt t.rings rid with
  | Some rs -> rs
  | None ->
    let d = "d" ^ string_of_int rid in
    let rs =
      {
        rid;
        minor_begin = no_ts;
        slice_begin = no_ts;
        pool_words = 0.;
        large_words = 0.;
        pause_series = "gc.pause_seconds." ^ d;
        minor_ctr = "gc.minor_collections." ^ d;
        slice_ctr = "gc.major_slices." ^ d;
        alloc_ctr = "gc.minor_allocated_words." ^ d;
        promoted_ctr = "gc.promoted_words." ^ d;
        heap_gauge = "gc.heap_words." ^ d;
      }
    in
    Hashtbl.replace t.rings rid rs;
    rs

(* lock held *)
let record_pause t rs ~kind ~start_ns ~stop_ns =
  let secs = Int64.to_float (Int64.sub stop_ns start_ns) /. 1e9 in
  if secs >= 0. then begin
    Metrics.observe ~buckets:pause_buckets t.reg rs.pause_series secs;
    Metrics.observe ~buckets:pause_buckets t.reg "gc.pause_seconds" secs;
    Metrics.incr t.reg
      (match kind with Minor -> rs.minor_ctr | Major_slice -> rs.slice_ctr);
    t.ring.(t.head) <- Some { domain = rs.rid; kind; start_ns; stop_ns };
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.retained <- min (t.retained + 1) (Array.length t.ring);
    t.total <- t.total + 1
  end

(* Event callbacks: called from [read_poll], which only ever runs with
   [t.lock] held.  Only the phases that stop the mutator on a domain
   become pause windows: EV_MINOR (the stop-the-world minor
   collection) and EV_MAJOR_SLICE (that domain's share of the
   incremental major mark/sweep).  Finer-grained sub-phases nest
   inside these and are deliberately ignored — counting them too
   would double-book the same wall-clock. *)
let on_begin t rid ts phase =
  match phase with
  | RE.EV_MINOR -> (ring_state t rid).minor_begin <- RE.Timestamp.to_int64 ts
  | RE.EV_MAJOR_SLICE ->
    (ring_state t rid).slice_begin <- RE.Timestamp.to_int64 ts
  | _ -> ()

let on_end t rid ts phase =
  match phase with
  | RE.EV_MINOR ->
    let rs = ring_state t rid in
    if rs.minor_begin <> no_ts then begin
      record_pause t rs ~kind:Minor ~start_ns:rs.minor_begin
        ~stop_ns:(RE.Timestamp.to_int64 ts);
      rs.minor_begin <- no_ts
    end
  | RE.EV_MAJOR_SLICE ->
    let rs = ring_state t rid in
    if rs.slice_begin <> no_ts then begin
      record_pause t rs ~kind:Major_slice ~start_ns:rs.slice_begin
        ~stop_ns:(RE.Timestamp.to_int64 ts);
      rs.slice_begin <- no_ts
    end
  | _ -> ()

(* Heap/allocation counters per ring: these are what the scrape-time
   [Gc.quick_stat] gauges cannot see for other domains. *)
let on_counter t rid _ts counter v =
  let rs = ring_state t rid in
  match counter with
  | RE.EV_C_MINOR_ALLOCATED -> Metrics.incr ~by:v t.reg rs.alloc_ctr
  | RE.EV_C_MINOR_PROMOTED -> Metrics.incr ~by:v t.reg rs.promoted_ctr
  | RE.EV_C_MAJOR_HEAP_POOL_WORDS ->
    rs.pool_words <- float_of_int v;
    Metrics.set_gauge t.reg rs.heap_gauge (rs.pool_words +. rs.large_words)
  | RE.EV_C_MAJOR_HEAP_LARGE_WORDS ->
    rs.large_words <- float_of_int v;
    Metrics.set_gauge t.reg rs.heap_gauge (rs.pool_words +. rs.large_words)
  | _ -> ()

let live_domains_locked t = 1 + t.spawned - t.terminated

let on_lifecycle t rid _ts ev _arg =
  ignore (ring_state t rid);
  (match ev with
  | RE.EV_DOMAIN_SPAWN ->
    t.spawned <- t.spawned + 1;
    Metrics.incr t.reg "runtime.domain_spawns"
  | RE.EV_DOMAIN_TERMINATE -> t.terminated <- t.terminated + 1
  | RE.EV_RING_START -> Metrics.incr t.reg "runtime.ring_starts"
  | _ -> ());
  Metrics.set_gauge t.reg "runtime.domains_live"
    (float_of_int (live_domains_locked t))

let on_lost t _rid n =
  t.lost <- t.lost + n;
  Metrics.incr ~by:n t.reg "runtime.events_lost"

(* lock held *)
let drain_locked t =
  match t.cursor with
  | Some cursor when not (Atomic.get t.stopping) ->
    ignore (RE.read_poll cursor t.callbacks None : int)
  | _ -> ()

let poll t = Mutex.protect t.lock (fun () -> drain_locked t)

let rec poll_loop t =
  if not (Atomic.get t.stopping) then begin
    poll t;
    Thread.delay t.interval;
    poll_loop t
  end

let make ~cursor ~capacity ~interval =
  {
    lock = Mutex.create ();
    reg = Metrics.create ();
    cursor;
    callbacks = RE.Callbacks.create ();
    ring = Array.make capacity None;
    head = 0;
    retained = 0;
    total = 0;
    spawned = 0;
    terminated = 0;
    lost = 0;
    rings = Hashtbl.create 8;
    stopping = Atomic.make false;
    poller = None;
    interval;
  }

let install_callbacks t =
  t.callbacks <-
    RE.Callbacks.create ~runtime_begin:(on_begin t) ~runtime_end:(on_end t)
      ~runtime_counter:(on_counter t) ~lifecycle:(on_lifecycle t)
      ~lost_events:(on_lost t) ()

let start ?(capacity = 2048) ?(interval = 0.01) () =
  if capacity <= 0 then invalid_arg "Runtime.start: capacity must be > 0";
  RE.start ();
  let t = make ~cursor:(Some (RE.create_cursor None)) ~capacity ~interval in
  install_callbacks t;
  t.poller <- Some (Thread.create poll_loop t);
  t

let offline ?(capacity = 2048) () =
  if capacity <= 0 then invalid_arg "Runtime.offline: capacity must be > 0";
  let t = make ~cursor:None ~capacity ~interval:1. in
  install_callbacks t;
  t

let stop t =
  if not (Atomic.get t.stopping) then begin
    (* final drain first, then flag the poller down: pauses emitted up
       to the stop call stay counted *)
    poll t;
    Atomic.set t.stopping true;
    (match t.poller with Some th -> Thread.join th | None -> ());
    t.poller <- None;
    Mutex.protect t.lock (fun () ->
        match t.cursor with
        | Some cursor -> RE.free_cursor cursor
        | None -> ())
  end

let pauses t =
  Mutex.protect t.lock (fun () ->
      drain_locked t;
      let cap = Array.length t.ring in
      let n = t.retained in
      List.filter_map
        (fun i -> t.ring.((t.head - n + i + (2 * cap)) mod cap))
        (List.init n Fun.id))

let total_pauses t = Mutex.protect t.lock (fun () -> t.total)
let live_domains t = Mutex.protect t.lock (fun () -> live_domains_locked t)
let lost_events t = Mutex.protect t.lock (fun () -> t.lost)

(* Attribution uses the union of pause windows, not their sum: a minor
   collection is stop-the-world, so every domain's ring reports (near)
   the same window, and summing would bill one global pause once per
   domain.  The union answers the operator's actual question — "for
   how long of this request's window was the runtime collecting?" *)
let overlap t ~start_ns ~stop_ns =
  Mutex.protect t.lock (fun () ->
      drain_locked t;
      let clipped = ref [] in
      Array.iter
        (function
          | Some p ->
            let s = if p.start_ns > start_ns then p.start_ns else start_ns in
            let e = if p.stop_ns < stop_ns then p.stop_ns else stop_ns in
            if s < e then clipped := (s, e) :: !clipped
          | None -> ())
        t.ring;
      let sorted =
        List.sort (fun (a, _) (b, _) -> Int64.compare a b) !clipped
      in
      let ms = ref 0. and count = ref 0 and last_end = ref Int64.min_int in
      List.iter
        (fun (s, e) ->
          if s > !last_end then begin
            (* a new pause episode, disjoint from the previous one *)
            incr count;
            ms := !ms +. (Int64.to_float (Int64.sub e s) /. 1e6);
            last_end := e
          end
          else if e > !last_end then begin
            ms := !ms +. (Int64.to_float (Int64.sub e !last_end) /. 1e6);
            last_end := e
          end)
        sorted;
      (!ms, !count))

let inject_pause t ~domain ~kind ~start_ns ~stop_ns =
  Mutex.protect t.lock (fun () ->
      record_pause t (ring_state t domain) ~kind ~start_ns ~stop_ns)

let absorb_into ~into t =
  Mutex.protect t.lock (fun () ->
      drain_locked t;
      Metrics.absorb ~into t.reg)

let to_json t =
  Mutex.protect t.lock (fun () ->
      drain_locked t;
      let prefix = "gc.pause_seconds.d" in
      let doms =
        List.filter_map
          (fun (name, (s : Metrics.summary)) ->
            if String.starts_with ~prefix name then
              Some
                ( String.sub name (String.length prefix - 1)
                    (String.length name - String.length prefix + 1),
                  Json.Obj
                    [
                      ("count", Json.Int s.count);
                      ("p50_ms", Json.Float (1000. *. s.p50));
                      ("p99_ms", Json.Float (1000. *. s.p99));
                      ("max_ms", Json.Float (1000. *. s.max));
                      ("total_ms", Json.Float (1000. *. s.sum));
                    ] )
            else None)
          (Metrics.summaries t.reg)
      in
      Json.Obj
        [
          ("enabled", Json.Bool true);
          ("domains_live", Json.Int (live_domains_locked t));
          ("events_lost", Json.Int t.lost);
          ("pauses_total", Json.Int t.total);
          ("gc_pause_ms", Json.Obj doms);
        ])

(* Process-global hook, the same spine as [Recorder]: the disabled
   path is one ref read returning the immediate [None] — pinned
   allocation-free by a [Gc.minor_words] test. *)

let hook : t option ref = ref None
let set t = hook := Some t
let unset () = hook := None
let current () = !hook
let enabled () = match !hook with None -> false | Some _ -> true

let stamp ~start_ns ~stop_ns =
  match !hook with
  | None -> None
  | Some t -> Some (overlap t ~start_ns ~stop_ns)
