(** Runtime health: a consumer for OCaml 5 [Runtime_events] that turns
    GC events and domain lifecycle into per-domain metrics and
    queryable pause windows.

    One consumer covers the whole process: [Runtime_events] gives
    every domain its own ring buffer, and a single cursor (drained by
    one polling thread) sees them all, tagged with the ring id.  Per
    ring, the consumer turns [EV_MINOR] and [EV_MAJOR_SLICE]
    begin/end pairs — the two phases that actually stop the mutator
    on a domain — into:

    - [gc.pause_seconds.d<i>] histograms (plus an all-domain
      [gc.pause_seconds] aggregate) over {!pause_buckets},
    - [gc.minor_collections.d<i>] / [gc.major_slices.d<i>] counters,
    - [gc.minor_allocated_words.d<i>] / [gc.promoted_words.d<i>]
      counters and a [gc.heap_words.d<i>] gauge from the runtime's own
      per-domain counter events — the numbers a scrape-time
      [Gc.quick_stat] on the acceptor thread cannot see,
    - [runtime.domains_live] / [runtime.events_lost] health gauges.

    All state lives behind one private mutex; {!absorb_into} merges
    the registry into a scrape snapshot under it, so a scrape can
    never observe a half-updated histogram.  Recent pause windows are
    kept in a fixed ring for {!overlap} — GC-aware latency
    attribution: given a request's span window, how many pause
    episodes intersected it and for how many milliseconds.  Windows
    are {e unioned} before measuring (a stop-the-world minor pause
    appears on every domain's ring; summing would bill it once per
    domain).

    Timebase: [Runtime_events] timestamps and {!Clock.monotonic} both
    read the system monotonic clock in nanoseconds, so pause windows
    and {!Tracer.span} windows compare directly.

    Per-group query counters deliberately stay out of this module:
    runtime telemetry is global per domain, never partitioned by
    security group, so a group cannot learn from a scrape whether
    {e another} group's hidden-region traffic caused GC pressure —
    the same no-leakage discipline the audit log applies to denial
    messages. *)

type kind =
  | Minor  (** stop-the-world minor collection *)
  | Major_slice  (** one domain's incremental major mark/sweep slice *)

val kind_label : kind -> string
(** ["minor"] / ["major_slice"]. *)

type pause = { domain : int; kind : kind; start_ns : int64; stop_ns : int64 }
(** One mutator pause on one domain's ring, in monotonic clock ns. *)

val pause_buckets : float array
(** Histogram ladder for [gc.pause_seconds], in seconds (1µs – 2.5s). *)

type t

val start : ?capacity:int -> ?interval:float -> unit -> t
(** Start event collection ([Runtime_events.start]), open a cursor on
    this process, and spawn the polling thread (period [interval]
    seconds, default 0.01).  [capacity] (default 2048) bounds the
    retained pause-window ring.  Raises [Invalid_argument] if
    [capacity <= 0]. *)

val offline : ?capacity:int -> unit -> t
(** A consumer with no cursor and no polling thread: pauses arrive
    only via {!inject_pause}.  The deterministic constructor for unit
    tests and the A/B bench harness. *)

val stop : t -> unit
(** Final cursor drain, stop and join the polling thread, free the
    cursor.  Idempotent; the metrics registry and retained pause ring
    stay readable after. *)

val poll : t -> unit
(** Drain the cursor now (the polling thread does this on a timer;
    queries also drain first, so explicit polls are rarely needed). *)

val absorb_into : into:Metrics.t -> t -> unit
(** Drain, then merge the consumer's registry into [into] under the
    consumer lock — the scrape-time merge, torn-free like
    {!Metrics.Sharded.snapshot}. *)

val pauses : t -> pause list
(** Retained pause windows, oldest first. *)

val total_pauses : t -> int
(** Pauses ever seen (monotonic; exceeds the ring capacity). *)

val live_domains : t -> int
(** 1 + domain spawns - domain terminations, as seen by lifecycle
    events. *)

val lost_events : t -> int
(** Events the runtime overwrote before the consumer read them. *)

val overlap : t -> start_ns:int64 -> stop_ns:int64 -> float * int
(** [(ms, episodes)]: the union of retained pause windows clipped to
    [[start_ns, stop_ns]] in milliseconds, and how many disjoint pause
    episodes contributed.  Drains the cursor first, so a pause that
    ended just before the query is visible. *)

val inject_pause :
  t -> domain:int -> kind:kind -> start_ns:int64 -> stop_ns:int64 -> unit
(** Record a synthetic pause through the real event path (metrics and
    ring included) — deterministic pause windows for tests and the
    bench harness. *)

val to_json : t -> Json.t
(** [{"enabled":true,"domains_live":…,"events_lost":…,
    "pauses_total":…,"gc_pause_ms":{"d0":{…},…}}] — the [stats] verb's
    runtime section (pause quantiles converted to milliseconds). *)

(** {2 Process-global hook}

    Mirrors {!Recorder}'s spine: the server and CLI install their
    consumer here so request paths can stamp GC attribution without
    threading a value through every signature.  The disabled path is
    one ref read. *)

val set : t -> unit
val unset : unit -> unit
val current : unit -> t option

val enabled : unit -> bool
(** One ref read, no allocation — the hot-path guard. *)

val stamp : start_ns:int64 -> stop_ns:int64 -> (float * int) option
(** [None] (no allocation) when no consumer is installed; otherwise
    [Some (overlap …)] against the installed consumer. *)
