type span = {
  name : string;
  seq : int;
  depth : int;
  start_ns : int64;
  stop_ns : int64;
}

type active = {
  id : int;
  aname : string;
  adepth : int;
  astart : int64;
}

type t = {
  clock : Clock.t;
  metrics : Metrics.t option;
  mutable stack : active list;
  mutable completed : span list;  (* reverse completion order *)
  mutable next_id : int;
  mutable drained : int;  (* completed spans already handed out *)
}

let create ?(clock = Clock.monotonic) ?metrics () =
  { clock; metrics; stack = []; completed = []; next_id = 0; drained = 0 }

let finish t frame =
  let stop = t.clock () in
  let sp =
    {
      name = frame.aname;
      seq = frame.id;
      depth = frame.adepth;
      start_ns = frame.astart;
      stop_ns = stop;
    }
  in
  t.completed <- sp :: t.completed;
  match t.metrics with
  | Some m -> Metrics.observe m ("stage." ^ sp.name) (Clock.ms sp.start_ns stop)
  | None -> ()

let probe t =
  {
    Secview.Trace.enter =
      (fun name ->
        let id = t.next_id in
        t.next_id <- id + 1;
        t.stack <-
          { id; aname = name; adepth = List.length t.stack;
            astart = t.clock () }
          :: t.stack;
        id);
    leave =
      (fun id ->
        (* Pop to (and including) the matching frame; intervening
           frames — a [leave] skipped by an exception path — are
           closed at the same instant. *)
        let rec pop = function
          | frame :: rest ->
            finish t frame;
            if frame.id = id then t.stack <- rest else pop rest
          | [] -> t.stack <- []
        in
        if List.exists (fun f -> f.id = id) t.stack then pop t.stack);
    count =
      (fun name n ->
        match t.metrics with
        | Some m -> Metrics.incr ~by:n m name
        | None -> ());
    value =
      (fun name v ->
        match t.metrics with
        | Some m -> Metrics.observe m name (float_of_int v)
        | None -> ());
  }

let install t = Secview.Trace.set_probe (probe t)
let uninstall () = Secview.Trace.clear_probe ()

let spans t =
  List.sort (fun a b -> Int.compare a.seq b.seq) t.completed

let reset t =
  t.stack <- [];
  t.completed <- [];
  t.next_id <- 0;
  t.drained <- 0

let drain_new t =
  let all = List.rev t.completed in
  let n = List.length all in
  let fresh = List.filteri (fun i _ -> i >= t.drained) all in
  t.drained <- n;
  fresh

let stage_totals spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let d = Clock.ms sp.start_ns sp.stop_ns in
      match Hashtbl.find_opt tbl sp.name with
      | Some r -> r := !r +. d
      | None -> Hashtbl.replace tbl sp.name (ref d))
    spans;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let pp ppf t =
  let sps = spans t in
  Format.fprintf ppf "trace (%d span(s)):@." (List.length sps);
  List.iter
    (fun sp ->
      Format.fprintf ppf "  %s%-*s %10.3fms@."
        (String.make (2 * sp.depth) ' ')
        (24 - (2 * sp.depth))
        sp.name
        (Clock.ms sp.start_ns sp.stop_ns))
    sps
