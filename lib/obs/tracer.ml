type span = {
  name : string;
  seq : int;
  parent : int option;
  depth : int;
  tid : int;
  trace_id : int;
  start_ns : int64;
  stop_ns : int64;
}

type active = {
  id : int;
  aname : string;
  aparent : int option;
  adepth : int;
  astart : int64;
  atrace : int;
}

(* Per-thread recording state: each thread has its own span stack and
   completed list, so concurrent requests (server workers) never
   interleave frames, and [drain_new]/[with_request] attribute spans to
   the requests of the calling thread only.  [Thread.id] is unique
   process-wide in OCaml 5 (every domain's threads — including each
   domain's initial thread — draw from one counter), so the table needs
   no domain component in its key, and the single mutex makes the whole
   tracer domain-safe. *)
type tstate = {
  mutable stack : active list;
  mutable completed : span list;  (* reverse completion order *)
  mutable drained : int;  (* completed spans already handed out *)
  mutable cur_trace : int;  (* trace id of the open root span *)
}

type t = {
  clock : Clock.t;
  metrics : Metrics.t option;
  retain : bool;
  lock : Mutex.t;
  threads : (int, tstate) Hashtbl.t;
  mutable next_id : int;
  mutable next_trace : int;
}

let create ?(clock = Clock.monotonic) ?metrics ?(retain = true) ?lock () =
  {
    clock;
    metrics;
    retain;
    lock = (match lock with Some m -> m | None -> Mutex.create ());
    threads = Hashtbl.create 8;
    next_id = 0;
    next_trace = 0;
  }

let lock t = t.lock

let state t =
  let tid = Thread.id (Thread.self ()) in
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> (tid, ts)
  | None ->
    let ts = { stack = []; completed = []; drained = 0; cur_trace = 0 } in
    Hashtbl.replace t.threads tid ts;
    (tid, ts)

let finish t tid ts frame =
  let stop = t.clock () in
  let sp =
    {
      name = frame.aname;
      seq = frame.id;
      parent = frame.aparent;
      depth = frame.adepth;
      tid;
      trace_id = frame.atrace;
      start_ns = frame.astart;
      stop_ns = stop;
    }
  in
  ts.completed <- sp :: ts.completed;
  match t.metrics with
  | Some m -> Metrics.observe m ("stage." ^ sp.name) (Clock.ms sp.start_ns stop)
  | None -> ()

let probe t =
  {
    Secview.Trace.enter =
      (fun name ->
        Mutex.protect t.lock (fun () ->
            let _, ts = state t in
            if ts.stack = [] then begin
              ts.cur_trace <- t.next_trace;
              t.next_trace <- t.next_trace + 1
            end;
            let id = t.next_id in
            t.next_id <- id + 1;
            let parent =
              match ts.stack with [] -> None | f :: _ -> Some f.id
            in
            ts.stack <-
              { id; aname = name; aparent = parent;
                adepth = List.length ts.stack;
                astart = t.clock (); atrace = ts.cur_trace }
              :: ts.stack;
            id));
    leave =
      (fun id ->
        Mutex.protect t.lock (fun () ->
            let tid, ts = state t in
            (* Pop to (and including) the matching frame; intervening
               frames — a [leave] skipped by an exception path — are
               closed at the same instant. *)
            let rec pop = function
              | frame :: rest ->
                finish t tid ts frame;
                if frame.id = id then ts.stack <- rest else pop rest
              | [] -> ts.stack <- []
            in
            if List.exists (fun f -> f.id = id) ts.stack then pop ts.stack));
    count =
      (fun name n ->
        match t.metrics with
        | Some m -> Mutex.protect t.lock (fun () -> Metrics.incr ~by:n m name)
        | None -> ());
    value =
      (fun name v ->
        match t.metrics with
        | Some m ->
          Mutex.protect t.lock (fun () ->
              Metrics.observe m name (float_of_int v))
        | None -> ());
  }

let install t = Secview.Trace.set_probe (probe t)
let uninstall () = Secview.Trace.clear_probe ()

let by_seq a b = Int.compare a.seq b.seq

let spans t =
  Mutex.protect t.lock (fun () ->
      List.sort by_seq
        (Hashtbl.fold (fun _ ts acc -> ts.completed @ acc) t.threads []))

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.threads;
      t.next_id <- 0;
      t.next_trace <- 0)

let drain_new t =
  Mutex.protect t.lock (fun () ->
      let _, ts = state t in
      let all = List.rev ts.completed in
      let fresh = List.filteri (fun i _ -> i >= ts.drained) all in
      if t.retain then ts.drained <- List.length all
      else begin
        ts.completed <- [];
        ts.drained <- 0
      end;
      fresh)

let with_request ?(name = "request") t f =
  let p = probe t in
  let id = p.Secview.Trace.enter name in
  let trace =
    Mutex.protect t.lock (fun () ->
        let _, ts = state t in
        ts.cur_trace)
  in
  let close () =
    p.Secview.Trace.leave id;
    Mutex.protect t.lock (fun () ->
        let _, ts = state t in
        List.sort by_seq
          (List.filter (fun sp -> sp.trace_id = trace) ts.completed))
  in
  match f () with
  | v -> (v, close ())
  | exception e ->
    ignore (close ());
    raise e

let stage_totals spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let d = Clock.ms sp.start_ns sp.stop_ns in
      match Hashtbl.find_opt tbl sp.name with
      | Some r -> r := !r +. d
      | None -> Hashtbl.replace tbl sp.name (ref d))
    spans;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [])

let pp ppf t =
  let sps = spans t in
  Format.fprintf ppf "trace (%d span(s)):@." (List.length sps);
  List.iter
    (fun sp ->
      Format.fprintf ppf "  %s%-*s %10.3fms@."
        (String.make (2 * sp.depth) ' ')
        (24 - (2 * sp.depth))
        sp.name
        (Clock.ms sp.start_ns sp.stop_ns))
    sps
