(** Span recorder: the observability side of {!Secview.Trace}.

    A tracer implements the core probe interface with a monotonic (or
    fake) clock: [enter]/[leave] events become nested {!span}s,
    [count]/[value] events feed the attached {!Metrics} registry
    (span durations are also recorded there, as series named
    [stage.<name>], in milliseconds).

    Install one with {!install} and the instrumented pipeline stages
    ([derive], [rewrite], [unfold], [optimize], [translate], [height],
    [eval], [answer]) start recording; {!uninstall} restores the null
    probe and the zero-overhead default. *)

type span = {
  name : string;
  seq : int;  (** start order: [seq] of an outer span < its inner spans *)
  depth : int;  (** nesting depth at entry, outermost = 0 *)
  start_ns : int64;
  stop_ns : int64;
}

type t

val create : ?clock:Clock.t -> ?metrics:Metrics.t -> unit -> t
(** Default clock: {!Clock.monotonic}.  Without [metrics], only spans
    are recorded. *)

val probe : t -> Secview.Trace.probe

val install : t -> unit
(** [Secview.Trace.set_probe (probe t)]. *)

val uninstall : unit -> unit

val spans : t -> span list
(** Completed spans in start order. *)

val reset : t -> unit

val drain_new : t -> span list
(** Spans completed since the previous [drain_new] (or since
    creation/reset), in completion order — the audit log uses this to
    attribute stage timings to the request that just finished. *)

val stage_totals : span list -> (string * float) list
(** Total duration in milliseconds per span name, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Indented span tree with durations. *)
