(** Span recorder: the observability side of {!Secview.Trace}.

    A tracer implements the core probe interface with a monotonic (or
    fake) clock: [enter]/[leave] events become nested {!span}s,
    [count]/[value] events feed the attached {!Metrics} registry
    (span durations are also recorded there, as series named
    [stage.<name>], in milliseconds).

    Recording is {e per thread}: each thread keeps its own span stack
    and completed list, and every root span (one per request in the
    server) is stamped with a fresh [trace_id].  Spans form a
    hierarchy: each carries the [seq] of its [parent] span (the frame
    that was open when it started), [None] at the root.  {!drain_new}
    and {!with_request} read only the calling thread's spans, so
    concurrent workers never mix each other's stages into one audit
    record.

    Install one with {!install} and the instrumented pipeline stages
    ([derive], [rewrite], [unfold], [optimize], [translate], [height],
    [plan], [eval], [answer]) start recording; {!uninstall} restores
    the null probe and the zero-overhead default. *)

type span = {
  name : string;
  seq : int;  (** start order: [seq] of an outer span < its inner spans *)
  parent : int option;
      (** [seq] of the enclosing span on the same thread, [None] at the
          root — the span hierarchy of one request *)
  depth : int;  (** nesting depth at entry, outermost = 0 *)
  tid : int;  (** {!Thread.id} of the recording thread *)
  trace_id : int;  (** request scope: shared by a root span and its children *)
  start_ns : int64;
  stop_ns : int64;
}

type t

val create :
  ?clock:Clock.t -> ?metrics:Metrics.t -> ?retain:bool -> ?lock:Mutex.t ->
  unit -> t
(** Default clock: {!Clock.monotonic}.  Without [metrics], only spans
    are recorded.  [retain] (default [true]) keeps drained spans for
    {!spans}/{!pp}; the server passes [~retain:false] so a long-lived
    tracer's memory stays bounded.  [lock] lets an embedder share its
    own mutex (the server passes the one that also guards the metrics
    registry); by default the tracer creates a private one. *)

val lock : t -> Mutex.t
(** The mutex guarding this tracer (and its metrics observations). *)

val probe : t -> Secview.Trace.probe

val install : t -> unit
(** [Secview.Trace.set_probe (probe t)]. *)

val uninstall : unit -> unit

val spans : t -> span list
(** Completed spans of all threads, in start order. *)

val reset : t -> unit

val drain_new : t -> span list
(** The calling thread's spans completed since its previous
    [drain_new] (or since creation/reset), in completion order — the
    audit log uses this to attribute stage timings to the request that
    just finished on this thread.  With [~retain:false] the drained
    spans are also discarded. *)

val with_request : ?name:string -> t -> (unit -> 'a) -> 'a * span list
(** [with_request t f] runs [f] inside a synthetic root span (default
    name ["request"]) on the calling thread and returns [f]'s result
    together with {e every} span of that request's trace — the root
    plus all descendants, linked by [parent] and sorted by [seq].
    Non-destructive: it does not move the {!drain_new} watermark, so a
    slow-query probe or flight recorder can attribute a request's
    stages without stealing them from the audit log.  The root span is
    closed (and the spans still returned) even when [f] raises.  Call
    it with an empty span stack: nested under another open span the
    "root" joins the enclosing trace instead of starting one. *)

val stage_totals : span list -> (string * float) list
(** Total duration in milliseconds per span name, sorted by name. *)

val pp : Format.formatter -> t -> unit
(** Indented span tree with durations. *)
