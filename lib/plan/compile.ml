type t = {
  plan : Plan.t;
  vars : string array;
  source : Sxpath.Ast.path;
  pruned : int;
}

let plan t = t.plan

let vars t = t.vars

let source t = t.source

let pruned t = t.pruned

(* Same decomposition as the evaluator's descendant fast path: a path
   whose first step is the label [l], split as [l/rest].  [None] means
   the descendant step has no single-label head (//*, //., //(a|b),
   //@a) and the compiler must refuse. *)
let rec head_label = function
  | Sxpath.Ast.Label l -> Some (l, Sxpath.Ast.Eps)
  | Sxpath.Ast.Slash (p1, p2) -> (
    match head_label p1 with
    | Some (l, Sxpath.Ast.Eps) -> Some (l, p2)
    | Some (l, k) -> Some (l, Sxpath.Ast.Slash (k, p2))
    | None -> None)
  | Sxpath.Ast.Qualify (p1, q) -> (
    match head_label p1 with
    | Some (l, k) -> Some (l, Sxpath.Ast.Qualify (k, q))
    | None -> None)
  | Sxpath.Ast.Empty | Sxpath.Ast.Eps | Sxpath.Ast.Wildcard
  | Sxpath.Ast.Attribute _ | Sxpath.Ast.Dslash _ | Sxpath.Ast.Union _ ->
    None

exception Refuse of string

type slots = {
  mutable names : string list;  (* reversed *)
  mutable count : int;
}

let slot_of slots name =
  let rec find i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some (slots.count - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 slots.names with
  | Some i -> i
  | None ->
    let i = slots.count in
    slots.names <- name :: slots.names;
    slots.count <- i + 1;
    i

let lower_value slots = function
  | Sxpath.Ast.Const c -> Plan.Const c
  | Sxpath.Ast.Var name -> Plan.Slot (slot_of slots name)

let rec lower slots (p : Sxpath.Ast.path) : Plan.t =
  match p with
  | Sxpath.Ast.Empty -> Plan.Nothing
  | Sxpath.Ast.Eps -> Plan.Self
  | Sxpath.Ast.Label l -> Plan.Child l
  | Sxpath.Ast.Wildcard -> Plan.Child_any
  | Sxpath.Ast.Attribute a -> Plan.Attr a
  | Sxpath.Ast.Slash (p1, p2) -> Plan.Seq (lower slots p1, lower slots p2)
  | Sxpath.Ast.Union (p1, p2) ->
    Plan.Branch (lower slots p1, lower slots p2)
  | Sxpath.Ast.Qualify (p1, q) ->
    Plan.Filter (lower slots p1, lower_qual slots q)
  | Sxpath.Ast.Dslash p1 -> (
    match head_label p1 with
    | Some (l, continuation) -> Plan.Desc (l, lower slots continuation)
    | None ->
      raise
        (Refuse
           (Printf.sprintf
              "descendant step //%s has no single-label head"
              (Sxpath.Print.to_string p1))))

and lower_qual slots (q : Sxpath.Ast.qual) : Plan.pred =
  match q with
  | Sxpath.Ast.True -> Plan.True
  | Sxpath.Ast.False -> Plan.False
  | Sxpath.Ast.Exists p -> Plan.Exists (lower slots p)
  | Sxpath.Ast.Eq (p, v) -> Plan.Eq (lower slots p, lower_value slots v)
  | Sxpath.Ast.And (a, b) ->
    Plan.And (lower_qual slots a, lower_qual slots b)
  | Sxpath.Ast.Or (a, b) -> Plan.Or (lower_qual slots a, lower_qual slots b)
  | Sxpath.Ast.Not a -> Plan.Not (lower_qual slots a)

(* Statically-dead top-level union branches are dropped before
   lowering.  Only the top level is touched: the source query is
   root-anchored, so a top-level branch the caller proved empty at the
   root contributes nothing — whereas a nested union sits under other
   steps where the caller's root-level verdict would not apply. *)
let without_branches dead p =
  match Sxpath.Ast.union_branches p with
  | [] | [ _ ] -> (p, 0)
  | branches ->
    let live =
      List.filter
        (fun b -> not (List.exists (Sxpath.Ast.equal_path b) dead))
        branches
    in
    let n = List.length branches - List.length live in
    if n = 0 then (p, 0) else (Sxpath.Ast.union_all live, n)

let compile ?(prune = []) p =
  let body, pruned = without_branches prune p in
  let slots = { names = []; count = 0 } in
  match lower slots body with
  | plan ->
    Ok
      { plan; vars = Array.of_list (List.rev slots.names); source = p; pruned }
  | exception Refuse reason -> Error reason
