(** Lowering a (rewritten, optimized) fragment query to a physical
    plan.

    Compilation is total on the fragment except for descendant steps
    with no single-label head ([//*], [//(a|b)], [//@a], [//.]): those
    would force a full-document scan rather than a tag-index interval
    join, so {!compile} refuses them with a human-readable reason and
    the caller (the pipeline) falls back to the interpreter.  The
    [secview lint] SV301 diagnostic surfaces the same reasons
    statically.

    [$var] references are collected into a variable table and replaced
    by slots; the executor resolves slots against its environment
    lazily, exactly like the interpreter resolves names. *)

type t

val compile : ?prune:Sxpath.Ast.path list -> Sxpath.Ast.path -> (t, string) result
(** Lower a query.  [Error reason] means the planner cannot execute
    this query shape and the interpreter must be used.

    [prune] lists top-level union branches (compared with
    {!Sxpath.Ast.equal_path}) the caller has proven statically empty —
    the pipeline passes the admission analyzer's [Denied_empty]
    verdicts over the document DTD.  They are dropped before lowering
    (only at the top level: the query is root-anchored there, so a
    root-level emptiness verdict applies); {!pruned} reports how many
    were.  Pruning every branch compiles to the empty plan. *)

val plan : t -> Plan.t
(** The operator tree. *)

val vars : t -> string array
(** Variable table: slot [i] holds the [$var] name it stands for. *)

val source : t -> Sxpath.Ast.path
(** The query this plan was compiled from (before pruning). *)

val pruned : t -> int
(** Top-level union branches dropped by [?prune]. *)
