let visited = ref 0

(* Per-operator work counters, one slot per plan node in preorder
   ({!Plan.size} numbering: node [i]'s first child is [i + 1], the
   second [i + 1 + size first]).  Allocated per run by the caller
   (explain, slow-query probes); execution is unchanged when absent. *)
module Stats = struct
  type t = {
    scanned : int array;
    probes : int array;
    joined : int array;
    emitted : int array;
  }

  let create n =
    {
      scanned = Array.make n 0;
      probes = Array.make n 0;
      joined = Array.make n 0;
      emitted = Array.make n 0;
    }

  let for_plan compiled = create (Plan.size (Compile.plan compiled))
  let sum = Array.fold_left ( + ) 0

  let totals s =
    [
      ("scanned", sum s.scanned);
      ("probes", sum s.probes);
      ("joined", sum s.joined);
      ("rows", if Array.length s.emitted = 0 then 0 else s.emitted.(0));
    ]
end

type st = {
  index : Sxml.Index.t;
  env : string -> string option;
  vars : string array;
  stats : Stats.t option;
}

let add_scanned st id n =
  match st.stats with
  | None -> ()
  | Some s -> s.Stats.scanned.(id) <- s.Stats.scanned.(id) + n

let add_probes st id n =
  match st.stats with
  | None -> ()
  | Some s -> s.Stats.probes.(id) <- s.Stats.probes.(id) + n

let add_joined st id n =
  match st.stats with
  | None -> ()
  | Some s -> s.Stats.joined.(id) <- s.Stats.joined.(id) + n

let add_emitted st id n =
  match st.stats with
  | None -> ()
  | Some s -> s.Stats.emitted.(id) <- s.Stats.emitted.(id) + n

let resolve st = function
  | Plan.Const c -> c
  | Plan.Slot i -> (
    let name = st.vars.(i) in
    match st.env name with
    | Some c -> c
    | None -> raise (Sxpath.Eval.Unbound_variable name))

(* first position in [arr] holding an id >= [target] *)
let lower_bound (arr : int array) target =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

(* Growable id buffer.  Pushes remember whether they arrived in
   ascending order so [contents] only sorts when a nested context
   actually interleaved ids (child steps from nested contexts). *)
module Buf = struct
  type t = {
    mutable a : int array;
    mutable len : int;
    mutable sorted : bool;
    mutable last : int;
  }

  let create () = { a = Array.make 16 0; len = 0; sorted = true; last = min_int }

  let push b x =
    if b.len = Array.length b.a then begin
      let a = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a 0 b.len;
      b.a <- a
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1;
    if x < b.last then b.sorted <- false;
    b.last <- x

  let contents b =
    let out = Array.sub b.a 0 b.len in
    if not b.sorted then Array.sort Int.compare out;
    out
end

let empty_ids : int array = [||]

(* Merge two sorted duplicate-free id arrays into one. *)
let merge a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let push x =
      if !k = 0 || out.(!k - 1) <> x then begin
        out.(!k) <- x;
        incr k
      end
    in
    while !i < la && !j < lb do
      if a.(!i) <= b.(!j) then begin
        if a.(!i) = b.(!j) then incr j;
        push a.(!i);
        incr i
      end
      else begin
        push b.(!j);
        incr j
      end
    done;
    while !i < la do
      push a.(!i);
      incr i
    done;
    while !j < lb do
      push b.(!j);
      incr j
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

let node st id = Sxml.Index.node st.index id

(* Set-at-a-time execution: contexts are sorted duplicate-free id
   arrays, and every operator preserves that invariant — child steps
   because distinct contexts have disjoint children (sort repairs
   interleaving from nested contexts), descendant joins because
   contexts nested inside an already-covered extent are skipped, so
   the emitted slices are disjoint and ascending.

   [id] is the plan node's preorder number — the slot its work lands
   in when [st.stats] is present. *)
let rec run_plan st (plan : Plan.t) (id : int) (ctx : int array) : int array =
  let out =
    match plan with
    | Plan.Nothing -> empty_ids
    | Plan.Self -> ctx
    | Plan.Child l ->
      let b = Buf.create () in
      let seen = ref 0 in
      Array.iter
        (fun c ->
          incr visited;
          List.iter
            (fun child ->
              incr seen;
              match Sxml.Tree.tag child with
              | Some t when String.equal t l -> Buf.push b child.Sxml.Tree.id
              | _ -> ())
            (Sxml.Tree.children (node st c)))
        ctx;
      add_scanned st id !seen;
      Buf.contents b
    | Plan.Child_any ->
      let b = Buf.create () in
      let seen = ref 0 in
      Array.iter
        (fun c ->
          incr visited;
          List.iter
            (fun child ->
              incr seen;
              if Sxml.Tree.is_element child then Buf.push b child.Sxml.Tree.id)
            (Sxml.Tree.children (node st c)))
        ctx;
      add_scanned st id !seen;
      Buf.contents b
    | Plan.Attr _ ->
      (* attribute values leave the node world; only probes see them *)
      empty_ids
    | Plan.Seq (a, b) ->
      run_plan st b (id + 1 + Plan.size a) (run_plan st a (id + 1) ctx)
    | Plan.Desc (l, k) ->
      let tagged = Sxml.Index.tag_ids st.index l in
      let b = Buf.create () in
      let covered = ref (-1) in
      let seen = ref 0 and joins = ref 0 in
      Array.iter
        (fun c ->
          if c > !covered then begin
            incr visited;
            incr joins;
            let last = Sxml.Index.extent st.index c in
            covered := last;
            let i = ref (lower_bound tagged (c + 1)) in
            while !i < Array.length tagged && tagged.(!i) <= last do
              incr seen;
              Buf.push b tagged.(!i);
              incr i
            done
          end)
        ctx;
      add_probes st id !joins;
      add_joined st id !joins;
      add_scanned st id !seen;
      run_plan st k (id + 1) (Buf.contents b)
    | Plan.Branch (a, b) ->
      merge (run_plan st a (id + 1) ctx)
        (run_plan st b (id + 1 + Plan.size a) ctx)
    | Plan.Filter (p, q) ->
      let base = run_plan st p (id + 1) ctx in
      let qid = id + 1 + Plan.size p in
      let b = Buf.create () in
      add_scanned st id (Array.length base);
      Array.iter (fun c -> if pred st q qid c then Buf.push b c) base;
      Buf.contents b
  in
  add_emitted st id (Array.length out);
  out

(* Node-at-a-time probe for qualifier evaluation: walk the plan from
   one context node, feeding result nodes to [on_node] and attribute
   string values to [on_attr], stopping as soon as either returns
   [true].  Mirrors the interpreter's result flow: a Seq drops its
   head's attribute values, a Filter filters nodes but passes its
   base's attribute values through unfiltered.  Probes count scanned
   candidates and index probes but not emitted rows — short-circuit
   means a probe's "output" is one boolean. *)
and probe st (plan : Plan.t) (id : int) (c : int) ~(on_node : int -> bool)
    ~(on_attr : string -> bool) : bool =
  match plan with
  | Plan.Nothing -> false
  | Plan.Self -> on_node c
  | Plan.Child l ->
    incr visited;
    let seen = ref 0 in
    let hit =
      List.exists
        (fun child ->
          incr seen;
          match Sxml.Tree.tag child with
          | Some t when String.equal t l -> on_node child.Sxml.Tree.id
          | _ -> false)
        (Sxml.Tree.children (node st c))
    in
    add_scanned st id !seen;
    hit
  | Plan.Child_any ->
    incr visited;
    let seen = ref 0 in
    let hit =
      List.exists
        (fun child ->
          incr seen;
          Sxml.Tree.is_element child && on_node child.Sxml.Tree.id)
        (Sxml.Tree.children (node st c))
    in
    add_scanned st id !seen;
    hit
  | Plan.Attr a -> (
    incr visited;
    add_scanned st id 1;
    match Sxml.Tree.attr (node st c) a with
    | Some v -> on_attr v
    | None -> false)
  | Plan.Seq (a, b) ->
    probe st a (id + 1) c
      ~on_node:(fun nid -> probe st b (id + 1 + Plan.size a) nid ~on_node ~on_attr)
      ~on_attr:(fun _ -> false)
  | Plan.Desc (l, k) ->
    incr visited;
    let tagged = Sxml.Index.tag_ids st.index l in
    let last = Sxml.Index.extent st.index c in
    let i = ref (lower_bound tagged (c + 1)) in
    add_probes st id 1;
    add_joined st id 1;
    let seen = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < Array.length tagged && tagged.(!i) <= last do
      incr seen;
      if probe st k (id + 1) tagged.(!i) ~on_node ~on_attr then stop := true;
      incr i
    done;
    add_scanned st id !seen;
    !stop
  | Plan.Branch (a, b) ->
    probe st a (id + 1) c ~on_node ~on_attr
    || probe st b (id + 1 + Plan.size a) c ~on_node ~on_attr
  | Plan.Filter (p, q) ->
    let qid = id + 1 + Plan.size p in
    probe st p (id + 1) c
      ~on_node:(fun nid -> pred st q qid nid && on_node nid)
      ~on_attr

and pred st (q : Plan.pred) (id : int) (c : int) : bool =
  match q with
  | Plan.True -> true
  | Plan.False -> false
  | Plan.Exists p ->
    add_scanned st id 1;
    probe st p (id + 1) c ~on_node:(fun _ -> true) ~on_attr:(fun _ -> true)
  | Plan.Eq (p, v) ->
    add_scanned st id 1;
    let cst = resolve st v in
    probe st p (id + 1) c
      ~on_node:(fun nid ->
        String.equal (Sxml.Tree.string_value (node st nid)) cst)
      ~on_attr:(fun a -> String.equal a cst)
  | Plan.And (a, b) ->
    pred st a (id + 1) c && pred st b (id + 1 + Plan.size_pred a) c
  | Plan.Or (a, b) ->
    pred st a (id + 1) c || pred st b (id + 1 + Plan.size_pred a) c
  | Plan.Not a -> not (pred st a (id + 1) c)

let no_env : string -> string option = fun _ -> None

let run_ids ?stats compiled ~index ?(env = no_env) ctx =
  let st = { index; env; vars = Compile.vars compiled; stats } in
  run_plan st (Compile.plan compiled) 0 ctx

let run ?stats compiled ~index ?(env = no_env) (root : Sxml.Tree.t) =
  let ids = run_ids ?stats compiled ~index ~env [| root.Sxml.Tree.id |] in
  Array.to_list (Array.map (Sxml.Index.node index) ids)
