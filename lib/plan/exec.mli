(** Plan execution over sorted dense-preorder id arrays.

    Contexts and results are strictly ascending, duplicate-free id
    arrays over one {!Sxml.Index.t}; descendant steps are answered by
    binary search into the per-tag id arrays against subtree extents
    (an interval join), qualifier probes walk node-at-a-time with
    short-circuit existence checks.

    Results are order- and duplicate-identical to
    {!Sxpath.Eval.run}: both produce document order, and the executor
    deduplicates by construction where the interpreter sorts.  The
    one observable difference is error laziness: a short-circuited
    probe may skip a qualifier branch the interpreter would have
    evaluated, so an [Unbound_variable] the interpreter raises from
    such a branch may not be raised here.  When both succeed the
    answers are byte-identical. *)

(** Per-operator work counters for one (or several accumulated) runs.

    One slot per plan node, numbered in preorder by {!Plan.size}: node
    [i]'s first child is [i + 1], its second [i + 1 + size first];
    predicate subtrees are numbered inline ({!Plan.size_pred}).  The
    root's [emitted] slot is the query's result count.

    - [scanned]: candidate nodes examined — children tested by child
      steps, tag-slice entries walked by descendant joins, base nodes
      tested by filters, attribute lookups, qualifier evaluations at
      [Exists]/[Eq] nodes;
    - [probes]: binary searches into per-tag id arrays;
    - [joined]: context extents actually interval-joined by a
      descendant step (contexts skipped as already covered are not
      counted);
    - [emitted]: ids the operator produced (set-at-a-time path only;
      short-circuit qualifier probes produce booleans, not rows). *)
module Stats : sig
  type t = {
    scanned : int array;
    probes : int array;
    joined : int array;
    emitted : int array;
  }

  val create : int -> t
  (** [create n]: all-zero counters for a plan of [n] nodes. *)

  val for_plan : Compile.t -> t
  (** Sized by {!Plan.size} of the compiled plan. *)

  val totals : t -> (string * int) list
  (** [scanned]/[probes]/[joined] summed over all operators, plus
      [rows] = the root's emitted count. *)
end

val run :
  ?stats:Stats.t ->
  Compile.t ->
  index:Sxml.Index.t ->
  ?env:(string -> string option) ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** [run compiled ~index v]: nodes reachable from context node [v]
    (a node of the indexed document), in document order,
    duplicate-free.  [stats] (see {!Stats}) accumulates per-operator
    work counters; execution is identical without it.
    @raise Sxpath.Eval.Unbound_variable like the
    interpreter (modulo the laziness caveat above). *)

val run_ids :
  ?stats:Stats.t ->
  Compile.t ->
  index:Sxml.Index.t ->
  ?env:(string -> string option) ->
  int array ->
  int array
(** Same, set-at-a-time over raw ids: the context array must be
    strictly ascending and duplicate-free. *)

val visited : int ref
(** Work counter, same contract as {!Sxpath.Eval.visited}: bumped per
    context-node × operator touch.  Reset it yourself between
    measurements. *)
