(** Plan execution over sorted dense-preorder id arrays.

    Contexts and results are strictly ascending, duplicate-free id
    arrays over one {!Sxml.Index.t}; descendant steps are answered by
    binary search into the per-tag id arrays against subtree extents
    (an interval join), qualifier probes walk node-at-a-time with
    short-circuit existence checks.

    Results are order- and duplicate-identical to
    {!Sxpath.Eval.run}: both produce document order, and the executor
    deduplicates by construction where the interpreter sorts.  The
    one observable difference is error laziness: a short-circuited
    probe may skip a qualifier branch the interpreter would have
    evaluated, so an [Unbound_variable] the interpreter raises from
    such a branch may not be raised here.  When both succeed the
    answers are byte-identical. *)

val run :
  Compile.t ->
  index:Sxml.Index.t ->
  ?env:(string -> string option) ->
  Sxml.Tree.t ->
  Sxml.Tree.t list
(** [run compiled ~index v]: nodes reachable from context node [v]
    (a node of the indexed document), in document order,
    duplicate-free.  @raise Sxpath.Eval.Unbound_variable like the
    interpreter (modulo the laziness caveat above). *)

val run_ids :
  Compile.t ->
  index:Sxml.Index.t ->
  ?env:(string -> string option) ->
  int array ->
  int array
(** Same, set-at-a-time over raw ids: the context array must be
    strictly ascending and duplicate-free. *)

val visited : int ref
(** Work counter, same contract as {!Sxpath.Eval.visited}: bumped per
    context-node × operator touch.  Reset it yourself between
    measurements. *)
