type node = {
  op : string;
  arg : string option;
  counts : (string * int) list;
  children : node list;
}

let of_compiled compiled (s : Exec.Stats.t) =
  let vars = Compile.vars compiled in
  let value = function
    | Plan.Const c -> "\"" ^ c ^ "\""
    | Plan.Slot i -> "$" ^ vars.(i)
  in
  let counts_at ~emitted id =
    List.concat
      [
        (if s.scanned.(id) > 0 then [ ("scanned", s.scanned.(id)) ] else []);
        (if s.probes.(id) > 0 then [ ("probes", s.probes.(id)) ] else []);
        (if s.joined.(id) > 0 then [ ("joined", s.joined.(id)) ] else []);
        (if emitted then [ ("emitted", s.emitted.(id)) ] else []);
      ]
  in
  (* Mirrors the executor's preorder numbering exactly (see
     {!Exec.Stats}), so each rendered node shows its own slot. *)
  let rec plan_node id (p : Plan.t) =
    let mk op ?arg children =
      { op; arg; counts = counts_at ~emitted:true id; children }
    in
    match p with
    | Plan.Nothing -> mk "nothing" []
    | Plan.Self -> mk "self" []
    | Plan.Child l -> mk "child" ~arg:l []
    | Plan.Child_any -> mk "child" ~arg:"*" []
    | Plan.Attr a -> mk "attr" ~arg:("@" ^ a) []
    | Plan.Seq (a, b) ->
      mk "seq" [ plan_node (id + 1) a; plan_node (id + 1 + Plan.size a) b ]
    | Plan.Desc (l, k) -> mk "desc" ~arg:l [ plan_node (id + 1) k ]
    | Plan.Branch (a, b) ->
      mk "union" [ plan_node (id + 1) a; plan_node (id + 1 + Plan.size a) b ]
    | Plan.Filter (p', q) ->
      mk "filter"
        [ plan_node (id + 1) p'; pred_node (id + 1 + Plan.size p') q ]
  and pred_node id (q : Plan.pred) =
    let mk op ?arg children =
      { op; arg; counts = counts_at ~emitted:false id; children }
    in
    match q with
    | Plan.True -> mk "true" []
    | Plan.False -> mk "false" []
    | Plan.Exists p -> mk "exists" [ plan_node (id + 1) p ]
    | Plan.Eq (p, v) -> mk "eq" ~arg:(value v) [ plan_node (id + 1) p ]
    | Plan.And (a, b) ->
      mk "and"
        [ pred_node (id + 1) a; pred_node (id + 1 + Plan.size_pred a) b ]
    | Plan.Or (a, b) ->
      mk "or"
        [ pred_node (id + 1) a; pred_node (id + 1 + Plan.size_pred a) b ]
    | Plan.Not a -> mk "not" [ pred_node (id + 1) a ]
  in
  plan_node 0 (Compile.plan compiled)

let label n =
  match n.arg with Some a -> n.op ^ "(" ^ a ^ ")" | None -> n.op

let rec pp_at ppf depth n =
  let counts =
    String.concat " "
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) n.counts)
  in
  let indent = String.make (2 * depth) ' ' in
  if counts = "" then Format.fprintf ppf "%s%s@." indent (label n)
  else
    Format.fprintf ppf "%s%-*s %s@." indent
      (max 1 (30 - (2 * depth)))
      (label n) counts;
  List.iter (pp_at ppf (depth + 1)) n.children

let pp ppf n = pp_at ppf 0 n
