(** EXPLAIN: the compiled operator tree annotated with the work
    counters of an actual run.

    {!of_compiled} pairs a {!Compile.t} with the {!Exec.Stats}
    collected while executing it and produces a neutral tree —
    operator name, optional argument (a child/descendant label, an
    attribute, an equality operand), the node's non-zero counters, and
    children.  The tree is deliberately free of any JSON dependency;
    [secview explain --json] and the server's [explain] verb convert
    it downstream.

    Counter semantics are {!Exec.Stats}'s: [scanned]/[probes]/[joined]
    appear when non-zero, [emitted] on every plan operator (the root's
    [emitted] is the query's result count); predicate nodes carry only
    [scanned] (qualifier evaluations / candidates tested), since a
    short-circuit probe emits booleans, not rows. *)

type node = {
  op : string;
      (** [nothing]/[self]/[child]/[attr]/[seq]/[desc]/[union]/[filter],
          or a predicate: [true]/[false]/[exists]/[eq]/[and]/[or]/[not] *)
  arg : string option;
  counts : (string * int) list;
  children : node list;
}

val of_compiled : Compile.t -> Exec.Stats.t -> node

val label : node -> string
(** [op] or [op(arg)]. *)

val pp : Format.formatter -> node -> unit
(** Two-space-indented tree, one node per line, counters aligned. *)
