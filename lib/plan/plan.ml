(* Physical-plan operator tree for the fragment.  One constructor per
   physical operator, not per AST form: descendant steps only exist in
   the label-headed shape the executor can answer with a binary-search
   interval join, and [$var] references are compiled to slots into the
   plan's variable table. *)

type value =
  | Const of string
  | Slot of int  (* index into {!Compile.vars} *)

type pred =
  | True
  | False
  | Exists of t
  | Eq of t * value
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and t =
  | Nothing  (* the empty query #empty *)
  | Self  (* ε *)
  | Child of string  (* child step l *)
  | Child_any  (* child step * *)
  | Attr of string  (* attribute step @a: string values, no nodes *)
  | Seq of t * t  (* p1/p2 *)
  | Desc of string * t  (* //l then continuation: interval join *)
  | Branch of t * t  (* p1 ∪ p2: sorted merge *)
  | Filter of t * pred  (* p[q]: per-node probe with short-circuit *)

let rec size = function
  | Nothing | Self | Child _ | Child_any | Attr _ -> 1
  | Seq (a, b) | Branch (a, b) -> 1 + size a + size b
  | Desc (_, k) -> 1 + size k
  | Filter (p, q) -> 1 + size p + size_pred q

and size_pred = function
  | True | False -> 1
  | Exists p -> 1 + size p
  | Eq (p, _) -> 1 + size p
  | And (a, b) | Or (a, b) -> 1 + size_pred a + size_pred b
  | Not a -> 1 + size_pred a
