type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity = max 1 capacity;
    closed = false;
  }

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  let item = if Queue.is_empty t.items then None else Some (Queue.pop t.items) in
  Mutex.unlock t.lock;
  item

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)

let is_closed t = Mutex.protect t.lock (fun () -> t.closed)
