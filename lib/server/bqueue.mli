(** A bounded multi-producer multi-consumer queue — the server's
    admission-control point.

    Producers never block: {!try_push} either admits the item or
    reports [`Full]/[`Closed] immediately, so a connection thread can
    answer [overloaded] instead of buffering without bound.
    Consumers block in {!pop} until an item arrives or the queue is
    closed {e and} drained — closing is how graceful drain tells the
    worker pool "finish what is queued, then exit". *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

val pop : 'a t -> 'a option
(** Blocks.  [None] means closed and fully drained; remaining items
    of a closed queue are still delivered first. *)

val close : 'a t -> unit
(** Idempotent; wakes every blocked consumer. *)

val length : 'a t -> int
val is_closed : 'a t -> bool
