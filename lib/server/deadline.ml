let now () = Int64.to_float (Sobs.Clock.monotonic ()) /. 1e9

type 'a cell = {
  lock : Mutex.t;
  filled : Condition.t;
  mutable value : 'a option;
}

let cell () =
  { lock = Mutex.create (); filled = Condition.create (); value = None }

let fill c v =
  Mutex.protect c.lock (fun () ->
      match c.value with
      | Some _ -> false
      | None ->
        c.value <- Some v;
        Condition.broadcast c.filled;
        true)

let peek c = Mutex.protect c.lock (fun () -> c.value)

(* [Condition] has no timed wait in the stdlib, so the bounded wait
   polls: 1ms ticks keep timeout precision well under any deadline a
   server would configure while costing nothing measurable next to
   query evaluation. *)
let await ?deadline_at c =
  match deadline_at with
  | None ->
    Mutex.lock c.lock;
    while c.value = None do
      Condition.wait c.filled c.lock
    done;
    let v = c.value in
    Mutex.unlock c.lock;
    v
  | Some t ->
    let rec go () =
      match peek c with
      | Some _ as v -> v
      | None ->
        if now () >= t then None
        else begin
          Thread.delay 0.001;
          go ()
        end
    in
    go ()

let run ~seconds f =
  let c = cell () in
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let r = match f () with v -> Ok v | exception e -> Error e in
        ignore (fill c r))
      ()
  in
  match await ~deadline_at:(now () +. seconds) c with
  | Some (Ok v) -> Ok v
  | Some (Error e) -> raise e
  | None -> Error `Timeout
