(** Per-request deadlines: single-assignment reply cells with bounded
    waits, and a one-shot wall-clock guard built on them.

    A worker executes a request and {!fill}s its cell; the connection
    thread {!await}s the cell up to the request's deadline.  Whoever
    loses the race learns so: [fill] reports whether its value won,
    and a [None] from a bounded [await] means the deadline passed
    first.  OCaml threads cannot be killed, so a timed-out
    computation keeps running to completion in the background — the
    deadline bounds the {e response}, and the server accounts the
    stale result as "late" when it eventually lands. *)

val now : unit -> float
(** Monotonic seconds (arbitrary epoch) — the clock all deadlines are
    expressed in. *)

type 'a cell

val cell : unit -> 'a cell

val fill : 'a cell -> 'a -> bool
(** First fill wins and returns [true]; later fills are dropped. *)

val peek : 'a cell -> 'a option

val await : ?deadline_at:float -> 'a cell -> 'a option
(** Block until the cell is filled.  With [deadline_at] (absolute,
    {!now}'s clock), give up and return [None] once it passes. *)

val run : seconds:float -> (unit -> 'a) -> ('a, [ `Timeout ]) result
(** Run [f] in a fresh thread with a relative deadline — the guard
    behind [secview query --timeout].  Re-raises [f]'s exception if
    it fails within the deadline; on [Error `Timeout] the underlying
    thread is abandoned (it still runs to completion, but its result
    is discarded — callers exiting the process lose nothing). *)
