module J = Sobs.Json

type query = {
  doc : string option;
  text : string;
  bind : (string * string) list;
  use_index : bool;
}

type request =
  | Hello of {
      group : string;
      peer : string option;
    }
  | Query of query
  | Explain of query
  | Analyze of query
  | Update of query  (** [text] is the update's concrete syntax *)
  | Stats
  | Metrics
  | Flight
  | Ping
  | Shutdown
  | Sleep of float

let version = 1

(* error codes (the protocol's closed vocabulary) *)
let bad_request = "bad_request"
let unknown_group = "unknown_group"
let no_session = "no_session"
let unknown_document = "unknown_document"
let overloaded = "overloaded"
let draining = "draining"
let timeout = "timeout"
let query_error = "query_error"
let update_denied = "update_denied"
let invalid_update = "invalid_update"

(* Every reply carries the request-correlation id right after the
   version field — the same id lands in the audit log and the flight
   recorder, so one request is traceable across every surface. *)
let rid_fields = function
  | Some r -> [ ("rid", J.String r) ]
  | None -> []

let ok ?rid fields =
  J.Obj (("ok", J.Bool true) :: ("v", J.Int version) :: rid_fields rid @ fields)

let error ?rid ~code msg =
  J.Obj
    (("ok", J.Bool false) :: ("v", J.Int version) :: rid_fields rid
    @ [ ("code", J.String code); ("error", J.String msg) ])

let error_of ?rid (e : Secview.Error.t) =
  error ?rid ~code:(Secview.Error.to_code e) (Secview.Error.to_string e)

let field name obj = J.member name obj

let string_field name obj = Option.bind (field name obj) J.to_string_opt

(* Best-effort client rid recovery for error replies: even a request
   that fails to parse as a command can still be correlated, as long
   as the line was a JSON object with a string ["rid"]. *)
let rid_of_line line =
  match J.of_string line with
  | Ok (J.Obj _ as obj) -> string_field "rid" obj
  | _ -> None

let request_of_line line =
  let with_rid obj r = Result.map (fun req -> (req, r)) obj in
  match J.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok (J.Obj _ as obj) when
      (match field "v" obj with None | Some (J.Int 1) -> false | Some _ -> true)
    ->
    Error
      (Printf.sprintf "unsupported protocol version (this server speaks \"v\":%d)"
         version)
  | Ok (J.Obj _ as obj) when
      (match field "rid" obj with
      | None | Some (J.String _) -> false
      | Some _ -> true) -> Error "\"rid\" must be a string"
  | Ok (J.Obj _ as obj) -> (
    let rid = string_field "rid" obj in
    with_rid
      (match string_field "cmd" obj with
    | None -> Error "missing string field \"cmd\""
    | Some "hello" -> (
      match string_field "group" obj with
      | Some group -> Ok (Hello { group; peer = string_field "peer" obj })
      | None -> Error "hello: missing string field \"group\"")
    | Some ("query" | "explain" | "analyze" | "update") -> (
      let cmd = Option.get (string_field "cmd" obj) in
      (* the update text rides in its own field, so a query named
         "update" stays expressible and logs read unambiguously *)
      let text_field = if cmd = "update" then "update" else "query" in
      match string_field text_field obj with
      | None ->
        Error (Printf.sprintf "%s: missing string field %S" cmd text_field)
      | Some text -> (
        let bind =
          match field "bind" obj with
          | None -> Ok []
          | Some (J.Obj fields) ->
            List.fold_left
              (fun acc (k, v) ->
                match (acc, J.to_string_opt v) with
                | Error _, _ -> acc
                | Ok bs, Some s -> Ok ((k, s) :: bs)
                | Ok _, None ->
                  Error
                    (Printf.sprintf "%s: binding %S must be a string" cmd k))
              (Ok []) fields
          | Some _ ->
            Error (cmd ^ ": \"bind\" must be an object of strings")
        in
        match bind with
        | Error e -> Error e
        | Ok bind -> (
          match field "index" obj with
          | Some j when J.to_bool_opt j = None ->
            Error "\"index\" must be a boolean"
          | index ->
            let use_index =
              match Option.bind index J.to_bool_opt with
              | Some b -> b
              | None -> false
            in
            let q =
              { doc = string_field "doc" obj; text; bind = List.rev bind;
                use_index }
            in
            Ok
              (match cmd with
              | "explain" -> Explain q
              | "analyze" -> Analyze q
              | "update" -> Update q
              | _ -> Query q))))
    | Some "stats" -> Ok Stats
    | Some "metrics" -> Ok Metrics
    | Some "flight" -> Ok Flight
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some "sleep" -> (
      match Option.bind (field "ms" obj) J.to_float_opt with
      | Some ms when ms >= 0. -> Ok (Sleep (ms /. 1000.))
      | Some _ -> Error "sleep: \"ms\" must be non-negative"
      | None -> Error "sleep: missing numeric field \"ms\"")
    | Some cmd -> Error (Printf.sprintf "unknown command %S" cmd))
      rid)
  | Ok _ -> Error "request must be a JSON object"

let client_rid = function
  | Some r -> [ ("rid", J.String r) ]
  | None -> []

let hello ?peer group =
  J.Obj
    (("cmd", J.String "hello")
     :: ("group", J.String group)
     :: (match peer with Some p -> [ ("peer", J.String p) ] | None -> []))

let query_json ?rid ?doc ?(bind = []) ?(use_index = false) text =
  J.Obj
    (("cmd", J.String "query")
     :: client_rid rid
    @ ("query", J.String text)
      :: (match doc with Some d -> [ ("doc", J.String d) ] | None -> [])
    @ (if bind = [] then []
       else [ ("bind", J.Obj (List.map (fun (k, v) -> (k, J.String v)) bind)) ])
    @ if use_index then [ ("index", J.Bool true) ] else [])

let update_json ?rid ?doc ?(bind = []) text =
  J.Obj
    (("cmd", J.String "update")
     :: client_rid rid
    @ ("update", J.String text)
      :: (match doc with Some d -> [ ("doc", J.String d) ] | None -> [])
    @
    if bind = [] then []
    else [ ("bind", J.Obj (List.map (fun (k, v) -> (k, J.String v)) bind)) ])

let simple cmd = J.Obj [ ("cmd", J.String cmd) ]

let rec explain_json (n : Splan.Explain.node) =
  J.Obj
    (("op", J.String n.op)
     :: (match n.arg with Some a -> [ ("arg", J.String a) ] | None -> [])
    @ [
        ( "counts",
          J.Obj (List.map (fun (k, v) -> (k, J.Int v)) n.counts) );
      ]
    @
    if n.children = [] then []
    else [ ("children", J.List (List.map explain_json n.children)) ])

