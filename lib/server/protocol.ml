module J = Sobs.Json

type query = {
  doc : string option;
  text : string;
  bind : (string * string) list;
  use_index : bool;
}

type request =
  | Hello of {
      group : string;
      peer : string option;
    }
  | Query of query
  | Explain of query
  | Analyze of query
  | Stats
  | Metrics
  | Ping
  | Shutdown
  | Sleep of float

let version = 1

(* error codes (the protocol's closed vocabulary) *)
let bad_request = "bad_request"
let unknown_group = "unknown_group"
let no_session = "no_session"
let unknown_document = "unknown_document"
let overloaded = "overloaded"
let draining = "draining"
let timeout = "timeout"
let query_error = "query_error"

let ok fields = J.Obj (("ok", J.Bool true) :: ("v", J.Int version) :: fields)

let error ~code msg =
  J.Obj
    [
      ("ok", J.Bool false);
      ("v", J.Int version);
      ("code", J.String code);
      ("error", J.String msg);
    ]

let error_of (e : Secview.Error.t) =
  error ~code:(Secview.Error.to_code e) (Secview.Error.to_string e)

let field name obj = J.member name obj

let string_field name obj = Option.bind (field name obj) J.to_string_opt

let request_of_line line =
  match J.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok (J.Obj _ as obj) when
      (match field "v" obj with None | Some (J.Int 1) -> false | Some _ -> true)
    ->
    Error
      (Printf.sprintf "unsupported protocol version (this server speaks \"v\":%d)"
         version)
  | Ok (J.Obj _ as obj) -> (
    match string_field "cmd" obj with
    | None -> Error "missing string field \"cmd\""
    | Some "hello" -> (
      match string_field "group" obj with
      | Some group -> Ok (Hello { group; peer = string_field "peer" obj })
      | None -> Error "hello: missing string field \"group\"")
    | Some ("query" | "explain" | "analyze") -> (
      let cmd = Option.get (string_field "cmd" obj) in
      match string_field "query" obj with
      | None -> Error (cmd ^ ": missing string field \"query\"")
      | Some text -> (
        let bind =
          match field "bind" obj with
          | None -> Ok []
          | Some (J.Obj fields) ->
            List.fold_left
              (fun acc (k, v) ->
                match (acc, J.to_string_opt v) with
                | Error _, _ -> acc
                | Ok bs, Some s -> Ok ((k, s) :: bs)
                | Ok _, None ->
                  Error
                    (Printf.sprintf "%s: binding %S must be a string" cmd k))
              (Ok []) fields
          | Some _ ->
            Error (cmd ^ ": \"bind\" must be an object of strings")
        in
        match bind with
        | Error e -> Error e
        | Ok bind -> (
          match field "index" obj with
          | Some j when J.to_bool_opt j = None ->
            Error "\"index\" must be a boolean"
          | index ->
            let use_index =
              match Option.bind index J.to_bool_opt with
              | Some b -> b
              | None -> false
            in
            let q =
              { doc = string_field "doc" obj; text; bind = List.rev bind;
                use_index }
            in
            Ok
              (match cmd with
              | "explain" -> Explain q
              | "analyze" -> Analyze q
              | _ -> Query q))))
    | Some "stats" -> Ok Stats
    | Some "metrics" -> Ok Metrics
    | Some "ping" -> Ok Ping
    | Some "shutdown" -> Ok Shutdown
    | Some "sleep" -> (
      match Option.bind (field "ms" obj) J.to_float_opt with
      | Some ms when ms >= 0. -> Ok (Sleep (ms /. 1000.))
      | Some _ -> Error "sleep: \"ms\" must be non-negative"
      | None -> Error "sleep: missing numeric field \"ms\"")
    | Some cmd -> Error (Printf.sprintf "unknown command %S" cmd))
  | Ok _ -> Error "request must be a JSON object"

let hello ?peer group =
  J.Obj
    (("cmd", J.String "hello")
     :: ("group", J.String group)
     :: (match peer with Some p -> [ ("peer", J.String p) ] | None -> []))

let query_json ?doc ?(bind = []) ?(use_index = false) text =
  J.Obj
    (("cmd", J.String "query")
     :: ("query", J.String text)
     :: (match doc with Some d -> [ ("doc", J.String d) ] | None -> [])
    @ (if bind = [] then []
       else [ ("bind", J.Obj (List.map (fun (k, v) -> (k, J.String v)) bind)) ])
    @ if use_index then [ ("index", J.Bool true) ] else [])

let simple cmd = J.Obj [ ("cmd", J.String cmd) ]

let rec explain_json (n : Splan.Explain.node) =
  J.Obj
    (("op", J.String n.op)
     :: (match n.arg with Some a -> [ ("arg", J.String a) ] | None -> [])
    @ [
        ( "counts",
          J.Obj (List.map (fun (k, v) -> (k, J.Int v)) n.counts) );
      ]
    @
    if n.children = [] then []
    else [ ("children", J.List (List.map explain_json n.children)) ])

