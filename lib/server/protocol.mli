(** The server's wire protocol: one JSON object per line, both ways.

    Requests, discriminated by ["cmd"]:

    {v
    {"cmd":"hello","group":G,"peer":P?}          bind the session to a group
    {"cmd":"query","query":Q,"doc":D?,           answer a view query
     "bind":{name:value,…}?,"index":B?}
    {"cmd":"explain","query":Q,"doc":D?,         EXPLAIN instead of answer
     "bind":{name:value,…}?}                     (same fields as query)
    {"cmd":"analyze","query":Q}                  static admission verdict only
    {"cmd":"update","update":U,"doc":D?,         run a view update
     "bind":{name:value,…}?}                     (transactional; see below)
    {"cmd":"stats"}                              server statistics
    {"cmd":"metrics"}                            metrics dump + OpenMetrics
    {"cmd":"flight"}                             flight-recorder dump
    {"cmd":"ping"}                               liveness
    {"cmd":"shutdown"}                           reply, then drain
    {"cmd":"sleep","ms":N}                       debug servers only
    v}

    Every request may additionally carry a string ["rid"] — a
    client-chosen request-correlation id.  Replies always carry
    ["ok"], the protocol version ["v"], and a ["rid"] (echoing the
    client's, or server-generated [r<session>-<n>] otherwise):
    [{"ok":true,"v":1,"rid":R,…}] on success,
    [{"ok":false,"v":1,"rid":R,"code":C,"error":MSG}] on failure,
    where [code] is one of the constants below — [overloaded] is the
    admission-control reply and means "try again", not "goodbye".
    The same rid is stamped into the server's audit records and
    flight-recorder entries. *)

type query = {
  doc : string option;  (** catalog name; optional iff one document *)
  text : string;  (** the view query, fragment-C XPath *)
  bind : (string * string) list;  (** [$variable] bindings *)
  use_index : bool;  (** evaluate with the document's tag index *)
}

type request =
  | Hello of {
      group : string;
      peer : string option;
    }
  | Query of query
  | Explain of query  (** same shape as a query; answered with a plan tree *)
  | Analyze of query
      (** same shape as a query; answered with the static admission
          verdict ({!Secview.Pipeline.classify}) — no document is
          touched, no evaluation runs *)
  | Update of query
      (** [text] holds the update's concrete syntax (the [update]
          wire field); [use_index] is always [false].  Runs through
          the worker pool like a query but serialized per document
          against other writers; an admitted update's reply carries
          the target count and the [old_version → new_version]
          transition, a rejected one is an [update_denied] /
          [invalid_update] error reply with nothing applied *)
  | Stats
  | Metrics
  | Flight  (** flight-recorder dump; session-less like [Metrics] *)
  | Ping
  | Shutdown
  | Sleep of float  (** seconds; only honoured by [--debug] servers *)

val request_of_line : string -> (request * string option, string) result
(** Decode one line; the second component is the client-supplied
    ["rid"], if any.  The error string is human-readable and becomes
    the [bad_request] reply's message. *)

val rid_of_line : string -> string option
(** Best-effort ["rid"] recovery from a line that failed to decode as
    a command — error replies stay correlatable when the request was
    at least a JSON object. *)

val version : int
(** The protocol version, 1.  Every reply carries it as ["v"];
    requests may carry ["v"] too, and a value other than the server's
    version is refused as [bad_request] (a missing ["v"] is accepted
    as "current"). *)

(** {1 Error codes} *)

val bad_request : string
val unknown_group : string
val no_session : string
val unknown_document : string
val overloaded : string
val draining : string
val timeout : string
val query_error : string
val update_denied : string
val invalid_update : string

(** {1 Reply and request builders} *)

val ok : ?rid:string -> (string * Sobs.Json.t) list -> Sobs.Json.t
(** [{"ok":true,"v":1,"rid":R}] plus the given fields (rid omitted
    when absent — only the CLI's local drivers omit it). *)

val error : ?rid:string -> code:string -> string -> Sobs.Json.t

val error_of : ?rid:string -> Secview.Error.t -> Sobs.Json.t
(** Error reply for a typed engine error: the code is
    {!Secview.Error.to_code}, the message {!Secview.Error.to_string}. *)

val hello : ?peer:string -> string -> Sobs.Json.t
val query_json :
  ?rid:string ->
  ?doc:string ->
  ?bind:(string * string) list ->
  ?use_index:bool ->
  string ->
  Sobs.Json.t
(** With [rid], the client picks the correlation id ([secview replay]
    re-sends the captured ids so a replayed request is traceable in
    both capture and live logs). *)

val update_json :
  ?rid:string ->
  ?doc:string ->
  ?bind:(string * string) list ->
  string ->
  Sobs.Json.t
(** An update command carrying the concrete update syntax. *)

val simple : string -> Sobs.Json.t
(** [{"cmd":CMD}] — for [stats], [metrics], [ping], [shutdown]. *)

val explain_json : Splan.Explain.node -> Sobs.Json.t
(** A {!Splan.Explain} tree as JSON: [op], [arg] (when present),
    [counts] as an object, [children] (when non-empty).  Shared by the
    [explain] server verb and [secview explain --json]. *)
