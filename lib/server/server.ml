module J = Sobs.Json
module Pipeline = Secview.Pipeline
module Catalog = Secview.Catalog

type config = {
  workers : int;
  queue_capacity : int;
  deadline : float option;
  debug : bool;
  engine : Pipeline.engine;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 64;
    deadline = None;
    debug = false;
    engine = Pipeline.Plan;
  }

type listener =
  | Unix_socket of string
  | Tcp of string * int

type session = {
  sid : int;
  mutable group : string option;
  mutable peer : string;
}

type work =
  | Answer of Protocol.query
  | Nap of float

type job = {
  jsession : session;
  jgroup : string;
  work : work;
  submitted : float;
  deadline_at : float option;
  cell : J.t Deadline.cell;
}

type t = {
  config : config;
  pipeline : Pipeline.t;
  catalog : Catalog.t;
  queue : job Bqueue.t;
  metrics : Sobs.Metrics.t;
  obs_lock : Mutex.t;  (* serializes metrics updates and audit writes *)
  audit : Sobs.Audit_log.t option;
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  started : float;
  next_sid : int Atomic.t;
  conn_lock : Mutex.t;
  mutable conns : Thread.t list;
}

let create ?(config = default_config) ?audit ?metrics pipeline =
  let wake_r, wake_w = Unix.pipe () in
  {
    config = { config with workers = max 1 config.workers };
    pipeline;
    catalog = Pipeline.catalog pipeline;
    queue = Bqueue.create ~capacity:config.queue_capacity;
    metrics = (match metrics with Some m -> m | None -> Sobs.Metrics.create ());
    obs_lock = Mutex.create ();
    audit;
    stopping = Atomic.make false;
    wake_r;
    wake_w;
    started = Deadline.now ();
    next_sid = Atomic.make 1;
    conn_lock = Mutex.create ();
    conns = [];
  }

let metrics t = t.metrics

let count ?(by = 1) t name =
  Mutex.protect t.obs_lock (fun () -> Sobs.Metrics.incr ~by t.metrics name)

let observe t name v =
  Mutex.protect t.obs_lock (fun () -> Sobs.Metrics.observe t.metrics name v)

let audit_request t ~session ~peer ~group ~doc ~query ~status ~results
    ~latency_ms ?error () =
  match t.audit with
  | None -> ()
  | Some log ->
    Mutex.protect t.obs_lock (fun () ->
        Sobs.Audit_log.log_request log ~session ~peer ~group ~doc ~query
          ~status ~results ~latency_ms ?error ())

let draining t = Atomic.get t.stopping

let wake t = ignore (try Unix.write t.wake_w (Bytes.of_string "!") 0 1 with _ -> 0)

(* Safe from a signal handler: one atomic store and one pipe write. *)
let request_drain t =
  Atomic.set t.stopping true;
  wake t

let install_sigint t =
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_drain t))

(* ---- request execution (worker side) ------------------------------- *)

let group_names t =
  List.map (fun g -> g.Pipeline.name) (Pipeline.groups t.pipeline)

let resolve_document t = function
  | Some name -> (
    match Catalog.find t.catalog name with
    | Some entry -> Ok entry
    | None ->
      Error
        (Secview.Error.Unknown_doc
           { doc = Some name; known = Catalog.names t.catalog }))
  | None -> (
    match Catalog.names t.catalog with
    | [ only ] -> Ok (Option.get (Catalog.find t.catalog only))
    | known -> Error (Secview.Error.Unknown_doc { doc = None; known }))

(* Failures come back as [Secview.Error.t]: the reply code and message
   are [Protocol.error_of]'s one mapping instead of per-site strings. *)
let answer_query t ~group (q : Protocol.query) =
  match resolve_document t q.doc with
  | Error _ as e -> e
  | Ok entry -> (
    match Sxpath.Parse.of_string_result q.text with
    | Error e ->
      Error
        (Secview.Error.Parse_error
           { position = e.Sxpath.Parse.position; message = e.Sxpath.Parse.message })
    | Ok path -> (
      let env name = List.assoc_opt name q.bind in
      match
        let doc = Catalog.doc entry in
        let index = if q.use_index then Some (Catalog.index entry) else None in
        Pipeline.answer t.pipeline ~group ~engine:t.config.engine ~env ?index
          path doc
      with
      | Ok results -> Ok (List.map (fun n -> Sxml.Print.to_string n) results)
      | Error _ as e -> e
      | exception Sxml.Parse.Error e ->
        Error
          (Secview.Error.Internal
             ("document failed to parse: " ^ Sxml.Parse.error_to_string e))
      | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
        Error (Secview.Error.Internal msg)
      | exception exn ->
        (* anything else the evaluator can raise: the request failed,
           the worker must survive *)
        Error (Secview.Error.Internal (Printexc.to_string exn))))

let doc_label t (q : Protocol.query) =
  match q.doc with
  | Some d -> d
  | None -> (
    (* the single-document default: audit the name it resolved to *)
    match Catalog.names t.catalog with [ n ] -> n | _ -> "-")

let run_job t job =
  let latency () = 1000. *. (Deadline.now () -. job.submitted) in
  let log ~status ~results ?error ~latency_ms () =
    match job.work with
    | Nap _ -> ()
    | Answer q ->
      audit_request t ~session:job.jsession.sid ~peer:job.jsession.peer
        ~group:job.jgroup ~doc:(doc_label t q) ~query:q.text ~status ~results
        ~latency_ms ?error ()
  in
  let expired =
    match job.deadline_at with
    | Some d -> Deadline.now () > d
    | None -> false
  in
  if expired || Deadline.peek job.cell <> None then begin
    (* the connection thread answered [timeout] (or will, immediately):
       don't burn a worker on a reply nobody is waiting for *)
    ignore
      (Deadline.fill job.cell
         (Protocol.error_of (Secview.Error.Timeout "deadline exceeded in queue")));
    count t "server.expired_in_queue";
    log ~status:"timeout" ~results:0 ~error:"deadline exceeded in queue"
      ~latency_ms:(latency ()) ()
  end
  else
    let reply, status, results, error =
      match job.work with
      | Nap s ->
        Thread.delay s;
        (Protocol.ok [ ("slept_ms", J.Float (1000. *. s)) ], "ok", 0, None)
      | Answer q -> (
        match answer_query t ~group:job.jgroup q with
        | Ok results ->
          ( Protocol.ok
              [
                ("results", J.List (List.map (fun s -> J.String s) results));
                ("count", J.Int (List.length results));
              ],
            "ok",
            List.length results,
            None )
        | Error e ->
          (Protocol.error_of e, "error", 0, Some (Secview.Error.to_string e)))
    in
    let won = Deadline.fill job.cell reply in
    let latency_ms = latency () in
    let status = if won then status else "late" in
    count t ("server.done." ^ status);
    observe t ("server.latency_ms." ^ job.jgroup) latency_ms;
    log ~status ~results ?error ~latency_ms ()

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some job ->
    (try run_job t job
     with exn ->
       (* last line of defense: a worker that dies strands every
          queued request, so fill the cell and keep looping *)
       ignore
         (Deadline.fill job.cell
            (Protocol.error_of
               (Secview.Error.Internal
                  ("internal error: " ^ Printexc.to_string exn))));
       count t "server.done.internal_error");
    worker_loop t

(* ---- connection handling ------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let send fd json = write_all fd (J.to_string json ^ "\n")

let stats_json t =
  let counters, latencies =
    Mutex.protect t.obs_lock (fun () ->
        let prefix = "server.latency_ms." in
        let latencies =
          List.filter_map
            (fun (name, _) ->
              if String.starts_with ~prefix name then
                let group =
                  String.sub name (String.length prefix)
                    (String.length name - String.length prefix)
                in
                Option.map
                  (fun (s : Sobs.Metrics.summary) -> (group, s))
                  (Sobs.Metrics.summary t.metrics name)
              else None)
            (Sobs.Metrics.summaries t.metrics)
        in
        (Sobs.Metrics.counters t.metrics, latencies))
  in
  Protocol.ok
    [
      ("uptime_s", J.Float (Deadline.now () -. t.started));
      ("workers", J.Int t.config.workers);
      ( "queue",
        J.Obj
          [
            ("length", J.Int (Bqueue.length t.queue));
            ("capacity", J.Int t.config.queue_capacity);
          ] );
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters));
      ( "latency_ms",
        J.Obj
          (List.map
             (fun (group, (s : Sobs.Metrics.summary)) ->
               ( group,
                 J.Obj
                   [
                     ("count", J.Int s.count);
                     ("p50", J.Float s.p50);
                     ("p95", J.Float s.p95);
                     ("p99", J.Float s.p99);
                   ] ))
             latencies) );
      ( "cache",
        J.Obj
          (List.map
             (fun (group, (cs : Pipeline.cache_stats)) ->
               ( group,
                 J.Obj
                   [
                     ("hits", J.Int cs.Pipeline.hits);
                     ("misses", J.Int cs.Pipeline.misses);
                     ("plan_hits", J.Int cs.Pipeline.plan_hits);
                     ("plan_misses", J.Int cs.Pipeline.plan_misses);
                     ("plan_compiles", J.Int cs.Pipeline.plan_compiles);
                     ("plan_fallbacks", J.Int cs.Pipeline.plan_fallbacks);
                   ] ))
             (Pipeline.stats t.pipeline)) );
      ( "documents",
        J.List (List.map (fun n -> J.String n) (Catalog.names t.catalog)) );
    ]

let submit t sess fd work =
  if draining t then
    send fd (Protocol.error_of Secview.Error.Draining)
  else begin
    let submitted = Deadline.now () in
    let job =
      {
        jsession = sess;
        jgroup = (match sess.group with Some g -> g | None -> "-");
        work;
        submitted;
        deadline_at = Option.map (fun s -> submitted +. s) t.config.deadline;
        cell = Deadline.cell ();
      }
    in
    match Bqueue.try_push t.queue job with
    | `Full ->
      count t "server.rejected.overloaded";
      send fd
        (Protocol.error_of
           (Secview.Error.Overloaded
              (Printf.sprintf "request queue is full (%d deep)"
                 t.config.queue_capacity)))
    | `Closed ->
      count t "server.rejected.draining";
      send fd (Protocol.error_of Secview.Error.Draining)
    | `Ok -> (
      count t "server.accepted";
      match Deadline.await ?deadline_at:job.deadline_at job.cell with
      | Some reply -> send fd reply
      | None ->
        let timed_out =
          Deadline.fill job.cell
            (Protocol.error_of (Secview.Error.Timeout "deadline exceeded"))
        in
        if timed_out then count t "server.timeout";
        send fd
          (Protocol.error_of
             (Secview.Error.Timeout
                (Printf.sprintf "deadline of %gs exceeded"
                   (Option.value t.config.deadline ~default:0.)))))
  end

let handle_line t sess fd line =
  match Protocol.request_of_line line with
  | Error msg ->
    count t "server.rejected.bad_request";
    send fd (Protocol.error_of (Secview.Error.Bad_request msg))
  | Ok (Hello { group; peer }) ->
    if List.mem group (group_names t) then begin
      sess.group <- Some group;
      (match peer with Some p -> sess.peer <- p | None -> ());
      count t "server.sessions";
      send fd
        (Protocol.ok
           [ ("session", J.Int sess.sid); ("group", J.String group) ])
    end
    else begin
      count t "server.rejected.unknown_group";
      send fd
        (Protocol.error_of
           (Secview.Error.Unknown_group { group; known = group_names t }))
    end
  | Ok Ping -> send fd (Protocol.ok [ ("pong", J.Bool true) ])
  | Ok Stats -> send fd (stats_json t)
  | Ok Shutdown ->
    send fd (Protocol.ok [ ("draining", J.Bool true) ]);
    request_drain t
  | Ok (Sleep _) when not t.config.debug ->
    send fd
      (Protocol.error_of
         (Secview.Error.Bad_request "sleep is only available on --debug servers"))
  | Ok (Sleep s) -> submit t sess fd (Nap s)
  | Ok (Query q) -> (
    match sess.group with
    | None ->
      count t "server.rejected.no_session";
      send fd (Protocol.error_of Secview.Error.No_session)
    | Some _ -> submit t sess fd (Answer q))

let conn_loop t fd peer =
  let sess =
    { sid = Atomic.fetch_and_add t.next_sid 1; group = None; peer }
  in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let alive = ref true in
  (try
     while !alive && not (draining t) do
       match Unix.select [ fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ ->
         let n =
           try Unix.read fd chunk 0 (Bytes.length chunk)
           with Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> 0
         in
         if n = 0 then alive := false
         else begin
           Buffer.add_subbytes buf chunk 0 n;
           (* split off and handle every complete line *)
           let data = Buffer.contents buf in
           Buffer.clear buf;
           let rec lines start =
             match String.index_from_opt data start '\n' with
             | None ->
               Buffer.add_substring buf data start
                 (String.length data - start)
             | Some nl ->
               let line = String.sub data start (nl - start) in
               let line =
                 (* tolerate CRLF clients (telnet, socat -t) *)
                 if String.length line > 0 && line.[String.length line - 1] = '\r'
                 then String.sub line 0 (String.length line - 1)
                 else line
               in
               if String.trim line <> "" then handle_line t sess fd line;
               lines (nl + 1)
           in
           lines 0
         end
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- listeners and lifecycle --------------------------------------- *)

let sockaddr_label = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let open_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let addr =
      if host = "" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let acceptor_loop t lfd =
  while not (draining t) do
    match Unix.select [ lfd; t.wake_r ] [] [] 1.0 with
    | rs, _, _ ->
      if List.mem lfd rs && not (draining t) then begin
        match Unix.accept lfd with
        | cfd, addr ->
          count t "server.connections";
          let th =
            Thread.create (fun () -> conn_loop t cfd (sockaddr_label addr)) ()
          in
          Mutex.protect t.conn_lock (fun () -> t.conns <- th :: t.conns)
        | exception Unix.Unix_error _ -> ()
      end
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let serve t listeners =
  if listeners = [] then invalid_arg "Server.serve: no listeners";
  let lfds = List.map open_listener listeners in
  let acceptors = List.map (fun lfd -> Thread.create (acceptor_loop t) lfd) lfds in
  let workers =
    List.init t.config.workers (fun _ -> Thread.create (fun () -> worker_loop t) ())
  in
  (* drain sequence: acceptors exit on the stop flag (stop accepting),
     the queue closes (finish what is admitted, reject the rest),
     workers drain it and exit, connection threads notice the flag and
     hang up, and finally the audit log is flushed. *)
  List.iter Thread.join acceptors;
  List.iter
    (fun (lfd, l) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match l with
      | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ())
    (List.combine lfds listeners);
  Bqueue.close t.queue;
  List.iter Thread.join workers;
  let conns = Mutex.protect t.conn_lock (fun () -> t.conns) in
  List.iter Thread.join conns;
  (match t.audit with Some log -> Sobs.Audit_log.close log | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
