module J = Sobs.Json
module Pipeline = Secview.Pipeline
module Catalog = Secview.Catalog

type config = {
  domains : int;
  queue_capacity : int;
  deadline : float option;
  debug : bool;
  engine : Pipeline.engine;
  slow_ms : float option;
  admission : bool;
}

let default_config =
  {
    domains = 4;
    queue_capacity = 64;
    deadline = None;
    debug = false;
    engine = Pipeline.Plan;
    slow_ms = None;
    admission = true;
  }

type listener =
  | Unix_socket of string
  | Tcp of string * int
  | Metrics_http of string * int

type session = {
  sid : int;
  mutable group : string option;
  mutable peer : string;
  mutable rseq : int;  (* connection-thread only: per-session rid counter *)
}

(* Server-generated request-correlation id: deterministic per session
   ([r<sid>-<n>]), so golden tests and log correlation are stable.  A
   client-supplied rid takes precedence and does not consume a number. *)
let next_rid sess =
  sess.rseq <- sess.rseq + 1;
  Printf.sprintf "r%d-%d" sess.sid sess.rseq

type work =
  | Answer of Protocol.query
  | Explain_query of Protocol.query
  | Do_update of Protocol.query  (** [text] is the update's syntax *)
  | Nap of float

let work_verb = function
  | Answer _ -> "query"
  | Explain_query _ -> "explain"
  | Do_update _ -> "update"
  | Nap _ -> "sleep"

type job = {
  jsession : session;
  jgroup : string;
  jrid : string;
  work : work;
  submitted : float;
  deadline_at : float option;
  cell : J.t Deadline.cell;
}

type t = {
  config : config;
  slot : Pipeline.Service.slot;
  catalog : Catalog.t;
  queue : job Bqueue.t;  (* read path: popped by the worker domains *)
  uqueue : job Bqueue.t;  (* write path: popped by the one coordinator *)
  (* Worker counters/series land on the writer's domain shard; a
     scrape merges every shard into one consistent snapshot — no
     shared registry, no torn histograms (see Sobs.Metrics.Sharded). *)
  shards : Sobs.Metrics.Sharded.t;
  (* Externally-fed registry overlaid onto every scrape: the tracer
     feeds its stage series here from worker domains under its own
     lock — which is [obs_lock], so overlay reads serialize with those
     writes. *)
  overlay : Sobs.Metrics.t option;
  obs_lock : Mutex.t;  (* serializes audit writes and overlay access *)
  audit : Sobs.Audit_log.t option;
  tracer : Sobs.Tracer.t option;
  recorder : Sobs.Recorder.t option;
  runtime : Sobs.Runtime.t option;
  flight_snapshot : string option;
  capture : Sobs.Capture.t option;
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  started : float;
  next_sid : int Atomic.t;
  live_conns : int Atomic.t;
  busy_workers : int Atomic.t;
  conn_lock : Mutex.t;
  mutable conns : Thread.t list;
  (* The connection threads' session (admission fast path and the
     [analyze] verb run on them, concurrently): a Session is
     single-owner, so they share this one under its lock. *)
  adm : Pipeline.Session.t;
  adm_lock : Mutex.t;
  (* Every session answering for this server (the adm session plus
     one per worker/coordinator domain, registered at spawn): the
     [stats] verb merges their counters — atomics, safe to read while
     the owners work. *)
  mutable sessions : Pipeline.Session.t list;
  sess_lock : Mutex.t;
}

let create ?(config = default_config) ?audit ?metrics ?tracer ?recorder
    ?runtime ?flight_snapshot ?capture service =
  let wake_r, wake_w = Unix.pipe () in
  let slot = Pipeline.Service.slot service in
  let adm = Pipeline.Session.of_slot slot in
  {
    config = { config with domains = max 1 config.domains };
    slot;
    catalog = Pipeline.Service.catalog service;
    queue = Bqueue.create ~capacity:config.queue_capacity;
    uqueue = Bqueue.create ~capacity:config.queue_capacity;
    shards = Sobs.Metrics.Sharded.create ();
    overlay = metrics;
    (* With a tracer, share its mutex: worker domains feed stage
       observations into the overlay registry from inside tracer
       callbacks, so one lock must guard both or the overlay races. *)
    obs_lock =
      (match tracer with
      | Some tr -> Sobs.Tracer.lock tr
      | None -> Mutex.create ());
    audit;
    tracer;
    recorder;
    runtime;
    flight_snapshot;
    capture;
    stopping = Atomic.make false;
    wake_r;
    wake_w;
    started = Deadline.now ();
    next_sid = Atomic.make 1;
    live_conns = Atomic.make 0;
    busy_workers = Atomic.make 0;
    conn_lock = Mutex.create ();
    conns = [];
    adm;
    adm_lock = Mutex.create ();
    sessions = [ adm ];
    sess_lock = Mutex.create ();
  }

let register_session t psess =
  Mutex.protect t.sess_lock (fun () -> t.sessions <- psess :: t.sessions)

let count ?by t name = Sobs.Metrics.Sharded.incr ?by t.shards name
let observe t name v = Sobs.Metrics.Sharded.observe t.shards name v

let audit_request t ~rid ~session ~peer ~group ~doc ~query ~status ~results
    ~latency_ms ?error () =
  match t.audit with
  | None -> ()
  | Some log ->
    Mutex.protect t.obs_lock (fun () ->
        Sobs.Audit_log.log_request log ~rid ~session ~peer ~group ~doc ~query
          ~status ~results ~latency_ms ?error ())

let audit_update t ~rid ~session ~peer ~group ~doc ~update ~status ?targets
    ?old_version ?new_version ~latency_ms ?error () =
  match t.audit with
  | None -> ()
  | Some log ->
    Mutex.protect t.obs_lock (fun () ->
        Sobs.Audit_log.log_update log ~rid ~session ~peer ~group ~doc ~update
          ~status ?targets ?old_version ?new_version ~latency_ms ?error ())

(* The merged per-group pipeline counters: every registered session's
   record summed with [Pipeline.stats_merge] — the one merge path
   behind the [stats] verb and the [/metrics] exposition alike. *)
let merged_stats t =
  let sessions = Mutex.protect t.sess_lock (fun () -> t.sessions) in
  let order = Pipeline.Service.order (Pipeline.Service.current t.slot) in
  List.map
    (fun gname ->
      let s =
        List.fold_left
          (fun acc psess ->
            match Pipeline.Session.stats_of psess ~group:gname with
            | s -> Pipeline.stats_merge acc s
            | exception Not_found -> acc)
          Pipeline.stats_zero sessions
      in
      (gname, s))
    order

(* Runtime gauges, sampled on every scrape/metrics verb rather than on
   a timer: the values are cheap to read and a scraper only cares
   about the instant it asked.  They are written into the scrape's own
   snapshot, never a shard — no staleness to merge. *)
let sample_gauges t reg =
  let g = Gc.quick_stat () in
  let set = Sobs.Metrics.set_gauge reg in
  set "server.queue.depth" (float_of_int (Bqueue.length t.queue));
  set "server.queue.capacity" (float_of_int t.config.queue_capacity);
  set "server.update_queue.depth" (float_of_int (Bqueue.length t.uqueue));
  set "server.connections.live" (float_of_int (Atomic.get t.live_conns));
  set "server.workers.busy" (float_of_int (Atomic.get t.busy_workers));
  set "server.workers.total" (float_of_int t.config.domains);
  set "server.uptime_s" (Deadline.now () -. t.started);
  (* [Gc.quick_stat] sees only the calling domain's counters: under
     [--domains N] these are the scraping acceptor thread's numbers,
     not the workers' — label them honestly.  The per-domain truth
     ([gc.heap_words.d<i>], pause histograms, allocation counters)
     comes from the [Sobs.Runtime] consumer, absorbed below when the
     server runs with [--runtime-events]. *)
  set "gc.heap_words.acceptor" (float_of_int g.Gc.heap_words);
  set "gc.minor_words.acceptor" g.Gc.minor_words;
  set "gc.major_collections.acceptor" (float_of_int g.Gc.major_collections)

(* One consistent merged view of everything: the overlay (under
   [obs_lock] — the tracer writes it), every domain shard (under the
   shard locks), the merged pipeline counters, and gauges sampled
   now. *)
let metrics t =
  let snap =
    match t.overlay with
    | Some reg ->
      Mutex.protect t.obs_lock (fun () ->
          Sobs.Metrics.Sharded.snapshot ~into:reg t.shards)
    | None -> Sobs.Metrics.Sharded.snapshot t.shards
  in
  List.iter
    (fun (g, s) ->
      List.iter
        (fun (f, v) ->
          if v > 0 then
            Sobs.Metrics.incr ~by:v snap
              (String.concat "." [ "pipeline.stats"; g; f ]))
        (Pipeline.stats_fields s))
    (merged_stats t);
  sample_gauges t snap;
  (* per-domain runtime telemetry last: absorbed under the consumer's
     own lock, so pause histograms merge torn-free like the shards *)
  (match t.runtime with
  | Some rt -> Sobs.Runtime.absorb_into ~into:snap rt
  | None -> ());
  snap

let openmetrics t = Sobs.Export.openmetrics (metrics t)

let metrics_reply t ~rid =
  let snap = metrics t in
  Protocol.ok ~rid
    [
      ("openmetrics", J.String (Sobs.Export.openmetrics snap));
      ("text", J.String (Format.asprintf "%a" Sobs.Metrics.pp snap));
    ]

let flight_reply t ~rid =
  match t.recorder with
  | None ->
    Protocol.error_of ~rid
      (Secview.Error.Bad_request
         "flight recorder is not enabled (start the server with --flight N)")
  | Some r -> (
    (* splice the recorder dump's fields into the reply envelope *)
    match Sobs.Recorder.to_json r with
    | J.Obj fields -> Protocol.ok ~rid fields
    | _ -> assert false)

let audit_slow t ~rid ~session ~peer ~group ~doc ~query ?translated
    ~latency_ms ~threshold_ms ~stages ~counts ?gc_pause_ms ?gc_pauses () =
  match t.audit with
  | None -> ()
  | Some log ->
    Mutex.protect t.obs_lock (fun () ->
        Sobs.Audit_log.log_slow_query log ~rid ~group ~query ?translated
          ~latency_ms ~threshold_ms ~stages ~counts ?gc_pause_ms ?gc_pauses
          ~session ~peer ~doc ())

let draining t = Atomic.get t.stopping

let wake t = ignore (try Unix.write t.wake_w (Bytes.of_string "!") 0 1 with _ -> 0)

(* Safe from a signal handler: one atomic store and one pipe write. *)
let request_drain t =
  Atomic.set t.stopping true;
  wake t

let install_sigint t =
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_drain t))

(* ---- request execution (worker side) ------------------------------- *)

let group_names t =
  Pipeline.Service.order (Pipeline.Service.current t.slot)

let resolve_document t = function
  | Some name -> (
    match Catalog.find t.catalog name with
    | Some entry -> Ok entry
    | None ->
      Error
        (Secview.Error.Unknown_doc
           { doc = Some name; known = Catalog.names t.catalog }))
  | None -> (
    match Catalog.names t.catalog with
    | [ only ] -> Ok (Option.get (Catalog.find t.catalog only))
    | known -> Error (Secview.Error.Unknown_doc { doc = None; known }))

(* Failures come back as [Secview.Error.t]: the reply code and message
   are [Protocol.error_of]'s one mapping instead of per-site strings.
   [parsed_request] shares document resolution and query parsing
   between answer and explain. *)
let parsed_request t (q : Protocol.query) k =
  match resolve_document t q.doc with
  | Error _ as e -> e
  | Ok entry -> (
    match Sxpath.Parse.of_string_result q.text with
    | Error e ->
      Error
        (Secview.Error.Parse_error
           { position = e.Sxpath.Parse.position; message = e.Sxpath.Parse.message })
    | Ok path -> (
      match k entry path with
      | (Ok _ | Error _) as r -> r
      | exception Sxml.Parse.Error e ->
        Error
          (Secview.Error.Internal
             ("document failed to parse: " ^ Sxml.Parse.error_to_string e))
      | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
        Error (Secview.Error.Internal msg)
      | exception exn ->
        (* anything else the evaluator can raise: the request failed,
           the worker must survive *)
        Error (Secview.Error.Internal (Printexc.to_string exn))))

(* Ok: (rendered results, translated query, plan operator counts,
   pinned document version).  Counts are only collected when the
   slow-query log or the flight recorder could use them. *)
let answer_query t psess ~group (q : Protocol.query) =
  parsed_request t q (fun entry path ->
      let env name = List.assoc_opt name q.bind in
      (* Pin once: document and index must come from the same
         snapshot.  Reading them through the entry as two separate
         dereferences could straddle a concurrent update's swap, and
         the new snapshot's index ids (fresh dense preorder) name
         different nodes in the old tree — a torn read. *)
      let snap = Catalog.pin entry in
      let doc = Catalog.snapshot_doc snap in
      let index =
        if q.use_index then Some (Catalog.snapshot_index snap) else None
      in
      match
        Pipeline.Session.answer_outcome psess ~group ~engine:t.config.engine
          ~counts:(t.config.slow_ms <> None || Option.is_some t.recorder)
          ~env ?index path doc
      with
      | Ok o ->
        Ok
          ( List.map (fun n -> Sxml.Print.to_string n) o.Pipeline.o_results,
            Sxpath.Print.to_string o.Pipeline.o_translated,
            o.Pipeline.o_counts,
            Catalog.snapshot_version snap )
      | Error _ as e -> e)

let explain_query t psess ~rid ~group (q : Protocol.query) =
  parsed_request t q (fun entry path ->
      let env name = List.assoc_opt name q.bind in
      match
        Pipeline.Session.explain psess ~group ~env path (Catalog.doc entry)
      with
      | Error _ as e -> e
      | Ok x ->
        Ok
          (Protocol.ok ~rid
             [
               ("query", J.String q.text);
               ( "admission",
                 J.String (Pipeline.admission_label x.Pipeline.x_admission) );
               ( "translated",
                 J.String (Sxpath.Print.to_string x.Pipeline.x_translated) );
               ( "engine",
                 J.String
                   (Pipeline.engine_label
                      (if x.Pipeline.x_plan <> None then Pipeline.Plan
                       else Pipeline.Interp)) );
               ( "height",
                 match x.Pipeline.x_height with
                 | Some h -> J.Int h
                 | None -> J.Null );
               ( "fallback",
                 match x.Pipeline.x_fallback with
                 | Some r -> J.String r
                 | None -> J.Null );
               ("results", J.Int x.Pipeline.x_results);
               ("doc_version", J.Int x.Pipeline.x_doc_version);
               ("generation", J.Int x.Pipeline.x_generation);
               ( "plan",
                 match x.Pipeline.x_plan with
                 | Some (compiled, stats) ->
                   Protocol.explain_json
                     (Splan.Explain.of_compiled compiled stats)
                 | None -> J.Null );
             ]))

(* The write path: resolve the document, then run check+swap.  Every
   update in the process goes through the single coordinator domain
   (the only consumer of [uqueue]), so writers are already serialized
   — the per-document lock table the threaded server kept is gone.
   The check pins a snapshot and the swap publishes a new one, so
   concurrent readers are never torn.  Returns the outcome plus the
   admission check's id-bearing denial detail, which goes to the
   audit log only — the client reply carries the sanitized message. *)
let run_update psess t ~group (q : Protocol.query) =
  match resolve_document t q.doc with
  | Error _ as e -> (e, None)
  | Ok entry ->
    let env name = List.assoc_opt name q.bind in
    let detail = ref None in
    let audit d = detail := Some d in
    let outcome =
      try
        Supdate.Engine.apply_text
          (Pipeline.Session.service psess)
          ~group ~env ~audit ~entry q.text
      with
      | Failure msg | Invalid_argument msg | Sys_error msg ->
        Error (Secview.Error.Internal msg)
      | exn -> Error (Secview.Error.Internal (Printexc.to_string exn))
    in
    (outcome, !detail)

let doc_label t (q : Protocol.query) =
  match q.doc with
  | Some d -> d
  | None -> (
    (* the single-document default: audit the name it resolved to *)
    match Catalog.names t.catalog with [ n ] -> n | _ -> "-")

let doc_version t (q : Protocol.query) =
  match resolve_document t q.doc with
  | Ok entry -> Some (Catalog.version entry)
  | Error _ -> None

(* One flight-recorder entry per completed Answer/Explain job (and one
   per fast-path denial, built at that site).  The recorder has its
   own mutex — never the shared [obs_lock] — so recording can never
   deadlock against span draining or audit writes. *)
let record_flight t job ~status ~results ?error ?digest ?version ~latency_ms
    ?(gc_pause_ms = 0.) ?(gc_pauses = 0) ~spans ~counts () =
  match (t.recorder, job.work) with
  | Some r, (Answer q | Explain_query q | Do_update q) ->
    Sobs.Recorder.record r
      {
        Sobs.Recorder.rid = job.jrid;
        verb = work_verb job.work;
        session = Some job.jsession.sid;
        peer = Some job.jsession.peer;
        group = job.jgroup;
        doc = Some (doc_label t q);
        (* prefer the version the request actually ran against — the
           entry's current version may already be a later write's *)
        doc_version =
          (match version with Some _ -> version | None -> doc_version t q);
        query = q.text;
        engine = Pipeline.engine_label t.config.engine;
        admission = None;
        status;
        error;
        results;
        digest;
        latency_ms;
        gc_pause_ms;
        gc_pauses;
        ts_ns = Sobs.Clock.monotonic ();
        spans;
        counts;
      }
  | _ -> ()

(* Auto-snapshot: dump the whole ring to [--flight-snapshot FILE] the
   moment a request ends badly (error/timeout/late) or slow — the
   recorder's raison d'être is exactly that moment's context. *)
let maybe_snapshot t ~status ~slow =
  match (t.flight_snapshot, t.recorder) with
  | Some path, Some r when status <> "ok" || slow -> (
    try Sobs.Recorder.dump_file r path
    with Sys_error _ -> count t "server.flight.snapshot_failed")
  | _ -> ()

let run_job t psess job =
  let latency () = 1000. *. (Deadline.now () -. job.submitted) in
  let log ?receipt ~status ~results ?error ~latency_ms () =
    match job.work with
    | Nap _ -> ()
    | Do_update q ->
      ignore results;
      let field f = Option.map f receipt in
      audit_update t ~rid:job.jrid ~session:job.jsession.sid
        ~peer:job.jsession.peer ~group:job.jgroup ~doc:(doc_label t q)
        ~update:q.text ~status
        ?targets:(field (fun r -> r.Supdate.Engine.r_targets))
        ?old_version:(field (fun r -> r.Supdate.Engine.r_old_version))
        ?new_version:(field (fun r -> r.Supdate.Engine.r_new_version))
        ~latency_ms ?error ()
    | Answer q | Explain_query q ->
      audit_request t ~rid:job.jrid ~session:job.jsession.sid
        ~peer:job.jsession.peer ~group:job.jgroup ~doc:(doc_label t q)
        ~query:q.text ~status ~results ~latency_ms ?error ()
  in
  let expired =
    match job.deadline_at with
    | Some d -> Deadline.now () > d
    | None -> false
  in
  if expired || Deadline.peek job.cell <> None then begin
    (* the connection thread answered [timeout] (or will, immediately):
       don't burn a worker on a reply nobody is waiting for.  As in
       the executed path below, observability precedes the fill. *)
    count t "server.expired_in_queue";
    let latency_ms = latency () in
    log ~status:"timeout" ~results:0 ~error:"deadline exceeded in queue"
      ~latency_ms ();
    record_flight t job ~status:"timeout" ~results:0
      ~error:"deadline exceeded in queue" ~latency_ms ~spans:[] ~counts:[] ();
    maybe_snapshot t ~status:"timeout" ~slow:false;
    ignore
      (Deadline.fill job.cell
         (Protocol.error_of ~rid:job.jrid
            (Secview.Error.Timeout "deadline exceeded in queue")))
  end
  else begin
    let rid = job.jrid in
    let run_work () =
      match job.work with
      | Nap s ->
        Thread.delay s;
        ( Protocol.ok ~rid [ ("slept_ms", J.Float (1000. *. s)) ], "ok", 0,
          None, None, None )
      | Explain_query q -> (
        match explain_query t psess ~rid ~group:job.jgroup q with
        | Ok reply -> (reply, "ok", 0, None, None, None)
        | Error e ->
          ( Protocol.error_of ~rid e, "error", 0,
            Some (Secview.Error.to_string e), None, None ))
      | Do_update q -> (
        match run_update psess t ~group:job.jgroup q with
        | Ok r, _ ->
          (* the client-visible digest is of the group's view of the
             new document (Engine computed it) — the raw document's
             digest would be an equality oracle on hidden regions *)
          ( Protocol.ok ~rid
              [
                ("op", J.String r.Supdate.Engine.r_op);
                ("targets", J.Int r.Supdate.Engine.r_targets);
                ("old_version", J.Int r.Supdate.Engine.r_old_version);
                ("new_version", J.Int r.Supdate.Engine.r_new_version);
                ("digest", J.String r.Supdate.Engine.r_view_digest);
              ],
            "ok",
            r.Supdate.Engine.r_targets,
            None,
            None,
            Some r )
        | Error e, detail ->
          (* the code is the status ("update_denied", "invalid_update"):
             a denial is the write path's headline outcome, and the
             flight recorder should say so without the error text.
             The audit/recorder error keeps the admission check's
             id-bearing detail; the reply already went out sanitized. *)
          let audit_error =
            match detail with
            | Some d -> Secview.Error.to_string e ^ " [" ^ d ^ "]"
            | None -> Secview.Error.to_string e
          in
          ( Protocol.error_of ~rid e, Secview.Error.to_code e, 0,
            Some audit_error, None, None ))
      | Answer q -> (
        match answer_query t psess ~group:job.jgroup q with
        | Ok (results, translated, counts, version) ->
          ( Protocol.ok ~rid
              [
                ("results", J.List (List.map (fun s -> J.String s) results));
                ("count", J.Int (List.length results));
              ],
            "ok",
            List.length results,
            None,
            Some (q, Some translated, counts, results, Some version),
            None )
        | Error e ->
          ( Protocol.error_of ~rid e, "error", 0,
            Some (Secview.Error.to_string e), Some (q, None, [], [], None),
            None ))
    in
    (* the whole request runs inside a synthetic "request" root span:
       its children (per-thread) are exactly this request's stages,
       linked by [parent] — hierarchical attribution instead of the
       old watermark arithmetic *)
    let want_spans =
      (t.config.slow_ms <> None || Option.is_some t.recorder)
      && (match job.work with Answer _ -> true | _ -> false)
    in
    let (reply, status, results, error, detail, receipt), spans =
      match t.tracer with
      | Some tr when want_spans -> Sobs.Tracer.with_request tr run_work
      | _ -> (run_work (), [])
    in
    (* Observability lands BEFORE the reply cell is filled: the
       moment a client sees its answer, the request must already be
       in the flight ring, the capture stream and the counters — a
       domain-parallel worker otherwise races clients that scrape or
       dump flight right after a reply.  Lateness therefore can't
       come from the fill outcome; the cell's own deadline decides it
       (if it has passed, the connection thread has answered
       [timeout] — or is about to, which loses the same way). *)
    let latency_ms = latency () in
    (* GC-aware attribution: the union of pause windows intersecting
       this request's span window.  Span and pause timestamps share
       the monotonic-clock timebase, so the comparison is direct.
       Only meaningful when spans were recorded — without them there
       is no monotonic window to intersect. *)
    let gc_pause_ms, gc_pauses =
      match t.runtime with
      | Some rt when spans <> [] ->
        let start_ns =
          List.fold_left
            (fun a (s : Sobs.Tracer.span) ->
              if s.start_ns < a then s.start_ns else a)
            Int64.max_int spans
        in
        let stop_ns =
          List.fold_left
            (fun a (s : Sobs.Tracer.span) ->
              if s.stop_ns > a then s.stop_ns else a)
            Int64.min_int spans
        in
        Sobs.Runtime.overlap rt ~start_ns ~stop_ns
      | _ -> (0., 0)
    in
    let status =
      match job.deadline_at with
      | Some d when Deadline.now () > d -> "late"
      | _ -> status
    in
    count t ("server.done." ^ status);
    observe t ("server.latency_ms." ^ job.jgroup) latency_ms;
    let slow =
      match (t.config.slow_ms, detail) with
      | Some thr, Some _ -> latency_ms > thr
      | _ -> false
    in
    (match detail with
    | Some (q, translated, counts, _, _) when slow ->
      let thr = Option.get t.config.slow_ms in
      count t "server.slow_query";
      audit_slow t ~rid ~session:job.jsession.sid ~peer:job.jsession.peer
        ~group:job.jgroup ~doc:(doc_label t q) ~query:q.text ?translated
        ~latency_ms ~threshold_ms:thr
        ~stages:(Sobs.Tracer.stage_totals spans)
        ~counts
        ?gc_pause_ms:
          (if Option.is_some t.runtime then Some gc_pause_ms else None)
        ?gc_pauses:(if Option.is_some t.runtime then Some gc_pauses else None)
        ()
    | _ -> ());
    log ?receipt ~status ~results ?error ~latency_ms ();
    (if Option.is_some t.recorder then
       let digest, counts, version =
         match (detail, receipt) with
         | Some (_, _, counts, rendered, v), _ when error = None ->
           (Some (Sobs.Capture.digest rendered), counts, v)
         | Some (_, _, counts, _, v), _ -> (None, counts, v)
         | None, Some r ->
           ( Some r.Supdate.Engine.r_view_digest, [],
             Some r.Supdate.Engine.r_new_version )
         | None, None -> (None, [], None)
       in
       record_flight t job ~status ~results ?error ?digest ?version
         ~latency_ms ~gc_pause_ms ~gc_pauses ~spans ~counts ());
    (match (t.capture, job.work, detail) with
    | Some cap, Answer q, Some (_, _, _, rendered, _) when error = None ->
      Sobs.Capture.write cap
        {
          Sobs.Capture.c_rid = rid;
          c_verb = "query";
          c_group = job.jgroup;
          c_doc = q.doc;
          c_query = q.text;
          c_bind = q.bind;
          c_index = q.use_index;
          c_engine = Pipeline.engine_label t.config.engine;
          c_status = "ok";
          c_results = results;
          c_digest = Sobs.Capture.digest rendered;
          c_latency_ms = latency_ms;
        }
    | _ -> ());
    (match (t.capture, job.work, receipt) with
    | Some cap, Do_update q, Some r ->
      (* only admitted writes are captured: a rejected update changed
         nothing, so replaying the admitted sequence in order rebuilds
         the same document versions.  The digest is the group's-view
         digest — the same value replay recomputes, and safe to leave
         in capture files that travel. *)
      Sobs.Capture.write cap
        {
          Sobs.Capture.c_rid = rid;
          c_verb = "update";
          c_group = job.jgroup;
          c_doc = q.doc;
          c_query = q.text;
          c_bind = q.bind;
          c_index = false;
          c_engine = Pipeline.engine_label t.config.engine;
          c_status = "ok";
          c_results = r.Supdate.Engine.r_targets;
          c_digest = r.Supdate.Engine.r_view_digest;
          c_latency_ms = latency_ms;
        }
    | _ -> ());
    maybe_snapshot t ~status ~slow;
    ignore (Deadline.fill job.cell reply : bool);
    (* keep a ~retain:false tracer's memory bounded: this thread's
       completed spans have served their purpose.  (The server's audit
       log must NOT itself hold this tracer — its drain would re-enter
       the shared lock under [audit_request]; stage timings reach the
       log through the slow-query record instead.) *)
    (match t.tracer with
    | Some tr -> ignore (Sobs.Tracer.drain_new tr)
    | None -> ())
  end

(* One loop per consuming domain.  Read workers pop [t.queue]; the
   update coordinator pops [t.uqueue].  Each owns its [psess] — the
   whole point of the Session split: the hot path probes caches no
   other domain can touch. *)
let rec consumer_loop t psess queue ~track_busy =
  match Bqueue.pop queue with
  | None -> ()
  | Some job ->
    if track_busy then Atomic.incr t.busy_workers;
    (try
       Fun.protect
         ~finally:(fun () ->
           if track_busy then Atomic.decr t.busy_workers)
         (fun () -> run_job t psess job)
     with exn ->
       (* last line of defense: a worker that dies strands every
          queued request, so fill the cell and keep looping *)
       ignore
         (Deadline.fill job.cell
            (Protocol.error_of ~rid:job.jrid
               (Secview.Error.Internal
                  ("internal error: " ^ Printexc.to_string exn))));
       count t "server.done.internal_error");
    consumer_loop t psess queue ~track_busy

(* ---- connection handling ------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let send fd json = write_all fd (J.to_string json ^ "\n")

(* [stats_fields] is the single authority on spelling and order; the
   wire keeps the historical two-object shape ("cache" with the cache
   traffic, "admission" with the verdict counts) by partitioning the
   one merged record. *)
let admission_field = function
  | "denied" | "trivial" | "eval" -> true
  | _ -> false

let stats_json t ~rid =
  let snap = metrics t in
  let prefix = "server.latency_ms." in
  let latencies =
    List.filter_map
      (fun (name, s) ->
        if String.starts_with ~prefix name then
          Some
            ( String.sub name (String.length prefix)
                (String.length name - String.length prefix),
              s )
        else None)
      (Sobs.Metrics.summaries snap)
  in
  let stats = merged_stats t in
  let render keep =
    J.Obj
      (List.map
         (fun (group, s) ->
           ( group,
             J.Obj
               (List.filter_map
                  (fun (f, v) ->
                    if keep f then Some (f, J.Int v) else None)
                  (Pipeline.stats_fields s)) ))
         stats)
  in
  Protocol.ok ~rid
    [
      ("uptime_s", J.Float (Deadline.now () -. t.started));
      ("workers", J.Int t.config.domains);
      ("workers_busy", J.Int (Atomic.get t.busy_workers));
      ( "queue",
        J.Obj
          [
            ("length", J.Int (Bqueue.length t.queue));
            ("capacity", J.Int t.config.queue_capacity);
          ] );
      ( "runtime",
        match t.runtime with
        | Some rt -> Sobs.Runtime.to_json rt
        | None -> J.Obj [ ("enabled", J.Bool false) ] );
      ( "counters",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Int v)) (Sobs.Metrics.counters snap))
      );
      ( "latency_ms",
        J.Obj
          (List.map
             (fun (group, (s : Sobs.Metrics.summary)) ->
               ( group,
                 J.Obj
                   [
                     ("count", J.Int s.count);
                     ("p50", J.Float s.p50);
                     ("p95", J.Float s.p95);
                     ("p99", J.Float s.p99);
                   ] ))
             latencies) );
      ("cache", render (fun f -> not (admission_field f)));
      ("admission", render admission_field);
      ( "documents",
        J.List (List.map (fun n -> J.String n) (Catalog.names t.catalog)) );
    ]

(* Classify on the connection thread: the shared [adm] session under
   its lock — classification is schema-level and cached, so the
   critical section is a hash probe on the warm path. *)
let classify_conn t ~group path =
  Mutex.protect t.adm_lock (fun () ->
      Pipeline.Session.classify t.adm ~group path)

(* The admission fast path: answer a provably-empty query on the
   connection thread — no queue slot, no plan, no document touched.
   The reply is byte-identical to what a worker would send for an
   empty result set.  Only fires when the request would otherwise
   succeed (document resolves, query parses): errors must keep coming
   from the one [Protocol.error_of] mapping in the worker path.
   Returns [true] when the request was answered here. *)
let admission_fast_path t sess fd ~rid group (q : Protocol.query) =
  t.config.admission
  &&
  match resolve_document t q.doc with
  | Error _ -> false
  | Ok _ -> (
    match Sxpath.Parse.of_string_result q.text with
    | Error _ -> false
    | Ok path -> (
      let started = Deadline.now () in
      match classify_conn t ~group path with
      | Ok (Pipeline.Denied_empty witness) ->
        count t "server.admission.denied";
        send fd
          (Protocol.ok ~rid [ ("results", J.List []); ("count", J.Int 0) ]);
        let latency_ms = 1000. *. (Deadline.now () -. started) in
        audit_request t ~rid ~session:sess.sid ~peer:sess.peer ~group
          ~doc:(doc_label t q) ~query:q.text ~status:"denied_empty"
          ~results:0 ~latency_ms ~error:witness ();
        (match t.recorder with
        | Some r ->
          Sobs.Recorder.record r
            {
              Sobs.Recorder.rid;
              verb = "query";
              session = Some sess.sid;
              peer = Some sess.peer;
              group;
              doc = Some (doc_label t q);
              doc_version = doc_version t q;
              query = q.text;
              engine = Pipeline.engine_label t.config.engine;
              admission = Some "denied";
              status = "denied_empty";
              error = Some witness;
              results = 0;
              digest = Some (Sobs.Capture.digest []);
              latency_ms;
              gc_pause_ms = 0.;
              gc_pauses = 0;
              ts_ns = Sobs.Clock.monotonic ();
              spans = [];
              counts = [];
            }
        | None -> ());
        (match t.capture with
        | Some cap ->
          (* a denied query replays to the same empty answer, so it
             belongs in the workload: capture it as such *)
          Sobs.Capture.write cap
            {
              Sobs.Capture.c_rid = rid;
              c_verb = "query";
              c_group = group;
              c_doc = q.doc;
              c_query = q.text;
              c_bind = q.bind;
              c_index = q.use_index;
              c_engine = Pipeline.engine_label t.config.engine;
              c_status = "denied_empty";
              c_results = 0;
              c_digest = Sobs.Capture.digest [];
              c_latency_ms = latency_ms;
            }
        | None -> ());
        true
      | Ok (Pipeline.Trivial | Pipeline.Needs_eval) | Error _ -> false
      | exception _ -> false))

let submit t sess fd ~rid work =
  if draining t then
    send fd (Protocol.error_of ~rid Secview.Error.Draining)
  else begin
    let submitted = Deadline.now () in
    let job =
      {
        jsession = sess;
        jgroup = (match sess.group with Some g -> g | None -> "-");
        jrid = rid;
        work;
        submitted;
        deadline_at = Option.map (fun s -> submitted +. s) t.config.deadline;
        cell = Deadline.cell ();
      }
    in
    (* writes go to the coordinator's queue; everything else to the
       read pool *)
    let queue =
      match work with Do_update _ -> t.uqueue | _ -> t.queue
    in
    match Bqueue.try_push queue job with
    | `Full ->
      count t "server.rejected.overloaded";
      let msg =
        Printf.sprintf "request queue is full (%d deep)"
          t.config.queue_capacity
      in
      send fd (Protocol.error_of ~rid (Secview.Error.Overloaded msg));
      (* overload rejections are audited too: a shed request must stay
         correlatable by rid, not vanish into a counter *)
      (match work with
      | Answer q | Explain_query q | Do_update q ->
        audit_request t ~rid ~session:sess.sid ~peer:sess.peer
          ~group:job.jgroup ~doc:(doc_label t q) ~query:q.text
          ~status:"overloaded" ~results:0
          ~latency_ms:(1000. *. (Deadline.now () -. submitted))
          ~error:msg ()
      | Nap _ -> ())
    | `Closed ->
      count t "server.rejected.draining";
      send fd (Protocol.error_of ~rid Secview.Error.Draining)
    | `Ok -> (
      count t "server.accepted";
      match Deadline.await ?deadline_at:job.deadline_at job.cell with
      | Some reply -> send fd reply
      | None ->
        let timed_out =
          Deadline.fill job.cell
            (Protocol.error_of ~rid (Secview.Error.Timeout "deadline exceeded"))
        in
        if timed_out then count t "server.timeout";
        send fd
          (Protocol.error_of ~rid
             (Secview.Error.Timeout
                (Printf.sprintf "deadline of %gs exceeded"
                   (Option.value t.config.deadline ~default:0.)))))
  end

let handle_line t sess fd line =
  match Protocol.request_of_line line with
  | Error msg ->
    (* even a request that failed to parse gets a correlatable reply:
       the client's rid when recoverable, a server-generated one
       otherwise *)
    let rid =
      match Protocol.rid_of_line line with
      | Some r -> r
      | None -> next_rid sess
    in
    count t "server.rejected.bad_request";
    send fd (Protocol.error_of ~rid (Secview.Error.Bad_request msg))
  | Ok (req, crid) -> (
    let rid = match crid with Some r -> r | None -> next_rid sess in
    match req with
    | Protocol.Hello { group; peer } ->
      if List.mem group (group_names t) then begin
        sess.group <- Some group;
        (match peer with Some p -> sess.peer <- p | None -> ());
        count t "server.sessions";
        send fd
          (Protocol.ok ~rid
             [ ("session", J.Int sess.sid); ("group", J.String group) ])
      end
      else begin
        count t "server.rejected.unknown_group";
        send fd
          (Protocol.error_of ~rid
             (Secview.Error.Unknown_group { group; known = group_names t }))
      end
    | Protocol.Ping -> send fd (Protocol.ok ~rid [ ("pong", J.Bool true) ])
    | Protocol.Stats -> send fd (stats_json t ~rid)
    | Protocol.Metrics -> send fd (metrics_reply t ~rid)
    | Protocol.Flight -> send fd (flight_reply t ~rid)
    | Protocol.Shutdown ->
      send fd (Protocol.ok ~rid [ ("draining", J.Bool true) ]);
      request_drain t
    | Protocol.Sleep _ when not t.config.debug ->
      send fd
        (Protocol.error_of ~rid
           (Secview.Error.Bad_request
              "sleep is only available on --debug servers"))
    | Protocol.Sleep s -> submit t sess fd ~rid (Nap s)
    | Protocol.Query q -> (
      match sess.group with
      | None ->
        count t "server.rejected.no_session";
        send fd (Protocol.error_of ~rid Secview.Error.No_session)
      | Some group ->
        if not (admission_fast_path t sess fd ~rid group q) then
          submit t sess fd ~rid (Answer q))
    | Protocol.Analyze q -> (
      match sess.group with
      | None ->
        count t "server.rejected.no_session";
        send fd (Protocol.error_of ~rid Secview.Error.No_session)
      | Some group -> (
        (* classification is schema-level and cached: answer on the
           connection thread, like [stats] *)
        match Sxpath.Parse.of_string_result q.text with
        | Error e ->
          send fd
            (Protocol.error_of ~rid
               (Secview.Error.Parse_error
                  {
                    position = e.Sxpath.Parse.position;
                    message = e.Sxpath.Parse.message;
                  }))
        | Ok path -> (
          match classify_conn t ~group path with
          | Error e -> send fd (Protocol.error_of ~rid e)
          | Ok verdict ->
            count t "server.admission.analyze";
            send fd
              (Protocol.ok ~rid
                 [
                   ("query", J.String q.text);
                   ( "admission",
                     J.String (Pipeline.admission_label verdict) );
                   ( "witness",
                     match verdict with
                     | Pipeline.Denied_empty w -> J.String w
                     | Pipeline.Trivial | Pipeline.Needs_eval -> J.Null );
                 ]))))
    | Protocol.Explain q -> (
      match sess.group with
      | None ->
        count t "server.rejected.no_session";
        send fd (Protocol.error_of ~rid Secview.Error.No_session)
      | Some _ -> submit t sess fd ~rid (Explain_query q))
    | Protocol.Update q -> (
      match sess.group with
      | None ->
        count t "server.rejected.no_session";
        send fd (Protocol.error_of ~rid Secview.Error.No_session)
      | Some _ -> submit t sess fd ~rid (Do_update q)))

let conn_loop t fd peer =
  let sess =
    { sid = Atomic.fetch_and_add t.next_sid 1; group = None; peer; rseq = 0 }
  in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let alive = ref true in
  (try
     while !alive && not (draining t) do
       match Unix.select [ fd ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ ->
         let n =
           try Unix.read fd chunk 0 (Bytes.length chunk)
           with Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> 0
         in
         if n = 0 then alive := false
         else begin
           Buffer.add_subbytes buf chunk 0 n;
           (* split off and handle every complete line *)
           let data = Buffer.contents buf in
           Buffer.clear buf;
           let rec lines start =
             match String.index_from_opt data start '\n' with
             | None ->
               Buffer.add_substring buf data start
                 (String.length data - start)
             | Some nl ->
               let line = String.sub data start (nl - start) in
               let line =
                 (* tolerate CRLF clients (telnet, socat -t) *)
                 if String.length line > 0 && line.[String.length line - 1] = '\r'
                 then String.sub line 0 (String.length line - 1)
                 else line
               in
               if String.trim line <> "" then handle_line t sess fd line;
               lines (nl + 1)
           in
           lines 0
         end
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- the /metrics HTTP responder ----------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* A deliberately tiny HTTP/1.0 server: read the request head (bounded
   in size and time), answer [GET /metrics] with the OpenMetrics
   exposition, everything else with 404, close.  One short-lived
   thread per scrape — the same model as the line-protocol
   connections, with none of their session state. *)
let http_conn t fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let give_up = Deadline.now () +. 5. in
  let rec read_head () =
    let s = Buffer.contents buf in
    if contains s "\r\n\r\n" || contains s "\n\n" then Some s
    else if Buffer.length buf > 8192 || Deadline.now () > give_up then None
    else
      match Unix.select [ fd ] [] [] 1.0 with
      | [], _, _ -> read_head ()
      | _ ->
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then if contains s "\n" then Some s else None
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          read_head ()
        end
  in
  (try
     match read_head () with
     | None -> ()
     | Some head ->
       let line =
         match String.index_opt head '\n' with
         | Some i -> String.sub head 0 i
         | None -> head
       in
       let line = String.trim line in
       let respond ~status ~ctype body =
         write_all fd
           (Printf.sprintf
              "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
               Connection: close\r\n\r\n%s"
              status ctype (String.length body) body)
       in
       (match String.split_on_char ' ' line with
       | [ "GET"; target; _ ] | [ "GET"; target ] ->
         let path =
           match String.index_opt target '?' with
           | Some i -> String.sub target 0 i
           | None -> target
         in
         if path = "/metrics" then begin
           count t "server.http.scrapes";
           respond ~status:"200 OK"
             ~ctype:
               "application/openmetrics-text; version=1.0.0; charset=utf-8"
             (openmetrics t)
         end
         else begin
           count t "server.http.not_found";
           respond ~status:"404 Not Found" ~ctype:"text/plain" "not found\n"
         end
       | _ ->
         respond ~status:"400 Bad Request" ~ctype:"text/plain" "bad request\n")
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- listeners and lifecycle --------------------------------------- *)

let sockaddr_label = function
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let open_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) | Metrics_http (host, port) ->
    let addr =
      if host = "" then Unix.inet_addr_loopback
      else Unix.inet_addr_of_string host
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (addr, port));
    Unix.listen fd 64;
    fd

let listener_kind = function
  | Unix_socket _ | Tcp _ -> `Lines
  | Metrics_http _ -> `Http

let acceptor_loop t kind lfd =
  while not (draining t) do
    match Unix.select [ lfd; t.wake_r ] [] [] 1.0 with
    | rs, _, _ ->
      if List.mem lfd rs && not (draining t) then begin
        match Unix.accept lfd with
        | cfd, addr ->
          count t "server.connections";
          let handle () =
            Atomic.incr t.live_conns;
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.live_conns)
              (fun () ->
                match kind with
                | `Lines -> conn_loop t cfd (sockaddr_label addr)
                | `Http -> http_conn t cfd)
          in
          let th = Thread.create handle () in
          Mutex.protect t.conn_lock (fun () -> t.conns <- th :: t.conns)
        | exception Unix.Unix_error _ -> ()
      end
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let serve t listeners =
  if listeners = [] then invalid_arg "Server.serve: no listeners";
  let lfds = List.map open_listener listeners in
  let acceptors =
    List.map2
      (fun l lfd -> Thread.create (acceptor_loop t (listener_kind l)) lfd)
      listeners lfds
  in
  (* One domain per read worker plus one update coordinator, each
     creating its Session inside the domain it lives on (so Image's
     domain-local memos are warmed where they are used).  A
     single-domain server instead keeps both on the runtime's own
     domain as plain threads — the pre-domain execution model — so
     [domains = 1] pays no cross-domain hand-off per request. *)
  let run_consumer queue ~track_busy () =
    let psess = Pipeline.Session.of_slot t.slot in
    register_session t psess;
    (* With the runtime consumer on, force one minor collection on
       this domain's own ring before serving: every worker domain then
       has a [gc.pause_seconds.d<i>] series from the first scrape —
       the CI smoke's "per-domain series exist" assertion never races
       organic allocation pressure. *)
    if Option.is_some t.runtime then Gc.minor ();
    consumer_loop t psess queue ~track_busy
  in
  let join_consumers =
    if t.config.domains <= 1 then begin
      let w = Thread.create (run_consumer t.queue ~track_busy:true) () in
      let c = Thread.create (run_consumer t.uqueue ~track_busy:false) () in
      fun () ->
        Thread.join w;
        Thread.join c
    end
    else begin
      let workers =
        List.init t.config.domains (fun _ ->
            Domain.spawn (run_consumer t.queue ~track_busy:true))
      in
      let coordinator =
        Domain.spawn (run_consumer t.uqueue ~track_busy:false)
      in
      fun () ->
        List.iter Domain.join workers;
        Domain.join coordinator
    end
  in
  (* drain sequence: acceptors exit on the stop flag (stop accepting),
     the queues close (finish what is admitted, reject the rest),
     worker domains drain them and exit, connection threads notice the
     flag and hang up, and finally the audit log is flushed. *)
  List.iter Thread.join acceptors;
  List.iter
    (fun (lfd, l) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match l with
      | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ | Metrics_http _ -> ())
    (List.combine lfds listeners);
  Bqueue.close t.queue;
  Bqueue.close t.uqueue;
  join_consumers ();
  let conns = Mutex.protect t.conn_lock (fun () -> t.conns) in
  List.iter Thread.join conns;
  (match t.audit with Some log -> Sobs.Audit_log.close log | None -> ());
  (match t.capture with Some cap -> Sobs.Capture.close cap | None -> ());
  (match t.runtime with Some rt -> Sobs.Runtime.stop rt | None -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
