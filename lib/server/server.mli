(** The concurrent secure-query server: the paper's Fig. 3
    client/server architecture as a long-lived daemon.

    One server wraps one {!Secview.Pipeline.Service} (a document DTD
    plus one security view per user group, immutable and shared) and
    its {!Secview.Catalog} of named documents, and speaks {!Protocol}
    — line-delimited JSON — over any number of Unix-domain and TCP
    listeners.

    {b Execution model: domain per worker.}  One acceptor {e thread}
    per listener and one thread per connection (they only parse,
    enforce the session handshake, and run admission control — I/O
    bound work that multiplexes fine on one domain), but the request
    execution pool is [domains] {e OCaml domains}, each spawned with
    its own {!Secview.Pipeline.Session} — private translation/plan/
    admission caches, no locks on the hot read path — all popping one
    bounded queue ({!Bqueue}).  With [domains = 1] the worker and the
    update coordinator run as plain threads on the calling domain
    instead — a single-domain server keeps the pre-domain execution
    model and pays no cross-domain hand-off per request.  If the queue is full the client gets
    an [overloaded] reply immediately; the server never buffers
    without bound.  Workers fill the request's reply cell; the
    connection thread awaits it up to the per-request [deadline] and
    answers [timeout] if the cell stays empty — the computation
    itself is not killed, so a stale result is accounted as [late]
    when it lands.  Requests whose deadline expired while still
    queued are answered [timeout] without burning a worker.

    {b Writes.}  Updates never enter the read pool: they are routed
    to a dedicated queue popped by a single {e coordinator} domain,
    which serializes every check-to-swap in the process — the
    per-document writer-lock table of the threaded design is gone.
    Readers pin catalog snapshots and are never torn by a swap;
    sessions on other domains evict stale cache entries lazily
    through the service's invalidation log.

    {b Observability.}  Counters ([server.accepted],
    [server.rejected.*], [server.timeout], [server.done.*]) and
    per-group latency series ([server.latency_ms.<group>], queue wait
    included) land on per-domain {e shards}
    ({!Sobs.Metrics.Sharded}); every scrape — the [stats] and
    [metrics] verbs, [GET /metrics] — merges the shards into one
    consistent snapshot, so a reader can never observe a
    half-updated histogram.  The merged per-group {!Secview.Pipeline.stats}
    of every session (one per domain plus the connection-side
    admission session) is folded in as [pipeline.stats.<group>.<field>]
    counters and rendered in the [stats] reply — one merge path for
    every surface.  Every admitted query writes one
    {!Sobs.Audit_log} ["request"] record stamped with the session's
    group and peer (audit writes serialize on one lock; sinks need no
    thread-safety of their own).  A {!Metrics_http} listener exposes
    the snapshot over HTTP as OpenMetrics text ([GET /metrics], see
    {!Sobs.Export}); runtime gauges — queue depths/capacity, live
    connections, busy workers, uptime, the acceptor domain's GC
    figures — are sampled at scrape time into the snapshot itself.

    {b Runtime health.}  With [runtime] (a started {!Sobs.Runtime}
    consumer, the CLI's [--runtime-events]) every scrape also absorbs
    per-domain GC telemetry — [gc.pause_seconds.d<i>] histograms,
    collection/allocation counters, [runtime.domains_live] — merged
    under the consumer's lock, torn-free like the shards.  Each
    answered query whose spans were recorded is stamped with
    [gc_pause_ms]/[gc_pauses] ({!Sobs.Runtime.overlap} of the pause
    windows against the request's span window) in its flight-recorder
    entry and slow-query audit record, and the [stats] verb gains a
    ["runtime"] section with per-domain pause quantiles.  The
    consumer is stopped when {!serve} drains.  Runtime telemetry is
    per domain, never per group — a group cannot learn whether
    another group's traffic caused GC pressure.

    {b Request correlation.}  Every request carries a rid — the
    client's ["rid"] field when supplied, a server-generated
    [r<session>-<n>] otherwise — stamped into the reply (success and
    error alike), every audit record ([request], [slow_query],
    including [late]/[overloaded]/[denied_empty] outcomes), the
    flight-recorder entry, and any capture record, so one request is
    traceable across every surface.

    {b Slow queries.}  With [slow_ms = Some t] every answered query
    slower than [t] milliseconds (queue wait included) also writes a
    ["slow_query"] audit record carrying the translated query, the
    plan's per-operator work totals, and — when the server was
    created with a [tracer] — per-stage wall-clock totals attributed
    to exactly that request (the worker runs it inside a synthetic
    ["request"] root span; see {!Sobs.Tracer.with_request}).

    {b Flight recorder.}  With [recorder] every completed
    Answer/Explain job (and every fast-path denial) appends a full-
    fidelity {!Sobs.Recorder.entry} — rid, principal, query, document
    version, engine, span tree, operator counts, answer digest,
    outcome — to the fixed-size ring; the session-less [flight] verb
    dumps it, and with [flight_snapshot] the ring is written to that
    file whenever a request ends in error/timeout/late or over the
    slow threshold.

    {b Capture.}  With [capture] every successfully answered query
    (and every fast-path denial) appends one replayable
    {!Sobs.Capture} JSONL record — rid, group, query, engine, answer
    digest, latency — for [secview replay]; the sink is closed on
    drain.

    {b Drain.}  [shutdown] (after replying) and SIGINT (via
    {!install_sigint}) both {!request_drain}: stop accepting, let
    worker domains finish everything already admitted, answer
    [draining] to everything else, hang up, flush and close the audit
    log, return from {!serve}.  *)

type config = {
  domains : int;  (** worker-domain pool size (≥ 1) *)
  queue_capacity : int;  (** admission-control bound (≥ 1) *)
  deadline : float option;  (** per-request seconds, queue wait included *)
  debug : bool;  (** honour the [sleep] test command *)
  engine : Secview.Pipeline.engine;
      (** how workers execute translated queries (default [Plan]) *)
  slow_ms : float option;
      (** audit queries slower than this many milliseconds (default
          [None] = off); implies collecting plan operator counts *)
  admission : bool;
      (** answer provably-empty queries
          ({!Secview.Pipeline.Session.classify} says [Denied_empty])
          on the connection thread with the empty result set —
          byte-identical to the worker's reply — without queueing,
          planning or touching the document.  Counted as
          [server.admission.denied]; audited with status
          [denied_empty] and the witness explanation.  Default [on];
          only effective when the admission analyzer is linked
          ([Sanalysis.Semantic]). *)
}

val default_config : config
(** 4 worker domains, queue of 64, no deadline, no debug, plan
    engine, no slow-query log, admission fast path on. *)

type listener =
  | Unix_socket of string  (** path; replaced if present, removed on drain *)
  | Tcp of string * int  (** host ([""] = loopback) and port *)
  | Metrics_http of string * int
      (** an HTTP/1.0 scrape endpoint: [GET /metrics] answers the
          OpenMetrics exposition of the server's merged snapshot;
          every other path is 404.  Host as for {!Tcp}. *)

type t

val create :
  ?config:config ->
  ?audit:Sobs.Audit_log.t ->
  ?metrics:Sobs.Metrics.t ->
  ?tracer:Sobs.Tracer.t ->
  ?recorder:Sobs.Recorder.t ->
  ?runtime:Sobs.Runtime.t ->
  ?flight_snapshot:string ->
  ?capture:Sobs.Capture.t ->
  Secview.Pipeline.Service.t ->
  t
(** The catalog is the service's ({!Secview.Pipeline.Service.catalog}):
    register documents there.  [audit] is closed (hence flushed) when
    {!serve} drains.  [metrics] is an {e overlay} registry merged
    into every scrape (server counters themselves live on internal
    per-domain shards): pass the registry an installed [tracer] feeds
    its stage series into, and both appear in one exposition.
    [tracer] enables per-stage timings in slow-query records; it must
    be the process's installed tracer (see {!Sobs.Tracer.install})
    and the server adopts its lock as the observability lock, so
    tracer callbacks, audit writes and overlay reads serialize on one
    mutex — create it with [~retain:false] so span memory stays
    bounded, and do {e not} also attach it to [audit] (the log's own
    drain would re-enter the shared lock; stage timings reach the log
    through slow-query records instead).  [recorder] enables the
    flight ring and the [flight] verb (per-request spans additionally
    require [tracer]); [runtime] enables per-domain GC telemetry and
    GC-aware request attribution (the server owns it from here on and
    stops it on drain; attribution additionally requires [tracer] —
    no spans, no window); [flight_snapshot] is the auto-snapshot file
    (only meaningful with [recorder]); [capture] streams the answered
    workload as replayable JSONL. *)

val serve : t -> listener list -> unit
(** Bind the listeners and block until a drain completes.  Call from
    the main thread (or a dedicated one — tests do); worker domains
    are spawned here and joined before returning.
    @raise Invalid_argument on an empty listener list;
    @raise Unix.Unix_error if a listener cannot bind. *)

val request_drain : t -> unit
(** Begin graceful drain; idempotent, callable from any thread and
    from a signal handler (one atomic store + one pipe write). *)

val install_sigint : t -> unit
(** Route SIGINT to {!request_drain}, making [Ctrl-C] a graceful
    drain with exit status 0. *)

val metrics : t -> Sobs.Metrics.t
(** One consistent merged snapshot: the overlay registry, every
    domain shard, the sessions' merged pipeline counters
    ([pipeline.stats.<group>.<field>]) and runtime gauges sampled
    now.  A fresh registry each call — mutating it affects nothing. *)

val openmetrics : t -> string
(** The OpenMetrics exposition a {!Metrics_http} scrape returns:
    {!Sobs.Export.openmetrics} of {!metrics}.  Exposed for embedders
    running their own HTTP stack. *)
