(** The concurrent secure-query server: the paper's Fig. 3
    client/server architecture as a long-lived daemon.

    One server wraps one {!Secview.Pipeline} (a document DTD plus one
    security view per user group) and a {!Secview.Catalog} of named
    documents, and speaks {!Protocol} — line-delimited JSON — over any
    number of Unix-domain and TCP listeners.

    {b Threading model.}  One acceptor thread per listener, one
    thread per connection, and a fixed pool of [workers] threads
    behind one bounded queue ({!Bqueue}).  A connection thread only
    parses, enforces the session handshake, and performs {e admission
    control}: if the queue is full the client gets an [overloaded]
    reply immediately — the server never buffers without bound.
    Workers run admitted requests through [Pipeline.answer] (safe
    under concurrency, see {!Secview.Pipeline}) and fill the
    request's reply cell; the connection thread awaits it up to the
    per-request [deadline] and answers [timeout] if the cell stays
    empty — the computation itself is not killed (OCaml threads
    cannot be), so a stale result is accounted as [late] when it
    lands.  Requests whose deadline expired while still queued are
    answered [timeout] without burning a worker.

    {b Observability.}  Counters ([server.accepted],
    [server.rejected.*], [server.timeout], [server.done.*]) and
    per-group latency series ([server.latency_ms.<group>], queue wait
    included) feed the server's {!Sobs.Metrics} registry — the
    [stats] and [metrics] commands render them — and every admitted
    query writes one {!Sobs.Audit_log} ["request"] record stamped
    with the session's group and peer.  All of it behind one lock, so
    sinks need no thread-safety of their own.  A {!Metrics_http}
    listener additionally exposes the registry over HTTP as
    OpenMetrics text ([GET /metrics], see {!Sobs.Export}); runtime
    gauges — queue depth/capacity, live connections, busy workers,
    uptime, GC heap figures — are sampled at scrape time.

    {b Request correlation.}  Every request carries a rid — the
    client's ["rid"] field when supplied, a server-generated
    [r<session>-<n>] otherwise — stamped into the reply (success and
    error alike), every audit record ([request], [slow_query],
    including [late]/[overloaded]/[denied_empty] outcomes), the
    flight-recorder entry, and any capture record, so one request is
    traceable across every surface.

    {b Slow queries.}  With [slow_ms = Some t] every answered query
    slower than [t] milliseconds (queue wait included) also writes a
    ["slow_query"] audit record carrying the translated query, the
    plan's per-operator work totals, and — when the server was
    created with a [tracer] — per-stage wall-clock totals attributed
    to exactly that request (the worker runs it inside a synthetic
    ["request"] root span; see {!Sobs.Tracer.with_request}).

    {b Flight recorder.}  With [recorder] every completed
    Answer/Explain job (and every fast-path denial) appends a full-
    fidelity {!Sobs.Recorder.entry} — rid, principal, query, document
    version, engine, span tree, operator counts, answer digest,
    outcome — to the fixed-size ring; the session-less [flight] verb
    dumps it, and with [flight_snapshot] the ring is written to that
    file whenever a request ends in error/timeout/late or over the
    slow threshold.

    {b Capture.}  With [capture] every successfully answered query
    (and every fast-path denial) appends one replayable
    {!Sobs.Capture} JSONL record — rid, group, query, engine, answer
    digest, latency — for [secview replay]; the sink is closed on
    drain.

    {b Drain.}  [shutdown] (after replying) and SIGINT (via
    {!install_sigint}) both {!request_drain}: stop accepting, let
    workers finish everything already admitted, answer [draining] to
    everything else, hang up, flush and close the audit log, return
    from {!serve}.  *)

type config = {
  workers : int;  (** worker-pool size (≥ 1) *)
  queue_capacity : int;  (** admission-control bound (≥ 1) *)
  deadline : float option;  (** per-request seconds, queue wait included *)
  debug : bool;  (** honour the [sleep] test command *)
  engine : Secview.Pipeline.engine;
      (** how workers execute translated queries (default [Plan]) *)
  slow_ms : float option;
      (** audit queries slower than this many milliseconds (default
          [None] = off); implies collecting plan operator counts *)
  admission : bool;
      (** answer provably-empty queries ({!Secview.Pipeline.classify}
          says [Denied_empty]) on the connection thread with the empty
          result set — byte-identical to the worker's reply — without
          queueing, planning or touching the document.  Counted as
          [server.admission.denied]; audited with status
          [denied_empty] and the witness explanation.  Default [on];
          only effective when the admission analyzer is linked
          ([Sanalysis.Semantic]). *)
}

val default_config : config
(** 4 workers, queue of 64, no deadline, no debug, plan engine, no
    slow-query log, admission fast path on. *)

type listener =
  | Unix_socket of string  (** path; replaced if present, removed on drain *)
  | Tcp of string * int  (** host ([""] = loopback) and port *)
  | Metrics_http of string * int
      (** an HTTP/1.0 scrape endpoint: [GET /metrics] answers the
          OpenMetrics exposition of the server's registry; every
          other path is 404.  Host as for {!Tcp}. *)

type t

val create :
  ?config:config ->
  ?audit:Sobs.Audit_log.t ->
  ?metrics:Sobs.Metrics.t ->
  ?tracer:Sobs.Tracer.t ->
  ?recorder:Sobs.Recorder.t ->
  ?flight_snapshot:string ->
  ?capture:Sobs.Capture.t ->
  Secview.Pipeline.t ->
  t
(** The catalog is the pipeline's ({!Secview.Pipeline.catalog}):
    register documents there.  [audit] is closed (hence flushed) when
    {!serve} drains.  [tracer] enables per-stage timings in
    slow-query records; it must be the process's installed tracer
    (see {!Sobs.Tracer.install}) and the server adopts its lock as
    the observability lock, so tracer callbacks and server counters
    serialize on one mutex — create it with [~retain:false] so span
    memory stays bounded, and do {e not} also attach it to [audit]
    (the log's own drain would re-enter the shared lock; stage
    timings reach the log through slow-query records instead).
    [recorder] enables the flight ring and the [flight] verb (per-
    request spans additionally require [tracer]); [flight_snapshot]
    is the auto-snapshot file (only meaningful with [recorder]);
    [capture] streams the answered workload as replayable JSONL. *)

val serve : t -> listener list -> unit
(** Bind the listeners and block until a drain completes.  Call from
    the main thread (or a dedicated one — tests do).
    @raise Invalid_argument on an empty listener list;
    @raise Unix.Unix_error if a listener cannot bind. *)

val request_drain : t -> unit
(** Begin graceful drain; idempotent, callable from any thread and
    from a signal handler (one atomic store + one pipe write). *)

val install_sigint : t -> unit
(** Route SIGINT to {!request_drain}, making [Ctrl-C] a graceful
    drain with exit status 0. *)

val metrics : t -> Sobs.Metrics.t
(** The registry the counters and latency series land in (shared
    with the caller when passed to {!create}). *)

val openmetrics : t -> string
(** The OpenMetrics exposition a {!Metrics_http} scrape returns:
    runtime gauges sampled now, then {!Sobs.Export.openmetrics} of
    the registry.  Exposed for embedders running their own HTTP
    stack. *)
