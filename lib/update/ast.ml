type position =
  | Into
  | Before
  | After

type t =
  | Insert of {
      pos : position;
      target : Sxpath.Ast.path;
      content : Sxml.Tree.spec;
    }
  | Delete of Sxpath.Ast.path
  | Replace of {
      target : Sxpath.Ast.path;
      content : Sxml.Tree.spec;
    }

let position_to_string = function
  | Into -> "into"
  | Before -> "before"
  | After -> "after"

let op = function
  | Insert _ -> Secview.Spec.Insert
  | Delete _ -> Secview.Spec.Delete
  | Replace _ -> Secview.Spec.Replace

let op_label u = Secview.Spec.write_op_to_string (op u)

let target = function
  | Insert { target; _ } -> target
  | Delete target -> target
  | Replace { target; _ } -> target
