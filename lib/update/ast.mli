(** Abstract syntax of the update language.

    An update names its targets with an XPath query of the same
    fragment the read path speaks ({!Sxpath.Ast.path}), written over
    the user's {e view} — update rewriting translates it through the
    view's σ-functions exactly like a read query.  New content is a
    single well-formed element ({!Sxml.Tree.spec}, so it carries no
    node identifiers until it is spliced into a document). *)

type position =
  | Into  (** append as the last child of each target *)
  | Before  (** new preceding sibling of each target *)
  | After  (** new following sibling of each target *)

type t =
  | Insert of {
      pos : position;
      target : Sxpath.Ast.path;
      content : Sxml.Tree.spec;
    }
  | Delete of Sxpath.Ast.path  (** remove each target subtree *)
  | Replace of {
      target : Sxpath.Ast.path;
      content : Sxml.Tree.spec;
    }  (** swap each target subtree for a copy of [content] *)

val position_to_string : position -> string
(** ["into"] / ["before"] / ["after"]. *)

val op : t -> Secview.Spec.write_op
(** The {!Secview.Spec.write_op} a group must hold to run this
    update. *)

val op_label : t -> string
(** ["insert"] / ["delete"] / ["replace"] — the audit spelling. *)

val target : t -> Sxpath.Ast.path
