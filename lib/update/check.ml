module IntSet = Secview.Access.IntSet
module Tree = Sxml.Tree
module Error = Secview.Error

(* Parent node of every node id, for edge-grant lookups. *)
let parent_map doc =
  let tbl = Hashtbl.create 64 in
  Tree.iter
    (fun n -> List.iter (fun c -> Hashtbl.replace tbl c.Tree.id n) (Tree.children n))
    doc;
  tbl

let rec spec_size = function
  | Tree.E (_, _, cs) ->
    List.fold_left (fun acc c -> acc + spec_size c) 1 cs
  | Tree.T _ -> 1

(* Rebuild the document with the edit applied, numbering the candidate
   in of_spec's preorder as we go so the spliced content's id
   intervals in the new document are known without re-finding it, and
   recording the old id -> new id mapping of every surviving node so
   accessibility can be compared across the edit.  Exactly one of the
   target sets is non-empty per update. *)
type edit = {
  delete : IntSet.t;
  replace : IntSet.t;
  insert_into : IntSet.t;
  insert_before : IntSet.t;
  insert_after : IntSet.t;
  content : Tree.spec option;
}

let no_edit =
  {
    delete = IntSet.empty;
    replace = IntSet.empty;
    insert_into = IntSet.empty;
    insert_before = IntSet.empty;
    insert_after = IntSet.empty;
    content = None;
  }

let splice doc edit =
  let csize =
    match edit.content with Some c -> spec_size c | None -> 0
  in
  let intervals = ref [] in
  let survivors = Hashtbl.create 256 in
  let emit_content pos =
    intervals := (pos, pos + csize) :: !intervals;
    (Option.get edit.content, pos + csize)
  in
  let rec go (n : Tree.t) pos =
    if IntSet.mem n.Tree.id edit.delete then ([], pos)
    else if IntSet.mem n.Tree.id edit.replace then begin
      let c, pos = emit_content pos in
      ([ c ], pos)
    end
    else
      match n.Tree.desc with
      | Tree.Text s ->
        Hashtbl.replace survivors n.Tree.id pos;
        ([ Tree.T s ], pos + 1)
      | Tree.Element e ->
        Hashtbl.replace survivors n.Tree.id pos;
        let children_rev, pos =
          List.fold_left
            (fun (acc, pos) (c : Tree.t) ->
              let acc, pos =
                if IntSet.mem c.Tree.id edit.insert_before then begin
                  let s, pos = emit_content pos in
                  (s :: acc, pos)
                end
                else (acc, pos)
              in
              let cs, pos = go c pos in
              let acc = List.rev_append cs acc in
              if IntSet.mem c.Tree.id edit.insert_after then begin
                let s, pos = emit_content pos in
                (s :: acc, pos)
              end
              else (acc, pos))
            ([], pos + 1) e.Tree.children
        in
        let children_rev, pos =
          if IntSet.mem n.Tree.id edit.insert_into then begin
            let s, pos = emit_content pos in
            (s :: children_rev, pos)
          end
          else (children_rev, pos)
        in
        ([ Tree.E (e.Tree.tag, e.Tree.attrs, List.rev children_rev) ], pos)
  in
  match go doc 0 with
  | [ root ], _ -> (Tree.of_spec root, List.rev !intervals, survivors)
  | _ -> invalid_arg "Check.splice: the edit removed the document root"

let denied fmt = Printf.ksprintf (fun s -> Error.Update_denied s) fmt
let invalid fmt = Printf.ksprintf (fun s -> Error.Invalid_update s) fmt

(* Every update that carries content needs an element: grants are
   per-edge tag pairs, so bare text has no edge to grant.  A typed
   error, not an assertion — library callers can build any [Ast.t]. *)
let content_tag = function
  | Tree.E (tag, _, _) -> Ok tag
  | Tree.T _ -> Error (invalid "update content must be an element")

let run ~dtd ~spec ~view ?env ?height ?(audit = fun _ -> ()) doc update =
  let ( let* ) = Result.bind in
  let* () =
    match update with
    | Ast.Delete _ -> Ok ()
    | Ast.Insert { content; _ } | Ast.Replace { content; _ } ->
      Result.map ignore (content_tag content)
  in
  let* translated =
    match
      match height with
      | Some h ->
        Secview.Rewrite.rewrite_with_height view ~height:h
          (Ast.target update)
      | None -> Secview.Rewrite.rewrite view (Ast.target update)
    with
    | p -> Ok p
    | exception Secview.Rewrite.Unsupported msg ->
      Error (Error.Unsupported msg)
  in
  let* targets =
    match
      Sxpath.Eval.run (Sxpath.Eval.Ctx.make ?env ~root:doc ()) translated
    with
    | ts -> Ok ts
    | exception Sxpath.Eval.Unbound_variable name ->
      Error (Error.Unbound_variable name)
  in
  let* () =
    if targets = [] then
      Error (invalid "target matches no node of the view")
    else Ok ()
  in
  let parents = parent_map doc in
  let acc = Secview.Access.accessible_set ?env spec doc in
  let op = Ast.op update in
  let edge_grant ~parent ~child =
    if Secview.Spec.writable spec ~parent ~child op then Ok ()
    else
      Error
        (denied "no %s grant on edge (%s, %s)"
           (Secview.Spec.write_op_to_string op)
           parent child)
  in
  let parent_tag (t : Tree.t) =
    match Hashtbl.find_opt parents t.Tree.id with
    | Some p -> (
      match Tree.tag p with Some tag -> Ok tag | None -> assert false)
    | None ->
      Error (denied "the document root has no parent edge to grant")
  in
  (* Denial text goes back to the client verbatim, so it must not name
     node identifiers: ids are dense preorder positions, and echoing
     the id of a hidden node (or the gap around it) would let a group
     probe out the size and location of subtrees the view conceals.
     The precise, id-bearing reason goes to [audit] instead — the
     server writes it to the operator's audit log only. *)
  let subtree_accessible (t : Tree.t) =
    match
      List.find_opt
        (fun (n : Tree.t) -> not (IntSet.mem n.Tree.id acc))
        (Tree.descendants_or_self t)
    with
    | None -> Ok ()
    | Some n ->
      audit
        (Printf.sprintf
           "target subtree at node id %d contains inaccessible node id %d"
           t.Tree.id n.Tree.id);
      Error (denied "target subtree contains inaccessible content")
  in
  let target_accessible (t : Tree.t) =
    if IntSet.mem t.Tree.id acc then Ok ()
    else begin
      audit (Printf.sprintf "target node id %d is not accessible" t.Tree.id);
      Error (denied "target node is not accessible")
    end
  in
  let check_target (t : Tree.t) =
    let ttag =
      match Tree.tag t with Some tag -> tag | None -> "#PCDATA"
    in
    let* () =
      if Tree.is_element t then Ok ()
      else Error (invalid "target is not an element node")
    in
    match update with
    | Ast.Delete _ ->
      let* () =
        if t.Tree.id = 0 then
          Error (invalid "cannot delete the document root")
        else Ok ()
      in
      let* ptag = parent_tag t in
      let* () = edge_grant ~parent:ptag ~child:ttag in
      subtree_accessible t
    | Ast.Replace _ ->
      let* ptag = parent_tag t in
      let* () = edge_grant ~parent:ptag ~child:ttag in
      subtree_accessible t
    | Ast.Insert { pos = Ast.Into; content; _ } ->
      let* ctag = content_tag content in
      let* () = target_accessible t in
      edge_grant ~parent:ttag ~child:ctag
    | Ast.Insert { pos = Ast.Before | Ast.After; content; _ } ->
      let* ctag = content_tag content in
      let* () = target_accessible t in
      let* ptag = parent_tag t in
      edge_grant ~parent:ptag ~child:ctag
  in
  let* () =
    List.fold_left
      (fun acc t -> Result.bind acc (fun () -> check_target t))
      (Ok ()) targets
  in
  let ids = List.fold_left (fun s (t : Tree.t) -> IntSet.add t.Tree.id s)
      IntSet.empty targets
  in
  let edit =
    match update with
    | Ast.Delete _ -> { no_edit with delete = ids }
    | Ast.Replace { content; _ } ->
      { no_edit with replace = ids; content = Some content }
    | Ast.Insert { pos; content; _ } -> (
      let content = Some content in
      match pos with
      | Ast.Into -> { no_edit with insert_into = ids; content }
      | Ast.Before -> { no_edit with insert_before = ids; content }
      | Ast.After -> { no_edit with insert_after = ids; content })
  in
  let candidate, intervals, survivors = splice doc edit in
  let* () =
    match Sdtd.Validate.check dtd candidate with
    | [] -> Ok ()
    | v :: _ ->
      Error
        (invalid "result does not conform to the DTD: %s"
           (Format.asprintf "%a" Sdtd.Validate.pp_violation v))
  in
  let acc' = Secview.Access.accessible_set ?env spec candidate in
  let* () =
    (* A group cannot write data it could not then read back: every
       node of the spliced content must be accessible in the new
       document.  (Deletes have no intervals; their admission was the
       subtree check above.) *)
    let bad =
      List.exists
        (fun (lo, hi) ->
          let rec any i =
            i < hi && ((not (IntSet.mem i acc')) || any (i + 1))
          in
          any lo)
        intervals
    in
    if bad then Error (denied "inserted content would not be accessible")
    else Ok ()
  in
  let* () =
    (* The other half of WITH CHECK OPTION: the edit must not flip the
       accessibility of anything it did not touch.  With conditional
       annotations a narrowly-granted write can otherwise satisfy (or
       falsify) a qualifier guarding a pre-existing sibling subtree
       and unlock data the group was never granted — so compare
       accessibility of every surviving node across the edit. *)
    let flipped = ref None in
    Tree.iter
      (fun (n : Tree.t) ->
        if !flipped = None then
          match Hashtbl.find_opt survivors n.Tree.id with
          | Some nid when IntSet.mem n.Tree.id acc <> IntSet.mem nid acc' ->
            flipped := Some (n.Tree.id, IntSet.mem nid acc')
          | _ -> ())
      doc;
    match !flipped with
    | None -> Ok ()
    | Some (id, now) ->
      audit
        (Printf.sprintf
           "update would make untouched node id %d %s" id
           (if now then "accessible" else "inaccessible"));
      Error (denied "update would change the visibility of existing content")
  in
  Ok (candidate, List.length targets)
