(** Update rewriting and admission: the write-path analogue of query
    rewriting, with the relational [WITH CHECK OPTION] discipline.

    An update's target path is written over the group's view;
    {!run} translates it through the view's σ-functions exactly like a
    read query, evaluates the translation on the document, and admits
    the update only when every touched node stays inside the group's
    accessible region:

    - [delete]/[replace]: every node of every target {e subtree} must
      be accessible (removing a subtree that hides inaccessible data
      would destroy what the group cannot even see), and the target's
      parent edge must carry the matching write grant;
    - [insert]: each target must be accessible, the attachment edge
      must carry an [insert] grant, and the spliced content must be
      accessible {e in the resulting document} — a group cannot write
      data it could not then read back;
    - the edit must not change the accessibility of any node it does
      not touch: with conditional annotations, an otherwise-legal
      write could satisfy (or falsify) a qualifier guarding an
      untouched subtree and flip hidden data visible — such updates
      are denied;
    - the resulting document must conform to the document DTD.

    The check is atomic by construction: it computes a candidate
    document purely and either returns it or an error — nothing
    partial ever escapes. *)

val run :
  dtd:Sdtd.Dtd.t ->
  spec:Secview.Spec.t ->
  view:Secview.View.t ->
  ?env:(string -> string option) ->
  ?height:int ->
  ?audit:(string -> unit) ->
  Sxml.Tree.t ->
  Ast.t ->
  (Sxml.Tree.t * int, Secview.Error.t) result
(** [run ~dtd ~spec ~view doc u] is [(new_doc, targets)] when the
    update is admitted: the rebuilt document (fresh dense-preorder
    identifiers, root id 0) and how many view nodes the target path
    matched.  [height] is the unfolding bound for recursive views
    (like {!Secview.Pipeline.translate}).

    Errors: [Update_denied] (missing grant, inaccessible target
    subtree, inaccessible content, visibility of untouched content
    would change), [Invalid_update] (text content, empty target set,
    root deletion, result violates the DTD), [Unsupported] (rewriting
    refused the target path), [Unbound_variable].

    Denial messages are deliberately structural-leak free: they never
    name node identifiers (an id is a dense preorder position, so
    echoing it would let a group map the hidden regions around its
    targets).  The precise id-bearing reason is passed to [audit]
    when given — callers should route it to a server-side audit log,
    never back to the client. *)
