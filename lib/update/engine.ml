module Pipeline = Secview.Pipeline
module Catalog = Secview.Catalog
module Error = Secview.Error

type receipt = {
  r_op : string;
  r_targets : int;
  r_old_version : int;
  r_new_version : int;
  r_doc : Sxml.Tree.t;
  r_view_digest : string;
}

(* The digest a writer gets back is of the group's *view* of the new
   document, never the raw document: a full-document digest would hand
   the writer an equality oracle on regions it cannot read (detect
   that hidden content changed between versions, or confirm a guessed
   whole-document value).  MD5 of the serialized materialized view —
   the same digest function Sobs.Capture uses, so capture/replay can
   compare it directly. *)
let view_digest ?env ~spec ~view doc =
  let rendered =
    try
      Sxml.Print.to_string
        (Secview.Materialize.to_tree
           (Secview.Materialize.materialize ?env ~spec ~view doc))
    with Secview.Materialize.Abort _ -> ""
  in
  Digest.to_hex (Digest.string rendered)

let apply svc ~group ?env ?audit ~entry update =
  let ( let* ) = Result.bind in
  let* spec =
    match Pipeline.Service.spec svc ~group with
    | Some spec -> Ok spec
    | None ->
      Error
        (Error.Update_denied
           (Printf.sprintf
              "group %S was built from a stored view: no access \
               specification, no write grants"
              group))
    | exception Not_found ->
      Error
        (Error.Unknown_group
           {
             group;
             known = Pipeline.Service.order svc;
           })
  in
  let view = Pipeline.Service.view svc ~group in
  let snapshot = Catalog.pin entry in
  let doc = Catalog.snapshot_doc snapshot in
  let height =
    if Sdtd.Dtd.is_recursive (Secview.View.dtd view) then
      Some (Catalog.snapshot_height (Pipeline.Service.catalog svc) snapshot)
    else None
  in
  let* candidate, targets =
    Check.run ~dtd:(Pipeline.Service.dtd svc) ~spec ~view ?env ?height ?audit
      doc update
  in
  let old_version = Catalog.snapshot_version snapshot in
  let new_version = Catalog.update entry candidate in
  Pipeline.Service.invalidate_version svc old_version;
  Ok
    {
      r_op = Ast.op_label update;
      r_targets = targets;
      r_old_version = old_version;
      r_new_version = new_version;
      r_doc = candidate;
      r_view_digest = view_digest ?env ~spec ~view candidate;
    }

let apply_text svc ~group ?env ?audit ~entry text =
  match Parse.of_string text with
  | update -> apply svc ~group ?env ?audit ~entry update
  | exception Parse.Error msg -> Error (Error.Invalid_update msg)
