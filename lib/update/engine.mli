(** The transactional update orchestrator over a
    {!Secview.Pipeline.Service}.

    [apply] runs the full write path for one update: resolve the
    group's policy and view, pin the document's current catalog
    snapshot, admit the update through {!Check.run}, and — only on
    admission — swap the rebuilt document in as a new snapshot
    ({!Secview.Catalog.update}) and append the old version to the
    service's invalidation log
    ({!Secview.Pipeline.Service.invalidate_version}) so every session
    evicts its stale translations/plans on its next call.  A rejected
    update
    returns before any of that: document, index, catalog version and
    caches are bit-for-bit untouched.

    Concurrency: readers pinned on the old snapshot are never torn
    (snapshots are immutable), but two {e writers} racing on the same
    entry can lose an update between check and swap — callers must
    serialize writers per document.  The server routes every update
    through one coordinator domain; the CLI is single-threaded. *)

type receipt = {
  r_op : string;  (** ["insert"] / ["delete"] / ["replace"] *)
  r_targets : int;  (** view nodes the target path matched *)
  r_old_version : int;  (** catalog version the check ran against *)
  r_new_version : int;  (** version of the swapped-in snapshot *)
  r_doc : Sxml.Tree.t;  (** the new document *)
  r_view_digest : string;
      (** MD5 of the group's materialized view of the new document —
          the only digest that may be shown to the writer.  A digest
          of the raw document would be an equality oracle on content
          the view hides. *)
}

val apply :
  Secview.Pipeline.Service.t ->
  group:string ->
  ?env:(string -> string option) ->
  ?audit:(string -> unit) ->
  entry:Secview.Catalog.entry ->
  Ast.t ->
  (receipt, Secview.Error.t) result
(** Errors: everything {!Check.run} reports, plus [Unknown_group] and
    [Update_denied] when the group was built from a stored view — no
    policy, hence no write grants.  [audit] receives {!Check.run}'s
    id-bearing denial detail (server-side logs only). *)

val apply_text :
  Secview.Pipeline.Service.t ->
  group:string ->
  ?env:(string -> string option) ->
  ?audit:(string -> unit) ->
  entry:Secview.Catalog.entry ->
  string ->
  (receipt, Secview.Error.t) result
(** [apply] after parsing the concrete syntax; {!Parse.Error} becomes
    [Invalid_update]. *)
