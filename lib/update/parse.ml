exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* The target path and the content element split at the first '<':
   fragment-C paths contain none (comparisons are [=]-only), so
   everything before it is keywords + path, everything from it on is
   one XML element. *)
let split_content text =
  match String.index_opt text '<' with
  | None -> (text, None)
  | Some i ->
    (String.sub text 0 i, Some (String.sub text i (String.length text - i)))

let parse_path s =
  let s = String.trim s in
  if s = "" then fail "missing target path"
  else
    match Sxpath.Parse.of_string_result s with
    | Ok p -> p
    | Error e ->
      fail "bad target path: %s" (Sxpath.Parse.error_to_string e)

let parse_content s =
  match Sxml.Parse.of_string_result (String.trim s) with
  | Ok doc -> (
    match Sxml.Tree.to_spec doc with
    | Sxml.Tree.E _ as spec -> spec
    | Sxml.Tree.T _ -> fail "content must be an element, not bare text")
  | Error e -> fail "bad content: %s" (Sxml.Parse.error_to_string e)

(* First whitespace-delimited token and the rest of the string. *)
let cut_token s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let of_string text =
  let text = String.trim text in
  let keyword, rest = cut_token text in
  match keyword with
  | "insert" -> (
    let pos_kw, rest = cut_token rest in
    let pos =
      match pos_kw with
      | "into" -> Ast.Into
      | "before" -> Ast.Before
      | "after" -> Ast.After
      | "" -> fail "insert: expected into, before or after"
      | kw -> fail "insert: expected into, before or after, got %S" kw
    in
    match split_content rest with
    | _, None -> fail "insert: missing content element"
    | path_text, Some content_text ->
      Ast.Insert
        {
          pos;
          target = parse_path path_text;
          content = parse_content content_text;
        })
  | "delete" ->
    if String.contains rest '<' then fail "delete takes no content"
    else Ast.Delete (parse_path rest)
  | "replace" -> (
    match split_content rest with
    | _, None -> fail "replace: missing 'with' content element"
    | path_text, Some content_text ->
      let path_text = String.trim path_text in
      let with_len = String.length "with" in
      let path_text =
        if
          String.length path_text >= with_len
          && String.sub path_text
               (String.length path_text - with_len)
               with_len
             = "with"
          && (String.length path_text = with_len
             || path_text.[String.length path_text - with_len - 1] = ' ')
        then
          String.sub path_text 0 (String.length path_text - with_len)
        else fail "replace: expected 'replace PATH with CONTENT'"
      in
      Ast.Replace
        { target = parse_path path_text; content = parse_content content_text })
  | "" -> fail "empty update"
  | kw -> fail "expected insert, delete or replace, got %S" kw

let of_string_result text =
  match of_string text with
  | u -> Ok u
  | exception Error msg -> Error msg

let content_to_string spec = Sxml.Print.to_string (Sxml.Tree.of_spec spec)

let to_string = function
  | Ast.Insert { pos; target; content } ->
    Printf.sprintf "insert %s %s %s"
      (Ast.position_to_string pos)
      (Sxpath.Print.to_string target)
      (content_to_string content)
  | Ast.Delete target ->
    Printf.sprintf "delete %s" (Sxpath.Print.to_string target)
  | Ast.Replace { target; content } ->
    Printf.sprintf "replace %s with %s"
      (Sxpath.Print.to_string target)
      (content_to_string content)
