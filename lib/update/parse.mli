(** Parser and printer for the update language's concrete syntax.

    {v
    update  := 'insert' ('into' | 'before' | 'after') path content
             | 'delete' path
             | 'replace' path 'with' content
    content := one well-formed XML element
    v}

    [path] is the read fragment's syntax ({!Sxpath.Parse}); [content]
    starts at the first ['<'] of the line — well-formed because paths
    of the fragment contain no ['<'] (comparisons are [=]-only and a
    quoted value with a ['<'] in it is out of scope). *)

exception Error of string
(** Malformed update text; the payload is the human-readable reason.
    (Library equivalent of {!Secview.Error.Invalid_update} — layers
    that speak [Secview.Error] convert, see {!Engine}.) *)

val of_string : string -> Ast.t
(** @raise Error on malformed input. *)

val of_string_result : string -> (Ast.t, string) result

val to_string : Ast.t -> string
(** Concrete syntax that {!of_string} reads back to an equal
    update. *)
