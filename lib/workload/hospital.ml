module R = Sdtd.Regex

let dtd =
  let e l = R.Elt l in
  Sdtd.Dtd.create ~root:"hospital"
    [
      ("hospital", R.Star (e "dept"));
      ("dept", R.Seq [ e "clinicalTrial"; e "patientInfo"; e "staffInfo" ]);
      ("clinicalTrial", R.Seq [ e "patientInfo"; e "test" ]);
      ("patientInfo", R.Star (e "patient"));
      ("patient", R.Seq [ e "name"; e "wardNo"; e "treatment" ]);
      ("treatment", R.Choice [ e "trial"; e "regular" ]);
      ("trial", R.Seq [ e "bill" ]);
      ("regular", R.Seq [ e "bill"; e "medication" ]);
      ("staffInfo", R.Star (e "staff"));
      ("staff", R.Choice [ e "doctor"; e "nurse" ]);
      ("doctor", R.Seq [ e "name"; e "specialty" ]);
      ("nurse", R.Seq [ e "name"; e "wardNo" ]);
      ("name", R.Str);
      ("wardNo", R.Str);
      ("test", R.Str);
      ("bill", R.Str);
      ("medication", R.Str);
      ("specialty", R.Str);
    ]

let q1 =
  (* [*/patient/wardNo = $wardNo] at dept *)
  Sxpath.Parse.qual_of_string "*/patient/wardNo = $wardNo"

let nurse_spec ?write dtd =
  Secview.Spec.make ?write dtd
    [
      (("hospital", "dept"), Secview.Spec.Cond q1);
      (("dept", "clinicalTrial"), Secview.Spec.No);
      (("clinicalTrial", "patientInfo"), Secview.Spec.Yes);
      (("treatment", "trial"), Secview.Spec.No);
      (("treatment", "regular"), Secview.Spec.No);
      (("trial", "bill"), Secview.Spec.Yes);
      (("regular", "bill"), Secview.Spec.Yes);
      (("regular", "medication"), Secview.Spec.Yes);
    ]

let nurse_env ward name = if String.equal name "wardNo" then Some ward else None

let patient ~name ~ward ~treatment =
  let open Sxml.Tree in
  elem "patient"
    [
      elem "name" [ text name ];
      elem "wardNo" [ text ward ];
      elem "treatment" [ treatment ];
    ]

let trial_treatment ~bill =
  Sxml.Tree.(elem "trial" [ elem "bill" [ text bill ] ])

let regular_treatment ~bill ~medication =
  Sxml.Tree.(
    elem "regular"
      [ elem "bill" [ text bill ]; elem "medication" [ text medication ] ])

let dept ~ward ~trial_patients ~regular_patients ~staff =
  let open Sxml.Tree in
  ignore ward;
  elem "dept"
    [
      elem "clinicalTrial"
        [ elem "patientInfo" trial_patients; elem "test" [ text "blood" ] ];
      elem "patientInfo" regular_patients;
      elem "staffInfo" staff;
    ]

let sample_document () =
  let open Sxml.Tree in
  let staff6 =
    [
      elem "staff"
        [
          elem "doctor"
            [ elem "name" [ text "Dr. Ada" ]; elem "specialty" [ text "onco" ] ];
        ];
      elem "staff"
        [
          elem "nurse"
            [ elem "name" [ text "Nina" ]; elem "wardNo" [ text "6" ] ];
        ];
    ]
  in
  let staff7 =
    [
      elem "staff"
        [
          elem "nurse"
            [ elem "name" [ text "Noor" ]; elem "wardNo" [ text "7" ] ];
        ];
    ]
  in
  of_spec
    (elem "hospital"
       [
         dept ~ward:"6"
           ~trial_patients:
             [
               patient ~name:"Alice" ~ward:"6"
                 ~treatment:(trial_treatment ~bill:"900");
             ]
           ~regular_patients:
             [
               patient ~name:"Bob" ~ward:"6"
                 ~treatment:(regular_treatment ~bill:"120" ~medication:"abc");
               patient ~name:"Carol" ~ward:"6"
                 ~treatment:(regular_treatment ~bill:"80" ~medication:"xyz");
             ]
           ~staff:staff6;
         dept ~ward:"7"
           ~trial_patients:
             [
               patient ~name:"Dave" ~ward:"7"
                 ~treatment:(trial_treatment ~bill:"500");
             ]
           ~regular_patients:
             [
               patient ~name:"Eve" ~ward:"7"
                 ~treatment:(regular_treatment ~bill:"60" ~medication:"mno");
             ]
           ~staff:staff7;
       ])

let generated_document ?(seed = 42) ?(scale = 8) () =
  let config =
    {
      Sdtd.Gen.default_config with
      seed;
      star_for =
        (fun parent ->
          match parent with
          | "hospital" -> Some (2, max 2 (scale / 2))
          | "patientInfo" -> Some (1, scale)
          | "staffInfo" -> Some (1, max 1 (scale / 2))
          | _ -> None);
      text_for =
        (fun parent rng ->
          match parent with
          | "wardNo" -> string_of_int (Random.State.int rng 10)
          | "name" -> Printf.sprintf "person%d" (Random.State.int rng 1000)
          | _ -> Sdtd.Gen.default_text parent rng);
    }
  in
  Sdtd.Gen.generate ~config dtd

let inference_queries =
  ( Sxpath.Parse.of_string "//dept//patientInfo/patient/name",
    Sxpath.Parse.of_string "//dept/patientInfo/patient/name" )
