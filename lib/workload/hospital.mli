(** The paper's running example: the hospital document DTD (Fig. 1)
    and the nurse access policy (Example 3.1 / Fig. 4).

    The DTD graph, reconstructed from Fig. 1 and the prose: a hospital
    is a list of departments; each department has clinical-trial data,
    regular patient data and staff data; treatment is either a trial
    or a regular treatment; staff are doctors or nurses. *)

val dtd : Sdtd.Dtd.t

val nurse_spec :
  ?write:((string * string) * Secview.Spec.write_op list) list ->
  Sdtd.Dtd.t ->
  Secview.Spec.t
(** The Example 3.1 policy parameterized by [$wardNo]: nurses see only
    departments with their ward, never learn which patients are in
    clinical trials, and see bills/medication but not the treatment
    kind.  [write] attaches write grants to the same annotations
    (default: none — the policy is read-only, as in the paper). *)

val nurse_env : string -> string -> string option
(** [nurse_env ward]: environment binding [$wardNo] to [ward]. *)

val sample_document : unit -> Sxml.Tree.t
(** A small handwritten instance with two departments (wards "6" and
    "7"), trial and regular patients — the document used in unit
    tests mirroring Examples 1.1/3.3. *)

val generated_document : ?seed:int -> ?scale:int -> unit -> Sxml.Tree.t
(** A larger random instance; [scale] controls how many departments
    and patients are generated (default 8). *)

val inference_queries : Sxpath.Ast.path * Sxpath.Ast.path
(** Example 1.1's attack pair (p1, p2): [//dept//patientInfo/patient/name]
    and [//dept/patientInfo/patient/name], whose difference over the
    raw document reveals exactly the clinical-trial patients. *)
