type t = {
  nodes : Tree.t array;  (* by identifier *)
  extents : int array;
  tag_table : (string, Tree.t array) Hashtbl.t;
  tag_ids_table : (string, int array) Hashtbl.t;
}

let build root =
  if root.Tree.id <> 0 then
    invalid_arg "Index.build: expected a document root (identifier 0)";
  let n = Tree.size root in
  let nodes = Array.make n root in
  let extents = Array.make n 0 in
  let tag_lists : (string, Tree.t list ref) Hashtbl.t = Hashtbl.create 32 in
  (* returns the last identifier of the subtree *)
  let rec fill (node : Tree.t) =
    if node.Tree.id >= n then
      invalid_arg "Index.build: identifiers are not dense preorder";
    nodes.(node.Tree.id) <- node;
    (match Tree.tag node with
    | Some tag ->
      let cell =
        match Hashtbl.find_opt tag_lists tag with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add tag_lists tag cell;
          cell
      in
      cell := node :: !cell
    | None -> ());
    let last =
      List.fold_left (fun _ child -> fill child) node.Tree.id
        (Tree.children node)
    in
    extents.(node.Tree.id) <- last;
    last
  in
  let last = fill root in
  if last <> n - 1 then
    invalid_arg "Index.build: identifiers are not dense preorder";
  let tag_table = Hashtbl.create (Hashtbl.length tag_lists) in
  Hashtbl.iter
    (fun tag cell ->
      Hashtbl.replace tag_table tag (Array.of_list (List.rev !cell)))
    tag_lists;
  let tag_ids_table = Hashtbl.create (Hashtbl.length tag_table) in
  Hashtbl.iter
    (fun tag arr ->
      Hashtbl.replace tag_ids_table tag
        (Array.map (fun node -> node.Tree.id) arr))
    tag_table;
  { nodes; extents; tag_table; tag_ids_table }

let size idx = Array.length idx.nodes

let extent idx id = idx.extents.(id)

let node idx id = idx.nodes.(id)

let empty_array : Tree.t array = [||]

let by_tag idx tag =
  Option.value (Hashtbl.find_opt idx.tag_table tag) ~default:empty_array

let empty_ids : int array = [||]

let tag_ids idx tag =
  Option.value (Hashtbl.find_opt idx.tag_ids_table tag) ~default:empty_ids

let tags idx =
  List.sort String.compare
    (Hashtbl.fold (fun tag _ acc -> tag :: acc) idx.tag_table [])

(* first index in [arr] whose node id is >= [target] *)
let lower_bound (arr : Tree.t array) target =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid).Tree.id < target then lo := mid + 1 else hi := mid
  done;
  !lo

let descendants_with_tag idx ~context tag =
  let arr = by_tag idx tag in
  let lo = lower_bound arr (context.Tree.id + 1) in
  let last = extent idx context.Tree.id in
  let out = ref [] in
  let i = ref lo in
  while !i < Array.length arr && arr.(!i).Tree.id <= last do
    out := arr.(!i) :: !out;
    incr i
  done;
  List.rev !out
