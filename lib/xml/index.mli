(** Document indexes.

    Because node identifiers are dense preorder positions, a subtree is
    the contiguous identifier interval [[id, extent id]].  The index
    materializes these extents plus a tag → nodes map, which gives the
    evaluator a fast path for descendant steps ([//l] = the l-tagged
    nodes whose identifier falls strictly inside a context extent,
    found by binary search instead of a subtree scan).

    An index is only meaningful for the document it was built from;
    querying nodes of another document through it is unchecked and
    returns garbage. *)

type t

val build : Tree.t -> t
(** One O(n) pass.  The argument must be a document root (identifier
    0, dense preorder numbering — anything {!Tree.of_spec}
    produced). @raise Invalid_argument otherwise. *)

val size : t -> int
(** Total number of nodes indexed. *)

val extent : t -> int -> int
(** [extent idx id]: identifier of the last node in the subtree rooted
    at [id] (the subtree is [id..extent idx id], inclusive). *)

val node : t -> int -> Tree.t
(** Node by identifier. *)

val by_tag : t -> string -> Tree.t array
(** All elements with the given tag, in document order (possibly
    empty). *)

val tag_ids : t -> string -> int array
(** Identifiers of all elements with the given tag, strictly
    ascending (document order).  The array is owned by the index: do
    not mutate it.  This is the form plan executors binary-search for
    interval joins against {!extent}. *)

val tags : t -> string list
(** Distinct element tags, sorted. *)

val descendants_with_tag :
  t -> context:Tree.t -> string -> Tree.t list
(** The l-tagged strict descendants of the context node, in document
    order — [O(log n + answers)]. *)
