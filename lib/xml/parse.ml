type error = { line : int; column : int; message : string }

exception Error of error

let error_to_string { line; column; message } =
  Printf.sprintf "XML parse error at %d:%d: %s" line column message

(* defined before [state] so the record labels are unambiguous *)
let mk_error line column message = { line; column; message }

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* position of beginning of current line *)
}

let fail (st : state) message =
  raise (Error (mk_error st.line (st.pos - st.bol + 1) message))

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.input then '\000'
  else st.input.[st.pos + 1]

let advance st =
  (if not (eof st) then
     let c = st.input.[st.pos] in
     if c = '\n' then begin
       st.line <- st.line + 1;
       st.bol <- st.pos + 1
     end);
  st.pos <- st.pos + 1

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decode one entity or character reference; cursor is on '&'. *)
let parse_reference st buf =
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let name = String.sub st.input start (st.pos - start) in
  advance st;
  match name with
  | "amp" -> Buffer.add_char buf '&'
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "quot" -> Buffer.add_char buf '"'
  | "apos" -> Buffer.add_char buf '\''
  | _ ->
    let decode_char code =
      (* UTF-8 encode the code point. *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    in
    if String.length name > 1 && name.[0] = '#' then
      let body = String.sub name 1 (String.length name - 1) in
      let code =
        try
          if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X')
          then int_of_string ("0x" ^ String.sub body 1 (String.length body - 1))
          else int_of_string body
        with Failure _ -> fail st ("bad character reference: &" ^ name ^ ";")
      in
      if code < 0 || code > 0x10FFFF then
        fail st ("character reference out of range: &" ^ name ^ ";")
      else decode_char code
    else fail st ("unknown entity: &" ^ name ^ ";")

let parse_quoted st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      parse_reference st buf;
      loop ()
    end
    else if peek st = '<' then fail st "'<' in attribute value"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_attrs st =
  let rec loop acc =
    skip_space st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_quoted st in
      if List.mem_assoc name acc then
        fail st ("duplicate attribute: " ^ name);
      loop ((name, value) :: acc)
    end
    else List.rev acc
  in
  loop []

let skip_until st target =
  let n = String.length target in
  let rec loop () =
    if st.pos + n > String.length st.input then
      fail st (Printf.sprintf "unterminated construct (expected %S)" target)
    else if String.sub st.input st.pos n = target then
      for _ = 1 to n do
        advance st
      done
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_misc st =
  (* Skip whitespace, comments, PIs, XML declaration, DOCTYPE. *)
  let rec loop () =
    skip_space st;
    if peek st = '<' then
      match peek2 st with
      | '?' ->
        skip_until st "?>";
        loop ()
      | '!' ->
        if
          st.pos + 4 <= String.length st.input
          && String.sub st.input st.pos 4 = "<!--"
        then begin
          skip_until st "-->";
          loop ()
        end
        else begin
          (* DOCTYPE without internal subset. *)
          skip_until st ">";
          loop ()
        end
      | _ -> ()
  in
  loop ()

let all_whitespace s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

let rec parse_element st ~keep_whitespace : Tree.spec =
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  if peek st = '/' then begin
    advance st;
    expect st '>';
    Tree.elem tag ~attrs []
  end
  else begin
    expect st '>';
    let children = parse_content st ~keep_whitespace tag in
    Tree.elem tag ~attrs children
  end

and parse_content st ~keep_whitespace tag =
  let children = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if keep_whitespace || not (all_whitespace s) then
        children := Tree.text s :: !children
    end
  in
  let rec loop () =
    if eof st then fail st ("unterminated element: " ^ tag)
    else if peek st = '<' then
      match peek2 st with
      | '/' ->
        flush_text ();
        advance st;
        advance st;
        let close = parse_name st in
        skip_space st;
        expect st '>';
        if close <> tag then
          fail st
            (Printf.sprintf "mismatched tags: <%s> closed by </%s>" tag close)
      | '!' ->
        if
          st.pos + 4 <= String.length st.input
          && String.sub st.input st.pos 4 = "<!--"
        then begin
          skip_until st "-->";
          loop ()
        end
        else fail st "unsupported markup in content"
      | '?' ->
        skip_until st "?>";
        loop ()
      | _ ->
        flush_text ();
        children := parse_element st ~keep_whitespace :: !children;
        loop ()
    else if peek st = '&' then begin
      parse_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  List.rev !children

let of_string ?(keep_whitespace = false) input =
  let st = { input; pos = 0; line = 1; bol = 0 } in
  skip_misc st;
  if eof st then fail st "empty document";
  let root = parse_element st ~keep_whitespace in
  skip_misc st;
  if not (eof st) then fail st "content after document element";
  Tree.of_spec root

let of_string_result ?keep_whitespace input =
  match of_string ?keep_whitespace input with
  | doc -> Ok doc
  | exception Error e -> Error e

let of_file ?keep_whitespace path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ?keep_whitespace contents
