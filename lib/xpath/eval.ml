exception Unbound_variable of string

let visited = ref 0

(* Context items: ordinary tree nodes, plus the virtual document node
   sitting above the root element (used by [eval_doc]). *)
type item =
  | Node of Sxml.Tree.t
  | Docnode of Sxml.Tree.t

let item_id = function Node n -> n.Sxml.Tree.id | Docnode _ -> -1

let item_children = function
  | Node n -> Sxml.Tree.children n
  | Docnode root -> [ root ]

(* The descendant-or-self axis ranges over element nodes (and the
   virtual document node): in the paper's model text is "str data"
   attached to elements, not an addressable node, and all the
   DTD-level algorithms (rewrite, optimize) reason about element types
   only.  Text values are reached through string-value comparisons. *)
let item_descendants_or_self item =
  match item with
  | Node n ->
    List.filter_map
      (fun x -> if Sxml.Tree.is_element x then Some (Node x) else None)
      (Sxml.Tree.descendants_or_self n)
  | Docnode root ->
    item
    :: List.filter_map
         (fun x -> if Sxml.Tree.is_element x then Some (Node x) else None)
         (Sxml.Tree.descendants_or_self root)

let sort_dedup_items items =
  let sorted =
    List.sort (fun a b -> Int.compare (item_id a) (item_id b)) items
  in
  let rec dedup = function
    | a :: (b :: _ as rest) when item_id a = item_id b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(* A step result: node items plus attribute string values (attribute
   steps leave the node world; only existence and equality tests can
   observe them). *)
type result = { nodes : item list; attrs : string list }

let empty_result = { nodes = []; attrs = [] }

let merge_results rs =
  {
    nodes = sort_dedup_items (List.concat_map (fun r -> r.nodes) rs);
    attrs = List.concat_map (fun r -> r.attrs) rs;
  }

let is_nonempty r = r.nodes <> [] || r.attrs <> []

type cfg = {
  env : string -> string option;
  index : Sxml.Index.t option;
}

let resolve cfg = function
  | Ast.Const c -> c
  | Ast.Var name -> (
    match cfg.env name with
    | Some c -> c
    | None -> raise (Unbound_variable name))

(* Decompose a path whose first step is a label: [l/rest].  Gives the
   index-based descendant fast path its shape: //l/rest = the l-tagged
   descendants, then rest. *)
let rec head_label = function
  | Ast.Label l -> Some (l, Ast.Eps)
  | Ast.Slash (p1, p2) -> (
    match head_label p1 with
    | Some (l, Ast.Eps) -> Some (l, p2)
    | Some (l, k) -> Some (l, Ast.Slash (k, p2))
    | None -> None)
  | Ast.Qualify (p1, q) -> (
    match head_label p1 with
    | Some (l, k) -> Some (l, Ast.Qualify (k, q))
    | None -> None)
  | Ast.Empty | Ast.Eps | Ast.Wildcard | Ast.Attribute _ | Ast.Dslash _
  | Ast.Union _ ->
    None

let rec eval_result cfg (p : Ast.path) (ctx : item list) : result =
  match p with
  | Ast.Empty -> empty_result
  | Ast.Eps -> { nodes = ctx; attrs = [] }
  | Ast.Label l ->
    let step item =
      incr visited;
      List.filter
        (fun child -> Sxml.Tree.tag child = Some l)
        (item_children item)
    in
    {
      nodes =
        sort_dedup_items
          (List.concat_map
             (fun item -> List.map (fun n -> Node n) (step item))
             ctx);
      attrs = [];
    }
  | Ast.Wildcard ->
    let step item =
      incr visited;
      List.filter Sxml.Tree.is_element (item_children item)
    in
    {
      nodes =
        sort_dedup_items
          (List.concat_map
             (fun item -> List.map (fun n -> Node n) (step item))
             ctx);
      attrs = [];
    }
  | Ast.Attribute a ->
    let values =
      List.filter_map
        (fun item ->
          incr visited;
          match item with
          | Node n -> Sxml.Tree.attr n a
          | Docnode _ -> None)
        ctx
    in
    { nodes = []; attrs = values }
  | Ast.Slash (p1, p2) ->
    let mid = eval_result cfg p1 ctx in
    (* Attribute values have no children: only node results flow on. *)
    eval_result cfg p2 mid.nodes
  | Ast.Dslash p1 -> (
    match (cfg.index, head_label p1) with
    | Some index, Some (l, continuation) ->
      (* fast path: l-tagged descendants via the tag index *)
      let hits =
        List.concat_map
          (fun item ->
            incr visited;
            match item with
            | Node n ->
              List.map
                (fun x -> Node x)
                (Sxml.Index.descendants_with_tag index ~context:n l)
            | Docnode _ ->
              List.map (fun x -> Node x)
                (Array.to_list (Sxml.Index.by_tag index l)))
          ctx
      in
      eval_result cfg continuation (sort_dedup_items hits)
    | _, _ ->
      let expanded =
        sort_dedup_items
          (List.concat_map
             (fun item ->
               incr visited;
               item_descendants_or_self item)
             ctx)
      in
      eval_result cfg p1 expanded)
  | Ast.Union (p1, p2) ->
    merge_results [ eval_result cfg p1 ctx; eval_result cfg p2 ctx ]
  | Ast.Qualify (p1, q) ->
    let base = eval_result cfg p1 ctx in
    {
      base with
      nodes = List.filter (fun item -> eval_qual cfg q item) base.nodes;
    }

and eval_qual cfg (q : Ast.qual) (item : item) : bool =
  match q with
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Exists p -> is_nonempty (eval_result cfg p [ item ])
  | Ast.Eq (p, v) ->
    let c = resolve cfg v in
    let r = eval_result cfg p [ item ] in
    List.exists (String.equal c) r.attrs
    || List.exists
         (fun it ->
           match it with
           | Node n -> String.equal (Sxml.Tree.string_value n) c
           | Docnode _ -> false)
         r.nodes
  | Ast.And (a, b) -> eval_qual cfg a item && eval_qual cfg b item
  | Ast.Or (a, b) -> eval_qual cfg a item || eval_qual cfg b item
  | Ast.Not a -> not (eval_qual cfg a item)

let no_env : string -> string option = fun _ -> None

let nodes_of_items items =
  List.filter_map (function Node n -> Some n | Docnode _ -> None) items

module Ctx = struct
  type t = {
    cfg : cfg;
    root : Sxml.Tree.t;
    start : item;
  }

  let make ?(env = no_env) ?index ?(at = `Root) ~root () =
    let start =
      match at with `Root -> Node root | `Document -> Docnode root
    in
    { cfg = { env; index }; root; start }

  let root t = t.root

  let env t = t.cfg.env

  let index t = t.cfg.index
end

let run ctx p =
  nodes_of_items (eval_result ctx.Ctx.cfg p [ ctx.Ctx.start ]).nodes

let run_nodes ctx p vs =
  nodes_of_items
    (eval_result ctx.Ctx.cfg p
       (sort_dedup_items (List.map (fun v -> Node v) vs)))
      .nodes

let check ctx q v = eval_qual ctx.Ctx.cfg q (Node v)
