(** Set-at-a-time evaluation of the fragment over {!Sxml.Tree}
    documents.

    Following Section 2, [v⟦p⟧] is the set of nodes reachable from the
    context node [v] via [p]; a qualifier [\[p\]] holds at [v] iff
    [v⟦p⟧] is non-empty, and [\[p = c\]] holds iff [v⟦p⟧] contains a
    node whose string value is [c] (we use the standard XPath
    string-value, which subsumes the paper's text-node formulation for
    element results).

    Evaluation proceeds one query operator at a time over whole context
    sets with deduplication at every step, so it is polynomial in
    |query| × |document| like the evaluator of Gottlob et al. the paper
    builds on [15] — no exponential blow-up on nested [//].

    The descendant-or-self axis ranges over {e elements}: in the
    paper's model PCDATA is "str data" attached to an element, not an
    addressable node, and the DTD-level rewriting/optimization
    algorithms reason about element types only.  Text is observed
    through string values ([p = c] compares the string value of each
    node in [v⟦p⟧]).

    The single entry point is {!run} over a {!Ctx.t}, which fixes the
    variable environment, the optional tag index and the context
    convention once. *)

exception Unbound_variable of string

(** Evaluation contexts.  A context packages everything that is fixed
    across evaluations of one document: the [$var] environment, an
    optional {!Sxml.Index.t} built from the queried document (with it,
    [//l/rest]-shaped descendant steps are answered from the tag index
    by binary search over subtree extents instead of scanning the
    subtree; results are identical with and without), and the context
    convention:
    - [`Root] (default) evaluates at the root element itself — the
      convention of the rewriting algorithm, whose output is relative
      to the document root element;
    - [`Document] evaluates at a virtual document node whose only
      child is the root element, matching how absolute queries like
      [/adex/head/…] are written. *)
module Ctx : sig
  type t

  val make :
    ?env:(string -> string option) ->
    ?index:Sxml.Index.t ->
    ?at:[ `Root | `Document ] ->
    root:Sxml.Tree.t ->
    unit ->
    t
  (** [make ~root ()] — context at [root], no bindings, no index. *)

  val root : t -> Sxml.Tree.t
  (** The context root passed to {!make}. *)

  val env : t -> string -> string option
  (** The variable environment (total: unbound names give [None]). *)

  val index : t -> Sxml.Index.t option
  (** The tag index, if one was supplied. *)
end

val run : Ctx.t -> Ast.path -> Sxml.Tree.t list
(** [run ctx p]: nodes reachable from the context node of [ctx] via
    [p], in document order, duplicate-free.  @raise Unbound_variable
    if the query contains a [$var] the environment does not bind (the
    check is lazy: only qualifiers that are actually evaluated
    resolve their variables). *)

val run_nodes : Ctx.t -> Ast.path -> Sxml.Tree.t list -> Sxml.Tree.t list
(** [run_nodes ctx p vs]: evaluate at every node of [vs] (same
    document as the context root) and union the results.  The
    context's [at] convention is ignored — the given nodes {e are}
    the context set. *)

val check : Ctx.t -> Ast.qual -> Sxml.Tree.t -> bool
(** [check ctx q v]: truth of qualifier [q] at node [v]. *)

val visited : int ref
(** Instrumentation counter bumped once per context-node × step
    combination the evaluator touches; the benchmark harness reads it
    as a machine-independent work measure alongside wall-clock time.
    Reset it yourself between measurements. *)
