The secview command line, end to end over the paper's running example.

Derive the nurse view: hidden types are gone, dummies appear:

  $ secview derive --dtd hospital.dtd --spec nurse.spec
  <!ELEMENT hospital (dept*)>
  <!ELEMENT bill (#PCDATA)>
  <!ELEMENT dept (patientInfo*, staffInfo)>
  <!ELEMENT doctor (name, specialty)>
  <!ELEMENT dummy1 (bill)>
  <!ELEMENT dummy2 (bill, medication)>
  <!ELEMENT medication (#PCDATA)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT nurse (name, wardNo)>
  <!ELEMENT patient (name, wardNo, treatment)>
  <!ELEMENT patientInfo (patient*)>
  <!ELEMENT specialty (#PCDATA)>
  <!ELEMENT staff (doctor | nurse)>
  <!ELEMENT staffInfo (staff*)>
  <!ELEMENT treatment (dummy1 | dummy2)>
  <!ELEMENT wardNo (#PCDATA)>

The document validates against the document DTD:

  $ secview validate --dtd hospital.dtd --doc ward.xml
  valid

Rewriting Example 4.1's query:

  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//patient//bill"
  dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/treatment/(regular/bill | trial/bill)

Queries through the view return only authorized data; the ward binding
selects the department:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//patient/name"
  <name>Alice</name>
  <name>Bob</name>

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=7 "//patient/name"

Hidden element types rewrite to the empty query:

  $ secview rewrite --dtd hospital.dtd --spec nurse.spec "//clinicalTrial"
  #empty

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//test"

Dummy labels are queryable (their hidden sources are not revealed):

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 "//treatment/dummy2/medication"
  <medication>abc</medication>

A stored view definition replays without the specification:

  $ secview derive --dtd hospital.dtd --spec nurse.spec --save nurse.view > /dev/null
  view definition written to nurse.view
  $ secview rewrite --dtd hospital.dtd --view nurse.view "//patient//bill"
  dept[*/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/treatment/(regular/bill | trial/bill)

The naive baseline agrees on answers (modulo strategy):

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --approach naive "//patient/name"
  <name accessibility="1">Alice</name>
  <name accessibility="1">Bob</name>

The tag-index fast path returns the same answers:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --index "//patient/name"
  <name>Alice</name>
  <name>Bob</name>

Policy audit over the specification:

  $ secview audit --dtd hospital.dtd --spec nurse.spec | head -5
  exposure (per element type, across root-paths):
    hospital             accessible
    dept                 conditional
    clinicalTrial        hidden
    patientInfo          conditional

The materialized view (inspection only) hides trial membership:

  $ secview materialize --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 | grep -c clinicalTrial
  0
  [1]

Graphviz rendering of the DTD graph:

  $ secview graph --dtd hospital.dtd | head -3
  digraph dtd {
    rankdir=TB;
    node [shape=box, fontsize=10];

Audit can diff two policies over the same DTD:

  $ secview audit --dtd hospital.dtd --spec nurse.spec --diff bad.spec
  ~ bill changes status
  ~ medication changes status
  ~ name changes status
  ~ patient changes status
  ~ patientInfo changes status
  + regular becomes exposed
  ~ treatment changes status
  + trial becomes exposed
  ~ wardNo changes status

Query statistics expose the rewrite-cache behaviour, per group:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --stats "//patient/name"
  <name>Alice</name>
  <name>Bob</name>
  cache[user]: translation 0 hit(s) 1 miss(es); plans 0 hit(s) 1 miss(es), 1 compiled, 0 fallback(s)

Linting the shipped policy is clean (informational notes only):

  $ secview lint --dtd hospital.dtd --spec nurse.spec "//patient/name" "//patient//bill"
  info[SV004] element clinicalTrial: hidden on every root-path, yet ann(clinicalTrial, patientInfo) grants access below it (verify this re-exposure is intended)
  info[SV004] element trial: hidden on every root-path, yet ann(trial, bill) grants access below it (verify this re-exposure is intended)
  info[SV004] element regular: hidden on every root-path, yet ann(regular, bill) grants access below it (verify this re-exposure is intended)
  info[SV004] element regular: hidden on every root-path, yet ann(regular, medication) grants access below it (verify this re-exposure is intended)
  0 error(s), 0 warning(s), 4 info(s)

A policy whose qualifier names an attribute nobody declares is an error:

  $ secview lint --dtd hospital.dtd --spec bad.spec 2>&1 | grep 'error\['
  error[SV002] ann(hospital, dept): qualifier references attribute @ward, which is declared on none of dept
  error[SV103] sigma(hospital, dept): qualifier references attribute @ward, declared on none of dept
  $ secview lint --dtd hospital.dtd --spec bad.spec > /dev/null
  [1]

A stored view whose extraction path went stale is an error (machine form):

  $ secview lint --dtd hospital.dtd --view stale.view --machine
  SV101	error	sigma(dept, patientInfo)	path clinicalTrials/patientInfo | patientInfo: step clinicalTrials: clinicalTrials is not an element type of the DTD
  [1]

A query for a type the view hides is provably empty -- a warning, not an
error, since the rewriting still answers it (with nothing):

  $ secview lint --dtd hospital.dtd --spec nurse.spec "//clinicalTrial" | head -1
  warning[SV201] query //clinicalTrial: provably empty on every instance of the view DTD: step clinicalTrial: clinicalTrial is not an element type of the DTD

The strict pipeline gate refuses to build over a broken policy:

  $ secview query --dtd hospital.dtd --spec bad.spec --doc ward.xml \
  >   --strict "//patient/name"
  secview: Pipeline: strict validation failed:
  group "user": error[SV002] ann(hospital, dept): qualifier references attribute @ward, which is declared on none of dept
  group "user": error[SV103] sigma(hospital, dept): qualifier references attribute @ward, declared on none of dept
  [2]

Semantic analysis: static admission classifies queries against the
view DTD alone -- denied means provably empty on every instance:

  $ secview analyze --dtd hospital.dtd --spec nurse.spec \
  >   "//patient/name" "//test" "//medication/name"
  admission [user] //patient/name: eval
  admission [user] //test: denied — step test: test is not an element type of the DTD
  admission [user] //medication/name: denied — step name can never match under medication
  no diagnostics

Cross-group comparison: the junior profile (no medication grant) is
subsumed by the nurse policy, and a reordered copy of the same policy
is flagged as a merge candidate:

  $ secview analyze --dtd hospital.dtd --fleet \
  >   --group nurse=nurse.spec --group nurse2=nurse2.spec \
  >   --group junior=junior.spec
  compare nurse vs nurse2: equivalent
  compare nurse vs junior: subsumes
  compare nurse2 vs junior: subsumes
  warning[SV401] groups(nurse, nurse2): the groups expose the same accessible region on every instance — merge candidates (one view definition can serve both)
  info[SV402] groups(junior, nurse): every node accessible to junior is accessible to nurse — a role-hierarchy edge (nurse subsumes junior)
  info[SV402] groups(junior, nurse2): every node accessible to junior is accessible to nurse2 — a role-hierarchy edge (nurse2 subsumes junior)
  0 error(s), 1 warning(s), 2 info(s)

A view that advertises structure no instance can populate is a leak
(the qualifier requires a bill under #PCDATA test):

  $ secview analyze --dtd hospital.dtd --spec leak.spec
  warning[SV410] element clinicalTrial: declared by the view DTD but unpopulatable: every σ path into clinicalTrial from a populatable parent matches nothing under the document DTD's constraints — exposed structure leaks the shape of hidden data
  0 error(s), 1 warning(s), 0 info(s)

The same analysis as one JSON object, and as tab-separated records:

  $ secview analyze --dtd hospital.dtd --spec leak.spec --json "//clinicalTrial"
  {"groups":["user"],"comparisons":[],"diagnostics":[{"code":"SV410","severity":"warning","subject":"element clinicalTrial","message":"declared by the view DTD but unpopulatable: every σ path into clinicalTrial from a populatable parent matches nothing under the document DTD's constraints — exposed structure leaks the shape of hidden data"}],"admission":[{"group":"user","query":"//clinicalTrial","verdict":"eval","witness":null}]}

  $ secview analyze --dtd hospital.dtd --spec leak.spec --machine
  SV410	warning	element clinicalTrial	declared by the view DTD but unpopulatable: every σ path into clinicalTrial from a populatable parent matches nothing under the document DTD's constraints — exposed structure leaks the shape of hidden data

Diagnostics can stream to the audit log, same format as lint:

  $ secview analyze --dtd hospital.dtd --spec leak.spec --audit-log leak.jsonl
  warning[SV410] element clinicalTrial: declared by the view DTD but unpopulatable: every σ path into clinicalTrial from a populatable parent matches nothing under the document DTD's constraints — exposed structure leaks the shape of hidden data
  0 error(s), 1 warning(s), 0 info(s)
  $ grep -c '"type":"diagnostic"' leak.jsonl
  1

The explain command now carries the admission verdict:

  $ secview explain --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   user "//test" | head -2
  query:      //test
  admission:  denied — step test: test is not an element type of the DTD

Secure updates ride the same view.  Write grants are per DTD edge and
per operation ('write parent child OPS' sidecar lines); a policy
without them is read-only:

  $ secview update --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 user \
  >   'replace //patient[name = "Bob"]//bill with <bill>150</bill>'
  secview: no replace grant on edge (regular, bill)
  [2]

A granted write is admitted only if every touched node stays inside
the nurse's accessible region; the rebuilt document goes to --out (the
input file is never modified in place):

  $ secview update --dtd hospital.dtd --spec nurse_rw.spec --doc ward.xml \
  >   --bind wardNo=6 --out ward2.xml user \
  >   'replace //patient[name = "Bob"]//bill with <bill>150</bill>'
  op:       replace
  targets:  1
  version:  1 -> 2
  digest:   e796b0dcfba4a91472235e9dff0f04cc
  $ grep -c 150 ward.xml
  0
  [1]
  $ grep -c 150 ward2.xml
  1

Deleting a patient would also delete the hidden treatment branch
beneath -- rejected, and nothing changes:

  $ secview update --dtd hospital.dtd --spec nurse_rw.spec --doc ward.xml \
  >   --bind wardNo=6 user 'delete //patient[name = "Bob"]'
  secview: target subtree contains inaccessible content
  [2]
