Observability: tracing, metrics and the security audit log.

Timings vary run to run; sed pins them before comparison.

A traced query prints the span tree of the request to stderr — pipeline
construction (derive), then the answer with its translation and
evaluation stages nested inside:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --trace "//patient/name" 2>&1 | sed -E 's/ *[0-9]+\.[0-9]+ms/ _/'
  <name>Alice</name>
  <name>Bob</name>
  trace (8 span(s)):
    derive _
    derive _
    answer _
      translate _
        rewrite _
        optimize _
      plan _
      eval _

The metrics dump carries the cache counters and per-stage latency
series; counter values are deterministic, durations are not:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --metrics "//patient/name" 2>&1 \
  >   | sed -E 's/ +[0-9]+\.[0-9]{3}/ _/g'
  <name>Alice</name>
  <name>Bob</name>
  counters:
    pipeline.cache.miss.user                 1
    pipeline.plan.miss.user                  1
  series (count/min/mean/p50/p95/max):
    eval.visited                                  1 _ _ _ _ _
    stage.answer                                  1 _ _ _ _ _
    stage.derive                                  2 _ _ _ _ _
    stage.eval                                    1 _ _ _ _ _
    stage.optimize                                1 _ _ _ _ _
    stage.plan                                    1 _ _ _ _ _
    stage.rewrite                                 1 _ _ _ _ _
    stage.translate                               1 _ _ _ _ _

The metrics subcommand replays a workload and dumps the registry;
repeated queries hit the translation cache:

  $ secview metrics --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --repeat 3 "//patient/name" "//patient//bill" 2>/dev/null \
  >   | sed -n '/counters/,/series/p' | head -4
  counters:
    pipeline.cache.hit.user                  4
    pipeline.cache.miss.user                 2
    pipeline.plan.hit.user                   4

Machine-readable form (every number pinned):

  $ secview metrics --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --json "//patient/name" 2>/dev/null \
  >   | sed -E 's/[0-9]+(\.[0-9]+)?/N/g' | tr ',' '\n' | head -5
  {"counters":{"pipeline.cache.hit.user":N
  "pipeline.cache.miss.user":N
  "pipeline.plan.hit.user":N
  "pipeline.plan.miss.user":N}
  "series":{"eval.visited":{"count":N

The audit log records one JSONL line per answered request — who asked
what, what actually ran against the document, what came back, and the
stage timings attributed to that request:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --audit-log audit.jsonl "//patient/name" "//clinicalTrial"
  <name>Alice</name>
  <name>Bob</name>
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/; s/,"stages_ms":\{[^}]*\}//' audit.jsonl
  {"type":"query","ts_ns":_,"group":"user","query":"//patient/name","translated":"dept[patientInfo/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/name","cache":"miss","height":null,"results":2,"error":null}
  {"type":"query","ts_ns":_,"group":"user","query":"//clinicalTrial","translated":"#empty","cache":"miss","height":null,"results":0,"error":null}

The second identical query below is served from the translation cache,
so no rewrite stage appears in its record:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --audit-log audit2.jsonl \
  >   "//patient/name" "//patient/name" > /dev/null
  $ tr ',' '\n' < audit2.jsonl | grep -cE '"rewrite"'
  1
  $ tr ',' '\n' < audit2.jsonl | grep -E '"cache"'
  "cache":"miss"
  "cache":"hit"

Lint diagnostics flow through the same sink:

  $ secview lint --dtd hospital.dtd --spec bad.spec --audit-log lint.jsonl > /dev/null
  [1]
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/' lint.jsonl
  {"type":"diagnostic","ts_ns":_,"code":"SV002","severity":"error","subject":"ann(hospital, dept)","message":"qualifier references attribute @ward, which is declared on none of dept"}
  {"type":"diagnostic","ts_ns":_,"code":"SV103","severity":"error","subject":"sigma(hospital, dept)","message":"qualifier references attribute @ward, declared on none of dept"}

So does the strict construction gate when it refuses a broken policy:

  $ secview query --dtd hospital.dtd --spec bad.spec --doc ward.xml \
  >   --strict --audit-log gate.jsonl "//patient/name"
  secview: Pipeline: strict validation failed:
  group "user": error[SV002] ann(hospital, dept): qualifier references attribute @ward, which is declared on none of dept
  group "user": error[SV103] sigma(hospital, dept): qualifier references attribute @ward, declared on none of dept
  [2]
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/; s/"message":.*/"message":.../' gate.jsonl
  {"type":"note","ts_ns":_,"kind":"strict_gate","message":...

Plan EXPLAIN: translate the query once, run it, and print the operator
tree with per-operator work counters; the root's emitted count equals
the number of answers:

  $ secview explain --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 user '//patient/name' | sed '/^$/d'
  query:      //patient/name
  admission:  eval
  translated: dept[patientInfo/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/name
  engine:     plan
  results:    2
  doc version: 1  (plan-cache generation 0)
  seq                            emitted=2
    seq                          emitted=2
      seq                        emitted=2
        filter                   scanned=1 emitted=1
          child(dept)            scanned=1 emitted=1
          eq($wardNo)            scanned=1
            seq                  emitted=0
              seq                emitted=0
                child(patientInfo) scanned=2 emitted=0
                child(patient)   scanned=1 emitted=0
              child(wardNo)      scanned=2 emitted=0
        union                    emitted=2
          seq                    emitted=1
            child(clinicalTrial) scanned=3 emitted=1
            child(patientInfo)   scanned=2 emitted=1
          child(patientInfo)     scanned=3 emitted=1
      child(patient)             scanned=2 emitted=2
    child(name)                  scanned=6 emitted=2

The JSON form nests the same tree under "plan":

  $ secview explain --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --json user '//patient/name' \
  >   | tr ',' '\n' | grep -cE '"op":'
  18

Chrome trace export: --trace-out writes the recorded spans as
trace_event JSON for chrome://tracing or Perfetto:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --trace-out trace.json "//patient/name" > /dev/null
  $ grep -c '"traceEvents"' trace.json
  1
  $ grep -o '"name":"answer"' trace.json
  "name":"answer"

The slow-query log: with --slow-ms every query over threshold writes a
slow_query record (translated query, stage timings, operator counts)
to the audit stream, or stderr without one; a generous threshold stays
silent:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --slow-ms 0 "//patient/name" 2>&1 >/dev/null \
  >   | sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/; s/"latency_ms":[0-9.e+-]+/"latency_ms":_/; s/"stages_ms":\{[^}]*\}/"stages_ms":{_}/'
  {"type":"slow_query","ts_ns":_,"rid":"q1","group":"user","query":"//patient/name","translated":"dept[patientInfo/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/name","latency_ms":_,"threshold_ms":0,"stages_ms":{_},"op_counts":{"scanned":24,"probes":0,"joined":0,"rows":2},"gc_pause_ms":null,"gc_pauses":null}
  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --slow-ms 100000 "//patient/name" 2>&1 >/dev/null | wc -l
  0

A served pipeline exports the same telemetry: an OpenMetrics endpoint
on --metrics-port, the metrics protocol verb, and slow-query records
in the audit log:

  $ secview serve --dtd hospital.dtd --spec nurse.spec \
  >   --doc ward=ward.xml --socket ./m.sock --metrics-port 17393 \
  >   --slow-ms 0 --audit-log maudit.jsonl 2>mserve.log &
  $ secview client --socket ./m.sock --wait 5 --group user \
  >   --bind wardNo=6 '//patient/name'
  <name>Alice</name>
  <name>Bob</name>

A scrape needs no curl: counters render first, then gauges (queue
depth, live connections, GC figures), then one histogram per latency
series with cumulative buckets:

  $ secview metrics --scrape 127.0.0.1:17393 \
  >   | grep -E '^# TYPE secview_server_accepted|^# TYPE secview_server_queue_depth|^# EOF'
  # TYPE secview_server_accepted counter
  # TYPE secview_server_queue_depth gauge
  # EOF
  $ secview metrics --scrape 127.0.0.1:17393 \
  >   | grep -c 'secview_server_latency_ms_user_bucket'
  21

The metrics verb answers the same registry over the query socket;
--watch reprints it (twice here, then stops):

  $ secview metrics --socket ./m.sock | sed -n '1p;/gauges:/p'
  counters:
  gauges:
  $ secview metrics --socket ./m.sock --watch 0.1 --iterations 2 \
  >   | grep -c 'counters:'
  2

The explain verb serves plan trees to sessions, same as the CLI:

  $ secview client --socket ./m.sock \
  >   --send '{"cmd":"hello","group":"user"}' \
  >   --send '{"cmd":"explain","query":"//patient/name","bind":{"wardNo":"6"}}' \
  >   | tail -1 | grep -o '"engine":"plan"' 
  "engine":"plan"

Drain; the audit log holds the slow-query record next to the request
record it annotates:

  $ secview client --socket ./m.sock --shutdown
  $ wait
  $ grep -c '"type":"slow_query"' maudit.jsonl
  1
  $ grep -c '"type":"request"' maudit.jsonl
  2
