Observability: tracing, metrics and the security audit log.

Timings vary run to run; sed pins them before comparison.

A traced query prints the span tree of the request to stderr — pipeline
construction (derive), then the answer with its translation and
evaluation stages nested inside:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --trace "//patient/name" 2>&1 | sed -E 's/ *[0-9]+\.[0-9]+ms/ _/'
  <name>Alice</name>
  <name>Bob</name>
  trace (8 span(s)):
    derive _
    derive _
    answer _
      translate _
        rewrite _
        optimize _
      plan _
      eval _

The metrics dump carries the cache counters and per-stage latency
series; counter values are deterministic, durations are not:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --metrics "//patient/name" 2>&1 \
  >   | sed -E 's/ +[0-9]+\.[0-9]{3}/ _/g'
  <name>Alice</name>
  <name>Bob</name>
  counters:
    pipeline.cache.miss.user                 1
    pipeline.plan.miss.user                  1
  series (count/min/mean/p50/p95/max):
    eval.visited                                  1 _ _ _ _ _
    stage.answer                                  1 _ _ _ _ _
    stage.derive                                  2 _ _ _ _ _
    stage.eval                                    1 _ _ _ _ _
    stage.optimize                                1 _ _ _ _ _
    stage.plan                                    1 _ _ _ _ _
    stage.rewrite                                 1 _ _ _ _ _
    stage.translate                               1 _ _ _ _ _

The metrics subcommand replays a workload and dumps the registry;
repeated queries hit the translation cache:

  $ secview metrics --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --repeat 3 "//patient/name" "//patient//bill" 2>/dev/null \
  >   | sed -n '/counters/,/series/p' | head -4
  counters:
    pipeline.cache.hit.user                  4
    pipeline.cache.miss.user                 2
    pipeline.plan.hit.user                   4

Machine-readable form (every number pinned):

  $ secview metrics --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --json "//patient/name" 2>/dev/null \
  >   | sed -E 's/[0-9]+(\.[0-9]+)?/N/g' | tr ',' '\n' | head -5
  {"counters":{"pipeline.cache.hit.user":N
  "pipeline.cache.miss.user":N
  "pipeline.plan.hit.user":N
  "pipeline.plan.miss.user":N}
  "series":{"eval.visited":{"count":N

The audit log records one JSONL line per answered request — who asked
what, what actually ran against the document, what came back, and the
stage timings attributed to that request:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --audit-log audit.jsonl "//patient/name" "//clinicalTrial"
  <name>Alice</name>
  <name>Bob</name>
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/; s/,"stages_ms":\{[^}]*\}//' audit.jsonl
  {"type":"query","ts_ns":_,"group":"user","query":"//patient/name","translated":"dept[patientInfo/patient/wardNo = $wardNo]/(clinicalTrial/patientInfo | patientInfo)/patient/name","cache":"miss","height":null,"results":2,"error":null}
  {"type":"query","ts_ns":_,"group":"user","query":"//clinicalTrial","translated":"#empty","cache":"miss","height":null,"results":0,"error":null}

The second identical query below is served from the translation cache,
so no rewrite stage appears in its record:

  $ secview query --dtd hospital.dtd --spec nurse.spec --doc ward.xml \
  >   --bind wardNo=6 --audit-log audit2.jsonl \
  >   "//patient/name" "//patient/name" > /dev/null
  $ tr ',' '\n' < audit2.jsonl | grep -cE '"rewrite"'
  1
  $ tr ',' '\n' < audit2.jsonl | grep -E '"cache"'
  "cache":"miss"
  "cache":"hit"

Lint diagnostics flow through the same sink:

  $ secview lint --dtd hospital.dtd --spec bad.spec --audit-log lint.jsonl > /dev/null
  [1]
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/' lint.jsonl
  {"type":"diagnostic","ts_ns":_,"code":"SV002","severity":"error","subject":"ann(hospital, dept)","message":"qualifier references attribute @ward, which is declared on none of dept"}
  {"type":"diagnostic","ts_ns":_,"code":"SV103","severity":"error","subject":"sigma(hospital, dept)","message":"qualifier references attribute @ward, declared on none of dept"}

So does the strict construction gate when it refuses a broken policy:

  $ secview query --dtd hospital.dtd --spec bad.spec --doc ward.xml \
  >   --strict --audit-log gate.jsonl "//patient/name"
  secview: Pipeline: strict validation failed:
  group "user": error[SV002] ann(hospital, dept): qualifier references attribute @ward, which is declared on none of dept
  group "user": error[SV103] sigma(hospital, dept): qualifier references attribute @ward, declared on none of dept
  [2]
  $ sed -E 's/"ts_ns":[0-9]+/"ts_ns":_/; s/"message":.*/"message":.../' gate.jsonl
  {"type":"note","ts_ns":_,"kind":"strict_gate","message":...
