The query server over a Unix-domain socket: start it in the
background, drive it with the bundled client, then drain it.

  $ secview serve --dtd hospital.dtd --spec nurse.spec \
  >   --doc ward=ward.xml --socket ./sv.sock \
  >   --audit-log audit.jsonl 2>serve.log &
  $ secview client --socket ./sv.sock --wait 5 --ping
  pong

A session binds to a user group first; queries then run through the
secure pipeline (rewrite + optimize against the nurse view), with
qualifier variables bound per request:

  $ secview client --socket ./sv.sock --group user --peer cram \
  >   --bind wardNo=6 '//patient/name'
  <name>Alice</name>
  <name>Bob</name>

Querying without a session is refused, and the client reports it:

  $ secview client --socket ./sv.sock '//patient/name'
  secview: query "//patient/name" failed: {"ok":false,"v":1,"code":"no_session","error":"no session: send {\"cmd\":\"hello\",\"group\":…} first"}
  [1]

Protocol errors are structured replies, never hangups (--send ships a
raw line and echoes the raw reply):

  $ secview client --socket ./sv.sock --send 'not json'
  {"ok":false,"v":1,"code":"bad_request","error":"invalid JSON: at offset 0: expected null"}
  $ secview client --socket ./sv.sock --send '{"cmd":"hello","group":"nosuch"}'
  {"ok":false,"v":1,"code":"unknown_group","error":"unknown group \"nosuch\" (have: user)"}

Graceful drain: shutdown is acknowledged, the server finishes and
exits 0, the socket is removed, and the audit log holds exactly one
record per admitted query — the ward query above, nothing for the
refused ones:

  $ secview client --socket ./sv.sock --shutdown
  $ wait
  $ cat serve.log
  secview: listening on ./sv.sock
  secview: drained
  $ test -e sv.sock || echo socket removed
  socket removed
  $ grep -c '"type":"request"' audit.jsonl
  1
  $ grep -o '"status":"[a-z]*"' audit.jsonl | sort | uniq -c | sed 's/^ *//'
  1 "status":"ok"
