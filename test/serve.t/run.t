The query server over a Unix-domain socket: start it in the
background, drive it with the bundled client, then drain it.

  $ secview serve --dtd hospital.dtd --spec nurse.spec \
  >   --doc ward=ward.xml --socket ./sv.sock \
  >   --audit-log audit.jsonl 2>serve.log &
  $ secview client --socket ./sv.sock --wait 5 --ping
  pong

A session binds to a user group first; queries then run through the
secure pipeline (rewrite + optimize against the nurse view), with
qualifier variables bound per request:

  $ secview client --socket ./sv.sock --group user --peer cram \
  >   --bind wardNo=6 '//patient/name'
  <name>Alice</name>
  <name>Bob</name>

Querying without a session is refused, and the client reports it:

  $ secview client --socket ./sv.sock '//patient/name'
  secview: query "//patient/name" failed: {"ok":false,"v":1,"rid":"r3-1","code":"no_session","error":"no session: send {\"cmd\":\"hello\",\"group\":…} first"}
  [1]

Protocol errors are structured replies, never hangups (--send ships a
raw line and echoes the raw reply):

  $ secview client --socket ./sv.sock --send 'not json'
  {"ok":false,"v":1,"rid":"r4-1","code":"bad_request","error":"invalid JSON: at offset 0: expected null"}
  $ secview client --socket ./sv.sock --send '{"cmd":"hello","group":"nosuch"}'
  {"ok":false,"v":1,"rid":"r5-1","code":"unknown_group","error":"unknown group \"nosuch\" (have: user)"}

Graceful drain: shutdown is acknowledged, the server finishes and
exits 0, the socket is removed, and the audit log holds exactly one
record per admitted query — the ward query above, nothing for the
refused ones:

  $ secview client --socket ./sv.sock --shutdown
  $ wait
  $ cat serve.log
  secview: listening on ./sv.sock
  secview: drained
  $ test -e sv.sock || echo socket removed
  socket removed
  $ grep -c '"type":"request"' audit.jsonl
  1
  $ grep -o '"status":"[a-z]*"' audit.jsonl | sort | uniq -c | sed 's/^ *//'
  1 "status":"ok"

Static admission: a query the analyzer proves empty against the view
DTD is answered on the connection thread -- no worker, no plan, no
document touched -- and audited as denied_empty:

  $ secview serve --dtd hospital.dtd --spec nurse.spec \
  >   --doc ward=ward.xml --socket ./sv2.sock \
  >   --audit-log audit2.jsonl 2>serve2.log &
  $ secview client --socket ./sv2.sock --wait 5 --group user \
  >   --bind wardNo=6 '//test' '//patient/name'
  <name>Alice</name>
  <name>Bob</name>

The raw reply for a denied query is the worker's empty reply, byte
for byte:

  $ secview client --socket ./sv2.sock \
  >   --send '{"cmd":"hello","group":"user"}' \
  >   --send '{"cmd":"query","query":"//test"}'
  {"ok":true,"v":1,"rid":"r2-1","session":2,"group":"user"}
  {"ok":true,"v":1,"rid":"r2-2","results":[],"count":0}

The analyze verb returns the verdict (and witness) over the wire:

  $ secview client --socket ./sv2.sock \
  >   --send '{"cmd":"hello","group":"user"}' \
  >   --send '{"cmd":"analyze","query":"//clinicalTrial"}' \
  >   --send '{"cmd":"analyze","query":"//patient/name"}'
  {"ok":true,"v":1,"rid":"r3-1","session":3,"group":"user"}
  {"ok":true,"v":1,"rid":"r3-2","query":"//clinicalTrial","admission":"denied","witness":"step clinicalTrial: clinicalTrial is not an element type of the DTD"}
  {"ok":true,"v":1,"rid":"r3-3","query":"//patient/name","admission":"eval","witness":null}

The stats command counts fast-path denials and per-group verdicts:

  $ secview client --socket ./sv2.sock --stats \
  >   | grep -o '"server.admission.denied":[0-9]*'
  "server.admission.denied":2
  $ secview client --socket ./sv2.sock --stats \
  >   | grep -o '"admission":{[^}]*}'
  "admission":{"user":{"denied":3,"trivial":0,"eval":2}

  $ secview client --socket ./sv2.sock --shutdown
  $ wait
  $ grep -o '"status":"[a-z_]*"' audit2.jsonl | sort | uniq -c | sed 's/^ *//'
  2 "status":"denied_empty"
  1 "status":"ok"

Flight recorder and capture/replay: --flight N retains the last N
completed requests in memory (the session-less flight verb dumps
them, correlated by the same rid the replies carried), and --capture
writes one replayable JSONL record per answered query:

  $ secview serve --dtd hospital.dtd --spec nurse.spec \
  >   --doc ward=ward.xml --socket ./sv4.sock --flight 8 \
  >   --capture cap.jsonl 2>serve4.log &
  $ secview client --socket ./sv4.sock --wait 5 --group user \
  >   --bind wardNo=6 '//patient/name' >/dev/null
  $ secview flight --socket ./sv4.sock | sed -E 's/ +[0-9.]+ ms/ _ ms/'
  flight recorder: 1/8 entries, 1 recorded
  r1-2       query    user       ok              2 _ ms  //patient/name

Replaying the captured workload against the live server re-sends the
captured rids and byte-compares every answer against its captured
digest (exit 1 on any mismatch):

  $ secview replay cap.jsonl --socket ./sv4.sock | head -1
  replayed 1 record(s) from cap.jsonl — 0 mismatch(es)
  $ secview client --socket ./sv4.sock --shutdown
  $ wait

The capture is versioned JSONL; the replayed request landed in it
under the same rid as the original:

  $ sed -E 's/"latency_ms":[0-9.e+-]+/"latency_ms":_/' cap.jsonl
  {"v":2,"rid":"r1-2","verb":"query","group":"user","doc":null,"query":"//patient/name","bind":{"wardNo":"6"},"index":false,"engine":"plan","status":"ok","results":2,"digest":"24a76603fbb22b9e66dfb6c82c858e49","latency_ms":_}
  {"v":2,"rid":"r1-2","verb":"query","group":"user","doc":null,"query":"//patient/name","bind":{"wardNo":"6"},"index":false,"engine":"plan","status":"ok","results":2,"digest":"24a76603fbb22b9e66dfb6c82c858e49","latency_ms":_}

With --no-admission the same denied query takes the worker path and
produces the identical reply:

  $ secview serve --dtd hospital.dtd --spec nurse.spec --no-admission \
  >   --doc ward=ward.xml --socket ./sv3.sock 2>serve3.log &
  $ secview client --socket ./sv3.sock --wait 5 \
  >   --send '{"cmd":"hello","group":"user"}' \
  >   --send '{"cmd":"query","query":"//test"}'
  {"ok":true,"v":1,"rid":"r1-1","session":1,"group":"user"}
  {"ok":true,"v":1,"rid":"r1-2","results":[],"count":0}
  $ secview client --socket ./sv3.sock --shutdown
  $ wait

Transactional updates over the wire: the update verb runs under the
document's writer lock, bumps its catalog version, and lands in the
flight recorder, audit log and capture with the "update" verb; a
query on the same connection sees the new version immediately:

  $ secview serve --dtd hospital.dtd --spec nurse_rw.spec \
  >   --doc ward=ward.xml --socket ./sv5.sock --flight 8 \
  >   --audit-log audit5.jsonl --capture cap5.jsonl 2>serve5.log &
  $ secview client --socket ./sv5.sock --wait 5 --group user \
  >   --bind wardNo=6 \
  >   --update 'replace //patient[name = "Bob"]//bill with <bill>150</bill>' \
  >   '//patient//bill'
  update ok: 1 target(s), version 1 -> 2
  <bill>900</bill>
  <bill>150</bill>

A write the policy cannot admit is a structured refusal and leaves
the document alone:

  $ secview client --socket ./sv5.sock --group user --bind wardNo=6 \
  >   --update 'delete //patient[name = "Bob"]'
  secview: update "delete //patient[name = \"Bob\"]" failed: {"ok":false,"v":1,"rid":"r2-2","code":"update_denied","error":"target subtree contains inaccessible content"}
  [1]

The flight recorder shows the verb per entry; explain reports the
document version the next query would run against:

  $ secview flight --socket ./sv5.sock | sed -E 's/ +[0-9.]+ ms/ _ ms/'
  flight recorder: 3/8 entries, 3 recorded
  r1-2       update   user       ok              1 _ ms  replace //patient[name = "Bob"]//bill with <bill>150</bill>
  r1-3       query    user       ok              2 _ ms  //patient//bill
  r2-2       update   user       update_denied    0 _ ms  delete //patient[name = "Bob"]  ! target subtree contains inaccessible content [target subtree at node id 16 contains inaccessible node id 22]

  $ secview client --socket ./sv5.sock --shutdown
  $ wait

The audit log distinguishes admitted writes from denials, and only
the admitted one reached the capture (a rejected update changes
nothing, so replaying it would be meaningless):

  $ grep -o '"type":"update[a-z_]*"' audit5.jsonl | sort | uniq -c | sed 's/^ *//'
  1 "type":"update"
  1 "type":"update_denied"
  $ sed -E 's/"latency_ms":[0-9.e+-]+/"latency_ms":_/' cap5.jsonl
  {"v":2,"rid":"r1-2","verb":"update","group":"user","doc":null,"query":"replace //patient[name = \"Bob\"]//bill with <bill>150</bill>","bind":{"wardNo":"6"},"index":false,"engine":"plan","status":"ok","results":1,"digest":"e796b0dcfba4a91472235e9dff0f04cc","latency_ms":_}
  {"v":2,"rid":"r1-3","verb":"query","group":"user","doc":null,"query":"//patient//bill","bind":{"wardNo":"6"},"index":false,"engine":"plan","status":"ok","results":2,"digest":"072a8e931d027c1c9794aa200727c8c8","latency_ms":_}
